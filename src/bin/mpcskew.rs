//! `mpcskew` — a command-line front end for the library.
//!
//! ```text
//! # Analyze a query's bounds for given statistics:
//! mpcskew bounds "S1(x,y), S2(y,z), S3(z,x)" --cards 65536,65536,65536 --p 64
//!
//! # Generate a workload and let the engine pick the algorithm:
//! mpcskew run "S1(x,z), S2(y,z)" --m 20000 --p 64 --theta 1.2
//!
//! # Or pin one explicitly (--flag=value works everywhere):
//! mpcskew run "S1(x,z), S2(y,z)" --algo=skew-join --theta=1.2
//! ```
//!
//! Every `run` goes through `mpc_core::engine::Engine`: `--algo auto`
//! (the default) picks the algorithm from heavy-hitter statistics, and the
//! output reports the plan's predicted `L(u, M, p)` next to the measured
//! load.
//!
//! `mpcskew serve` starts the resident query service instead: load
//! relations once, then stream `QUERY`/`APPEND` lines against memoized
//! statistics and a fingerprinted plan cache (see `mpc_core::wire` for the
//! protocol), on stdin or — with `--listen host:port` — a TCP socket
//! shared by concurrent clients.

use mpc_skew::core::bounds;
use mpc_skew::core::engine::{Algorithm, Engine, StatsMode};
use mpc_skew::core::service::{Service, ServiceError};
use mpc_skew::core::shares::ShareAllocation;
use mpc_skew::core::wire::Session;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::aggregate::AggregateSpec;
use mpc_skew::query::{parse_aggregate_query, Query};
use mpc_skew::sim::backend::Backend;
use mpc_skew::stats::SimpleStatistics;
use std::process::ExitCode;

/// Parsed flags: `--flag value`, `--flag=value`, or bare boolean `--flag`.
struct Args {
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// The value of `--name` (`None` when absent or valueless).
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// True when `--name` appears at all (boolean flags).
    fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| k == name)
    }

    /// The value of `--name`, erroring when the flag is present without
    /// one (`--p` alone is a mistake, not a boolean).
    fn value(&self, name: &str) -> Result<Option<&str>, String> {
        match self.get(name) {
            Some(v) => Ok(Some(v)),
            None if self.has(name) => Err(format!("--{name} is missing a value")),
            None => Ok(None),
        }
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.value(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
        }
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.value(name)? {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let k = raw[i]
            .strip_prefix("--")
            .filter(|k| !k.is_empty())
            .ok_or_else(|| format!("expected --flag, got `{}`", raw[i]))?;
        if let Some((name, value)) = k.split_once('=') {
            // --flag=value
            flags.push((name.to_string(), Some(value.to_string())));
            i += 1;
        } else if let Some(v) = raw.get(i + 1).filter(|v| !v.starts_with("--")) {
            // --flag value
            flags.push((k.to_string(), Some(v.clone())));
            i += 2;
        } else {
            // bare boolean --flag
            flags.push((k.to_string(), None));
            i += 1;
        }
    }
    Ok(Args { flags })
}

fn usage() -> &'static str {
    "usage:\n  \
     mpcskew bounds <query> --cards m1,m2,... [--p 64] [--domain 1048576]\n  \
     mpcskew run <query> [--m 10000] [--p 64] [--domain 65536] [--algo auto]\n          \
     [--theta 0.0] [--seed 1] [--skew-col 1] [--threads N] [--no-verify]\n          \
     [--stats exact|sketch|synthetic]\n  \
     mpcskew serve [--domain 65536] [--p 64] [--seed 1] [--threads N]\n          \
     [--listen host:port] [--max-clients 64] [--stats exact|sketch]\n  \
     mpcskew --help\n\n\
     queries are conjunctive-query text, e.g. \"S1(x,z), S2(y,z)\"; `run`\n\
     also takes aggregate heads — \"Q(x; count) :- S1(x,z), S2(y,z)\" with\n\
     ops count | sum(v) | min(v) | max(v) | count_distinct(v) — folded\n\
     inside the local joins, never materializing the join output;\n\
     flags accept both `--flag value` and `--flag=value`;\n\
     algos: auto | hc | hc-equal | hash | fragment-replicate | skew-join |\n\
     general | multi-round — `auto` (the default) picks from heavy-hitter\n\
     statistics: HyperCube when the join variables are skew-free, the \u{a7}4.1\n\
     skew join on skewed two-relation joins, the \u{a7}4.2 general algorithm\n\
     otherwise;\n\
     --threads: simulator worker threads (1 = sequential backend, N = scoped\n\
     threads, pool:N = the persistent N-worker pool; default: MPCSKEW_THREADS\n\
     or all available cores; results are identical whichever backend runs);\n\
     --stats: planner statistics source — exact (scan-based; run default),\n\
     sketch (SpaceSaving/HLL summaries, sublinear, error-bounded; serve\n\
     default), synthetic (cardinalities only); estimates can only shift\n\
     load, never change answers;\n\
     serve: resident service speaking the line protocol (LOAD / APPEND /\n\
     QUERY / SET / BATCH..RUN / STATS / SHUTDOWN) on stdin, or on a TCP\n\
     socket with --listen — relations stay loaded, statistics are memoized,\n\
     and repeated query shapes hit a fingerprinted plan cache; worker\n\
     panics are contained per query (`err internal ...`), SET/timeout=/\n\
     limit= budgets bound runaway queries (`err timeout`/`err limit`), and\n\
     --max-clients sheds excess TCP clients with `err overloaded`"
}

fn cmd_bounds(q: &Query, args: &Args) -> Result<(), String> {
    let p = args.usize_or("p", 64)?;
    let domain = args.usize_or("domain", 1 << 20)? as u64;
    let cards: Vec<usize> = args
        .value("cards")?
        .ok_or("--cards m1,m2,... is required")?
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad cardinality `{s}`"))
        })
        .collect::<Result<_, _>>()?;
    if cards.len() != q.num_atoms() {
        return Err(format!(
            "query has {} atoms but {} cardinalities were given",
            q.num_atoms(),
            cards.len()
        ));
    }
    let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
    let st = SimpleStatistics::synthetic(&arities, cards.clone(), domain);

    println!("query           : {q}");
    println!("p               : {p}");
    println!("M (bits)        : {:?}", st.bit_sizes);
    println!(
        "tau* (max pack) : {}",
        mpc_skew::query::max_packing_value(q)
    );
    println!(
        "rho* (min cover): {:.4}",
        mpc_skew::query::cover::edge_cover_number(q).map_err(|e| e.to_string())?
    );
    println!(
        "AGM bound       : {:.3e} tuples",
        mpc_skew::query::cover::agm_bound(q, &cards).map_err(|e| e.to_string())?
    );
    println!(
        "E[|q(I)|]       : {:.3e} tuples (Lemma A.1)",
        bounds::expected_answers(q, &cards, domain)
    );
    println!("space exponent  : {:.4}", bounds::space_exponent(q, &st, p));
    println!("\npk(q) load table (Example 3.7 style):");
    for (u, l) in bounds::packing_load_table(q, &st, p) {
        println!("  u = {:?}  ->  L = {:.0} bits", u.to_f64(), l);
    }
    let (lower, best) = bounds::l_lower(q, &st, p);
    println!(
        "\nL_lower = L_upper = {:.0} bits  (packing {:?})",
        lower,
        best.to_f64()
    );
    let alloc = ShareAllocation::optimize(q, &st, p).map_err(|e| e.to_string())?;
    println!(
        "optimal shares  : {:?}  (exponents {:?})",
        alloc.shares,
        alloc
            .exponents
            .iter()
            .map(|e| (e * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn cmd_run(q: &Query, aggregate: Option<&AggregateSpec>, args: &Args) -> Result<(), String> {
    let p = args.usize_or("p", 64)?;
    let m = args.usize_or("m", 10_000)?;
    let domain = args.usize_or("domain", 1 << 16)? as u64;
    let theta = args.f64_or("theta", 0.0)?;
    let seed = args.usize_or("seed", 1)? as u64;
    let skew_col = args.usize_or("skew-col", 1)?;
    let algo = match args.value("algo")? {
        None => Algorithm::Auto,
        Some(v) => Algorithm::parse(v).map_err(|e| format!("{e}\n{}", usage()))?,
    };
    if aggregate.is_some() && matches!(algo, Algorithm::MultiRound | Algorithm::GeneralSkew) {
        return Err(format!(
            "`{algo}` does not materialize each join derivation exactly once; \
             aggregate heads need a derivation-partitioning plan \
             (auto, hc, hc-equal, hash, fragment-replicate, skew-join)"
        ));
    }
    let stats_mode = match args.value("stats")? {
        None => StatsMode::Exact,
        Some(v) => StatsMode::parse(v).map_err(|e| format!("{e}\n{}", usage()))?,
    };
    let backend = match args.value("threads")? {
        None => Backend::from_env(),
        Some(v) => Backend::parse(v)
            .map_err(|_| format!("--threads expects an integer or pool:N, got `{v}`"))?,
    };

    // Workload: every relation Zipf(theta) on `skew-col` (uniform if 0.0).
    let mut rng = Rng::seed_from_u64(seed);
    let rels: Vec<mpc_skew::data::Relation> = q
        .atoms()
        .iter()
        .map(|a| {
            if theta > 0.0 && skew_col < a.arity() {
                generators::zipf_column(a.name(), a.arity(), m, domain, skew_col, theta, &mut rng)
            } else {
                generators::uniform(a.name(), a.arity(), m, domain, &mut rng)
            }
        })
        .collect();
    let db = Database::new(q.clone(), rels, domain).map_err(|e| e.to_string())?;

    println!("query  : {q}");
    println!(
        "data   : {} atoms x {m} tuples over [{domain}], theta = {theta}",
        q.num_atoms()
    );
    println!(
        "algo   : {algo}, p = {p}, seed = {seed}, backend = {backend}, stats = {stats_mode}\n"
    );

    let mut engine = Engine::new(q)
        .p(p)
        .seed(seed)
        .backend(backend)
        .algorithm(algo)
        .stats_mode(stats_mode);
    if let Some(spec) = aggregate {
        engine = engine.aggregate(spec.clone());
    }
    let plan = engine.plan(&db);
    println!("plan   : {plan}");
    match plan.algorithm() {
        Algorithm::HyperCube | Algorithm::HyperCubeEqual => {
            println!("shares : {:?}", plan.shares().expect("hypercube plan"));
        }
        Algorithm::SkewJoin => {
            println!("heavy z: {}", plan.num_heavy().expect("skew-join plan"));
        }
        Algorithm::GeneralSkew => {
            println!(
                "combos : {}",
                plan.num_bin_combinations().expect("general plan")
            );
        }
        Algorithm::HashJoin => {
            let vars = mpc_skew::core::engine::default_hash_vars(q);
            let names: Vec<&str> = vars.iter().map(|v| q.var_name(v)).collect();
            println!("hash on: {}", names.join(","));
        }
        _ => {}
    }

    let outcome = plan.execute(&db, backend);

    if let Some(report) = outcome.report() {
        println!(
            "\nmax load      : {} bits ({} tuples)",
            report.max_load_bits(),
            report.max_load_tuples()
        );
        println!("mean load     : {:.0} bits", report.mean_load_bits());
        println!("imbalance     : {:.2}x", report.imbalance());
        println!("replication   : {:.2}x", report.replication_rate());
    } else {
        let mr = outcome.multi_round().expect("multi-round outcome");
        println!(
            "\nmax load      : {} bits (max over {} rounds)",
            mr.max_round_load_bits(),
            mr.num_rounds()
        );
        println!(
            "intermediates : {} tuples max",
            mr.max_intermediate_tuples()
        );
    }
    println!("predicted L   : {:.0} bits", outcome.predicted_load_bits());
    println!("L_lower       : {:.0} bits", outcome.lower_bound_bits());
    println!(
        "load/bound    : {:.2}x",
        outcome.max_load_bits() as f64 / outcome.lower_bound_bits()
    );
    if let Some(agg) = outcome.aggregate() {
        let spec = outcome.aggregate_spec().expect("aggregate spec");
        println!("aggregate     : {}", spec.display_with(q));
        println!("groups        : {}", agg.num_groups());
        const SHOWN: usize = 20;
        for line in agg.to_string().lines().take(SHOWN) {
            println!("  {line}");
        }
        if agg.num_groups() > SHOWN {
            println!("  ... ({} more groups)", agg.num_groups() - SHOWN);
        }
        if args.has("no-verify") {
            println!("verification  : skipped");
            return Ok(());
        }
        let ok = outcome.verify_aggregate(&db).expect("aggregate outcome");
        println!(
            "verification  : {} (vs sequential oracle fold)",
            if ok { "PASSED" } else { "FAILED" }
        );
        if !ok {
            return Err("aggregate result differs from the sequential oracle".to_string());
        }
        return Ok(());
    }
    if args.has("no-verify") {
        println!("answers       : {} distinct (verification skipped)", {
            outcome.answers().len()
        });
        return Ok(());
    }
    let v = outcome.verify(&db);
    println!(
        "answers       : {} distinct, verification {}",
        v.found,
        if v.is_complete() { "PASSED" } else { "FAILED" }
    );
    if !v.is_complete() {
        return Err(format!("{} answers missing", v.missing.len()));
    }
    Ok(())
}

/// Build the service from the shared serve flags.
fn service_from_args(args: &Args) -> Result<Service, String> {
    let domain = args.usize_or("domain", 1 << 16)? as u64;
    let p = args.usize_or("p", 64)?;
    let seed = args.usize_or("seed", 1)? as u64;
    let backend = match args.value("threads")? {
        None => Backend::from_env(),
        Some(v) => Backend::parse(v)
            .map_err(|_| format!("--threads expects an integer or pool:N, got `{v}`"))?,
    };
    // A resident service defaults to sketch statistics: ingest folds into
    // O(p)-space summaries instead of exact frequency maps, so planning
    // state stays sublinear however large the catalog grows.
    let stats_mode = match args.value("stats")? {
        None => StatsMode::Sketch,
        Some(v) => StatsMode::parse(v).map_err(|e| format!("{e}\n{}", usage()))?,
    };
    Ok(Service::new(domain)
        .with_backend(backend)
        .with_defaults(p, seed)
        .with_stats_mode(stats_mode))
}

fn cmd_serve(args: &Args) -> Result<(), String> {
    // Budget trips unwind with a typed payload that the service edge catches
    // and turns into `err timeout` / `err limit`; they are normal control
    // flow, so keep the default hook's stderr noise for real faults only.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if info
            .payload()
            .downcast_ref::<mpc_skew::data::BudgetExceeded>()
            .is_none()
        {
            default_hook(info);
        }
    }));
    let service = service_from_args(args)?;
    let max_clients = args.usize_or("max-clients", 64)?;
    if max_clients == 0 {
        return Err("--max-clients must be at least 1".to_string());
    }
    match args.value("listen")? {
        None => serve_stdio(service),
        Some(addr) => serve_tcp(service, addr, max_clients),
    }
}

/// One session over stdin/stdout: the classic filter shape, scriptable with
/// a here-doc (see `ci.sh`'s smoke stage).
fn serve_stdio(mut service: Service) -> Result<(), String> {
    use std::io::{BufRead, Write};
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout().lock();
    let mut session = Session::new();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        for reply in session.handle(&mut service, &line) {
            writeln!(stdout, "{reply}").map_err(|e| format!("stdout: {e}"))?;
        }
        stdout.flush().map_err(|e| format!("stdout: {e}"))?;
        if session.is_done() {
            break;
        }
    }
    Ok(())
}

/// Concurrent clients multiplexed onto one catalog: each connection gets its
/// own `Session` (parser state), all of them sharing the `Service` — and
/// therefore its memoized statistics and plan cache — behind a mutex. Any
/// client's SHUTDOWN stops the listener.
///
/// The listener is fault-contained: a client vanishing mid-line or
/// mid-response ends only its own session (whose thread handle is reaped,
/// not leaked), a session thread panic is caught without poisoning the
/// shared service for everyone else, and connections past `max_clients`
/// are shed with one `err overloaded` line instead of queueing unbounded
/// work behind the service mutex.
fn serve_tcp(service: Service, addr: &str, max_clients: usize) -> Result<(), String> {
    use std::net::{TcpListener, TcpStream};
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    let listener = TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    // Printed first so scripts (and the CLI tests) can discover the port
    // when `--listen 127.0.0.1:0` asked the OS to pick one.
    println!("listening on {local}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();

    let service = Arc::new(Mutex::new(service));
    let stop = Arc::new(AtomicBool::new(false));
    let active = Arc::new(AtomicUsize::new(0));
    let mut handles: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        // Reap finished sessions so a long-lived server holds one handle
        // per *live* client, not one per client that ever connected.
        let mut i = 0;
        while i < handles.len() {
            if handles[i].is_finished() {
                let _ = handles.swap_remove(i).join();
            } else {
                i += 1;
            }
        }
        let mut stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let now = active.load(Ordering::SeqCst);
        if now >= max_clients {
            // Load shedding: one typed line, then close. Never block the
            // listener behind a full house.
            let e = ServiceError::Overloaded {
                active: now,
                max: max_clients,
            };
            let _ = writeln!(stream, "err {e}");
            continue;
        }
        active.fetch_add(1, Ordering::SeqCst);
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let active = Arc::clone(&active);
        handles.push(std::thread::spawn(move || {
            // Contain even an unexpected session panic: the slot must be
            // released and the listener must keep accepting.
            let done = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                client_loop(stream, &service)
            }))
            .unwrap_or(false);
            active.fetch_sub(1, Ordering::SeqCst);
            if done {
                stop.store(true, Ordering::SeqCst);
                // Wake the blocking accept so the listener can observe the
                // flag; the no-op connection is dropped unserved.
                let _ = TcpStream::connect(local);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

/// Serve one TCP client; returns true when the client issued SHUTDOWN.
fn client_loop(stream: std::net::TcpStream, service: &std::sync::Mutex<Service>) -> bool {
    use std::io::{BufRead, BufReader, Write};
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return false,
    };
    let mut writer = stream;
    let mut session = Session::new();
    for line in reader.lines() {
        // A read error (client dropped mid-line) ends this session only.
        let Ok(line) = line else { break };
        let replies = {
            // Recover the lock even if another session's thread died while
            // holding it: the service's own containment boundary means the
            // state behind a poisoned mutex is still consistent.
            let mut svc = service.lock().unwrap_or_else(|p| p.into_inner());
            session.handle(&mut svc, &line)
        };
        // Keep consuming commands even when the client stopped reading
        // (a vanished client must not be able to swallow its SHUTDOWN).
        for reply in replies {
            if writeln!(writer, "{reply}").is_err() {
                break;
            }
        }
        let _ = writer.flush();
        if session.is_done() {
            break;
        }
    }
    session.is_done()
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{}", usage());
        return ExitCode::SUCCESS;
    }
    // `serve` takes no query positional — dispatch it before query parsing.
    if argv[0] == "serve" {
        let result = parse_args(&argv[1..]).and_then(|args| cmd_serve(&args));
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.len() < 2 {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let cmd = argv[0].as_str();
    let query_text = argv[1].as_str();
    let (q, aggregate) = match parse_aggregate_query(query_text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("cannot parse query `{query_text}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let args = match parse_args(&argv[2..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "bounds" if aggregate.is_some() => {
            Err("`bounds` analyzes the join body — drop the aggregate head".to_string())
        }
        "bounds" => cmd_bounds(&q, &args),
        "run" => cmd_run(&q, aggregate.as_ref(), &args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
