//! `mpcskew` — a command-line front end for the library.
//!
//! ```text
//! # Analyze a query's bounds for given statistics:
//! mpcskew bounds "S1(x,y), S2(y,z), S3(z,x)" --cards 65536,65536,65536 --p 64
//!
//! # Generate a workload, run an algorithm, measure & verify:
//! mpcskew run "S1(x,z), S2(y,z)" --m 20000 --p 64 --algo skew-join --theta 1.2
//! ```
//!
//! Algorithms: `hc` (LP-optimal HyperCube), `hc-equal` (p^{1/k} shares),
//! `hash` (partition on the first shared variable), `skew-join` (§4.1, two
//! atoms only), `general` (§4.2 bin combinations).

use mpc_skew::core::baselines::HashJoinRouter;
use mpc_skew::core::bounds;
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::shares::ShareAllocation;
use mpc_skew::core::skew_general::GeneralSkewAlgorithm;
use mpc_skew::core::skew_join::SkewJoin;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::{parse_query, Query, VarSet};
use mpc_skew::sim::backend::Backend;
use mpc_skew::sim::cluster::Cluster;
use mpc_skew::stats::SimpleStatistics;
use std::process::ExitCode;

struct Args {
    flags: Vec<(String, String)>,
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects an integer, got `{v}`")),
        }
    }

    fn f64_or(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a number, got `{v}`")),
        }
    }
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        let k = raw[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", raw[i]))?;
        let v = raw
            .get(i + 1)
            .ok_or_else(|| format!("--{k} is missing a value"))?;
        flags.push((k.to_string(), v.clone()));
        i += 2;
    }
    Ok(Args { flags })
}

fn usage() -> &'static str {
    "usage:\n  \
     mpcskew bounds <query> --cards m1,m2,... [--p 64] [--domain 1048576]\n  \
     mpcskew run <query> [--m 10000] [--p 64] [--domain 65536] [--algo hc]\n          \
     [--theta 0.0] [--seed 1] [--skew-col 1] [--threads N]\n\n\
     queries are conjunctive-query text, e.g. \"S1(x,z), S2(y,z)\";\n\
     algos: hc | hc-equal | hash | skew-join | general;\n\
     --threads: simulator worker threads (1 = sequential backend, N = scoped\n\
     threads, pool:N = the persistent N-worker pool; default: MPCSKEW_THREADS\n\
     or all available cores; results are identical whichever backend runs)"
}

fn cmd_bounds(q: &Query, args: &Args) -> Result<(), String> {
    let p = args.usize_or("p", 64)?;
    let domain = args.usize_or("domain", 1 << 20)? as u64;
    let cards: Vec<usize> = args
        .get("cards")
        .ok_or("--cards m1,m2,... is required")?
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .map_err(|_| format!("bad cardinality `{s}`"))
        })
        .collect::<Result<_, _>>()?;
    if cards.len() != q.num_atoms() {
        return Err(format!(
            "query has {} atoms but {} cardinalities were given",
            q.num_atoms(),
            cards.len()
        ));
    }
    let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
    let st = SimpleStatistics::synthetic(&arities, cards.clone(), domain);

    println!("query           : {q}");
    println!("p               : {p}");
    println!("M (bits)        : {:?}", st.bit_sizes);
    println!(
        "tau* (max pack) : {}",
        mpc_skew::query::max_packing_value(q)
    );
    println!(
        "rho* (min cover): {:.4}",
        mpc_skew::query::cover::edge_cover_number(q).map_err(|e| e.to_string())?
    );
    println!(
        "AGM bound       : {:.3e} tuples",
        mpc_skew::query::cover::agm_bound(q, &cards).map_err(|e| e.to_string())?
    );
    println!(
        "E[|q(I)|]       : {:.3e} tuples (Lemma A.1)",
        bounds::expected_answers(q, &cards, domain)
    );
    println!("space exponent  : {:.4}", bounds::space_exponent(q, &st, p));
    println!("\npk(q) load table (Example 3.7 style):");
    for (u, l) in bounds::packing_load_table(q, &st, p) {
        println!("  u = {:?}  ->  L = {:.0} bits", u.to_f64(), l);
    }
    let (lower, best) = bounds::l_lower(q, &st, p);
    println!(
        "\nL_lower = L_upper = {:.0} bits  (packing {:?})",
        lower,
        best.to_f64()
    );
    let alloc = ShareAllocation::optimize(q, &st, p).map_err(|e| e.to_string())?;
    println!(
        "optimal shares  : {:?}  (exponents {:?})",
        alloc.shares,
        alloc
            .exponents
            .iter()
            .map(|e| (e * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}

fn cmd_run(q: &Query, args: &Args) -> Result<(), String> {
    let p = args.usize_or("p", 64)?;
    let m = args.usize_or("m", 10_000)?;
    let domain = args.usize_or("domain", 1 << 16)? as u64;
    let theta = args.f64_or("theta", 0.0)?;
    let seed = args.usize_or("seed", 1)? as u64;
    let skew_col = args.usize_or("skew-col", 1)?;
    let algo = args.get("algo").unwrap_or("hc");
    let backend = match args.get("threads") {
        None => Backend::from_env(),
        Some(v) => Backend::parse(v)
            .map_err(|_| format!("--threads expects an integer or pool:N, got `{v}`"))?,
    };

    // Workload: every relation Zipf(theta) on `skew_col` (uniform if 0.0).
    let mut rng = Rng::seed_from_u64(seed);
    let rels: Vec<mpc_skew::data::Relation> = q
        .atoms()
        .iter()
        .map(|a| {
            if theta > 0.0 && skew_col < a.arity() {
                generators::zipf_column(a.name(), a.arity(), m, domain, skew_col, theta, &mut rng)
            } else {
                generators::uniform(a.name(), a.arity(), m, domain, &mut rng)
            }
        })
        .collect();
    let db = Database::new(q.clone(), rels, domain).map_err(|e| e.to_string())?;
    let st = SimpleStatistics::of(&db);

    println!("query  : {q}");
    println!(
        "data   : {} atoms x {m} tuples over [{domain}], theta = {theta}",
        q.num_atoms()
    );
    println!("algo   : {algo}, p = {p}, seed = {seed}, backend = {backend}\n");

    let cluster: Cluster = match algo {
        "hc" => {
            let hc = HyperCube::with_optimal_shares(q, &st, p, seed);
            println!("shares : {:?}", hc.grid().dims());
            hc.run_on(&db, backend).0
        }
        "hc-equal" => {
            HyperCube::with_equal_shares(q, p, seed)
                .run_on(&db, backend)
                .0
        }
        "hash" => {
            // Partition on the highest-degree variable (the usual join key).
            let key = (0..q.num_vars())
                .max_by_key(|&i| q.atoms_with_var(i).count())
                .expect("query has variables");
            println!("hash on: {}", q.var_name(key));
            let router = HashJoinRouter::new(q, VarSet::singleton(key), p, seed);
            router.run_on(&db, backend).0
        }
        "skew-join" => {
            let sj = SkewJoin::plan(&db, p, seed);
            println!("heavy z: {}", sj.num_heavy());
            sj.run_on(&db, backend).0
        }
        "general" => {
            let alg = GeneralSkewAlgorithm::plan(&db, p, seed);
            println!("combos : {}", alg.combination_summary().len());
            println!(
                "predict: {:.0} bits (max_B p^lambda)",
                alg.predicted_load_bits()
            );
            alg.run_on(&db, backend).0
        }
        other => return Err(format!("unknown algorithm `{other}`\n{}", usage())),
    };

    let report = cluster.report();
    let v = verify::verify(&db, &cluster);
    let (lower, _) = bounds::l_lower(q, &st, p);
    println!(
        "\nmax load      : {} bits ({} tuples)",
        report.max_load_bits(),
        report.max_load_tuples()
    );
    println!("mean load     : {:.0} bits", report.mean_load_bits());
    println!("imbalance     : {:.2}x", report.imbalance());
    println!("replication   : {:.2}x", report.replication_rate());
    println!("L_lower       : {:.0} bits", lower);
    println!(
        "load/bound    : {:.2}x",
        report.max_load_bits() as f64 / lower
    );
    println!(
        "answers       : {} distinct, verification {}",
        v.found,
        if v.is_complete() { "PASSED" } else { "FAILED" }
    );
    if !v.is_complete() {
        return Err(format!("{} answers missing", v.missing.len()));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.len() < 2 {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }
    let cmd = argv[0].as_str();
    let query_text = argv[1].as_str();
    let q = match parse_query(query_text) {
        Ok(q) => q,
        Err(e) => {
            eprintln!("cannot parse query `{query_text}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    let args = match parse_args(&argv[2..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}\n{}", usage());
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd {
        "bounds" => cmd_bounds(&q, &args),
        "run" => cmd_run(&q, &args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
