//! # mpc-skew
//!
//! A from-scratch Rust implementation of one-round massively-parallel (MPC)
//! conjunctive query evaluation with provably optimal skew handling, after
//!
//! > Paul Beame, Paraschos Koutris, Dan Suciu.
//! > *Skew in Parallel Query Processing.* PODS 2014.
//!
//! This façade crate re-exports the workspace crates under stable paths:
//!
//! * [`lp`] — exact rationals, simplex, polytope vertex enumeration;
//! * [`query`] — conjunctive queries, hypergraphs, fractional edge packings,
//!   residual queries;
//! * [`data`] — relations, deterministic generators, a local multiway join;
//! * [`stats`] — cardinalities, heavy hitters, frequency bins, bin
//!   combinations, degree sequences;
//! * [`sim`] — the one-round MPC cluster simulator with exact per-server
//!   load accounting;
//! * [`core`] — the algorithms (HyperCube, skew join, the general
//!   bin-combination algorithm, baselines) and every lower-bound formula of
//!   the paper.
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use mpc_core as core;
pub use mpc_data as data;
pub use mpc_lp as lp;
pub use mpc_query as query;
pub use mpc_sim as sim;
pub use mpc_stats as stats;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use mpc_core::aggregate::{
        aggregate_cluster, aggregate_oracle, AggregateAccumulator, AggregateResult, Mergeable,
    };
    pub use mpc_core::bounds;
    pub use mpc_core::engine::{
        execute_batch, sketch_capacity, Algorithm, Engine, ExactStats, Plan, PlanKey, RunOutcome,
        SketchStats, Stats, StatsMode, SyntheticStats,
    };
    pub use mpc_core::hypercube::HyperCube;
    pub use mpc_core::mapreduce::{servers_for_reducer_cap, ReducerSchedule};
    pub use mpc_core::multi_round::{run_multi_round, run_multi_round_batch, MultiRoundResult};
    pub use mpc_core::service::{
        CacheCounters, CacheStatus, QuerySpec, Service, ServiceError, ServiceOutcome,
        SketchTelemetry, DEFAULT_PLAN_CACHE_CAPACITY,
    };
    pub use mpc_core::shares::ShareAllocation;
    pub use mpc_core::skew_general::GeneralSkewAlgorithm;
    pub use mpc_core::skew_join::{SkewJoin, SkewJoinConfig};
    pub use mpc_core::verify::{assert_complete, verify, verify_aggregate, AggregateVerification};
    pub use mpc_core::wire::Session;
    pub use mpc_data::catalog::Database;
    pub use mpc_data::join::{JoinOrder, JoinStats};
    pub use mpc_data::relation::Relation;
    pub use mpc_data::rng::Rng;
    pub use mpc_query::aggregate::{AggregateOp, AggregateSpec};
    pub use mpc_query::parser::{parse_aggregate_query, parse_query};
    pub use mpc_query::query::Query;
    pub use mpc_query::varset::VarSet;
    pub use mpc_sim::backend::Backend;
    pub use mpc_sim::cluster::{BatchJob, Cluster};
    pub use mpc_sim::pool::WorkerPool;
    pub use mpc_stats::cardinality::SimpleStatistics;
    pub use mpc_stats::sketch::{
        DistinctCounter, ErrorDirection, FreqEstimate, RelationSketch, SpaceSaving,
    };
}
