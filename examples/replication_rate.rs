//! MapReduce-style replication rate (Section 5 / Example 5.2).
//!
//! For the triangle query with equal relation sizes `M`, Theorem 5.1 bounds
//! the replication rate of *any* algorithm with reducer size `L` bits by
//! `r = Ω(sqrt(M/L))`, and the number of reducers by `(M/L)^{3/2}`. This
//! example sweeps `L`, runs HyperCube sized so no server exceeds `L`, and
//! prints measured vs. bound — the measured slope on a log-log plot is the
//! paper's 1/2.
//!
//! ```text
//! cargo run --release --example replication_rate
//! ```

use mpc_skew::core::bounds;
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::named;
use mpc_skew::stats::SimpleStatistics;

fn main() {
    let query = named::cycle(3);
    let n = 1u64 << 10;
    let m = 30_000usize;
    let mut rng = Rng::seed_from_u64(55);
    let relations = query
        .atoms()
        .iter()
        .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    let db = Database::new(query.clone(), relations, n).expect("valid db");
    let stats = SimpleStatistics::of(&db);
    let m_bits = stats.bit_sizes[0] as f64;

    println!("query: {query}, M = {m_bits} bits per relation\n");
    println!(
        "{:>6} {:>14} {:>12} {:>12} {:>14} {:>14}",
        "p", "max load bits", "measured r", "bound r", "sqrt(M/L)", "reducers>="
    );

    for p in [8usize, 27, 64, 216, 512] {
        let hc = HyperCube::with_equal_shares(&query, p, 9);
        let (cluster, report) = hc.run(&db);
        verify::assert_complete(&db, &cluster);
        // Reducer size = the observed max load (the tightest L this run
        // satisfies).
        let l = report.max_load_bits() as f64;
        let r_measured = report.replication_rate();
        let r_bound = bounds::replication_rate_bound(&query, &stats, l);
        let reducers = bounds::min_reducers(&query, &stats, l);
        println!(
            "{:>6} {:>14} {:>12.3} {:>12.3} {:>14.3} {:>14.0}",
            p,
            report.max_load_bits(),
            r_measured,
            r_bound,
            (m_bits / l).sqrt(),
            reducers
        );
        assert!(
            r_measured >= r_bound * 0.9,
            "measured replication {r_measured} below the lower bound {r_bound}"
        );
    }

    println!(
        "\nShape check: measured r grows like sqrt(M/L) — the slope-1/2 line of \
         Example 5.2 —\nand every HyperCube run sits above the Theorem 5.1 bound."
    );
}
