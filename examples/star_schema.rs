//! A star-schema analytics join under multi-attribute skew, handled by the
//! general bin-combination algorithm of Section 4.2.
//!
//! Workload: a fact-table-style star query
//! `q = S1(x1,z), S2(x2,z), S3(x3,z)` where the shared key `z` is skewed in
//! the "fact" relation S1 (one hot product drives half the rows), and S1
//! additionally carries a jointly-heavy pair on `(x1, z)` — skew that only
//! the attribute-subset machinery of Section 4.2 detects.
//!
//! ```text
//! cargo run --release --example star_schema
//! ```

use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::skew_general::GeneralSkewAlgorithm;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Relation, Rng};
use mpc_skew::query::named;
use mpc_skew::stats::SimpleStatistics;

fn main() {
    let query = named::star(3);
    let p = 64usize;
    let n = 1u64 << 14;
    let m = 40_000usize;
    let mut rng = Rng::seed_from_u64(2024);

    // S1: half the tuples share z = 7, and a quarter share the *pair*
    // (x1, z) = (3, 7) — jointly heavy.
    let mut s1 = Relation::with_capacity("S1", 2, m);
    for _ in 0..m / 4 {
        s1.push(&[3, 7]);
    }
    for _ in 0..m / 4 {
        s1.push(&[rng.below(n), 7]);
    }
    for _ in 0..m / 2 {
        s1.push(&[rng.below(n), rng.below(n)]);
    }
    // S2, S3: dimension-style relations, lightly skewed.
    let d2 = generators::zipf_degrees(m, n, 0.6);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
    let s3 = generators::matching("S3", 2, m.min(n as usize), n, &mut rng);

    let db = Database::new(query.clone(), vec![s1, s2, s3], n).expect("valid db");
    println!("query : {query}");
    println!("p     : {p}, m = {m}, n = {n}");

    // Plain HyperCube with LP-optimal shares (assumes no skew).
    let stats = SimpleStatistics::of(&db);
    let hc = HyperCube::with_optimal_shares(&query, &stats, p, 5);
    let (c_hc, rep_hc) = hc.run(&db);
    verify::assert_complete(&db, &c_hc);

    // The Section 4.2 algorithm.
    let alg = GeneralSkewAlgorithm::plan(&db, p, 5);
    let (c_gen, rep_gen) = alg.run(&db);
    verify::assert_complete(&db, &c_gen);

    println!("\nbin combinations used:");
    for (x, lambda, count) in alg.combination_summary() {
        println!(
            "  x = {:<10} lambda = {:>6.3}  |C'(B)| = {count}  (p^lambda = {:.0} bits)",
            x.to_string(),
            lambda,
            (p as f64).powf(lambda)
        );
    }
    println!(
        "\ndropped heavy projections: {} (0 = full Theorem 4.6 guarantee)",
        alg.dropped_assignments()
    );
    println!("\n{:<28} {:>14} {:>14}", "", "max bits", "imbalance");
    println!(
        "{:<28} {:>14} {:>14.2}",
        "HyperCube (skew-oblivious)",
        rep_hc.max_load_bits(),
        rep_hc.imbalance()
    );
    println!(
        "{:<28} {:>14} {:>14.2}",
        "General skew algorithm",
        rep_gen.max_load_bits(),
        rep_gen.imbalance()
    );
    println!(
        "\npredicted max_B p^lambda(B) = {:.0} bits (Theorem 4.6, up to polylog p)",
        alg.predicted_load_bits()
    );
    assert!(
        rep_gen.max_load_bits() <= rep_hc.max_load_bits(),
        "the skew-aware algorithm should not lose to the oblivious one here"
    );
}
