//! A skewed two-relation join, three ways.
//!
//! The scenario from the paper's introduction: a web-scale join
//! `q(x,y,z) = S1(x,z), S2(y,z)` where `z` follows a Zipf law (a few
//! celebrity values carry a large fraction of the tuples). We run
//!
//! 1. the standard parallel hash join (partition by `h(z)`),
//! 2. plain HyperCube with equal shares (skew-resilient, Cor. 3.2(ii)),
//! 3. the Section 4.1 skew join (light / H1 / H2 / H12 decomposition),
//!
//! and print each algorithm's maximum per-server load next to the paper's
//! Eq. (10) lower bound.
//!
//! ```text
//! cargo run --release --example skewed_join
//! ```

use mpc_skew::core::baselines::HashJoinRouter;
use mpc_skew::core::bounds::skew_join_bound;
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::skew_join::SkewJoin;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::named;
use mpc_skew::query::VarSet;
use mpc_skew::sim::cluster::Cluster;

fn main() {
    let query = named::two_way_join();
    let p = 64usize;
    let m = 60_000usize;
    let n = 1u64 << 16;

    println!("query: {query},  p = {p},  m = {m} per relation\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "theta", "hash join", "HC equal", "skew join", "Eq.(10)", "answers"
    );

    for theta in [0.0f64, 0.5, 1.0, 1.5] {
        let mut rng = Rng::seed_from_u64(7 + (theta * 10.0) as u64);
        // S1 is hot at low values, S2 at high values (disjoint celebrity
        // sets, the common case), plus one shared heavy value 777 on both
        // sides (the H12 case) with bounded frequency so the join output
        // stays materializable.
        let mut d1 = generators::zipf_degrees(m - 800, n, theta);
        let mut d2: Vec<(Vec<u64>, usize)> = generators::zipf_degrees(m - 800, n, theta)
            .into_iter()
            .map(|(k, c)| (vec![n - 1 - k[0]], c))
            .collect();
        d1.push((vec![777], 800));
        d2.push((vec![777], 800));
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        let db = Database::new(query.clone(), vec![s1, s2], n).expect("valid db");

        // 1. Standard hash join on z.
        let z = query.var_index("z").expect("z exists");
        let hj = HashJoinRouter::new(&query, VarSet::singleton(z), p, 1);
        let c_hash = Cluster::run_round(&db, p, &hj);

        // 2. HyperCube with equal shares p^(1/3).
        let hc = HyperCube::with_equal_shares(&query, p, 2);
        let (c_hc, rep_hc) = hc.run(&db);

        // 3. The Section 4.1 skew join.
        let sj = SkewJoin::plan(&db, p, 3);
        let (c_sj, rep_sj) = sj.run(&db);

        // All three must be complete.
        let answers = verify::verify(&db, &c_sj).found;
        assert!(verify::verify(&db, &c_hash).is_complete());
        assert!(verify::verify(&db, &c_hc).is_complete());
        assert!(verify::verify(&db, &c_sj).is_complete());

        // Eq. (10) bound from the exact z-frequencies.
        let f1 = db.relation(0).frequencies(&[1]);
        let f2 = db.relation(1).frequencies(&[1]);
        let bound = skew_join_bound(m, m, &f1, &f2, p);

        println!(
            "{:<8} {:>12} {:>12} {:>12} {:>12.0} {:>10}",
            theta,
            c_hash.report().max_load_tuples(),
            rep_hc.max_load_tuples(),
            rep_sj.max_load_tuples(),
            bound.max_tuples(),
            answers,
        );
    }

    println!(
        "\nShape check (the paper's story): the hash join degrades toward m = {m} \
         as theta grows,\nHC-equal stays near m/p^(1/3) = {:.0}, and the skew join \
         tracks Eq. (10) within polylog(p).",
        2.0 * m as f64 / (p as f64).powf(1.0 / 3.0)
    );
}
