//! Quickstart: evaluate a triangle query on a simulated MPC cluster with the
//! HyperCube algorithm and compare the measured load against the paper's
//! lower bound.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpc_skew::core::bounds;
use mpc_skew::core::hypercube::HyperCube;
use mpc_skew::core::shares::ShareAllocation;
use mpc_skew::core::verify;
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::named;
use mpc_skew::stats::SimpleStatistics;

fn main() {
    // --- 1. A query: the triangle C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1).
    let query = named::cycle(3);
    println!("query          : {query}");

    // --- 2. Data: three uniform binary relations over a domain of 2^9.
    let n = 1u64 << 9;
    let m = 20_000usize;
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let relations = query
        .atoms()
        .iter()
        .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    let db = Database::new(query.clone(), relations, n).expect("valid database");
    println!(
        "data           : 3 relations x {m} tuples over [{n}] ({} total bits)",
        db.total_bits()
    );

    // --- 3. Optimize shares for p = 64 servers (LP (5) of the paper).
    let p = 64usize;
    let stats = SimpleStatistics::of(&db);
    let alloc = ShareAllocation::optimize(&query, &stats, p).expect("share LP");
    println!(
        "shares         : {:?}  (exponents {:?})",
        alloc.shares,
        alloc
            .exponents
            .iter()
            .map(|e| (e * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>()
    );

    // --- 4. Run one communication round of HyperCube.
    let hc = HyperCube::new(&query, &alloc, 42);
    let (cluster, report) = hc.run(&db);

    // --- 5. Verify: the union of per-server answers equals the sequential join.
    let v = verify::verify(&db, &cluster);
    assert!(v.is_complete(), "HyperCube must find every answer");
    println!("answers        : {} triangles, all found ✓", v.found);

    // --- 6. Compare the measured load with the paper's bounds.
    let (lower, packing) = bounds::l_lower(&query, &stats, p);
    println!(
        "measured load  : {} bits/server (max), {:.1} avg",
        report.max_load_bits(),
        report.mean_load_bits()
    );
    println!(
        "lower bound    : {:.0} bits/server  (packing u = {:?}, Theorem 3.5)",
        lower,
        packing.to_f64()
    );
    println!(
        "ratio          : {:.2}x the bound (Theorem 3.4 allows polylog p)",
        report.max_load_bits() as f64 / lower
    );
    println!(
        "replication    : {:.2}x the input (ideal 1.0, HC pays p^(1/3) ≈ {:.1})",
        report.replication_rate(),
        (p as f64).powf(1.0 / 3.0)
    );
}
