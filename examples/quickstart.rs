//! Quickstart: let the engine plan and evaluate queries on a simulated MPC
//! cluster, compare predicted vs measured load, and watch the auto planner
//! switch algorithms when the data turns skewed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpc_skew::core::engine::{Algorithm, Engine};
use mpc_skew::data::{generators, Database, Rng};
use mpc_skew::query::named;
use mpc_skew::sim::backend::Backend;

fn main() {
    // --- 1. A query: the triangle C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1).
    let query = named::cycle(3);
    println!("query          : {query}");

    // --- 2. Data: three uniform binary relations over a domain of 2^9.
    let n = 1u64 << 9;
    let m = 20_000usize;
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    let relations = query
        .atoms()
        .iter()
        .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
        .collect();
    let db = Database::new(query.clone(), relations, n).expect("valid database");
    println!(
        "data           : 3 relations x {m} tuples over [{n}] ({} total bits)",
        db.total_bits()
    );

    // --- 3. One engine, p = 64 servers. `auto` (the default) reads the
    //        statistics: uniform data has no heavy hitters, so the plan is
    //        HyperCube at the LP (5)-optimal shares.
    let p = 64usize;
    let engine = Engine::new(&query).p(p).seed(42);
    let plan = engine.plan(&db);
    println!("plan           : {plan}");
    assert_eq!(plan.algorithm(), Algorithm::HyperCube);

    // --- 4. Execute the plan (any backend gives bit-identical results).
    let outcome = plan.execute(&db, Backend::from_env());

    // --- 5. Verify: the union of per-server answers equals the sequential join.
    let v = outcome.verify(&db);
    assert!(v.is_complete(), "the engine must find every answer");
    println!("answers        : {} triangles, all found ✓", v.found);

    // --- 6. Predicted vs measured vs the paper's lower bound.
    let report = outcome.report().expect("one-round plan");
    println!(
        "measured load  : {} bits/server (max), {:.1} avg",
        outcome.max_load_bits(),
        report.mean_load_bits()
    );
    println!(
        "predicted L    : {:.0} bits/server  (LP (5): p^λ, Theorem 3.4)",
        outcome.predicted_load_bits()
    );
    println!(
        "lower bound    : {:.0} bits/server  (max_u L(u, M, p), Theorem 3.5)",
        outcome.lower_bound_bits()
    );
    println!(
        "ratio          : {:.2}x the bound (Theorem 3.4 allows polylog p)",
        outcome.max_load_bits() as f64 / outcome.lower_bound_bits()
    );
    println!(
        "replication    : {:.2}x the input (ideal 1.0, HC pays p^(1/3) ≈ {:.1})",
        report.replication_rate(),
        (p as f64).powf(1.0 / 3.0)
    );

    // --- 7. Skewed data flips the plan: a Zipf(1.2) two-way join routes
    //        to the §4.1 skew join instead, through the same surface.
    let join = named::two_way_join();
    let mut rng = Rng::seed_from_u64(0xBEEF);
    let d1 = generators::zipf_degrees(m, n, 1.2);
    let d2 = generators::zipf_degrees(m, n, 1.2);
    let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
    let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
    let skewed = Database::new(join.clone(), vec![s1, s2], n).expect("valid database");
    let outcome = Engine::new(&join).p(p).seed(42).run(&skewed);
    assert_eq!(outcome.algorithm(), Algorithm::SkewJoin);
    assert!(outcome.verify(&skewed).is_complete());
    println!(
        "\nskewed join    : auto picked `{}`; measured {} bits vs predicted {:.0}",
        outcome.algorithm(),
        outcome.max_load_bits(),
        outcome.predicted_load_bits()
    );
}
