//! Property-based tests for relations, generators and the local join —
//! including the flat data plane: [`AnswerSet`] pinned pointwise against
//! the legacy `Vec<Vec<u64>>` sort+dedup, and the CSR [`JoinIndex`] pinned
//! against the legacy per-key `HashMap` buckets.

use mpc_data::{generators, join, join_count, AnswerSet, JoinIndex, Relation, Rng};
use mpc_query::named;
use mpc_testkit::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// sort_dedup produces a sorted duplicate-free relation preserving the
    /// underlying tuple *set*.
    #[test]
    fn sort_dedup_is_canonical(rows in mpc_testkit::collection::vec(
        mpc_testkit::collection::vec(0u64..8, 2), 0..40))
    {
        let mut r = Relation::new("S", 2);
        for row in &rows {
            r.push(row);
        }
        let mut expected: Vec<Vec<u64>> = rows.clone();
        expected.sort();
        expected.dedup();
        r.sort_dedup();
        prop_assert!(r.is_set());
        let got: Vec<Vec<u64>> = r.rows().map(|x| x.to_vec()).collect();
        prop_assert_eq!(got, expected);
    }

    /// Frequencies on any column subset sum to the cardinality.
    #[test]
    fn frequencies_sum_to_cardinality(
        rows in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..6, 3), 1..60),
        cols in mpc_testkit::collection::btree_set(0usize..3, 0..=3),
    ) {
        let mut r = Relation::new("S", 3);
        for row in &rows {
            r.push(row);
        }
        let cols: Vec<usize> = cols.into_iter().collect();
        let total: usize = r.frequencies(&cols).values().sum();
        prop_assert_eq!(total, r.len());
    }

    /// partition splits losslessly.
    #[test]
    fn partition_is_lossless(
        rows in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..16, 2), 0..50),
        pivot in 0u64..16,
    ) {
        let mut r = Relation::new("S", 2);
        for row in &rows {
            r.push(row);
        }
        let (hi, lo) = r.partition(|row| row[0] >= pivot);
        prop_assert_eq!(hi.len() + lo.len(), r.len());
        prop_assert!(hi.rows().all(|row| row[0] >= pivot));
        prop_assert!(lo.rows().all(|row| row[0] < pivot));
    }

    /// The local join of the two-way join query agrees with a brute-force
    /// nested loop on arbitrary relations — under both the default dynamic
    /// variable order and the legacy fixed atom order.
    #[test]
    fn join_agrees_with_nested_loop(
        r1 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..8, 2), 0..30),
        r2 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..8, 2), 0..30),
    ) {
        let q = named::two_way_join();
        let mut s1 = Relation::new("S1", 2);
        for row in &r1 { s1.push(row); }
        let mut s2 = Relation::new("S2", 2);
        for row in &r2 { s2.push(row); }
        let fast = join_count(&q, &[&s1, &s2]);
        let fixed = join::join_count_ordered(&q, &[&s1, &s2], join::JoinOrder::Fixed);
        let slow = r1.iter()
            .flat_map(|a| r2.iter().map(move |b| (a, b)))
            .filter(|(a, b)| a[1] == b[1])
            .count() as u64;
        prop_assert_eq!(fast, slow);
        prop_assert_eq!(fixed, slow);
    }

    /// Dynamic, fixed, and a brute-force triple nested loop produce the
    /// identical answer *multiset* on the triangle. The generated row
    /// lists carry duplicate tuples, and shrinking drives the relations
    /// through empty shapes, so the multiset contract (one expanded answer
    /// per contributing tuple combination) is pinned across the board.
    #[test]
    fn dynamic_fixed_and_nested_loop_agree_on_triangle(
        r1 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..5, 2), 0..25),
        r2 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..5, 2), 0..25),
        r3 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..5, 2), 0..25),
    ) {
        let q = named::cycle(3);
        let mk = |name: &str, rows: &Vec<Vec<u64>>| {
            let mut r = Relation::new(name, 2);
            for row in rows { r.push(row); }
            r
        };
        let (s1, s2, s3) = (mk("S1", &r1), mk("S2", &r2), mk("S3", &r3));
        // Brute force: every (a, b, c) with a=(x1,x2), b=(x2,x3), c=(x3,x1).
        let mut slow: Vec<Vec<u64>> = Vec::new();
        for a in &r1 {
            for b in &r2 {
                for c in &r3 {
                    if a[1] == b[0] && b[1] == c[0] && c[1] == a[0] {
                        slow.push(vec![a[0], a[1], b[1]]);
                    }
                }
            }
        }
        slow.sort();
        let collect = |order| {
            let mut got: Vec<Vec<u64>> = Vec::new();
            join::join_foreach_ordered(&q, &[&s1, &s2, &s3], order, |b| got.push(b.to_vec()));
            got.sort();
            got
        };
        prop_assert_eq!(collect(join::JoinOrder::Dynamic), slow.clone());
        prop_assert_eq!(collect(join::JoinOrder::Fixed), slow);
    }

    /// Dynamic and fixed agree on Zipf-skewed triangles (the aligned
    /// local-skew shape `zipf_column` plants: x2 hot in both S1 and S2),
    /// across seeds and skew exponents.
    #[test]
    fn dynamic_matches_fixed_on_zipf_triangle(seed in 0u64..400, theta in 0.4f64..2.0) {
        let q = named::cycle(3);
        let mut rng = Rng::seed_from_u64(seed);
        let (m, n) = (60, 16);
        let s1 = generators::zipf_column("S1", 2, m, n, 1, theta, &mut rng);
        let s2 = generators::zipf_column("S2", 2, m, n, 0, theta, &mut rng);
        let s3 = generators::uniform("S3", 2, m, n, &mut rng);
        let collect = |order| {
            let mut got: Vec<Vec<u64>> = Vec::new();
            join::join_foreach_ordered(&q, &[&s1, &s2, &s3], order, |b| got.push(b.to_vec()));
            got.sort();
            got
        };
        prop_assert_eq!(
            collect(join::JoinOrder::Dynamic),
            collect(join::JoinOrder::Fixed)
        );
    }

    /// All-duplicate relations (a single tuple repeated `c` times, `c = 0`
    /// included — the empty relation): both engines emit exactly
    /// `c1·c2·c3` copies of the joining binding when the three tuples
    /// close a triangle, and nothing otherwise. Exercises the multiplicity
    /// fast path (leaf multiplicity = product of candidate counts) at its
    /// degenerate extreme.
    #[test]
    fn engines_agree_on_all_duplicate_relations(
        a in mpc_testkit::collection::vec(0u64..3, 2), c1 in 0usize..9,
        b in mpc_testkit::collection::vec(0u64..3, 2), c2 in 0usize..9,
        c in mpc_testkit::collection::vec(0u64..3, 2), c3 in 0usize..9,
    ) {
        let q = named::cycle(3);
        let mk = |name: &str, row: &[u64], count: usize| {
            let mut r = Relation::new(name, 2);
            for _ in 0..count { r.push(row); }
            r
        };
        let (s1, s2, s3) = (mk("S1", &a, c1), mk("S2", &b, c2), mk("S3", &c, c3));
        let joins = a[1] == b[0] && b[1] == c[0] && c[1] == a[0];
        let want = if joins { (c1 * c2 * c3) as u64 } else { 0 };
        for order in [join::JoinOrder::Dynamic, join::JoinOrder::Fixed] {
            let mut got: Vec<Vec<u64>> = Vec::new();
            join::join_foreach_ordered(&q, &[&s1, &s2, &s3], order, |bnd| got.push(bnd.to_vec()));
            prop_assert_eq!(got.len() as u64, want);
            prop_assert!(got.iter().all(|bnd| bnd == &[a[0], a[1], b[1]]));
        }
    }

    /// Join output tuples actually satisfy every atom.
    #[test]
    fn join_outputs_are_sound(
        r1 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..6, 2), 1..25),
        r2 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..6, 2), 1..25),
        r3 in mpc_testkit::collection::vec(mpc_testkit::collection::vec(0u64..6, 2), 1..25),
    ) {
        let q = named::cycle(3);
        let mk = |name: &str, rows: &Vec<Vec<u64>>| {
            let mut r = Relation::new(name, 2);
            for row in rows { r.push(row); }
            r.sort_dedup();
            r
        };
        let s1 = mk("S1", &r1);
        let s2 = mk("S2", &r2);
        let s3 = mk("S3", &r3);
        for ans in join(&q, &[&s1, &s2, &s3]).rows() {
            for (j, s) in [&s1, &s2, &s3].iter().enumerate() {
                let atom = q.atom(j);
                let proj: Vec<u64> = atom.vars().iter().map(|&v| ans[v]).collect();
                prop_assert!(s.rows().any(|row| row == proj.as_slice()),
                    "answer {:?} not supported by atom {}", ans, atom.name());
            }
        }
    }

    /// `AnswerSet::sort_dedup` + `rows()` is pointwise identical to the
    /// legacy nested-vec sort+dedup, across arities 1..=3 (the flat values
    /// are chunked into rows, so empty and all-duplicate row sets occur
    /// naturally under shrinking; dedicated unit cases below pin them too).
    #[test]
    fn answer_set_sort_dedup_matches_legacy(
        arity in 1usize..4,
        vals in mpc_testkit::collection::vec(0u64..5, 0..120),
    ) {
        let rows: Vec<Vec<u64>> = vals.chunks_exact(arity).map(|c| c.to_vec()).collect();
        let mut legacy = rows.clone();
        legacy.sort();
        legacy.dedup();

        let mut flat = AnswerSet::new(arity);
        for row in &rows {
            flat.push(row);
        }
        flat.sort_dedup();
        prop_assert_eq!(flat.len(), legacy.len());
        for (got, want) in flat.rows().zip(&legacy) {
            prop_assert_eq!(got, want.as_slice());
        }
        // The nested escape hatch and equality shims agree too.
        prop_assert_eq!(flat.to_nested(), legacy.clone());
        prop_assert_eq!(flat, legacy);
    }

    /// The CSR `JoinIndex` returns exactly the legacy HashMap buckets
    /// (same row ids, same ascending order) for every present key, and an
    /// empty slice for absent keys.
    #[test]
    fn csr_index_matches_legacy_hashmap_buckets(
        vals in mpc_testkit::collection::vec(0u64..4, 0..90),
        keyspec in 0usize..6,
    ) {
        let arity = 3usize;
        let mut rel = Relation::new("S", arity);
        for row in vals.chunks_exact(arity) {
            rel.push(row);
        }
        // Key column subsets: {}, {0}, {1}, {2}, {0,2}, {1,0} (order matters).
        let key_cols: Vec<usize> = match keyspec {
            0 => vec![],
            1 => vec![0],
            2 => vec![1],
            3 => vec![2],
            4 => vec![0, 2],
            _ => vec![1, 0],
        };

        // Legacy construction: one key Vec + one bucket Vec per key.
        let mut buckets: HashMap<Vec<u64>, Vec<u32>> = HashMap::new();
        for (i, row) in rel.rows().enumerate() {
            let key: Vec<u64> = key_cols.iter().map(|&c| row[c]).collect();
            buckets.entry(key).or_default().push(i as u32);
        }

        let idx = JoinIndex::build(&rel, key_cols.clone());
        if key_cols.is_empty() {
            let all: Vec<u32> = (0..rel.len() as u32).collect();
            prop_assert_eq!(idx.candidates(&[]), all.as_slice());
        } else {
            for (key, want) in &buckets {
                prop_assert_eq!(idx.candidates(key), want.as_slice());
            }
            // Absent keys (the domain above is 0..4) return empty slices.
            prop_assert!(idx.candidates(&vec![9u64; key_cols.len()]).is_empty());
        }
    }

    /// Generators honor their cardinality and domain contracts.
    #[test]
    fn generators_respect_contracts(seed in 0u64..1000, m in 1usize..200) {
        let mut rng = Rng::seed_from_u64(seed);
        let n = 256u64;
        let u = generators::uniform("U", 2, m, n, &mut rng);
        prop_assert_eq!(u.len(), m);
        prop_assert!(u.rows().all(|row| row.iter().all(|&v| v < n)));
        let mt = generators::matching("M", 2, m, n, &mut rng);
        prop_assert_eq!(mt.len(), m);
        prop_assert_eq!(mt.max_frequency(&[0]), 1);
        prop_assert_eq!(mt.max_frequency(&[1]), 1);
    }

    /// zipf_degrees always sums to m and never exceeds the domain.
    #[test]
    fn zipf_degrees_exact(m in 1usize..5000, theta in 0.0f64..2.5) {
        let n = 1u64 << 14;
        let deg = generators::zipf_degrees(m, n, theta);
        let total: usize = deg.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(total, m);
        prop_assert!(deg.iter().all(|(k, _)| k[0] < n));
        // Keys are distinct.
        let mut keys: Vec<u64> = deg.iter().map(|(k, _)| k[0]).collect();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), deg.len());
    }
}
