//! Row-major relation storage.
//!
//! A relation instance `S_j ⊆ [n]^{a_j}` is a bag of fixed-arity tuples of
//! `u64` values stored contiguously. The paper measures communication in
//! bits with `M_j = a_j · m_j · log n` (Section 3); [`Relation::bit_size`]
//! implements exactly that accounting given the domain's bit width.

use crate::fastmap::FastMap;
use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Bytes of relation data read by statistics scans on this thread.
    ///
    /// Advanced by [`Relation::frequencies`] (the exact-statistics pass
    /// reads every tuple) and by [`record_stats_scan_bytes`] callers such
    /// as the sketch module's one-time projection backfills. Benches
    /// snapshot it via [`stats_scan_bytes_total`] to prove a statistics
    /// path is sublinear: a sketch maintained on ingest keeps this flat
    /// per append while an exact rescan grows with the relation.
    /// Thread-local (statistics scans run on the planning thread), so
    /// parallel tests and pooled workers never pollute a measurement.
    static STATS_SCAN_BYTES: Cell<u64> = const { Cell::new(0) };
}

/// Monotone total of this thread's statistics-scan bytes (the
/// thread-local meter documented above); wraps on overflow, so consumers
/// must diff two snapshots, never read it as an absolute.
pub fn stats_scan_bytes_total() -> u64 {
    STATS_SCAN_BYTES.with(|c| c.get())
}

/// Record `bytes` of relation data read by a statistics scan. Public so
/// statistics code outside this crate (sketch backfills, samplers) taxes
/// the same meter as [`Relation::frequencies`].
#[inline]
pub fn record_stats_scan_bytes(bytes: u64) {
    STATS_SCAN_BYTES.with(|c| c.set(c.get().wrapping_add(bytes)));
}

/// A relation: `m` tuples of fixed arity over a `u64` domain.
#[derive(Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    arity: usize,
    data: Vec<u64>,
}

impl Relation {
    /// New empty relation.
    pub fn new(name: impl Into<String>, arity: usize) -> Relation {
        assert!(arity > 0, "relations must have positive arity");
        Relation {
            name: name.into(),
            arity,
            data: Vec::new(),
        }
    }

    /// New empty relation with room for `cap` tuples.
    pub fn with_capacity(name: impl Into<String>, arity: usize, cap: usize) -> Relation {
        let mut r = Relation::new(name, arity);
        r.data.reserve(cap * arity);
        r
    }

    /// Build from explicit rows (mostly for tests).
    pub fn from_rows(name: impl Into<String>, arity: usize, rows: &[&[u64]]) -> Relation {
        let mut r = Relation::new(name, arity);
        for row in rows {
            r.push(row);
        }
        r
    }

    /// Build from row-major flat data (`data.len()` a multiple of `arity`)
    /// without copying — the ingest path of the resident service, which
    /// parses wire tuples straight into a flat buffer.
    ///
    /// # Panics
    /// Panics when `data.len()` is not a multiple of `arity`.
    pub fn from_flat(name: impl Into<String>, arity: usize, data: Vec<u64>) -> Relation {
        assert!(arity > 0, "relation arity must be positive");
        assert_eq!(
            data.len() % arity,
            0,
            "flat tuple data not a multiple of arity {arity}"
        );
        Relation {
            name: name.into(),
            arity,
            data,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Arity `a_j`.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Cardinality `m_j` (number of tuples).
    pub fn len(&self) -> usize {
        self.data.len() / self.arity
    }

    /// True iff no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append one tuple.
    ///
    /// # Panics
    /// Panics when `tuple.len() != arity`.
    #[inline]
    pub fn push(&mut self, tuple: &[u64]) {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch");
        self.data.extend_from_slice(tuple);
    }

    /// Append every tuple of `other`, preserving order (the fragment-merge
    /// step of the threaded shuffle).
    ///
    /// # Panics
    /// Panics when the arities differ.
    pub fn append(&mut self, other: Relation) {
        assert_eq!(
            self.arity, other.arity,
            "cannot append arity-{} relation to arity-{}",
            other.arity, self.arity
        );
        self.data.extend(other.data);
    }

    /// Append tuples stored flat (row-major, `flat.len()` a multiple of the
    /// arity) — the zero-copy merge step of the shuffle scratch buffers.
    ///
    /// # Panics
    /// Panics when `flat.len()` is not a multiple of the arity.
    #[inline]
    pub fn push_rows(&mut self, flat: &[u64]) {
        assert_eq!(
            flat.len() % self.arity,
            0,
            "flat tuple data not a multiple of arity {}",
            self.arity
        );
        self.data.extend_from_slice(flat);
    }

    /// Tuple `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// Iterate all tuples.
    pub fn rows(&self) -> impl Iterator<Item = &[u64]> + '_ {
        self.data.chunks_exact(self.arity)
    }

    /// `M_j` in bits: `arity * m * value_bits` (Section 3's
    /// `M_j = a_j m_j log n`).
    pub fn bit_size(&self, value_bits: u32) -> u64 {
        self.arity as u64 * self.len() as u64 * value_bits as u64
    }

    /// Sort tuples lexicographically and remove duplicates (set semantics).
    pub fn sort_dedup(&mut self) {
        let arity = self.arity;
        let mut rows: Vec<&[u64]> = self.data.chunks_exact(arity).collect();
        rows.sort_unstable();
        rows.dedup();
        let mut out = Vec::with_capacity(rows.len() * arity);
        for row in rows {
            out.extend_from_slice(row);
        }
        self.data = out;
    }

    /// True iff no duplicate tuples (after the eye of `sort_dedup`).
    pub fn is_set(&self) -> bool {
        let mut rows: Vec<&[u64]> = self.data.chunks_exact(self.arity).collect();
        rows.sort_unstable();
        rows.windows(2).all(|w| w[0] != w[1])
    }

    /// Frequency map of the projections onto attribute positions `cols`:
    /// for each distinct projected value, how many tuples carry it. This is
    /// `m_j(h_j) = |σ_{x_j = h_j}(S_j)|` of Section 4. The map is keyed by
    /// the `mix64` hasher ([`crate::fastmap::FastMap`]): statistics passes
    /// scan every tuple, and SipHash dominated that scan.
    pub fn frequencies(&self, cols: &[usize]) -> FastMap<Vec<u64>, usize> {
        record_stats_scan_bytes(self.data.len() as u64 * 8);
        let mut freq: FastMap<Vec<u64>, usize> = FastMap::default();
        for row in self.rows() {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            *freq.entry(key).or_insert(0) += 1;
        }
        freq
    }

    /// Maximum frequency of any value combination at `cols` (0 for empty
    /// relations).
    pub fn max_frequency(&self, cols: &[usize]) -> usize {
        self.frequencies(cols).values().copied().max().unwrap_or(0)
    }

    /// Select tuples whose projection on `cols` equals `key`
    /// (`σ_{cols = key}(S)`), as a new relation.
    pub fn select_eq(&self, cols: &[usize], key: &[u64]) -> Relation {
        assert_eq!(cols.len(), key.len());
        let mut out = Relation::new(self.name.clone(), self.arity);
        for row in self.rows() {
            if cols.iter().zip(key).all(|(&c, &v)| row[c] == v) {
                out.push(row);
            }
        }
        out
    }

    /// Partition tuples by a predicate into (matching, non-matching).
    pub fn partition(&self, mut pred: impl FnMut(&[u64]) -> bool) -> (Relation, Relation) {
        let mut yes = Relation::new(self.name.clone(), self.arity);
        let mut no = Relation::new(self.name.clone(), self.arity);
        for row in self.rows() {
            if pred(row) {
                yes.push(row);
            } else {
                no.push(row);
            }
        }
        (yes, no)
    }

    /// The set of distinct values in attribute `col`.
    pub fn distinct_values(&self, col: usize) -> Vec<u64> {
        let mut vals: Vec<u64> = self.rows().map(|r| r[col]).collect();
        vals.sort_unstable();
        vals.dedup();
        vals
    }
}

impl fmt::Debug for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Relation({}: arity {}, {} tuples)",
            self.name,
            self.arity,
            self.len()
        )
    }
}

/// Number of bits needed to address a domain of size `n` (at least 1).
pub fn domain_bits(n: u64) -> u32 {
    if n <= 2 {
        1
    } else {
        64 - (n - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        Relation::from_rows("S", 2, &[&[1, 10], &[2, 10], &[3, 20], &[1, 10]])
    }

    #[test]
    fn basic_accessors() {
        let r = sample();
        assert_eq!(r.name(), "S");
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 4);
        assert_eq!(r.row(2), &[3, 20]);
        assert_eq!(r.rows().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new("S", 2);
        r.push(&[1]);
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut a = Relation::from_rows("S", 2, &[&[1, 2], &[3, 4]]);
        let b = Relation::from_rows("S", 2, &[&[5, 6]]);
        a.append(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.row(0), &[1, 2]);
        assert_eq!(a.row(2), &[5, 6]);
    }

    #[test]
    #[should_panic(expected = "cannot append arity-1 relation to arity-2")]
    fn append_arity_mismatch_panics() {
        let mut a = Relation::new("S", 2);
        a.append(Relation::new("T", 1));
    }

    #[test]
    fn bit_size_matches_formula() {
        let r = sample();
        // a=2, m=4, 7 bits -> 56.
        assert_eq!(r.bit_size(7), 56);
    }

    #[test]
    fn sort_dedup_and_is_set() {
        let mut r = sample();
        assert!(!r.is_set());
        r.sort_dedup();
        assert!(r.is_set());
        assert_eq!(r.len(), 3);
        assert_eq!(r.row(0), &[1, 10]);
    }

    #[test]
    fn frequencies_per_column() {
        let r = sample();
        let f = r.frequencies(&[1]);
        assert_eq!(f[&vec![10]], 3);
        assert_eq!(f[&vec![20]], 1);
        assert_eq!(r.max_frequency(&[1]), 3);
        let f2 = r.frequencies(&[0, 1]);
        assert_eq!(f2[&vec![1, 10]], 2);
    }

    #[test]
    fn frequencies_on_empty_projection() {
        let r = sample();
        let f = r.frequencies(&[]);
        // One group: the empty tuple, with the full cardinality.
        assert_eq!(f[&Vec::<u64>::new()], 4);
    }

    #[test]
    fn select_and_partition() {
        let r = sample();
        let sel = r.select_eq(&[1], &[10]);
        assert_eq!(sel.len(), 3);
        let (heavy, light) = r.partition(|row| row[1] == 10);
        assert_eq!(heavy.len(), 3);
        assert_eq!(light.len(), 1);
        assert_eq!(heavy.len() + light.len(), r.len());
    }

    #[test]
    fn distinct_values() {
        let r = sample();
        assert_eq!(r.distinct_values(0), vec![1, 2, 3]);
        assert_eq!(r.distinct_values(1), vec![10, 20]);
    }

    #[test]
    fn domain_bits_edges() {
        assert_eq!(domain_bits(1), 1);
        assert_eq!(domain_bits(2), 1);
        assert_eq!(domain_bits(3), 2);
        assert_eq!(domain_bits(256), 8);
        assert_eq!(domain_bits(257), 9);
        assert_eq!(domain_bits(1 << 20), 20);
    }
}
