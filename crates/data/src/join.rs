//! A local (single-machine) multiway join with cardinality-guided dynamic
//! variable ordering.
//!
//! Every MPC algorithm in this workspace reshuffles tuples and then has each
//! server evaluate the query on its fragment; this module is that local
//! evaluator, and doubles as the sequential ground truth the distributed
//! answers are verified against.
//!
//! Two engines share the CSR [`JoinIndex`] and are selected by
//! [`JoinOrder`]:
//!
//! * [`JoinOrder::Dynamic`] (the default) is a worst-case-optimal-leaning
//!   evaluator in the Atreides family: it binds one *variable* at a time
//!   instead of one atom at a time. Every atom tracks an O(1) cardinality
//!   bound for its current candidate set — `candidates(key).len()` once any
//!   of its positions are bound, the per-value group count of a lazily
//!   built [`JoinIndex`] before that — and at every depth the evaluator
//!   picks the unbound variable whose **max-over-atoms** bound is smallest,
//!   then enumerates that variable's values from the atom with the
//!   *smallest* candidate set (the driver), intersecting the remaining
//!   atoms' candidate slices against each value. Tiny candidate sets
//!   (≤ `SCAN_THRESHOLD` rows) are filtered by scanning instead of
//!   re-indexing, and the *last* unbound variable is resolved by a
//!   leapfrog-style sorted-merge intersection of the sharing atoms' value
//!   lists — no per-value index probes at the leaf. HyperCube routing
//!   balances skew *across* servers; this
//!   ordering absorbs the skew that survives *inside* a server's subcube,
//!   where a fixed order can be quadratically off on a locally heavy value.
//! * [`JoinOrder::Fixed`] is the legacy greedy backtracking join — atoms
//!   ordered up front by `atom_order`, one hash index per atom keyed on
//!   its already-bound positions, bindings extended depth-first one *row*
//!   at a time. It is kept alive as the independent differential baseline:
//!   the oracle joins run it, so every verification pass is a
//!   dynamic-vs-fixed comparison.
//!
//! Both engines produce the same answer *multiset* (the dynamic engine
//! emits each distinct binding once with its multiplicity — the product of
//! the per-atom candidate counts — which is exactly the number of row
//! combinations deriving it), and both report a [`JoinStats`] probe of the
//! bindings they explored, also accumulated process-wide for the bench
//! harness via [`visited_bindings_total`].

use crate::answers::AnswerSet;
use crate::budget::{BudgetExceeded, QueryBudget, CHECK_INTERVAL};
use crate::catalog::Database;
use crate::failpoint;
use crate::relation::Relation;
use crate::rng::mix64;
use mpc_query::{Query, VarSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Which variable-ordering engine evaluates a local join.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum JoinOrder {
    /// Cardinality-guided dynamic ordering (the default): at every depth
    /// bind the unbound variable with the smallest max-over-atoms candidate
    /// bound, enumerating its values from the smallest candidate set.
    #[default]
    Dynamic,
    /// The legacy greedy fixed atom order (`atom_order`): deterministic,
    /// kept as the differential baseline the oracle joins run.
    Fixed,
}

/// Exploration counters reported by one join evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Candidate bindings explored: one per candidate row iterated by the
    /// fixed engine, one per driver row (root) or distinct driver value
    /// (deeper levels) tried by the dynamic engine. Comparable across
    /// engines — both count every partial binding they materialize.
    pub bindings_visited: u64,
}

/// Process-wide accumulator behind [`visited_bindings_total`].
static VISITED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Total bindings visited by every join evaluated in this process (all
/// threads, both engines). The bench harness samples it around a run to
/// report `bindings_per_iter` next to `allocs_per_iter`; deltas of this
/// counter are meaningful, absolute values are not.
pub fn visited_bindings_total() -> u64 {
    VISITED_TOTAL.load(Ordering::Relaxed)
}

/// The per-evaluation probe threaded through both engines: the visited
/// counter, plus an optional cooperative [`QueryBudget`] polled every
/// [`CHECK_INTERVAL`] bindings. Untracked (the [`join_foreach_mult`] path)
/// the check threshold is `u64::MAX`, so the budget machinery costs one
/// always-false predicted compare per binding.
struct JoinProbe<'a> {
    visited: u64,
    next_check: u64,
    budget: Option<&'a QueryBudget>,
}

impl<'a> JoinProbe<'a> {
    /// Probe with no budget: counts bindings, never polls.
    fn untracked() -> JoinProbe<'static> {
        JoinProbe {
            visited: 0,
            next_check: u64::MAX,
            budget: None,
        }
    }

    /// Probe polling `budget` every [`CHECK_INTERVAL`] visited bindings.
    fn budgeted(budget: &'a QueryBudget) -> JoinProbe<'a> {
        if budget.is_unlimited() {
            return JoinProbe::untracked();
        }
        JoinProbe {
            visited: 0,
            next_check: CHECK_INTERVAL,
            budget: Some(budget),
        }
    }

    #[inline]
    fn bump(&mut self) {
        self.visited += 1;
        if self.visited >= self.next_check {
            self.poll();
        }
    }

    #[inline]
    fn bump_by(&mut self, n: u64) {
        self.visited += n;
        if self.visited >= self.next_check {
            self.poll();
        }
    }

    /// Slow path of the cooperative check. A violated budget unwinds with
    /// a typed [`BudgetExceeded`] payload that
    /// [`try_join_foreach_mult`] catches and converts back into an `Err`;
    /// the join keeps no cross-evaluation state, so the unwind cannot
    /// poison anything (scratch is owned by this evaluation's stack).
    #[cold]
    fn poll(&mut self) {
        self.next_check = self.visited.saturating_add(CHECK_INTERVAL);
        if let Some(b) = self.budget {
            if let Err(e) = b.poll() {
                std::panic::panic_any(e);
            }
        }
    }
}

/// Compute the greedy fixed atom order. The selection key is fully
/// deterministic, in priority order:
///
/// 1. **maximal overlap** with already-bound variables (at step 0 every
///    overlap is zero, so the first pick is purely by size);
/// 2. **minimal relation size**;
/// 3. **minimal atom index** — the first candidate atom scanned wins every
///    remaining tie, so equal-size relations always order by their position
///    in the query and plans/benches are reproducible.
fn atom_order(query: &Query, relations: &[&Relation]) -> Vec<usize> {
    let l = query.num_atoms();
    let mut order = Vec::with_capacity(l);
    let mut used = vec![false; l];
    let mut bound = VarSet::EMPTY;
    for _ in 0..l {
        // (overlap, size) of the best atom so far; strict comparisons keep
        // the lowest atom index on full ties.
        let mut best: Option<(usize, usize, usize)> = None;
        for j in 0..l {
            if used[j] {
                continue;
            }
            let overlap = query.atom(j).var_set().intersect(bound).len();
            let size = relations[j].len();
            let better = match best {
                None => true,
                Some((_, bo, bs)) => overlap > bo || (overlap == bo && size < bs),
            };
            if better {
                best = Some((j, overlap, size));
            }
        }
        let (j, _, _) = best.expect("an unused atom always exists");
        used[j] = true;
        bound = bound.union(query.atom(j).var_set());
        order.push(j);
    }
    order
}

/// Hash-chain key for the [`JoinIndex`] (fixed: index lookups must hash
/// exactly like index construction).
const INDEX_SALT: u64 = 0x4cf5_ad43_2745_937f;

/// Sentinel for an empty open-addressing slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// Guard for the index's `u32` row-id space: building a [`JoinIndex`] over
/// a relation with ≥ `u32::MAX` rows would silently truncate row ids, so
/// construction fails loudly instead.
fn assert_indexable(name: &str, rows: usize) {
    assert!(
        (rows as u64) < u32::MAX as u64,
        "relation {name:?} has {rows} rows, which exceeds the u32 row-id space of JoinIndex"
    );
}

/// A CSR-grouped hash index over one relation: row ids grouped by the
/// values at `key_cols`, stored as one contiguous `offsets + row_ids`
/// arena. Construction is two passes over the rows — keys are hashed
/// inline via [`mix64`] and resolved through an
/// open-addressing group table, with **no per-key allocation** (the legacy
/// `HashMap<Vec<u64>, Vec<u32>>` paid one key `Vec` plus one bucket `Vec`
/// per distinct key). [`JoinIndex::candidates`] returns the group's row-id
/// slice, in ascending row order, exactly matching the legacy buckets.
///
/// ```
/// use mpc_data::join::JoinIndex;
/// use mpc_data::Relation;
///
/// let rel = Relation::from_rows("S", 2, &[&[1, 5], &[2, 5], &[3, 6]]);
/// let idx = JoinIndex::build(&rel, vec![1]);
/// assert_eq!(idx.candidates(&[5]), &[0, 1]);
/// assert_eq!(idx.candidates(&[6]), &[2]);
/// assert_eq!(idx.candidates(&[7]), &[] as &[u32]);
/// assert_eq!(idx.num_groups(), 2);
/// ```
pub struct JoinIndex<'a> {
    relation: &'a Relation,
    /// Attribute positions forming the key (may be empty: full scan —
    /// every row is one group).
    key_cols: Vec<usize>,
    /// Group boundaries within `row_ids`: group `g` spans
    /// `row_ids[offsets[g]..offsets[g + 1]]`.
    offsets: Vec<u32>,
    /// Row ids, grouped by key, ascending within each group.
    row_ids: Vec<u32>,
    /// Open-addressing table: slot → group id (`EMPTY_SLOT` = free). The
    /// group's key is read back from its first row, so no key is stored.
    slots: Vec<u32>,
    /// `slots.len() - 1` (the table size is a power of two).
    mask: usize,
}

impl<'a> JoinIndex<'a> {
    /// Build the index of `relation` keyed on `key_cols`.
    ///
    /// # Panics
    /// Panics when the relation has ≥ `u32::MAX` rows — row ids are stored
    /// as `u32` and would otherwise silently truncate.
    pub fn build(relation: &'a Relation, key_cols: Vec<usize>) -> JoinIndex<'a> {
        let n = relation.len();
        assert_indexable(relation.name(), n);
        if key_cols.is_empty() || n == 0 {
            // One group holding every row (or no rows): candidates() for
            // the empty key returns the full scan.
            return JoinIndex {
                relation,
                key_cols,
                offsets: vec![0, n as u32],
                row_ids: (0..n as u32).collect(),
                slots: Vec::new(),
                mask: 0,
            };
        }

        // Pass 1: resolve each row to a group id via the open-addressing
        // table; count group sizes.
        let cap = (n * 2).next_power_of_two().max(8);
        let mask = cap - 1;
        let mut slots = vec![EMPTY_SLOT; cap];
        let mut group_rep: Vec<u32> = Vec::new(); // first row of each group
        let mut group_len: Vec<u32> = Vec::new();
        let mut row_group: Vec<u32> = Vec::with_capacity(n);
        for (i, row) in relation.rows().enumerate() {
            let mut s = (hash_cols(row, &key_cols) as usize) & mask;
            let g = loop {
                match slots[s] {
                    EMPTY_SLOT => {
                        let g = group_rep.len() as u32;
                        slots[s] = g;
                        group_rep.push(i as u32);
                        group_len.push(0);
                        break g;
                    }
                    g if rows_key_equal(relation, group_rep[g as usize], row, &key_cols) => {
                        break g;
                    }
                    _ => s = (s + 1) & mask,
                }
            };
            group_len[g as usize] += 1;
            row_group.push(g);
        }

        // Pass 2: prefix-sum offsets, then scatter row ids in ascending
        // row order (so each group's slice is ascending, matching the
        // insertion order of the legacy per-key buckets).
        let mut offsets = Vec::with_capacity(group_len.len() + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &len in &group_len {
            acc += len;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..group_len.len()].to_vec();
        let mut row_ids = vec![0u32; n];
        for (i, &g) in row_group.iter().enumerate() {
            row_ids[cursor[g as usize] as usize] = i as u32;
            cursor[g as usize] += 1;
        }

        JoinIndex {
            relation,
            key_cols,
            offsets,
            row_ids,
            slots,
            mask,
        }
    }

    /// The attribute positions forming the key.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Number of distinct keys (groups). An empty key — and an empty
    /// relation — count as one group spanning all rows.
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Half-open range `lo..hi` into the grouped row-id arena whose rows
    /// match `key` — the O(1) cardinality bound (`hi - lo`) the dynamic
    /// ordering is built on. `(0, 0)` for absent keys; the empty key spans
    /// all rows.
    #[inline]
    fn candidates_range(&self, key: &[u64]) -> (u32, u32) {
        if self.key_cols.is_empty() {
            return (0, self.row_ids.len() as u32);
        }
        if self.slots.is_empty() {
            return (0, 0);
        }
        let mut s = (hash_key(key) as usize) & self.mask;
        loop {
            match self.slots[s] {
                EMPTY_SLOT => return (0, 0),
                g => {
                    let rep = self
                        .relation
                        .row(self.row_ids[self.offsets[g as usize] as usize] as usize);
                    if self.key_cols.iter().zip(key).all(|(&c, &v)| rep[c] == v) {
                        return (self.offsets[g as usize], self.offsets[g as usize + 1]);
                    }
                    s = (s + 1) & self.mask;
                }
            }
        }
    }

    /// Row ids whose projection on the key columns equals `key`, ascending
    /// (empty key: all rows). Returns an empty slice for absent keys.
    #[inline]
    pub fn candidates(&self, key: &[u64]) -> &[u32] {
        let (lo, hi) = self.candidates_range(key);
        &self.row_ids[lo as usize..hi as usize]
    }
}

/// Hash the projection of `row` onto `cols` (chained [`mix64`]).
#[inline]
fn hash_cols(row: &[u64], cols: &[usize]) -> u64 {
    let mut h = INDEX_SALT;
    for &c in cols {
        h = mix64(row[c], h);
    }
    h
}

/// Hash an already-projected key exactly like [`hash_cols`].
#[inline]
fn hash_key(key: &[u64]) -> u64 {
    let mut h = INDEX_SALT;
    for &v in key {
        h = mix64(v, h);
    }
    h
}

/// True iff the key projections of row `a` (by id) and `row_b` agree.
#[inline]
fn rows_key_equal(rel: &Relation, a: u32, row_b: &[u64], cols: &[usize]) -> bool {
    let row_a = rel.row(a as usize);
    cols.iter().all(|&c| row_a[c] == row_b[c])
}

// ---------------------------------------------------------------------------
// Fixed-order engine (the differential baseline)
// ---------------------------------------------------------------------------

/// A [`JoinIndex`] bound to the relation it indexes (one per atom in visit
/// order).
struct AtomIndex<'a> {
    relation: &'a Relation,
    index: JoinIndex<'a>,
}

impl<'a> AtomIndex<'a> {
    fn build(relation: &'a Relation, key_positions: Vec<usize>) -> AtomIndex<'a> {
        AtomIndex {
            relation,
            index: JoinIndex::build(relation, key_positions),
        }
    }

    fn key_positions(&self) -> &[usize] {
        self.index.key_cols()
    }

    #[inline]
    fn candidates(&self, key: &[u64]) -> &[u32] {
        self.index.candidates(key)
    }
}

/// The legacy engine: order atoms once with [`atom_order`], index each on
/// its bound positions, extend bindings depth-first one row at a time.
/// Emits every answer with multiplicity 1.
fn fixed_join(
    query: &Query,
    relations: &[&Relation],
    probe: &mut JoinProbe<'_>,
    emit: &mut impl FnMut(&[u64], u64),
) {
    let order = atom_order(query, relations);

    // For each atom (in visit order) decide which of its positions are bound
    // by earlier atoms, and build the index keyed on those positions.
    let mut bound = VarSet::EMPTY;
    let mut indexes: Vec<AtomIndex> = Vec::with_capacity(order.len());
    // For checking: positions that must match the current binding but are not
    // part of the key (repeated variables within the atom).
    let mut check_positions: Vec<Vec<(usize, usize)>> = Vec::with_capacity(order.len());
    // Positions that newly bind a variable: (position, var).
    let mut bind_positions: Vec<Vec<(usize, usize)>> = Vec::with_capacity(order.len());

    for &j in &order {
        let atom = query.atom(j);
        let mut key_positions = Vec::new();
        let mut checks = Vec::new();
        let mut binds = Vec::new();
        let mut seen_here = VarSet::EMPTY;
        for (pos, &v) in atom.vars().iter().enumerate() {
            if bound.contains(v) {
                key_positions.push(pos);
            } else if seen_here.contains(v) {
                // Repeated new variable within the atom: equality check
                // against the position that bound it.
                let first = atom
                    .vars()
                    .iter()
                    .position(|&w| w == v)
                    .expect("repeated var has a first position");
                checks.push((pos, first));
            } else {
                seen_here = seen_here.insert(v);
                binds.push((pos, v));
            }
        }
        indexes.push(AtomIndex::build(relations[j], key_positions));
        check_positions.push(checks);
        bind_positions.push(binds);
        bound = bound.union(atom.var_set());
    }

    // Depth-first extension of bindings.
    let k = query.num_vars();
    let mut binding = vec![0u64; k];
    let mut key_buf: Vec<u64> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn descend(
        depth: usize,
        order: &[usize],
        query: &Query,
        indexes: &[AtomIndex],
        check_positions: &[Vec<(usize, usize)>],
        bind_positions: &[Vec<(usize, usize)>],
        binding: &mut Vec<u64>,
        key_buf: &mut Vec<u64>,
        probe: &mut JoinProbe<'_>,
        emit: &mut impl FnMut(&[u64], u64),
    ) {
        if depth == order.len() {
            emit(binding, 1);
            return;
        }
        let j = order[depth];
        let atom = query.atom(j);
        let idx = &indexes[depth];
        key_buf.clear();
        for &pos in idx.key_positions() {
            key_buf.push(binding[atom.vars()[pos]]);
        }
        // `candidates` borrows the index, not `key_buf`, so the buffer is
        // free for reuse by deeper levels while we iterate.
        for &row_id in idx.candidates(key_buf) {
            probe.bump();
            let row = idx.relation.row(row_id as usize);
            if check_positions[depth]
                .iter()
                .any(|&(pos, first)| row[pos] != row[first])
            {
                continue;
            }
            for &(pos, var) in &bind_positions[depth] {
                binding[var] = row[pos];
            }
            descend(
                depth + 1,
                order,
                query,
                indexes,
                check_positions,
                bind_positions,
                binding,
                key_buf,
                probe,
                emit,
            );
        }
    }

    descend(
        0,
        &order,
        query,
        &indexes,
        &check_positions,
        &bind_positions,
        &mut binding,
        &mut key_buf,
        probe,
        emit,
    );
}

// ---------------------------------------------------------------------------
// Dynamic (cardinality-guided) engine
// ---------------------------------------------------------------------------

/// Candidate sets at most this large are narrowed by scanning their rows
/// instead of building/probing an index keyed on the new position set.
const SCAN_THRESHOLD: usize = 8;

/// Driver slices at most this long deduplicate their values by linear scan
/// of the collected `(value, count)` pairs; longer slices sort a flat value
/// buffer and run-length encode it.
const LINEAR_DEDUP_MAX: usize = 32;

/// Where an atom's current candidate rows live.
#[derive(Clone, Copy)]
enum Candidates {
    /// No position of the atom is bound: every row is a candidate.
    All,
    /// `lo..hi` into the row-id arena of the cached index for the state's
    /// position mask.
    Range(u32, u32),
    /// The first `count` entries, inline (produced by the scan path).
    Inline([u32; SCAN_THRESHOLD]),
    /// Count known but rows not materialized (a driver slice deduplicated
    /// by value); re-derived through an index lookup if ever needed again.
    Unknown,
}

/// One atom's live candidate set: which positions are bound, how many rows
/// match the current binding on them, and where those rows live.
#[derive(Clone, Copy)]
struct AtomState {
    /// Bound positions of the atom (bit `p` = position `p`; arity ≤ 64).
    mask: u64,
    /// Rows matching the current binding projected on `mask`'s positions —
    /// the O(1) cardinality bound driving variable selection, and at the
    /// leaf one factor of the answer multiplicity.
    count: u32,
    rows: Candidates,
}

/// One atom's relation plus its lazily built per-position-mask indexes.
/// Indexes are cached for the whole join, so each (atom, position set)
/// pair is built at most once no matter how often the search revisits it.
struct DynAtom<'a> {
    rel: &'a Relation,
    /// Variable at each position (`atom.vars()`).
    vars: &'a [usize],
    /// `(pos, first_pos)` pairs a row must agree on (repeated variables
    /// within the atom); used by the root driver scan.
    dup_checks: Vec<(usize, usize)>,
    indexes: Vec<(u64, JoinIndex<'a>)>,
}

/// One distinct driver value with its multiplicity; `lo..hi` is the value's
/// group range in the driver's per-value index (group-enumeration path
/// only).
#[derive(Clone, Copy)]
struct ValEntry {
    val: u64,
    count: u32,
    lo: u32,
    hi: u32,
}

/// Reusable per-depth buffers of the dynamic search.
#[derive(Default)]
struct NodeScratch {
    /// Distinct driver values at this depth.
    vals: Vec<ValEntry>,
    /// States this depth mutates, for restore on backtrack.
    save: Vec<(usize, AtomState)>,
    /// Flat value buffer for the sort-based dedup path.
    raw: Vec<u64>,
    /// Key buffer for index probes.
    key: Vec<u64>,
    /// Leaf intersection: surviving `(value, multiplicity product)` pairs,
    /// sorted by value.
    merged: Vec<(u64, u64)>,
}

/// Ascending positions set in `mask`.
fn mask_positions(mut mask: u64) -> Vec<usize> {
    let mut cols = Vec::with_capacity(mask.count_ones() as usize);
    while mask != 0 {
        cols.push(mask.trailing_zeros() as usize);
        mask &= mask - 1;
    }
    cols
}

/// Project the binding onto `mask`'s positions (ascending — the order
/// [`JoinIndex`] keys use) into `key`.
fn build_key(key: &mut Vec<u64>, mut mask: u64, vars: &[usize], binding: &[u64]) {
    key.clear();
    while mask != 0 {
        let p = mask.trailing_zeros() as usize;
        key.push(binding[vars[p]]);
        mask &= mask - 1;
    }
}

/// True iff `row` matches the binding at every position in `mask`.
#[inline]
fn masked_match(row: &[u64], vars: &[usize], mut mask: u64, binding: &[u64]) -> bool {
    while mask != 0 {
        let p = mask.trailing_zeros() as usize;
        if row[p] != binding[vars[p]] {
            return false;
        }
        mask &= mask - 1;
    }
    true
}

/// True iff `row` holds the same value at every position in `mask` (the
/// repeated-variable consistency check; `first` is one of the positions).
#[inline]
fn positions_agree(row: &[u64], mut mask: u64, first: usize) -> bool {
    let want = row[first];
    while mask != 0 {
        let p = mask.trailing_zeros() as usize;
        if row[p] != want {
            return false;
        }
        mask &= mask - 1;
    }
    true
}

/// Position of the atom's cached index for `mask`, building it on first
/// use (cached for the rest of the join).
fn ensure_index_pos(atom: &mut DynAtom<'_>, mask: u64) -> usize {
    if let Some(i) = atom.indexes.iter().position(|(m, _)| *m == mask) {
        return i;
    }
    atom.indexes
        .push((mask, JoinIndex::build(atom.rel, mask_positions(mask))));
    atom.indexes.len() - 1
}

/// The atom's cached index for `mask` (must exist — every `Range` state
/// points into one).
fn cached_index<'x, 'a>(atom: &'x DynAtom<'a>, mask: u64) -> &'x JoinIndex<'a> {
    &atom
        .indexes
        .iter()
        .find(|(m, _)| *m == mask)
        .expect("a Range state always points into a cached index")
        .1
}

/// Filter `rows` down to those matching the binding on `add_mask`,
/// collecting survivors inline. Returns the survivor count (≤ input count
/// ≤ [`SCAN_THRESHOLD`]).
fn filter_into(
    rel: &Relation,
    vars: &[usize],
    add_mask: u64,
    binding: &[u64],
    rows: impl Iterator<Item = u32>,
    inline: &mut [u32; SCAN_THRESHOLD],
) -> u32 {
    let mut cnt = 0u32;
    for row_id in rows {
        if masked_match(rel.row(row_id as usize), vars, add_mask, binding) {
            inline[cnt as usize] = row_id;
            cnt += 1;
        }
    }
    cnt
}

/// Narrow the atom's candidate set after the positions in `add_mask`
/// became bound. Candidate sets of ≤ [`SCAN_THRESHOLD`] known rows are
/// filtered by scanning; everything else probes (and lazily builds) the
/// index keyed on the full new position set. Returns `false` when no row
/// survives (prune).
fn narrow(
    atom: &mut DynAtom<'_>,
    state: &mut AtomState,
    add_mask: u64,
    binding: &[u64],
    key: &mut Vec<u64>,
) -> bool {
    let newmask = state.mask | add_mask;
    if state.count as usize <= SCAN_THRESHOLD {
        let mut inline = [0u32; SCAN_THRESHOLD];
        let cnt = match state.rows {
            Candidates::All => filter_into(
                atom.rel,
                atom.vars,
                add_mask,
                binding,
                0..state.count,
                &mut inline,
            ),
            Candidates::Range(lo, hi) => {
                let idx = cached_index(atom, state.mask);
                filter_into(
                    atom.rel,
                    atom.vars,
                    add_mask,
                    binding,
                    idx.row_ids[lo as usize..hi as usize].iter().copied(),
                    &mut inline,
                )
            }
            Candidates::Inline(rows) => filter_into(
                atom.rel,
                atom.vars,
                add_mask,
                binding,
                rows[..state.count as usize].iter().copied(),
                &mut inline,
            ),
            // Rows not materialized: fall through to the index probe.
            Candidates::Unknown => u32::MAX,
        };
        if cnt != u32::MAX {
            *state = AtomState {
                mask: newmask,
                count: cnt,
                rows: Candidates::Inline(inline),
            };
            return cnt > 0;
        }
    }
    build_key(key, newmask, atom.vars, binding);
    let i = ensure_index_pos(atom, newmask);
    let (lo, hi) = atom.indexes[i].1.candidates_range(key);
    *state = AtomState {
        mask: newmask,
        count: hi - lo,
        rows: Candidates::Range(lo, hi),
    };
    lo < hi
}

/// Memoize an [`Candidates::Unknown`] candidate set back to its index
/// `Range`: the state's mask always has a cached index (the narrow that
/// produced the count built it) and the binding projects to its key.
fn materialize_unknown(
    atom: &mut DynAtom<'_>,
    state: &mut AtomState,
    binding: &[u64],
    key: &mut Vec<u64>,
) {
    if matches!(state.rows, Candidates::Unknown) {
        build_key(key, state.mask, atom.vars, binding);
        let i = ensure_index_pos(atom, state.mask);
        let (lo, hi) = atom.indexes[i].1.candidates_range(key);
        debug_assert_eq!(hi - lo, state.count);
        state.rows = Candidates::Range(lo, hi);
    }
}

/// O(1) cardinality bound for the atom's rows compatible with the current
/// binding, as seen through variable `v`'s positions (`pos_mask`): the
/// candidate count once any position is bound, the distinct-value count of
/// a cached per-value index before that, the relation size as the fallback.
#[inline]
fn estimate(atom: &DynAtom<'_>, state: &AtomState, pos_mask: u64) -> u64 {
    if state.mask != 0 {
        return state.count as u64;
    }
    match atom.indexes.iter().find(|(m, _)| *m == pos_mask) {
        Some((_, idx)) => idx.num_groups() as u64,
        None => atom.rel.len() as u64,
    }
}

/// One level of the dynamic search: pick the most selective unbound
/// variable, enumerate its distinct values from the smallest candidate set
/// (the driver), narrow every other atom containing it, recurse; at the
/// leaf emit the binding with multiplicity = ∏ per-atom candidate counts.
#[allow(clippy::too_many_arguments)]
fn dyn_descend<'a>(
    atoms: &mut [DynAtom<'a>],
    occs_of_var: &[Vec<(usize, u64, usize)>],
    all_vars: VarSet,
    bound: VarSet,
    binding: &mut [u64],
    states: &mut [AtomState],
    scratch: &mut [NodeScratch],
    probe: &mut JoinProbe<'_>,
    emit: &mut impl FnMut(&[u64], u64),
) {
    // --- variable selection: smallest max-over-atoms candidate bound ---
    // (ties: smaller min bound, then lower variable index).
    let mut pick: Option<(u64, u64, usize)> = None;
    for (v, occs) in occs_of_var.iter().enumerate() {
        if bound.contains(v) {
            continue;
        }
        let mut hi = 0u64;
        let mut lo = u64::MAX;
        for &(a, pos_mask, _) in occs {
            let e = estimate(&atoms[a], &states[a], pos_mask);
            hi = hi.max(e);
            lo = lo.min(e);
        }
        if pick.is_none_or(|(bh, bl, _)| (hi, lo) < (bh, bl)) {
            pick = Some((hi, lo, v));
        }
    }
    let (_, _, v) = pick.expect("an unbound variable exists above the leaf");

    // Driver: the occurrence with the smallest bound (ties: lowest atom
    // index — occurrences are stored in atom order).
    let occs = &occs_of_var[v];
    let (mut d, mut dmask, mut dfirst) = occs[0];
    let mut dbest = estimate(&atoms[d], &states[d], dmask);
    for &(a, pos_mask, first) in &occs[1..] {
        let e = estimate(&atoms[a], &states[a], pos_mask);
        if e < dbest {
            (d, dmask, dfirst, dbest) = (a, pos_mask, first, e);
        }
    }

    let (cur, rest) = scratch.split_first_mut().expect("one scratch per depth");

    // Leaf fast path: `v` is the last unbound variable, so nothing below
    // ever re-narrows — intersect sorted value lists instead of paying one
    // index probe (and a state snapshot/restore) per candidate value.
    if bound.insert(v) == all_vars {
        dyn_leaf(
            atoms, occs, v, d, dmask, dfirst, states, binding, cur, probe, emit,
        );
        return;
    }

    cur.vals.clear();
    cur.save.clear();

    // --- enumerate the driver's distinct v-values with multiplicities ---
    let grouped = states[d].mask == 0;
    if grouped {
        // Unbound driver: group-enumerate its per-value index. Each group
        // is one distinct value with its row range; groups whose rows
        // disagree on repeated v-positions can never match and are skipped
        // whole (all rows of a group share the key projection).
        let multi = dmask.count_ones() > 1;
        let i = ensure_index_pos(&mut atoms[d], dmask);
        let idx = &atoms[d].indexes[i].1;
        let rel = atoms[d].rel;
        for g in 0..idx.num_groups() {
            let (lo, hi) = (idx.offsets[g], idx.offsets[g + 1]);
            let rep = rel.row(idx.row_ids[lo as usize] as usize);
            if multi && !positions_agree(rep, dmask, dfirst) {
                continue;
            }
            cur.vals.push(ValEntry {
                val: rep[dfirst],
                count: hi - lo,
                lo,
                hi,
            });
        }
    } else {
        // Bound driver: its candidate rows are already narrowed — collect
        // the distinct values at v's positions, counting occurrences
        // (which become the driver's per-value candidate count).
        let multi = dmask.count_ones() > 1;
        materialize_unknown(&mut atoms[d], &mut states[d], binding, &mut cur.key);
        let rel = atoms[d].rel;
        let inline_store;
        let row_slice: &[u32] = match states[d].rows {
            Candidates::Inline(rows) => {
                inline_store = rows;
                &inline_store[..states[d].count as usize]
            }
            Candidates::Range(lo, hi) => {
                &cached_index(&atoms[d], states[d].mask).row_ids[lo as usize..hi as usize]
            }
            Candidates::All | Candidates::Unknown => {
                unreachable!("bound driver has materialized rows")
            }
        };
        if row_slice.len() <= LINEAR_DEDUP_MAX {
            'rows: for &row_id in row_slice {
                let row = rel.row(row_id as usize);
                if multi && !positions_agree(row, dmask, dfirst) {
                    continue;
                }
                let val = row[dfirst];
                for e in cur.vals.iter_mut() {
                    if e.val == val {
                        e.count += 1;
                        continue 'rows;
                    }
                }
                cur.vals.push(ValEntry {
                    val,
                    count: 1,
                    lo: 0,
                    hi: 0,
                });
            }
        } else {
            cur.raw.clear();
            for &row_id in row_slice {
                let row = rel.row(row_id as usize);
                if multi && !positions_agree(row, dmask, dfirst) {
                    continue;
                }
                cur.raw.push(row[dfirst]);
            }
            cur.raw.sort_unstable();
            let mut i = 0;
            while i < cur.raw.len() {
                let val = cur.raw[i];
                let mut j = i + 1;
                while j < cur.raw.len() && cur.raw[j] == val {
                    j += 1;
                }
                cur.vals.push(ValEntry {
                    val,
                    count: (j - i) as u32,
                    lo: 0,
                    hi: 0,
                });
                i = j;
            }
        }
    }

    // Snapshot every state this level mutates (driver included).
    for &(a, _, _) in occs {
        cur.save.push((a, states[a]));
    }
    let dmask_base = states[d].mask;
    let now_bound = bound.insert(v);

    for vi in 0..cur.vals.len() {
        // Restore this level's snapshot (idempotent on the first value).
        for si in 0..cur.save.len() {
            let (a, s) = cur.save[si];
            states[a] = s;
        }
        let e = cur.vals[vi];
        probe.bump();
        binding[v] = e.val;
        states[d] = AtomState {
            mask: dmask_base | dmask,
            count: e.count,
            rows: if grouped {
                Candidates::Range(e.lo, e.hi)
            } else {
                Candidates::Unknown
            },
        };
        let mut ok = true;
        for &(a, pos_mask, _) in occs {
            if a == d {
                continue;
            }
            if !narrow(
                &mut atoms[a],
                &mut states[a],
                pos_mask,
                binding,
                &mut cur.key,
            ) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        dyn_descend(
            atoms,
            occs_of_var,
            all_vars,
            now_bound,
            binding,
            states,
            rest,
            probe,
            emit,
        );
    }
    // Restore for the caller.
    for si in 0..cur.save.len() {
        let (a, s) = cur.save[si];
        states[a] = s;
    }
}

/// Leaf specialization of `dyn_descend`: exactly one variable `v` remains
/// unbound. The generic level pays one index probe per candidate value for
/// every non-driver occurrence (plus a state snapshot/restore per value);
/// here nothing below ever re-narrows, so we collect each occurrence's
/// distinct `(value, count)` list once and sorted-merge-intersect them.
/// Occurrences whose candidate sets dwarf the surviving value list are
/// probed per survivor instead of scanned. Each survivor is emitted once
/// with multiplicity = (∏ counts of atoms not containing `v`) × (∏ the
/// value's per-occurrence counts) — the same multiset the generic level
/// produces, in value order rather than driver-row order.
///
/// Visited-bindings accounting is unchanged: one per distinct driver
/// value, whether or not it survives the intersection.
#[allow(clippy::too_many_arguments)]
fn dyn_leaf<'a>(
    atoms: &mut [DynAtom<'a>],
    occs: &[(usize, u64, usize)],
    v: usize,
    d: usize,
    dmask: u64,
    dfirst: usize,
    states: &mut [AtomState],
    binding: &mut [u64],
    cur: &mut NodeScratch,
    probe: &mut JoinProbe<'_>,
    emit: &mut impl FnMut(&[u64], u64),
) {
    // --- driver: collect its distinct v-values with multiplicities, ---
    // --- sorted by value, into `cur.merged`.                        ---
    cur.merged.clear();
    let multi = dmask.count_ones() > 1;
    if states[d].mask == 0 {
        // Unbound driver: its per-value index already groups rows by
        // value; groups disagreeing on repeated v-positions are skipped
        // whole (all rows of a group share the key projection).
        let i = ensure_index_pos(&mut atoms[d], dmask);
        let idx = &atoms[d].indexes[i].1;
        let rel = atoms[d].rel;
        for g in 0..idx.num_groups() {
            let (lo, hi) = (idx.offsets[g], idx.offsets[g + 1]);
            let rep = rel.row(idx.row_ids[lo as usize] as usize);
            if multi && !positions_agree(rep, dmask, dfirst) {
                continue;
            }
            cur.merged.push((rep[dfirst], (hi - lo) as u64));
        }
        cur.merged.sort_unstable_by_key(|&(val, _)| val);
    } else {
        materialize_unknown(&mut atoms[d], &mut states[d], binding, &mut cur.key);
        let rel = atoms[d].rel;
        cur.raw.clear();
        let inline_store;
        let row_slice: &[u32] = match states[d].rows {
            Candidates::Inline(rows) => {
                inline_store = rows;
                &inline_store[..states[d].count as usize]
            }
            Candidates::Range(lo, hi) => {
                &cached_index(&atoms[d], states[d].mask).row_ids[lo as usize..hi as usize]
            }
            Candidates::All | Candidates::Unknown => {
                unreachable!("bound driver has materialized rows")
            }
        };
        for &row_id in row_slice {
            let row = rel.row(row_id as usize);
            if multi && !positions_agree(row, dmask, dfirst) {
                continue;
            }
            cur.raw.push(row[dfirst]);
        }
        cur.raw.sort_unstable();
        let mut i = 0;
        while i < cur.raw.len() {
            let val = cur.raw[i];
            let mut j = i + 1;
            while j < cur.raw.len() && cur.raw[j] == val {
                j += 1;
            }
            cur.merged.push((val, (j - i) as u64));
            i = j;
        }
    }
    probe.bump_by(cur.merged.len() as u64);

    // --- intersect every other occurrence's value list into `merged` ---
    for &(a, pos_mask, first) in occs {
        if a == d || cur.merged.is_empty() {
            continue;
        }
        let multi = pos_mask.count_ones() > 1;
        // Scan-and-merge when the candidate set is comparable in size to
        // the surviving value list (the driver is the min-bound
        // occurrence, so candidates ≥ survivors); probe the per-value
        // index once per survivor when it is much larger — and always for
        // a fully unbound atom, whose "candidates" are the whole relation.
        let scan = !matches!(states[a].rows, Candidates::All)
            && (states[a].count as usize) <= 4 * cur.merged.len().max(SCAN_THRESHOLD);
        if scan {
            materialize_unknown(&mut atoms[a], &mut states[a], binding, &mut cur.key);
            let rel = atoms[a].rel;
            cur.raw.clear();
            {
                let inline_store;
                let row_slice: &[u32] = match states[a].rows {
                    Candidates::Inline(rows) => {
                        inline_store = rows;
                        &inline_store[..states[a].count as usize]
                    }
                    Candidates::Range(lo, hi) => {
                        &cached_index(&atoms[a], states[a].mask).row_ids[lo as usize..hi as usize]
                    }
                    Candidates::All | Candidates::Unknown => {
                        unreachable!("the scan path materialized the rows")
                    }
                };
                for &row_id in row_slice {
                    let row = rel.row(row_id as usize);
                    if multi && !positions_agree(row, pos_mask, first) {
                        continue;
                    }
                    cur.raw.push(row[first]);
                }
            }
            cur.raw.sort_unstable();
            // Two-pointer intersect: fold each matching run's length into
            // the survivor's multiplicity product.
            let (mut w, mut i, mut j) = (0usize, 0usize, 0usize);
            while i < cur.merged.len() && j < cur.raw.len() {
                let (val, prod) = cur.merged[i];
                match cur.raw[j].cmp(&val) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Greater => i += 1,
                    std::cmp::Ordering::Equal => {
                        let mut c = 0u64;
                        while j < cur.raw.len() && cur.raw[j] == val {
                            c += 1;
                            j += 1;
                        }
                        cur.merged[w] = (val, prod * c);
                        w += 1;
                        i += 1;
                    }
                }
            }
            cur.merged.truncate(w);
        } else {
            let newmask = states[a].mask | pos_mask;
            let i = ensure_index_pos(&mut atoms[a], newmask);
            let vars = atoms[a].vars;
            let mut w = 0usize;
            for mi in 0..cur.merged.len() {
                let (val, prod) = cur.merged[mi];
                binding[v] = val;
                build_key(&mut cur.key, newmask, vars, binding);
                let (lo, hi) = atoms[a].indexes[i].1.candidates_range(&cur.key);
                if hi > lo {
                    cur.merged[w] = (val, prod * (hi - lo) as u64);
                    w += 1;
                }
            }
            cur.merged.truncate(w);
        }
    }
    if cur.merged.is_empty() {
        return;
    }

    // --- emit: atoms not containing `v` contribute a constant factor ---
    let mut base = 1u64;
    for (a, s) in states.iter().enumerate() {
        if !occs.iter().any(|&(oa, _, _)| oa == a) {
            base *= s.count as u64;
        }
    }
    for mi in 0..cur.merged.len() {
        let (val, prod) = cur.merged[mi];
        binding[v] = val;
        emit(binding, base * prod);
    }
}

/// The dynamic engine's entry point. The root level is specialized: the
/// smallest relation drives (the same pick the fixed order makes, so both
/// engines start from identical row scans), its rows are iterated directly
/// — no index is built for the driver — and every atom sharing variables
/// with it is narrowed per row before the per-variable search takes over.
fn dyn_join(
    query: &Query,
    relations: &[&Relation],
    probe: &mut JoinProbe<'_>,
    emit: &mut impl FnMut(&[u64], u64),
) {
    let l = query.num_atoms();
    for (j, rel) in relations.iter().enumerate() {
        assert!(
            query.atom(j).arity() <= 64,
            "dynamic join supports atom arity <= 64 (atom {:?} has arity {})",
            query.atom(j).name(),
            query.atom(j).arity()
        );
        assert_indexable(rel.name(), rel.len());
    }

    // Per-atom shape info.
    let mut atoms: Vec<DynAtom<'_>> = Vec::with_capacity(l);
    for (j, &rel) in relations.iter().enumerate() {
        let vars = query.atom(j).vars();
        let mut dup_checks = Vec::new();
        for (pos, &v) in vars.iter().enumerate() {
            let first = vars
                .iter()
                .position(|&w| w == v)
                .expect("a variable's first position exists");
            if first != pos {
                dup_checks.push((pos, first));
            }
        }
        atoms.push(DynAtom {
            rel,
            vars,
            dup_checks,
            indexes: Vec::new(),
        });
    }

    // Per-variable occurrences: (atom, position mask of the variable in
    // the atom, first position), in atom order.
    let k = query.num_vars();
    let mut occs_of_var: Vec<Vec<(usize, u64, usize)>> = vec![Vec::new(); k];
    for (j, da) in atoms.iter().enumerate() {
        let mut masks = vec![0u64; k];
        for (pos, &v) in da.vars.iter().enumerate() {
            masks[v] |= 1u64 << pos;
        }
        for (pos, &v) in da.vars.iter().enumerate() {
            if da.vars[..pos].contains(&v) {
                continue; // only the first occurrence registers
            }
            occs_of_var[v].push((j, masks[v], pos));
        }
    }
    let all_vars = query.all_vars();

    // Root driver: smallest relation, ties to the lowest atom index (the
    // fixed order's step-0 pick).
    let mut d = 0;
    for j in 1..l {
        if relations[j].len() < relations[d].len() {
            d = j;
        }
    }
    let dvars = query.atom(d).var_set();
    let darity = query.atom(d).arity();
    let dfull: u64 = if darity == 64 {
        u64::MAX
    } else {
        (1u64 << darity) - 1
    };
    // First-occurrence (position, var) pairs of the driver.
    let binds: Vec<(usize, usize)> = atoms[d]
        .vars
        .iter()
        .enumerate()
        .filter(|&(pos, v)| !atoms[d].vars[..pos].contains(v))
        .map(|(pos, &v)| (pos, v))
        .collect();
    // Atoms sharing variables with the driver, with the position mask the
    // driver row binds in each.
    let mut sharers: Vec<(usize, u64)> = Vec::new();
    for (j, da) in atoms.iter().enumerate() {
        if j == d {
            continue;
        }
        let mut add = 0u64;
        for (pos, &v) in da.vars.iter().enumerate() {
            if dvars.contains(v) {
                add |= 1u64 << pos;
            }
        }
        if add != 0 {
            sharers.push((j, add));
        }
    }

    let mut states: Vec<AtomState> = relations
        .iter()
        .map(|r| AtomState {
            mask: 0,
            count: r.len() as u32,
            rows: Candidates::All,
        })
        .collect();
    let save: Vec<(usize, AtomState)> = std::iter::once(d)
        .chain(sharers.iter().map(|&(a, _)| a))
        .map(|a| (a, states[a]))
        .collect();

    let mut binding = vec![0u64; k];
    let mut scratch: Vec<NodeScratch> = (0..k).map(|_| NodeScratch::default()).collect();
    let mut key: Vec<u64> = Vec::new();
    let drel = relations[d];

    for row_id in 0..drel.len() as u32 {
        probe.bump();
        let row = drel.row(row_id as usize);
        if atoms[d].dup_checks.iter().any(|&(p, f)| row[p] != row[f]) {
            continue;
        }
        for &(pos, var) in &binds {
            binding[var] = row[pos];
        }
        for &(a, s) in &save {
            states[a] = s;
        }
        let mut inline = [0u32; SCAN_THRESHOLD];
        inline[0] = row_id;
        states[d] = AtomState {
            mask: dfull,
            count: 1,
            rows: Candidates::Inline(inline),
        };
        let mut ok = true;
        for &(a, add) in &sharers {
            if !narrow(&mut atoms[a], &mut states[a], add, &binding, &mut key) {
                ok = false;
                break;
            }
        }
        if !ok {
            continue;
        }
        if dvars == all_vars {
            let mut mult = 1u64;
            for s in &states {
                mult *= s.count as u64;
            }
            emit(&binding, mult);
        } else {
            dyn_descend(
                &mut atoms,
                &occs_of_var,
                all_vars,
                dvars,
                &mut binding,
                &mut states,
                &mut scratch,
                probe,
                &mut *emit,
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Public evaluation surface
// ---------------------------------------------------------------------------

/// Evaluate `query` over `relations` (one per atom, in atom order) with the
/// chosen engine, invoking `emit(binding, multiplicity)` once per *distinct
/// answer occurrence group*: the multiplicity is the number of row
/// combinations deriving the binding, so expanding every call `mult` times
/// reproduces the exact answer multiset of the row-at-a-time join. The
/// fixed engine always passes multiplicity 1.
pub fn join_foreach_mult(
    query: &Query,
    relations: &[&Relation],
    order: JoinOrder,
    mut emit: impl FnMut(&[u64], u64),
) -> JoinStats {
    failpoint::hit("local_join");
    run_join(
        query,
        relations,
        order,
        &mut JoinProbe::untracked(),
        &mut emit,
    )
}

/// [`join_foreach_mult`] under a cooperative [`QueryBudget`]: the probe
/// polls the budget every [`CHECK_INTERVAL`] visited bindings, and every
/// emitted answer row is charged against the budget's row cap *before*
/// reaching `emit`. A violated budget unwinds out of the evaluation with a
/// typed payload that is caught here and returned as `Err` — the join
/// keeps no cross-evaluation state, so the unwind poisons nothing, and
/// any other panic (a failpoint, a real bug) is re-raised verbatim.
///
/// With an unlimited budget this is exactly [`join_foreach_mult`]: no
/// `catch_unwind` frame, no per-emit charge.
pub fn try_join_foreach_mult(
    query: &Query,
    relations: &[&Relation],
    order: JoinOrder,
    budget: &QueryBudget,
    mut emit: impl FnMut(&[u64], u64),
) -> Result<JoinStats, BudgetExceeded> {
    failpoint::hit("local_join");
    if budget.is_unlimited() {
        return Ok(run_join(
            query,
            relations,
            order,
            &mut JoinProbe::untracked(),
            &mut emit,
        ));
    }
    budget.poll()?;
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut probe = JoinProbe::budgeted(budget);
        let mut wrapped = |row: &[u64], mult: u64| {
            if let Err(e) = budget.charge_rows(mult) {
                std::panic::panic_any(e);
            }
            emit(row, mult);
        };
        run_join(query, relations, order, &mut probe, &mut wrapped)
    }));
    match outcome {
        // A final poll: joins shorter than one check interval still honor
        // an already-expired deadline or a row pool drained by a sibling.
        Ok(stats) => budget.poll().map(|()| stats),
        Err(payload) => match payload.downcast::<BudgetExceeded>() {
            Ok(e) => Err(*e),
            Err(other) => std::panic::resume_unwind(other),
        },
    }
}

/// Shared engine dispatch behind the two public `*_foreach_mult` fronts.
fn run_join(
    query: &Query,
    relations: &[&Relation],
    order: JoinOrder,
    probe: &mut JoinProbe<'_>,
    emit: &mut impl FnMut(&[u64], u64),
) -> JoinStats {
    assert_eq!(relations.len(), query.num_atoms());
    if !relations.iter().any(|r| r.is_empty()) {
        match order {
            JoinOrder::Dynamic => dyn_join(query, relations, probe, emit),
            JoinOrder::Fixed => fixed_join(query, relations, probe, emit),
        }
    }
    VISITED_TOTAL.fetch_add(probe.visited, Ordering::Relaxed);
    JoinStats {
        bindings_visited: probe.visited,
    }
}

/// Evaluate `query` over `relations`, invoking `emit` once per answer tuple
/// (values indexed by query variable), using the default dynamic ordering.
pub fn join_foreach(query: &Query, relations: &[&Relation], mut emit: impl FnMut(&[u64])) {
    join_foreach_mult(query, relations, JoinOrder::Dynamic, |row, mult| {
        for _ in 0..mult {
            emit(row);
        }
    });
}

/// [`join_foreach`] with an explicit engine, reporting the exploration
/// stats.
pub fn join_foreach_ordered(
    query: &Query,
    relations: &[&Relation],
    order: JoinOrder,
    mut emit: impl FnMut(&[u64]),
) -> JoinStats {
    join_foreach_mult(query, relations, order, |row, mult| {
        for _ in 0..mult {
            emit(row);
        }
    })
}

/// Materialize all answers as flat rows over the query's variables with an
/// explicit engine.
pub fn join_ordered(query: &Query, relations: &[&Relation], order: JoinOrder) -> AnswerSet {
    let mut out = AnswerSet::new(query.num_vars());
    join_foreach_mult(query, relations, order, |row, mult| {
        out.push_repeat(row, mult);
    });
    out
}

/// Count answers with an explicit engine, without materializing them.
pub fn join_count_ordered(query: &Query, relations: &[&Relation], order: JoinOrder) -> u64 {
    let mut count = 0u64;
    join_foreach_mult(query, relations, order, |_, mult| count += mult);
    count
}

/// Materialize all answers as flat rows over the query's variables.
pub fn join(query: &Query, relations: &[&Relation]) -> AnswerSet {
    join_ordered(query, relations, JoinOrder::Dynamic)
}

/// Count answers without materializing them.
pub fn join_count(query: &Query, relations: &[&Relation]) -> u64 {
    join_count_ordered(query, relations, JoinOrder::Dynamic)
}

/// Join a [`Database`] directly.
pub fn join_database(db: &Database) -> AnswerSet {
    let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
    join(db.query(), &rels)
}

/// Count answers of a [`Database`] directly.
pub fn join_database_count(db: &Database) -> u64 {
    let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
    join_count(db.query(), &rels)
}

/// A hash-partitioned decomposition of a join into independent sub-joins.
///
/// The sequential oracle join is the slowest piece of stress verification;
/// this splits it into `buckets` sub-joins that can run on any executor
/// (each bucket is self-contained). A partition variable `v` is chosen to
/// appear in as many atoms as possible; every row of an atom containing `v`
/// goes to the bucket hashing its `v`-value, and rows of atoms without `v`
/// are replicated to all buckets. Any answer binds `v` to a single value
/// `c`, and all rows of `v`-atoms deriving it live only in `hash(c)`'s
/// bucket — so the concatenation of all bucket outputs equals the full join
/// as a multiset, with no cross-bucket duplicates.
pub struct PartitionedJoin<'a> {
    query: &'a Query,
    /// `relations[bucket][atom]`.
    relations: Vec<Vec<Relation>>,
}

/// Partitioning hash salt (fixed: the decomposition is deterministic).
const PARTITION_SALT: u64 = 0x9a3c_51f2_0b6d_e771;

/// Decompose `query` over `relations` into `buckets` independent sub-joins
/// (see [`PartitionedJoin`]). `buckets` is clamped to at least 1; if the
/// query has no variables the whole join lands in a single bucket.
pub fn partition_join<'a>(
    query: &'a Query,
    relations: &[&Relation],
    buckets: usize,
) -> PartitionedJoin<'a> {
    assert_eq!(relations.len(), query.num_atoms());
    let buckets = buckets.max(1);
    // The variable in the most atoms minimizes replication (ties: lowest
    // variable index, so the decomposition is deterministic).
    let key_var =
        (0..query.num_vars()).max_by_key(|&v| (query.atoms_with_var(v).count(), usize::MAX - v));
    let buckets = match key_var {
        Some(v) if query.atoms_with_var(v).count() > 0 => buckets,
        _ => 1,
    };
    let mut parts: Vec<Vec<Relation>> = (0..buckets)
        .map(|_| {
            query
                .atoms()
                .iter()
                .map(|a| Relation::new(a.name(), a.arity()))
                .collect()
        })
        .collect();
    for (j, rel) in relations.iter().enumerate() {
        let key_pos = key_var.and_then(|v| query.atom(j).position_of_var(v));
        match key_pos {
            Some(pos) if buckets > 1 => {
                for row in rel.rows() {
                    let b = (crate::mix64(row[pos], PARTITION_SALT) % buckets as u64) as usize;
                    parts[b][j].push(row);
                }
            }
            _ => {
                for part in parts.iter_mut() {
                    for row in rel.rows() {
                        part[j].push(row);
                    }
                }
            }
        }
    }
    PartitionedJoin {
        query,
        relations: parts,
    }
}

impl PartitionedJoin<'_> {
    /// Number of independent sub-joins.
    pub fn num_buckets(&self) -> usize {
        self.relations.len()
    }

    /// Evaluate one bucket's sub-join with the chosen engine, invoking
    /// `emit(binding, multiplicity)` per distinct answer occurrence group
    /// (see [`join_foreach_mult`]).
    pub fn join_bucket_foreach_mult(
        &self,
        bucket: usize,
        order: JoinOrder,
        emit: impl FnMut(&[u64], u64),
    ) -> JoinStats {
        let rels: Vec<&Relation> = self.relations[bucket].iter().collect();
        join_foreach_mult(self.query, &rels, order, emit)
    }

    /// Evaluate one bucket's sub-join, invoking `emit` per answer.
    pub fn join_bucket_foreach(&self, bucket: usize, mut emit: impl FnMut(&[u64])) {
        self.join_bucket_foreach_mult(bucket, JoinOrder::Dynamic, |row, mult| {
            for _ in 0..mult {
                emit(row);
            }
        });
    }

    /// Materialize one bucket's answers.
    pub fn join_bucket(&self, bucket: usize) -> AnswerSet {
        let mut out = AnswerSet::new(self.query.num_vars());
        self.join_bucket_foreach_mult(bucket, JoinOrder::Dynamic, |row, mult| {
            out.push_repeat(row, mult);
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Rng;
    use mpc_query::named;

    /// Concatenate every bucket's answers (multiset).
    fn mpc_data_answers_concat(parts: &PartitionedJoin<'_>) -> AnswerSet {
        let mut out = parts.join_bucket(0);
        for b in 1..parts.num_buckets() {
            out.append(parts.join_bucket(b));
        }
        out
    }

    #[test]
    fn two_way_join_by_hand() {
        // S1(x,z) = {(1,5),(2,5),(3,6)}, S2(y,z) = {(7,5),(8,6),(9,9)}
        // Join on z: answers (x,y,z) = (1,7,5),(2,7,5),(3,8,6).
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 5], &[2, 5], &[3, 6]]);
        let s2 = Relation::from_rows("S2", 2, &[&[7, 5], &[8, 6], &[9, 9]]);
        let mut ans = join(&q, &[&s1, &s2]);
        ans.sort_dedup();
        // Variable order: x=0, z=1, y=2 (interning order).
        let xi = q.var_index("x").unwrap();
        let yi = q.var_index("y").unwrap();
        let zi = q.var_index("z").unwrap();
        let mut expected: Vec<Vec<u64>> = vec![
            {
                let mut row = vec![0; 3];
                row[xi] = 1;
                row[yi] = 7;
                row[zi] = 5;
                row
            },
            {
                let mut row = vec![0; 3];
                row[xi] = 2;
                row[yi] = 7;
                row[zi] = 5;
                row
            },
            {
                let mut row = vec![0; 3];
                row[xi] = 3;
                row[yi] = 8;
                row[zi] = 6;
                row
            },
        ];
        expected.sort();
        assert_eq!(ans, expected);
    }

    #[test]
    fn triangle_counts_triangles() {
        // A 4-clique as three edge relations: every ordered triangle of the
        // clique appears: 4 * 3 * 2 = 24 answers.
        let q = named::cycle(3);
        let mut edges = Relation::new("E", 2);
        for a in 0..4u64 {
            for b in 0..4u64 {
                if a != b {
                    edges.push(&[a, b]);
                }
            }
        }
        let e1 = {
            let mut e = edges.clone();
            e.sort_dedup();
            e
        };
        assert_eq!(join_count(&q, &[&e1, &e1, &e1]), 24);
        assert_eq!(
            join_count_ordered(&q, &[&e1, &e1, &e1], JoinOrder::Fixed),
            24
        );
    }

    #[test]
    fn cartesian_product_counts_multiply() {
        let q = named::cartesian(3);
        let r1 = Relation::from_rows("S1", 1, &[&[1], &[2]]);
        let r2 = Relation::from_rows("S2", 1, &[&[5], &[6], &[7]]);
        let r3 = Relation::from_rows("S3", 1, &[&[9]]);
        assert_eq!(join_count(&q, &[&r1, &r2, &r3]), 6);
        assert_eq!(
            join_count_ordered(&q, &[&r1, &r2, &r3], JoinOrder::Fixed),
            6
        );
    }

    #[test]
    fn empty_relation_gives_empty_join() {
        let q = named::two_way_join();
        let s1 = Relation::new("S1", 2);
        let s2 = Relation::from_rows("S2", 2, &[&[7, 5]]);
        assert_eq!(join_count(&q, &[&s1, &s2]), 0);
        assert_eq!(join_count_ordered(&q, &[&s1, &s2], JoinOrder::Fixed), 0);
    }

    #[test]
    fn repeated_variable_in_atom() {
        // q(x,y) = R(x,x,y): only rows with row[0] == row[1] survive.
        let q = mpc_query::Query::build("q", &[("R", &["x", "x", "y"])]).unwrap();
        let r = Relation::from_rows("R", 3, &[&[1, 1, 5], &[1, 2, 6], &[3, 3, 7]]);
        let mut ans = join(&q, &[&r]);
        ans.sort_dedup();
        assert_eq!(ans, vec![vec![1, 5], vec![3, 7]]);
    }

    #[test]
    fn repeated_variable_across_atoms() {
        // q(x,y) = R(x,x), S(x,y): the repeated variable narrows R while S
        // extends — exercises multi-position masks on both engines.
        let q = mpc_query::Query::build("q", &[("R", &["x", "x"]), ("S", &["x", "y"])]).unwrap();
        let r = Relation::from_rows("R", 2, &[&[1, 1], &[2, 3], &[4, 4], &[4, 4]]);
        let s = Relation::from_rows("S", 2, &[&[1, 10], &[4, 11], &[4, 12], &[5, 13]]);
        let mut dynamic = join_ordered(&q, &[&r, &s], JoinOrder::Dynamic);
        let mut fixed = join_ordered(&q, &[&r, &s], JoinOrder::Fixed);
        dynamic.sort();
        fixed.sort();
        assert_eq!(dynamic, fixed);
        // (1,10), (4,11) x2, (4,12) x2 — R's duplicate (4,4) doubles them.
        assert_eq!(dynamic.len(), 5);
    }

    #[test]
    fn chain_join_matches_nested_loop() {
        // Cross-check the indexed join against a brute-force nested loop on
        // random data.
        let q = named::chain(3);
        let mut rng = Rng::seed_from_u64(99);
        let r1 = generators::uniform("S1", 2, 200, 32, &mut rng);
        let r2 = generators::uniform("S2", 2, 200, 32, &mut rng);
        let r3 = generators::uniform("S3", 2, 200, 32, &mut rng);
        let fast = join_count(&q, &[&r1, &r2, &r3]);
        let mut slow = 0u64;
        for a in r1.rows() {
            for b in r2.rows() {
                if a[1] != b[0] {
                    continue;
                }
                for c in r3.rows() {
                    if b[1] == c[0] {
                        slow += 1;
                    }
                }
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn join_database_wrapper() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 5]]);
        let s2 = Relation::from_rows("S2", 2, &[&[7, 5]]);
        let db = Database::new(q, vec![s1, s2], 16).unwrap();
        assert_eq!(join_database_count(&db), 1);
        assert_eq!(join_database(&db).len(), 1);
    }

    #[test]
    fn dynamic_matches_fixed_on_query_menagerie() {
        // The two engines must produce the same answer *multiset* (sorted
        // with duplicates preserved, not deduped) on every query shape.
        let cases: Vec<(Query, usize, u64)> = vec![
            (named::two_way_join(), 400, 64),
            (named::cycle(3), 300, 24),
            (named::cycle(4), 200, 16),
            (named::chain(4), 300, 48),
            (named::star(3), 300, 48),
            (named::cartesian(2), 40, 128),
            (
                mpc_query::Query::build("q", &[("R", &["x", "x", "y"]), ("S", &["y", "z"])])
                    .unwrap(),
                200,
                12,
            ),
        ];
        for (q, m, n) in cases {
            let mut rng = Rng::seed_from_u64(0xD15C);
            let rels: Vec<Relation> = q
                .atoms()
                .iter()
                .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
                .collect();
            let refs: Vec<&Relation> = rels.iter().collect();
            let mut dynamic = join_ordered(&q, &refs, JoinOrder::Dynamic);
            let mut fixed = join_ordered(&q, &refs, JoinOrder::Fixed);
            assert_eq!(
                join_count_ordered(&q, &refs, JoinOrder::Dynamic),
                dynamic.len() as u64,
                "{}: count vs materialized",
                q.name()
            );
            dynamic.sort();
            fixed.sort();
            assert_eq!(dynamic, fixed, "{}", q.name());
        }
    }

    #[test]
    fn dynamic_explores_no_more_bindings_on_local_skew() {
        // A locally skewed triangle: one heavy x2-value shared by S1 and
        // S2. The fixed order walks every (S1 row, S2 match) pair through
        // the heavy value; the dynamic order binds x2 first (few distinct
        // values) and collapses the heavy value to one branch.
        let q = named::cycle(3);
        let mut s1 = Relation::new("S1", 2);
        let mut s2 = Relation::new("S2", 2);
        let mut s3 = Relation::new("S3", 2);
        for i in 0..240u64 {
            // 200 of 240 rows share x2 = 0.
            let hot = if i < 200 { 0 } else { 1 + i % 13 };
            s1.push(&[i % 60, hot]);
            s2.push(&[hot, i % 60]);
            s3.push(&[i % 60, (i * 7) % 60]);
        }
        let refs = [&s1, &s2, &s3];
        let mut dyn_count = 0u64;
        let dyn_stats =
            join_foreach_mult(&q, &refs, JoinOrder::Dynamic, |_, mult| dyn_count += mult);
        let mut fixed_count = 0u64;
        let fixed_stats =
            join_foreach_mult(&q, &refs, JoinOrder::Fixed, |_, mult| fixed_count += mult);
        assert_eq!(dyn_count, fixed_count);
        assert!(dyn_stats.bindings_visited > 0);
        assert!(
            dyn_stats.bindings_visited <= fixed_stats.bindings_visited,
            "dynamic {} vs fixed {}",
            dyn_stats.bindings_visited,
            fixed_stats.bindings_visited
        );
    }

    #[test]
    fn visited_bindings_probe_accumulates() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 5], &[2, 5]]);
        let s2 = Relation::from_rows("S2", 2, &[&[7, 5]]);
        let before = visited_bindings_total();
        let stats = join_foreach_mult(&q, &[&s1, &s2], JoinOrder::Dynamic, |_, _| {});
        assert!(stats.bindings_visited > 0);
        // Other tests run in the same process; the global only ever grows.
        assert!(visited_bindings_total() - before >= stats.bindings_visited);
    }

    #[test]
    fn atom_order_is_deterministic_and_documented() {
        // Equal sizes: overlap decides, remaining ties fall to the atom
        // index. cycle(3) = S1(x1,x2), S2(x2,x3), S3(x3,x1).
        let q = named::cycle(3);
        let rows: Vec<&[u64]> = vec![&[1, 2], &[2, 3], &[3, 1], &[4, 4]];
        let equal: Vec<Relation> = (1..=3)
            .map(|i| Relation::from_rows(format!("S{i}"), 2, &rows))
            .collect();
        let refs: Vec<&Relation> = equal.iter().collect();
        assert_eq!(atom_order(&q, &refs), vec![0, 1, 2]);

        // Smallest first at step 0; then both S1 and S3 overlap S2 by one
        // variable at equal size, so the lower atom index (S1) wins.
        let small = Relation::from_rows("S2", 2, &[&[2, 3]]);
        let refs = vec![&equal[0], &small, &equal[2]];
        assert_eq!(atom_order(&q, &refs), vec![1, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "u32 row-id space")]
    fn join_index_rejects_u32_row_id_overflow() {
        // The guard itself is exercised directly: materializing a 4-billion
        // row relation in a test is not practical.
        assert_indexable("R", u32::MAX as usize);
    }

    #[test]
    fn partitioned_join_is_exact_across_queries_and_bucket_counts() {
        // The concatenated bucket outputs must equal the sequential join as
        // a multiset (here compared sorted, duplicates preserved) for every
        // query shape, including the no-shared-variable cartesian where all
        // atoms but the key atom are replicated.
        let cases: Vec<(Query, usize, u64)> = vec![
            (named::two_way_join(), 400, 128),
            (named::cycle(3), 300, 32),
            (named::chain(3), 300, 64),
            (named::star(2), 300, 64),
            (named::cartesian(2), 40, 256),
        ];
        for (q, m, n) in cases {
            let mut rng = Rng::seed_from_u64(0xACE5);
            let rels: Vec<Relation> = q
                .atoms()
                .iter()
                .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
                .collect();
            let refs: Vec<&Relation> = rels.iter().collect();
            let mut expected = join(&q, &refs);
            expected.sort();
            for buckets in [1usize, 2, 7, 16] {
                let parts = partition_join(&q, &refs, buckets);
                assert_eq!(parts.num_buckets(), buckets.max(1), "{}", q.name());
                let mut got = mpc_data_answers_concat(&parts);
                got.sort();
                assert_eq!(got, expected, "{} with {buckets} buckets", q.name());
            }
        }
    }

    #[test]
    fn partitioned_join_handles_skew_and_duplicates() {
        // A single heavy value lands in one bucket; duplicate rows keep
        // their multiplicity.
        let q = named::two_way_join();
        let mut s1 = Relation::new("S1", 2);
        let mut s2 = Relation::new("S2", 2);
        for i in 0..200u64 {
            s1.push(&[i, 7]); // all of S1 shares z = 7
            s2.push(&[i % 3, 7]);
        }
        let refs = [&s1, &s2];
        let mut expected = join(&q, &refs);
        expected.sort();
        let parts = partition_join(&q, &refs, 8);
        let mut got = mpc_data_answers_concat(&parts);
        got.sort();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 200 * 200);
        // Exactly one bucket is non-empty: z = 7 hashes to a single bucket.
        let busy = (0..8).filter(|&b| !parts.join_bucket(b).is_empty()).count();
        assert_eq!(busy, 1);
    }

    #[test]
    fn bucket_mult_foreach_matches_expanded_answers() {
        // The multiplicity-aware bucket walk must expand to exactly the
        // per-row walk, on both engines.
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(0xBEEF);
        let s1 = generators::uniform("S1", 2, 300, 16, &mut rng);
        let s2 = generators::uniform("S2", 2, 300, 16, &mut rng);
        let parts = partition_join(&q, &[&s1, &s2], 4);
        for order in [JoinOrder::Dynamic, JoinOrder::Fixed] {
            for b in 0..parts.num_buckets() {
                let mut via_mult = AnswerSet::new(q.num_vars());
                parts.join_bucket_foreach_mult(b, order, |row, mult| {
                    via_mult.push_repeat(row, mult);
                });
                let mut expected = parts.join_bucket(b);
                via_mult.sort();
                expected.sort();
                assert_eq!(via_mult, expected, "{order:?} bucket {b}");
            }
        }
    }

    #[test]
    fn expected_answer_count_matches_lemma_a1() {
        // E[|q(I)|] = n^{k-a} * prod m_j (Lemma A.1). For the two-way join:
        // k=3, a=4 => expected = m1*m2/n. Empirically average over seeds.
        let q = named::two_way_join();
        let n = 64u64;
        let (m1, m2) = (500usize, 400usize);
        let mut total = 0u64;
        let seeds = 20;
        for seed in 0..seeds {
            let mut rng = Rng::seed_from_u64(seed);
            let s1 = generators::uniform("S1", 2, m1, n, &mut rng);
            let s2 = generators::uniform("S2", 2, m2, n, &mut rng);
            total += join_count(&q, &[&s1, &s2]);
        }
        let avg = total as f64 / seeds as f64;
        let expected = m1 as f64 * m2 as f64 / n as f64;
        assert!(
            (avg - expected).abs() < expected * 0.15,
            "avg {avg} vs expected {expected}"
        );
    }
}
