//! A local (single-machine) multiway join.
//!
//! Every MPC algorithm in this workspace reshuffles tuples and then has each
//! server evaluate the query on its fragment; this module is that local
//! evaluator, and doubles as the sequential ground truth the distributed
//! answers are verified against.
//!
//! The implementation is a straightforward hash-indexed backtracking join:
//! atoms are ordered greedily (smallest relation first, then maximal overlap
//! with already-bound variables), each atom gets a hash index keyed on its
//! bound attribute positions, and bindings are extended depth-first. This is
//! not worst-case-optimal, but it is exact, allocation-conscious, and fast
//! enough for the experiment scales (≤ 2^20 tuples).

use crate::answers::AnswerSet;
use crate::catalog::Database;
use crate::relation::Relation;
use crate::rng::mix64;
use mpc_query::{Query, VarSet};

/// Compute a greedy atom order: start from the smallest relation, then
/// repeatedly pick the atom with the most already-bound variables (ties:
/// smaller relation).
fn atom_order(query: &Query, relations: &[&Relation]) -> Vec<usize> {
    let l = query.num_atoms();
    let mut order = Vec::with_capacity(l);
    let mut used = vec![false; l];
    let mut bound = VarSet::EMPTY;
    for step in 0..l {
        let mut best: Option<(usize, usize, usize)> = None; // (atom, overlap, size)
        for j in 0..l {
            if used[j] {
                continue;
            }
            let overlap = query.atom(j).var_set().intersect(bound).len();
            let size = relations[j].len();
            let better = match best {
                None => true,
                Some((_, bo, bs)) => {
                    if step == 0 {
                        size < bs
                    } else {
                        overlap > bo || (overlap == bo && size < bs)
                    }
                }
            };
            if better {
                best = Some((j, overlap, size));
            }
        }
        let (j, _, _) = best.expect("an unused atom always exists");
        used[j] = true;
        bound = bound.union(query.atom(j).var_set());
        order.push(j);
    }
    order
}

/// Hash-chain key for the [`JoinIndex`] (fixed: index lookups must hash
/// exactly like index construction).
const INDEX_SALT: u64 = 0x4cf5_ad43_2745_937f;

/// Sentinel for an empty open-addressing slot.
const EMPTY_SLOT: u32 = u32::MAX;

/// A CSR-grouped hash index over one relation: row ids grouped by the
/// values at `key_cols`, stored as one contiguous `offsets + row_ids`
/// arena. Construction is two passes over the rows — keys are hashed
/// inline via [`mix64`] and resolved through an
/// open-addressing group table, with **no per-key allocation** (the legacy
/// `HashMap<Vec<u64>, Vec<u32>>` paid one key `Vec` plus one bucket `Vec`
/// per distinct key). [`JoinIndex::candidates`] returns the group's row-id
/// slice, in ascending row order, exactly matching the legacy buckets.
///
/// ```
/// use mpc_data::join::JoinIndex;
/// use mpc_data::Relation;
///
/// let rel = Relation::from_rows("S", 2, &[&[1, 5], &[2, 5], &[3, 6]]);
/// let idx = JoinIndex::build(&rel, vec![1]);
/// assert_eq!(idx.candidates(&[5]), &[0, 1]);
/// assert_eq!(idx.candidates(&[6]), &[2]);
/// assert_eq!(idx.candidates(&[7]), &[] as &[u32]);
/// ```
pub struct JoinIndex<'a> {
    relation: &'a Relation,
    /// Attribute positions forming the key (may be empty: full scan —
    /// every row is one group).
    key_cols: Vec<usize>,
    /// Group boundaries within `row_ids`: group `g` spans
    /// `row_ids[offsets[g]..offsets[g + 1]]`.
    offsets: Vec<u32>,
    /// Row ids, grouped by key, ascending within each group.
    row_ids: Vec<u32>,
    /// Open-addressing table: slot → group id (`EMPTY_SLOT` = free). The
    /// group's key is read back from its first row, so no key is stored.
    slots: Vec<u32>,
    /// `slots.len() - 1` (the table size is a power of two).
    mask: usize,
}

impl<'a> JoinIndex<'a> {
    /// Build the index of `relation` keyed on `key_cols`.
    ///
    /// # Panics
    /// Panics when the relation has ≥ `u32::MAX` rows (far beyond the
    /// simulator's scales).
    pub fn build(relation: &'a Relation, key_cols: Vec<usize>) -> JoinIndex<'a> {
        let n = relation.len();
        assert!((n as u64) < u32::MAX as u64, "relation too large to index");
        if key_cols.is_empty() || n == 0 {
            // One group holding every row (or no rows): candidates() for
            // the empty key returns the full scan.
            return JoinIndex {
                relation,
                key_cols,
                offsets: vec![0, n as u32],
                row_ids: (0..n as u32).collect(),
                slots: Vec::new(),
                mask: 0,
            };
        }

        // Pass 1: resolve each row to a group id via the open-addressing
        // table; count group sizes.
        let cap = (n * 2).next_power_of_two().max(8);
        let mask = cap - 1;
        let mut slots = vec![EMPTY_SLOT; cap];
        let mut group_rep: Vec<u32> = Vec::new(); // first row of each group
        let mut group_len: Vec<u32> = Vec::new();
        let mut row_group: Vec<u32> = Vec::with_capacity(n);
        for (i, row) in relation.rows().enumerate() {
            let mut s = (hash_cols(row, &key_cols) as usize) & mask;
            let g = loop {
                match slots[s] {
                    EMPTY_SLOT => {
                        let g = group_rep.len() as u32;
                        slots[s] = g;
                        group_rep.push(i as u32);
                        group_len.push(0);
                        break g;
                    }
                    g if rows_key_equal(relation, group_rep[g as usize], row, &key_cols) => {
                        break g;
                    }
                    _ => s = (s + 1) & mask,
                }
            };
            group_len[g as usize] += 1;
            row_group.push(g);
        }

        // Pass 2: prefix-sum offsets, then scatter row ids in ascending
        // row order (so each group's slice is ascending, matching the
        // insertion order of the legacy per-key buckets).
        let mut offsets = Vec::with_capacity(group_len.len() + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &len in &group_len {
            acc += len;
            offsets.push(acc);
        }
        let mut cursor: Vec<u32> = offsets[..group_len.len()].to_vec();
        let mut row_ids = vec![0u32; n];
        for (i, &g) in row_group.iter().enumerate() {
            row_ids[cursor[g as usize] as usize] = i as u32;
            cursor[g as usize] += 1;
        }

        JoinIndex {
            relation,
            key_cols,
            offsets,
            row_ids,
            slots,
            mask,
        }
    }

    /// The attribute positions forming the key.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Row ids whose projection on the key columns equals `key`, ascending
    /// (empty key: all rows). Returns an empty slice for absent keys.
    #[inline]
    pub fn candidates(&self, key: &[u64]) -> &[u32] {
        if self.key_cols.is_empty() {
            return &self.row_ids;
        }
        if self.slots.is_empty() {
            return &[];
        }
        let mut s = (hash_key(key) as usize) & self.mask;
        loop {
            match self.slots[s] {
                EMPTY_SLOT => return &[],
                g => {
                    let rep = self
                        .relation
                        .row(self.row_ids[self.offsets[g as usize] as usize] as usize);
                    if self.key_cols.iter().zip(key).all(|(&c, &v)| rep[c] == v) {
                        let (lo, hi) = (self.offsets[g as usize], self.offsets[g as usize + 1]);
                        return &self.row_ids[lo as usize..hi as usize];
                    }
                    s = (s + 1) & self.mask;
                }
            }
        }
    }
}

/// Hash the projection of `row` onto `cols` (chained [`mix64`]).
#[inline]
fn hash_cols(row: &[u64], cols: &[usize]) -> u64 {
    let mut h = INDEX_SALT;
    for &c in cols {
        h = mix64(row[c], h);
    }
    h
}

/// Hash an already-projected key exactly like [`hash_cols`].
#[inline]
fn hash_key(key: &[u64]) -> u64 {
    let mut h = INDEX_SALT;
    for &v in key {
        h = mix64(v, h);
    }
    h
}

/// True iff the key projections of row `a` (by id) and `row_b` agree.
#[inline]
fn rows_key_equal(rel: &Relation, a: u32, row_b: &[u64], cols: &[usize]) -> bool {
    let row_a = rel.row(a as usize);
    cols.iter().all(|&c| row_a[c] == row_b[c])
}

/// A [`JoinIndex`] bound to the relation it indexes (one per atom in visit
/// order).
struct AtomIndex<'a> {
    relation: &'a Relation,
    index: JoinIndex<'a>,
}

impl<'a> AtomIndex<'a> {
    fn build(relation: &'a Relation, key_positions: Vec<usize>) -> AtomIndex<'a> {
        AtomIndex {
            relation,
            index: JoinIndex::build(relation, key_positions),
        }
    }

    fn key_positions(&self) -> &[usize] {
        self.index.key_cols()
    }

    #[inline]
    fn candidates(&self, key: &[u64]) -> &[u32] {
        self.index.candidates(key)
    }
}

/// Evaluate `query` over `relations` (one per atom, in atom order),
/// invoking `emit` once per answer tuple (values indexed by query variable).
pub fn join_foreach(query: &Query, relations: &[&Relation], mut emit: impl FnMut(&[u64])) {
    assert_eq!(relations.len(), query.num_atoms());
    if relations.iter().any(|r| r.is_empty()) {
        return;
    }
    let order = atom_order(query, relations);

    // For each atom (in visit order) decide which of its positions are bound
    // by earlier atoms, and build the index keyed on those positions.
    let mut bound = VarSet::EMPTY;
    let mut indexes: Vec<AtomIndex> = Vec::with_capacity(order.len());
    // For checking: positions that must match the current binding but are not
    // part of the key (repeated variables within the atom).
    let mut check_positions: Vec<Vec<(usize, usize)>> = Vec::with_capacity(order.len());
    // Positions that newly bind a variable: (position, var).
    let mut bind_positions: Vec<Vec<(usize, usize)>> = Vec::with_capacity(order.len());

    for &j in &order {
        let atom = query.atom(j);
        let mut key_positions = Vec::new();
        let mut checks = Vec::new();
        let mut binds = Vec::new();
        let mut seen_here = VarSet::EMPTY;
        for (pos, &v) in atom.vars().iter().enumerate() {
            if bound.contains(v) {
                key_positions.push(pos);
            } else if seen_here.contains(v) {
                // Repeated new variable within the atom: equality check
                // against the position that bound it.
                let first = atom
                    .vars()
                    .iter()
                    .position(|&w| w == v)
                    .expect("repeated var has a first position");
                checks.push((pos, first));
            } else {
                seen_here = seen_here.insert(v);
                binds.push((pos, v));
            }
        }
        indexes.push(AtomIndex::build(relations[j], key_positions));
        check_positions.push(checks);
        bind_positions.push(binds);
        bound = bound.union(atom.var_set());
    }

    // Depth-first extension of bindings.
    let k = query.num_vars();
    let mut binding = vec![0u64; k];
    let mut key_buf: Vec<u64> = Vec::new();

    #[allow(clippy::too_many_arguments)]
    fn descend(
        depth: usize,
        order: &[usize],
        query: &Query,
        indexes: &[AtomIndex],
        check_positions: &[Vec<(usize, usize)>],
        bind_positions: &[Vec<(usize, usize)>],
        binding: &mut Vec<u64>,
        key_buf: &mut Vec<u64>,
        emit: &mut impl FnMut(&[u64]),
    ) {
        if depth == order.len() {
            emit(binding);
            return;
        }
        let j = order[depth];
        let atom = query.atom(j);
        let idx = &indexes[depth];
        key_buf.clear();
        for &pos in idx.key_positions() {
            key_buf.push(binding[atom.vars()[pos]]);
        }
        // `candidates` borrows the index, not `key_buf`, so the buffer is
        // free for reuse by deeper levels while we iterate.
        for &row_id in idx.candidates(key_buf) {
            let row = idx.relation.row(row_id as usize);
            if check_positions[depth]
                .iter()
                .any(|&(pos, first)| row[pos] != row[first])
            {
                continue;
            }
            for &(pos, var) in &bind_positions[depth] {
                binding[var] = row[pos];
            }
            descend(
                depth + 1,
                order,
                query,
                indexes,
                check_positions,
                bind_positions,
                binding,
                key_buf,
                emit,
            );
        }
    }

    descend(
        0,
        &order,
        query,
        &indexes,
        &check_positions,
        &bind_positions,
        &mut binding,
        &mut key_buf,
        &mut emit,
    );
}

/// A hash-partitioned decomposition of a join into independent sub-joins.
///
/// The sequential oracle join is the slowest piece of stress verification;
/// this splits it into `buckets` sub-joins that can run on any executor
/// (each bucket is self-contained). A partition variable `v` is chosen to
/// appear in as many atoms as possible; every row of an atom containing `v`
/// goes to the bucket hashing its `v`-value, and rows of atoms without `v`
/// are replicated to all buckets. Any answer binds `v` to a single value
/// `c`, and all rows of `v`-atoms deriving it live only in `hash(c)`'s
/// bucket — so the concatenation of all bucket outputs equals the full join
/// as a multiset, with no cross-bucket duplicates.
pub struct PartitionedJoin<'a> {
    query: &'a Query,
    /// `relations[bucket][atom]`.
    relations: Vec<Vec<Relation>>,
}

/// Partitioning hash salt (fixed: the decomposition is deterministic).
const PARTITION_SALT: u64 = 0x9a3c_51f2_0b6d_e771;

/// Decompose `query` over `relations` into `buckets` independent sub-joins
/// (see [`PartitionedJoin`]). `buckets` is clamped to at least 1; if the
/// query has no variables the whole join lands in a single bucket.
pub fn partition_join<'a>(
    query: &'a Query,
    relations: &[&Relation],
    buckets: usize,
) -> PartitionedJoin<'a> {
    assert_eq!(relations.len(), query.num_atoms());
    let buckets = buckets.max(1);
    // The variable in the most atoms minimizes replication (ties: lowest
    // variable index, so the decomposition is deterministic).
    let key_var =
        (0..query.num_vars()).max_by_key(|&v| (query.atoms_with_var(v).count(), usize::MAX - v));
    let buckets = match key_var {
        Some(v) if query.atoms_with_var(v).count() > 0 => buckets,
        _ => 1,
    };
    let mut parts: Vec<Vec<Relation>> = (0..buckets)
        .map(|_| {
            query
                .atoms()
                .iter()
                .map(|a| Relation::new(a.name(), a.arity()))
                .collect()
        })
        .collect();
    for (j, rel) in relations.iter().enumerate() {
        let key_pos = key_var.and_then(|v| query.atom(j).position_of_var(v));
        match key_pos {
            Some(pos) if buckets > 1 => {
                for row in rel.rows() {
                    let b = (crate::mix64(row[pos], PARTITION_SALT) % buckets as u64) as usize;
                    parts[b][j].push(row);
                }
            }
            _ => {
                for part in parts.iter_mut() {
                    for row in rel.rows() {
                        part[j].push(row);
                    }
                }
            }
        }
    }
    PartitionedJoin {
        query,
        relations: parts,
    }
}

impl PartitionedJoin<'_> {
    /// Number of independent sub-joins.
    pub fn num_buckets(&self) -> usize {
        self.relations.len()
    }

    /// Evaluate one bucket's sub-join, invoking `emit` per answer.
    pub fn join_bucket_foreach(&self, bucket: usize, emit: impl FnMut(&[u64])) {
        let rels: Vec<&Relation> = self.relations[bucket].iter().collect();
        join_foreach(self.query, &rels, emit);
    }

    /// Materialize one bucket's answers.
    pub fn join_bucket(&self, bucket: usize) -> AnswerSet {
        let mut out = AnswerSet::new(self.query.num_vars());
        self.join_bucket_foreach(bucket, |row| out.push(row));
        out
    }
}

/// Materialize all answers as flat rows over the query's variables.
pub fn join(query: &Query, relations: &[&Relation]) -> AnswerSet {
    let mut out = AnswerSet::new(query.num_vars());
    join_foreach(query, relations, |row| out.push(row));
    out
}

/// Count answers without materializing them.
pub fn join_count(query: &Query, relations: &[&Relation]) -> u64 {
    let mut count = 0u64;
    join_foreach(query, relations, |_| count += 1);
    count
}

/// Join a [`Database`] directly.
pub fn join_database(db: &Database) -> AnswerSet {
    let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
    join(db.query(), &rels)
}

/// Count answers of a [`Database`] directly.
pub fn join_database_count(db: &Database) -> u64 {
    let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
    join_count(db.query(), &rels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::Rng;
    use mpc_query::named;

    /// Concatenate every bucket's answers (multiset).
    fn mpc_data_answers_concat(parts: &PartitionedJoin<'_>) -> AnswerSet {
        let mut out = parts.join_bucket(0);
        for b in 1..parts.num_buckets() {
            out.append(parts.join_bucket(b));
        }
        out
    }

    #[test]
    fn two_way_join_by_hand() {
        // S1(x,z) = {(1,5),(2,5),(3,6)}, S2(y,z) = {(7,5),(8,6),(9,9)}
        // Join on z: answers (x,y,z) = (1,7,5),(2,7,5),(3,8,6).
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 5], &[2, 5], &[3, 6]]);
        let s2 = Relation::from_rows("S2", 2, &[&[7, 5], &[8, 6], &[9, 9]]);
        let mut ans = join(&q, &[&s1, &s2]);
        ans.sort_dedup();
        // Variable order: x=0, z=1, y=2 (interning order).
        let xi = q.var_index("x").unwrap();
        let yi = q.var_index("y").unwrap();
        let zi = q.var_index("z").unwrap();
        let mut expected: Vec<Vec<u64>> = vec![
            {
                let mut row = vec![0; 3];
                row[xi] = 1;
                row[yi] = 7;
                row[zi] = 5;
                row
            },
            {
                let mut row = vec![0; 3];
                row[xi] = 2;
                row[yi] = 7;
                row[zi] = 5;
                row
            },
            {
                let mut row = vec![0; 3];
                row[xi] = 3;
                row[yi] = 8;
                row[zi] = 6;
                row
            },
        ];
        expected.sort();
        assert_eq!(ans, expected);
    }

    #[test]
    fn triangle_counts_triangles() {
        // A 4-clique as three edge relations: every ordered triangle of the
        // clique appears: 4 * 3 * 2 = 24 answers.
        let q = named::cycle(3);
        let mut edges = Relation::new("E", 2);
        for a in 0..4u64 {
            for b in 0..4u64 {
                if a != b {
                    edges.push(&[a, b]);
                }
            }
        }
        let e1 = {
            let mut e = edges.clone();
            e.sort_dedup();
            e
        };
        assert_eq!(join_count(&q, &[&e1, &e1, &e1]), 24);
    }

    #[test]
    fn cartesian_product_counts_multiply() {
        let q = named::cartesian(3);
        let r1 = Relation::from_rows("S1", 1, &[&[1], &[2]]);
        let r2 = Relation::from_rows("S2", 1, &[&[5], &[6], &[7]]);
        let r3 = Relation::from_rows("S3", 1, &[&[9]]);
        assert_eq!(join_count(&q, &[&r1, &r2, &r3]), 6);
    }

    #[test]
    fn empty_relation_gives_empty_join() {
        let q = named::two_way_join();
        let s1 = Relation::new("S1", 2);
        let s2 = Relation::from_rows("S2", 2, &[&[7, 5]]);
        assert_eq!(join_count(&q, &[&s1, &s2]), 0);
    }

    #[test]
    fn repeated_variable_in_atom() {
        // q(x,y) = R(x,x,y): only rows with row[0] == row[1] survive.
        let q = mpc_query::Query::build("q", &[("R", &["x", "x", "y"])]).unwrap();
        let r = Relation::from_rows("R", 3, &[&[1, 1, 5], &[1, 2, 6], &[3, 3, 7]]);
        let mut ans = join(&q, &[&r]);
        ans.sort_dedup();
        assert_eq!(ans, vec![vec![1, 5], vec![3, 7]]);
    }

    #[test]
    fn chain_join_matches_nested_loop() {
        // Cross-check the indexed join against a brute-force nested loop on
        // random data.
        let q = named::chain(3);
        let mut rng = Rng::seed_from_u64(99);
        let r1 = generators::uniform("S1", 2, 200, 32, &mut rng);
        let r2 = generators::uniform("S2", 2, 200, 32, &mut rng);
        let r3 = generators::uniform("S3", 2, 200, 32, &mut rng);
        let fast = join_count(&q, &[&r1, &r2, &r3]);
        let mut slow = 0u64;
        for a in r1.rows() {
            for b in r2.rows() {
                if a[1] != b[0] {
                    continue;
                }
                for c in r3.rows() {
                    if b[1] == c[0] {
                        slow += 1;
                    }
                }
            }
        }
        assert_eq!(fast, slow);
    }

    #[test]
    fn join_database_wrapper() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 5]]);
        let s2 = Relation::from_rows("S2", 2, &[&[7, 5]]);
        let db = Database::new(q, vec![s1, s2], 16).unwrap();
        assert_eq!(join_database_count(&db), 1);
        assert_eq!(join_database(&db).len(), 1);
    }

    #[test]
    fn partitioned_join_is_exact_across_queries_and_bucket_counts() {
        // The concatenated bucket outputs must equal the sequential join as
        // a multiset (here compared sorted, duplicates preserved) for every
        // query shape, including the no-shared-variable cartesian where all
        // atoms but the key atom are replicated.
        let cases: Vec<(Query, usize, u64)> = vec![
            (named::two_way_join(), 400, 128),
            (named::cycle(3), 300, 32),
            (named::chain(3), 300, 64),
            (named::star(2), 300, 64),
            (named::cartesian(2), 40, 256),
        ];
        for (q, m, n) in cases {
            let mut rng = Rng::seed_from_u64(0xACE5);
            let rels: Vec<Relation> = q
                .atoms()
                .iter()
                .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
                .collect();
            let refs: Vec<&Relation> = rels.iter().collect();
            let mut expected = join(&q, &refs);
            expected.sort();
            for buckets in [1usize, 2, 7, 16] {
                let parts = partition_join(&q, &refs, buckets);
                assert_eq!(parts.num_buckets(), buckets.max(1), "{}", q.name());
                let mut got = mpc_data_answers_concat(&parts);
                got.sort();
                assert_eq!(got, expected, "{} with {buckets} buckets", q.name());
            }
        }
    }

    #[test]
    fn partitioned_join_handles_skew_and_duplicates() {
        // A single heavy value lands in one bucket; duplicate rows keep
        // their multiplicity.
        let q = named::two_way_join();
        let mut s1 = Relation::new("S1", 2);
        let mut s2 = Relation::new("S2", 2);
        for i in 0..200u64 {
            s1.push(&[i, 7]); // all of S1 shares z = 7
            s2.push(&[i % 3, 7]);
        }
        let refs = [&s1, &s2];
        let mut expected = join(&q, &refs);
        expected.sort();
        let parts = partition_join(&q, &refs, 8);
        let mut got = mpc_data_answers_concat(&parts);
        got.sort();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 200 * 200);
        // Exactly one bucket is non-empty: z = 7 hashes to a single bucket.
        let busy = (0..8).filter(|&b| !parts.join_bucket(b).is_empty()).count();
        assert_eq!(busy, 1);
    }

    #[test]
    fn expected_answer_count_matches_lemma_a1() {
        // E[|q(I)|] = n^{k-a} * prod m_j (Lemma A.1). For the two-way join:
        // k=3, a=4 => expected = m1*m2/n. Empirically average over seeds.
        let q = named::two_way_join();
        let n = 64u64;
        let (m1, m2) = (500usize, 400usize);
        let mut total = 0u64;
        let seeds = 20;
        for seed in 0..seeds {
            let mut rng = Rng::seed_from_u64(seed);
            let s1 = generators::uniform("S1", 2, m1, n, &mut rng);
            let s2 = generators::uniform("S2", 2, m2, n, &mut rng);
            total += join_count(&q, &[&s1, &s2]);
        }
        let avg = total as f64 / seeds as f64;
        let expected = m1 as f64 * m2 as f64 / n as f64;
        assert!(
            (avg - expected).abs() < expected * 0.15,
            "avg {avg} vs expected {expected}"
        );
    }
}
