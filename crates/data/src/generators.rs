//! Synthetic workload generators.
//!
//! Each generator produces the class of instances some part of the paper
//! analyzes:
//!
//! * [`uniform`] / [`uniform_set`] — iid-uniform relations, the probability
//!   space of the lower bounds (Theorem 3.5's "chosen independently and
//!   uniformly at random from all subsets of `[n]^{a_j}` with exactly `m_j`
//!   tuples");
//! * [`matching`] — every value occurs at most once per attribute, the
//!   skew-free extreme of the prior work \[4\] and of Lemma 3.1(2);
//! * [`zipf_column`] — one attribute follows a Zipf law, the standard
//!   heavy-hitter workload for Section 4;
//! * [`from_degree_sequence`] — exact degree sequences (the paper's
//!   x-statistics, Section 4.3), used to plant heavy hitters with known
//!   frequencies;
//! * [`single_value_column`] — the adversarial "all tuples share one value"
//!   instance of Example 3.3 / Lemma 3.1(4).

use crate::relation::Relation;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// `m` iid-uniform tuples over `[n]^arity` (bag semantics; duplicates
/// possible but rare when `n^arity >> m`).
pub fn uniform(name: &str, arity: usize, m: usize, n: u64, rng: &mut Rng) -> Relation {
    let mut r = Relation::with_capacity(name, arity, m);
    let mut tuple = vec![0u64; arity];
    for _ in 0..m {
        for slot in tuple.iter_mut() {
            *slot = rng.below(n);
        }
        r.push(&tuple);
    }
    r
}

/// `m` *distinct* uniform tuples over `[n]^arity` (set semantics, matching
/// the lower-bound probability space exactly). Requires `m <= n^arity`.
pub fn uniform_set(name: &str, arity: usize, m: usize, n: u64, rng: &mut Rng) -> Relation {
    let capacity = (n as u128).checked_pow(arity as u32);
    if let Some(cap) = capacity {
        assert!(
            (m as u128) <= cap,
            "cannot draw {m} distinct tuples from a domain of {cap}"
        );
    }
    let mut seen = std::collections::HashSet::with_capacity(m);
    let mut r = Relation::with_capacity(name, arity, m);
    let mut tuple = vec![0u64; arity];
    while r.len() < m {
        for slot in tuple.iter_mut() {
            *slot = rng.below(n);
        }
        if seen.insert(tuple.clone()) {
            r.push(&tuple);
        }
    }
    r
}

/// A matching relation: `m <= n` tuples where every value occurs at most
/// once in every attribute (the instances of the prior work \[4\], and the
/// premise of Lemma 3.1(2)).
pub fn matching(name: &str, arity: usize, m: usize, n: u64, rng: &mut Rng) -> Relation {
    assert!(m as u64 <= n, "a matching needs m <= n");
    let columns: Vec<Vec<u64>> = (0..arity).map(|_| rng.sample_distinct(n, m)).collect();
    let mut r = Relation::with_capacity(name, arity, m);
    let mut tuple = vec![0u64; arity];
    for i in 0..m {
        for (a, col) in columns.iter().enumerate() {
            tuple[a] = col[i];
        }
        r.push(&tuple);
    }
    r
}

/// `m` tuples where attribute `col` is Zipf(θ)-distributed over `[n]` (value
/// = rank, so value 0 is the heaviest) and the remaining attributes are
/// uniform.
pub fn zipf_column(
    name: &str,
    arity: usize,
    m: usize,
    n: u64,
    col: usize,
    theta: f64,
    rng: &mut Rng,
) -> Relation {
    assert!(col < arity);
    let zipf = Zipf::new(n as usize, theta);
    let mut r = Relation::with_capacity(name, arity, m);
    let mut tuple = vec![0u64; arity];
    for _ in 0..m {
        for (a, slot) in tuple.iter_mut().enumerate() {
            *slot = if a == col {
                zipf.sample(rng)
            } else {
                rng.below(n)
            };
        }
        r.push(&tuple);
    }
    r
}

/// Exact degree sequences: for each `(key, count)` in `degrees`, emit
/// `count` tuples whose projection on `cols` equals `key`, all other
/// attributes uniform over `[n]`. The result realizes precisely the
/// x-statistics `m_j(h_j) = count` of Section 4.3.
pub fn from_degree_sequence(
    name: &str,
    arity: usize,
    cols: &[usize],
    degrees: &[(Vec<u64>, usize)],
    n: u64,
    rng: &mut Rng,
) -> Relation {
    assert!(cols.iter().all(|&c| c < arity));
    let total: usize = degrees.iter().map(|(_, c)| c).sum();
    let mut r = Relation::with_capacity(name, arity, total);
    let mut tuple = vec![0u64; arity];
    for (key, count) in degrees {
        assert_eq!(key.len(), cols.len(), "degree key arity mismatch");
        for _ in 0..*count {
            for slot in tuple.iter_mut() {
                *slot = rng.below(n);
            }
            for (pos, &c) in cols.iter().enumerate() {
                tuple[c] = key[pos];
            }
            r.push(&tuple);
        }
    }
    r
}

/// The adversarial instance of Example 3.3 / Lemma 3.1(4): all `m` tuples
/// share the single value `value` at attribute `col`; other attributes are
/// distinct-ish uniform.
pub fn single_value_column(
    name: &str,
    arity: usize,
    m: usize,
    n: u64,
    col: usize,
    value: u64,
    rng: &mut Rng,
) -> Relation {
    from_degree_sequence(name, arity, &[col], &[(vec![value], m)], n, rng)
}

/// A Zipf degree sequence with *exact* counts summing to `m`: value `v`
/// (rank `v+1`) gets `floor(m·F(v+1)) - floor(m·F(v))` tuples, where `F` is
/// the Zipf CDF (cumulative rounding). Useful when an experiment needs the
/// planted frequencies to be known exactly rather than sampled. Zero-count
/// tail values are omitted.
pub fn zipf_degrees(m: usize, n: u64, theta: f64) -> Vec<(Vec<u64>, usize)> {
    let zipf = Zipf::new(n as usize, theta);
    let mut degrees: Vec<(Vec<u64>, usize)> = Vec::new();
    let mut cum = 0.0f64;
    let mut assigned = 0usize;
    for v in 0..n as usize {
        cum += zipf.pmf(v);
        // Clamp against float drift so the final floor lands exactly on m.
        let target = (m as f64 * cum.min(1.0)).floor() as usize;
        let c = target.saturating_sub(assigned).min(m - assigned);
        if c > 0 {
            degrees.push((vec![v as u64], c));
            assigned += c;
        }
        if assigned == m {
            break;
        }
    }
    // Float shortfall of at most a few tuples: top up the head.
    let len = degrees.len().max(1);
    let mut v = 0usize;
    while assigned < m {
        degrees[v % len].1 += 1;
        assigned += 1;
        v += 1;
    }
    debug_assert_eq!(degrees.iter().map(|(_, c)| c).sum::<usize>(), m);
    degrees
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_shape() {
        let mut rng = Rng::seed_from_u64(1);
        let r = uniform("S", 2, 1000, 1 << 16, &mut rng);
        assert_eq!(r.len(), 1000);
        assert_eq!(r.arity(), 2);
        assert!(r.rows().all(|row| row.iter().all(|&v| v < 1 << 16)));
    }

    #[test]
    fn uniform_set_distinct() {
        let mut rng = Rng::seed_from_u64(2);
        let r = uniform_set("S", 2, 500, 64, &mut rng);
        assert_eq!(r.len(), 500);
        assert!(r.is_set());
    }

    #[test]
    #[should_panic(expected = "distinct tuples")]
    fn uniform_set_overfull_panics() {
        let mut rng = Rng::seed_from_u64(2);
        let _ = uniform_set("S", 1, 100, 10, &mut rng);
    }

    #[test]
    fn matching_has_degree_one_everywhere() {
        let mut rng = Rng::seed_from_u64(3);
        let r = matching("S", 2, 300, 1000, &mut rng);
        assert_eq!(r.len(), 300);
        assert_eq!(r.max_frequency(&[0]), 1);
        assert_eq!(r.max_frequency(&[1]), 1);
    }

    #[test]
    fn zipf_column_is_skewed() {
        let mut rng = Rng::seed_from_u64(4);
        let r = zipf_column("S", 2, 10_000, 1 << 12, 1, 1.2, &mut rng);
        // Rank-0 frequency should dwarf the uniform column's max frequency.
        let skewed = r.max_frequency(&[1]);
        let flat = r.max_frequency(&[0]);
        assert!(
            skewed > 10 * flat,
            "zipf col max {skewed} vs uniform col max {flat}"
        );
    }

    #[test]
    fn degree_sequence_exact() {
        let mut rng = Rng::seed_from_u64(5);
        let degrees = vec![(vec![7u64], 100), (vec![8], 50), (vec![9], 1)];
        let r = from_degree_sequence("S", 2, &[1], &degrees, 1 << 10, &mut rng);
        assert_eq!(r.len(), 151);
        let f = r.frequencies(&[1]);
        assert_eq!(f[&vec![7]], 100);
        assert_eq!(f[&vec![8]], 50);
        assert_eq!(f[&vec![9]], 1);
    }

    #[test]
    fn single_value_column_is_degenerate() {
        let mut rng = Rng::seed_from_u64(6);
        let r = single_value_column("S", 2, 200, 1 << 10, 1, 42, &mut rng);
        assert_eq!(r.len(), 200);
        assert_eq!(r.max_frequency(&[1]), 200);
        assert!(r.rows().all(|row| row[1] == 42));
    }

    #[test]
    fn zipf_degrees_sum_to_m() {
        for theta in [0.0, 0.8, 1.5] {
            let deg = zipf_degrees(10_000, 1 << 14, theta);
            let total: usize = deg.iter().map(|(_, c)| c).sum();
            assert_eq!(total, 10_000, "theta {theta}");
        }
    }

    #[test]
    fn zipf_degrees_monotone_head() {
        let deg = zipf_degrees(10_000, 1 << 14, 1.0);
        // Counts non-increasing over the planted head.
        let head: Vec<usize> = deg.iter().map(|(_, c)| *c).take(10).collect();
        for w in head.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let mk = |seed| {
            let mut rng = Rng::seed_from_u64(seed);
            uniform("S", 2, 100, 1 << 8, &mut rng)
        };
        assert_eq!(mk(10), mk(10));
        assert_ne!(mk(10), mk(11));
    }
}
