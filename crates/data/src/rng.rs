//! Deterministic pseudo-randomness: xoshiro256** seeded via SplitMix64.
//!
//! Every random choice in the workspace — hash functions, generated
//! relations, algorithm coin flips — flows through this generator, so every
//! experiment in `EXPERIMENTS.md` is reproducible bit-for-bit from its seed.
//! (The MPC model's "random bits available to all servers, computed
//! independently of the input data" is exactly a shared seed.)

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 256-bit state.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding and as a standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A stateless 64-bit mixing function (a single SplitMix64 round applied to
/// `x ^ key`). This is the "perfectly random hash function" stand-in used by
/// the simulator: independent keys give (empirically) independent hash
/// functions per variable, which is what Lemma 3.1's analysis needs.
#[inline]
pub fn mix64(x: u64, key: u64) -> u64 {
    let mut s = x ^ key;
    splitmix64(&mut s)
}

impl Rng {
    /// Seed deterministically from a single `u64`.
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)` via Lemire's multiply-shift with
    /// rejection (unbiased).
    ///
    /// # Panics
    /// Panics when `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fork a child generator with an independent stream (keyed by `tag`).
    pub fn fork(&mut self, tag: u64) -> Rng {
        let base = self.next_u64() ^ mix64(tag, 0xA24B_AED4_963E_E407);
        Rng::seed_from_u64(base)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct values uniformly from `[0, n)` (Floyd's
    /// algorithm); order is unspecified but deterministic.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(
            k as u64 <= n,
            "cannot sample {k} distinct values from [0,{n})"
        );
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k as u64)..n {
            let t = self.below(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range_and_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        let trials = 100_000;
        for _ in 0..trials {
            let v = rng.below(10) as usize;
            counts[v] += 1;
        }
        for &c in &counts {
            let expected = trials / 10;
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "bucket count {c} too far from {expected}"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn sample_distinct_is_distinct() {
        let mut rng = Rng::seed_from_u64(5);
        let sample = rng.sample_distinct(100, 40);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 40);
        assert!(sample.iter().all(|&v| v < 100));
    }

    #[test]
    fn sample_distinct_full_population() {
        let mut rng = Rng::seed_from_u64(5);
        let mut sample = rng.sample_distinct(10, 10);
        sample.sort_unstable();
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = Rng::seed_from_u64(9);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn mix64_keys_give_distinct_functions() {
        // Same input, different keys -> different outputs (w.h.p.).
        let collisions = (0..1000u64).filter(|&x| mix64(x, 1) == mix64(x, 2)).count();
        assert_eq!(collisions, 0);
    }
}
