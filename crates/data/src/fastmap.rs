//! `mix64`-keyed hashing: [`FastMap`] / [`FastSet`].
//!
//! The standard library's default hasher (SipHash-1-3) is keyed per
//! process and designed to resist hash-flooding from untrusted input. The
//! simulator's maps are keyed by *its own* tuples — `Vec<u64>` projections,
//! attribute-position vectors — so that robustness buys nothing and costs
//! a long per-byte inner loop on every probe. [`FastHasher`] instead folds
//! whole 64-bit words through [`mix64`] (one SplitMix64
//! round per word), which is the same mixing quality the simulator already
//! trusts for its routing hash functions, at a fraction of the cost.
//!
//! Because the hasher is stateless (no per-process key), iteration order of
//! a [`FastMap`] is deterministic for a given insertion sequence — which
//! every algorithm here must tolerate anyway (results are pinned across
//! executors), and which makes planner behaviour reproducible run to run.
//!
//! ```
//! use mpc_data::fastmap::FastMap;
//!
//! let mut freq: FastMap<Vec<u64>, usize> = FastMap::default();
//! *freq.entry(vec![7, 9]).or_insert(0) += 1;
//! // Lookups borrow as a slice: no key materialization needed.
//! assert_eq!(freq.get([7u64, 9].as_slice()), Some(&1));
//! ```

use crate::rng::mix64;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Initial hasher state (an arbitrary odd constant; every written word is
/// folded into it through [`mix64`]).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// A [`HashMap`] keyed by the [`mix64`]-based [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A [`HashSet`] keyed by the [`mix64`]-based [`FastHasher`].
pub type FastSet<K> = HashSet<K, FastBuildHasher>;

/// [`BuildHasher`] for [`FastHasher`] (stateless, so hashes are identical
/// across maps, runs, and processes).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FastBuildHasher;

impl BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher { state: SEED }
    }
}

/// Word-at-a-time hasher: every written 64-bit word passes through one
/// [`mix64`] round chained on the running state.
#[derive(Clone, Debug)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Fold the remainder length in so "ab" and "ab\0" differ.
            self.write_u64(u64::from_le_bytes(buf) ^ ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.state = mix64(x, self.state);
    }

    #[inline]
    fn write_u32(&mut self, x: u32) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_u8(&mut self, x: u8) {
        self.write_u64(x as u64);
    }

    #[inline]
    fn write_usize(&mut self, x: usize) {
        self.write_u64(x as u64);
    }
}

/// Project `tuple` onto attribute positions `cols` and hand the key to `f`
/// **without heap-allocating it** (a stack buffer covers every realistic
/// arity; wider projections fall back to one `Vec`). This is the lookup-side
/// companion of [`FastMap`]s keyed by `Vec<u64>` projections: routing hot
/// loops probe with `map.get(key)` where `key: &[u64]` borrows the stack
/// buffer.
///
/// ```
/// use mpc_data::fastmap::with_projected_key;
///
/// let tuple = [10u64, 20, 30];
/// let key_len = with_projected_key(&tuple, &[2, 0], |key| {
///     assert_eq!(key, &[30, 10]);
///     key.len()
/// });
/// assert_eq!(key_len, 2);
/// ```
#[inline]
pub fn with_projected_key<R>(tuple: &[u64], cols: &[usize], f: impl FnOnce(&[u64]) -> R) -> R {
    if cols.len() <= 8 {
        let mut buf = [0u64; 8];
        for (i, &c) in cols.iter().enumerate() {
            buf[i] = tuple[c];
        }
        f(&buf[..cols.len()])
    } else {
        let key: Vec<u64> = cols.iter().map(|&c| tuple[c]).collect();
        f(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher.hash_one(v)
    }

    #[test]
    fn vec_and_slice_hash_identically() {
        // HashMap<Vec<u64>, _>::get::<[u64]> relies on this.
        let v: Vec<u64> = vec![1, 2, 3];
        assert_eq!(hash_of(&v), hash_of(&v.as_slice()));
    }

    #[test]
    fn distinct_keys_hash_distinctly() {
        let keys: Vec<Vec<u64>> = (0..1000u64).map(|i| vec![i, i ^ 0xFF]).collect();
        let hashes: FastSet<u64> = keys.iter().map(hash_of).collect();
        assert_eq!(hashes.len(), keys.len(), "collisions among 1000 keys");
    }

    #[test]
    fn length_is_part_of_the_hash() {
        assert_ne!(hash_of(&vec![0u64]), hash_of(&vec![0u64, 0]));
        assert_ne!(hash_of(&Vec::<u64>::new()), hash_of(&vec![0u64]));
    }

    #[test]
    fn byte_writes_fold_remainders() {
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
        assert_ne!(hash_of(&"abcdefgh"), hash_of(&"abcdefghi"));
    }

    #[test]
    fn map_basics_and_slice_lookup() {
        let mut m: FastMap<Vec<u64>, usize> = FastMap::default();
        for i in 0..100u64 {
            m.insert(vec![i, i + 1], i as usize);
        }
        assert_eq!(m.len(), 100);
        assert_eq!(m.get([7u64, 8].as_slice()), Some(&7));
        assert_eq!(m.get([7u64, 9].as_slice()), None);
    }

    #[test]
    fn projected_key_matches_manual_projection() {
        let tuple = [5u64, 6, 7, 8];
        with_projected_key(&tuple, &[3, 1], |key| assert_eq!(key, &[8, 6]));
        with_projected_key(&tuple, &[], |key| assert!(key.is_empty()));
        // Wide fallback path.
        let wide: Vec<u64> = (0..12).collect();
        let cols: Vec<usize> = (0..12).collect();
        with_projected_key(&wide, &cols, |key| assert_eq!(key, wide.as_slice()));
    }
}
