//! Flat, row-major answer storage.
//!
//! Every algorithm in the workspace ultimately produces a set of answer
//! rows over the query's variables. Materializing them as `Vec<Vec<u64>>`
//! costs one heap allocation per answer and a pointer-chasing sort;
//! [`AnswerSet`] stores all rows contiguously (`arity` + one flat `Vec`),
//! so collection is an `extend_from_slice`, the canonicalizing
//! [`AnswerSet::sort_dedup`] sorts slices in place, and iteration is
//! cache-linear. The paper's cost model counts tuples, not allocator
//! round-trips — the simulator's data plane shouldn't either.
//!
//! ```
//! use mpc_data::AnswerSet;
//!
//! let mut ans = AnswerSet::new(2);
//! ans.push(&[3, 1]);
//! ans.push(&[1, 2]);
//! ans.push(&[3, 1]); // duplicate
//! ans.sort_dedup();
//! assert_eq!(ans.len(), 2);
//! assert_eq!(ans.row(0), &[1, 2]);
//! assert_eq!(ans, vec![vec![1, 2], vec![3, 1]]); // nested-vec comparisons work
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide accumulator behind [`rows_materialized_total`].
static ROWS_MATERIALIZED: AtomicU64 = AtomicU64::new(0);

/// Total answer rows materialized into [`AnswerSet`]s in this process (all
/// threads; [`AnswerSet::push_repeat`] counts every copy). The bench
/// harness samples it around a run to report `rows_materialized_per_iter`:
/// aggregate pushdown keeps the delta near zero while the
/// materialize-then-fold baseline grows with the join's output size.
/// Deltas of this counter are meaningful, absolute values are not.
pub fn rows_materialized_total() -> u64 {
    ROWS_MATERIALIZED.load(Ordering::Relaxed)
}

/// A set of fixed-arity `u64` rows in one contiguous allocation.
///
/// The type deliberately mirrors the slice of `Vec<Vec<u64>>` the workspace
/// historically used: [`AnswerSet::rows`] iterates `&[u64]` rows,
/// [`AnswerSet::sort_dedup`] is lexicographic sort + dedup, and equality
/// against nested vectors is provided for tests ([`AnswerSet::to_nested`]
/// is the full escape hatch).
#[derive(Clone, PartialEq, Eq)]
pub struct AnswerSet {
    arity: usize,
    /// Row count, tracked explicitly so `arity == 0` (boolean queries)
    /// still counts rows.
    rows: usize,
    data: Vec<u64>,
}

impl AnswerSet {
    /// New empty set of `arity`-wide rows.
    pub fn new(arity: usize) -> AnswerSet {
        AnswerSet {
            arity,
            rows: 0,
            data: Vec::new(),
        }
    }

    /// New empty set with room for `rows` rows.
    pub fn with_capacity(arity: usize, rows: usize) -> AnswerSet {
        AnswerSet {
            arity,
            rows: 0,
            data: Vec::with_capacity(arity * rows),
        }
    }

    /// Build from nested rows (tests and the migration escape hatch).
    ///
    /// # Panics
    /// Panics when a row's length differs from `arity`.
    pub fn from_nested(arity: usize, rows: &[Vec<u64>]) -> AnswerSet {
        let mut out = AnswerSet::with_capacity(arity, rows.len());
        for row in rows {
            out.push(row);
        }
        out
    }

    /// Row width (the query's variable count).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row.
    ///
    /// # Panics
    /// Panics when `row.len() != arity`.
    #[inline]
    pub fn push(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.arity, "answer arity mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
        ROWS_MATERIALIZED.fetch_add(1, Ordering::Relaxed);
    }

    /// Append `times` copies of one row — the multiplicity-aware emit path
    /// of the dynamic join, which reports each distinct binding once with
    /// the number of row combinations deriving it. `times == 0` appends
    /// nothing; the copies come from doubling `extend_from_within` calls,
    /// so the cost is one slice append plus O(log times) memcpys.
    ///
    /// # Panics
    /// Panics when `row.len() != arity`.
    #[inline]
    pub fn push_repeat(&mut self, row: &[u64], times: u64) {
        assert_eq!(row.len(), self.arity, "answer arity mismatch");
        if times == 0 {
            return;
        }
        let start = self.data.len();
        self.data.extend_from_slice(row);
        let mut have = 1u64;
        while have < times {
            let copy = (times - have).min(have);
            self.data
                .extend_from_within(start..start + copy as usize * self.arity);
            have += copy;
        }
        self.rows += times as usize;
        ROWS_MATERIALIZED.fetch_add(times, Ordering::Relaxed);
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[u64] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.arity..(i + 1) * self.arity]
    }

    /// The first row, if any.
    pub fn first(&self) -> Option<&[u64]> {
        (self.rows > 0).then(|| self.row(0))
    }

    /// Iterate all rows as slices (no allocation; [`Rows`] is a plain
    /// cursor).
    pub fn rows(&self) -> Rows<'_> {
        Rows { set: self, i: 0 }
    }

    /// Append every row of `other`, preserving order (the merge step of
    /// parallel collection).
    ///
    /// # Panics
    /// Panics when the arities differ.
    pub fn append(&mut self, other: AnswerSet) {
        assert_eq!(
            self.arity, other.arity,
            "cannot append arity-{} answers to arity-{}",
            other.arity, self.arity
        );
        self.rows += other.rows;
        self.data.extend(other.data);
    }

    /// Sort rows lexicographically in place, keeping duplicates (multiset
    /// comparisons; set semantics want [`AnswerSet::sort_dedup`]).
    pub fn sort(&mut self) {
        match self.arity {
            0 => {}
            1 => self.data.sort_unstable(),
            arity => {
                let mut rows: Vec<&[u64]> = self.data.chunks_exact(arity).collect();
                rows.sort_unstable();
                let mut out = Vec::with_capacity(self.data.len());
                for row in &rows {
                    out.extend_from_slice(row);
                }
                self.data = out;
            }
        }
    }

    /// Sort rows lexicographically and remove duplicates, in place — the
    /// canonical form every answer-set comparison in the workspace uses.
    /// Arity-1 sets sort the flat storage directly; wider rows sort one
    /// index of row slices (a single allocation, not one per row).
    pub fn sort_dedup(&mut self) {
        match self.arity {
            0 => {
                // All rows are the empty tuple.
                self.rows = self.rows.min(1);
            }
            1 => {
                self.data.sort_unstable();
                self.data.dedup();
                self.rows = self.data.len();
            }
            arity => {
                let mut rows: Vec<&[u64]> = self.data.chunks_exact(arity).collect();
                rows.sort_unstable();
                rows.dedup();
                let mut out = Vec::with_capacity(rows.len() * arity);
                for row in &rows {
                    out.extend_from_slice(row);
                }
                self.rows = rows.len();
                self.data = out;
            }
        }
    }

    /// Number of *distinct* rows, counted by sorting and run-length
    /// scanning — the flat storage is never rebuilt (unlike
    /// [`AnswerSet::sort_dedup`]): arity-1 sets sort the storage in place,
    /// wider sets sort only a slice index. Row order may change (arity-1);
    /// the row *multiset* never does.
    pub fn sorted_distinct_count(&mut self) -> usize {
        match self.arity {
            0 => self.rows.min(1),
            1 => {
                self.data.sort_unstable();
                self.data.len() - self.data.windows(2).filter(|w| w[0] == w[1]).count()
            }
            arity => {
                let mut rows: Vec<&[u64]> = self.data.chunks_exact(arity).collect();
                rows.sort_unstable();
                rows.len() - rows.windows(2).filter(|w| w[0] == w[1]).count()
            }
        }
    }

    /// Materialize as nested vectors (the escape hatch for assertions and
    /// interop; everything hot should stay on [`AnswerSet::rows`]).
    pub fn to_nested(&self) -> Vec<Vec<u64>> {
        self.rows().map(|r| r.to_vec()).collect()
    }
}

/// Borrowing row iterator of an [`AnswerSet`] (see [`AnswerSet::rows`]).
#[derive(Clone, Debug)]
pub struct Rows<'a> {
    set: &'a AnswerSet,
    i: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [u64];

    #[inline]
    fn next(&mut self) -> Option<&'a [u64]> {
        if self.i >= self.set.rows {
            return None;
        }
        let row = &self.set.data[self.i * self.set.arity..(self.i + 1) * self.set.arity];
        self.i += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.set.rows - self.i;
        (left, Some(left))
    }
}

impl ExactSizeIterator for Rows<'_> {}

impl std::ops::Index<usize> for AnswerSet {
    type Output = [u64];

    fn index(&self, i: usize) -> &[u64] {
        self.row(i)
    }
}

impl<'a> IntoIterator for &'a AnswerSet {
    type Item = &'a [u64];
    type IntoIter = Rows<'a>;

    fn into_iter(self) -> Rows<'a> {
        self.rows()
    }
}

/// Row-wise equality against nested vectors (test ergonomics; arity of an
/// empty nested vector is unknowable, so only rows are compared).
impl PartialEq<Vec<Vec<u64>>> for AnswerSet {
    fn eq(&self, other: &Vec<Vec<u64>>) -> bool {
        self.len() == other.len() && self.rows().zip(other).all(|(a, b)| a == b.as_slice())
    }
}

impl PartialEq<AnswerSet> for Vec<Vec<u64>> {
    fn eq(&self, other: &AnswerSet) -> bool {
        other == self
    }
}

impl PartialEq<&[Vec<u64>]> for AnswerSet {
    fn eq(&self, other: &&[Vec<u64>]) -> bool {
        self.len() == other.len()
            && self
                .rows()
                .zip(other.iter())
                .all(|(a, b)| a == b.as_slice())
    }
}

impl fmt::Debug for AnswerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const SHOWN: usize = 20;
        write!(f, "AnswerSet(arity {}, {} rows", self.arity, self.rows)?;
        if !self.is_empty() {
            write!(f, ": ")?;
            f.debug_list().entries(self.rows().take(SHOWN)).finish()?;
            if self.rows > SHOWN {
                write!(f, " … +{} more", self.rows - SHOWN)?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_len_and_iteration() {
        let mut a = AnswerSet::new(3);
        assert!(a.is_empty());
        a.push(&[1, 2, 3]);
        a.push(&[4, 5, 6]);
        assert_eq!(a.len(), 2);
        assert_eq!(a.arity(), 3);
        assert_eq!(a.row(1), &[4, 5, 6]);
        assert_eq!(a[0], [1, 2, 3]);
        assert_eq!(a.first(), Some([1u64, 2, 3].as_slice()));
        let collected: Vec<&[u64]> = a.rows().collect();
        assert_eq!(collected.len(), 2);
        let via_iter: Vec<&[u64]> = (&a).into_iter().collect();
        assert_eq!(collected, via_iter);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        AnswerSet::new(2).push(&[1]);
    }

    #[test]
    fn push_repeat_matches_repeated_push() {
        let mut a = AnswerSet::new(2);
        a.push_repeat(&[1, 2], 0);
        assert!(a.is_empty());
        a.push_repeat(&[1, 2], 1);
        a.push_repeat(&[3, 4], 5);
        let mut b = AnswerSet::new(2);
        b.push(&[1, 2]);
        for _ in 0..5 {
            b.push(&[3, 4]);
        }
        assert_eq!(a, b);

        // Zero-arity rows still count.
        let mut z = AnswerSet::new(0);
        z.push_repeat(&[], 7);
        assert_eq!(z.len(), 7);
    }

    #[test]
    fn sort_keeps_duplicates() {
        let mut a = AnswerSet::from_nested(2, &[vec![3, 1], vec![1, 2], vec![3, 1]]);
        a.sort();
        assert_eq!(a, vec![vec![1, 2], vec![3, 1], vec![3, 1]]);
        let mut one = AnswerSet::from_nested(1, &[vec![4], vec![2], vec![4]]);
        one.sort();
        assert_eq!(one, vec![vec![2], vec![4], vec![4]]);
    }

    #[test]
    fn sort_dedup_canonicalizes() {
        let mut a = AnswerSet::from_nested(2, &[vec![3, 1], vec![1, 2], vec![3, 1], vec![0, 9]]);
        a.sort_dedup();
        assert_eq!(a, vec![vec![0, 9], vec![1, 2], vec![3, 1]]);
    }

    #[test]
    fn sort_dedup_arity_one_uses_flat_path() {
        let mut a = AnswerSet::from_nested(1, &[vec![5], vec![1], vec![5], vec![3]]);
        a.sort_dedup();
        assert_eq!(a, vec![vec![1], vec![3], vec![5]]);
    }

    #[test]
    fn sort_dedup_handles_empty_and_all_duplicates() {
        let mut empty = AnswerSet::new(2);
        empty.sort_dedup();
        assert!(empty.is_empty());

        let mut dup = AnswerSet::new(2);
        for _ in 0..50 {
            dup.push(&[7, 7]);
        }
        dup.sort_dedup();
        assert_eq!(dup, vec![vec![7, 7]]);
    }

    #[test]
    fn zero_arity_rows_count_and_collapse() {
        let mut a = AnswerSet::new(0);
        a.push(&[]);
        a.push(&[]);
        assert_eq!(a.len(), 2);
        a.sort_dedup();
        assert_eq!(a.len(), 1);
        assert_eq!(a.row(0), &[] as &[u64]);
    }

    #[test]
    fn append_concatenates_in_order() {
        let mut a = AnswerSet::from_nested(2, &[vec![1, 2]]);
        let b = AnswerSet::from_nested(2, &[vec![3, 4], vec![5, 6]]);
        a.append(b);
        assert_eq!(a, vec![vec![1, 2], vec![3, 4], vec![5, 6]]);
    }

    #[test]
    #[should_panic(expected = "cannot append arity-1 answers to arity-2")]
    fn append_arity_mismatch_panics() {
        AnswerSet::new(2).append(AnswerSet::new(1));
    }

    #[test]
    fn sorted_distinct_count_matches_sort_dedup_len() {
        for (arity, rows) in [
            (1usize, vec![vec![5u64], vec![1], vec![5], vec![3], vec![1]]),
            (2, vec![vec![3, 1], vec![1, 2], vec![3, 1], vec![0, 9]]),
            (2, vec![]),
            (2, vec![vec![7, 7]; 10]),
        ] {
            let mut a = AnswerSet::from_nested(arity, &rows);
            let mut b = a.clone();
            b.sort_dedup();
            assert_eq!(a.sorted_distinct_count(), b.len(), "arity {arity}");
            assert_eq!(a.len(), rows.len(), "count must not drop rows");
        }
        let mut zero = AnswerSet::new(0);
        zero.push(&[]);
        zero.push(&[]);
        assert_eq!(zero.sorted_distinct_count(), 1);
    }

    #[test]
    fn rows_materialized_probe_accumulates() {
        let before = rows_materialized_total();
        let mut a = AnswerSet::new(2);
        a.push(&[1, 2]);
        a.push_repeat(&[3, 4], 5);
        a.push_repeat(&[5, 6], 0);
        // Other tests run in the same process; the global only ever grows.
        assert!(rows_materialized_total() - before >= 6);
    }

    #[test]
    fn nested_round_trip_and_equality() {
        let rows = vec![vec![9, 8], vec![7, 6]];
        let a = AnswerSet::from_nested(2, &rows);
        assert_eq!(a.to_nested(), rows);
        assert_eq!(a, rows);
        assert_eq!(rows, a);
        assert_eq!(a, rows.as_slice());
        assert_ne!(a, vec![vec![9, 8]]);
    }

    #[test]
    fn debug_truncates_large_sets() {
        let mut a = AnswerSet::new(1);
        for i in 0..100 {
            a.push(&[i]);
        }
        let dbg = format!("{a:?}");
        assert!(dbg.contains("100 rows"), "{dbg}");
        assert!(dbg.contains("+80 more"), "{dbg}");
    }
}
