//! Zipf (power-law) sampling for skewed attribute generation.
//!
//! A Zipf distribution with exponent `θ` over ranks `1..=n` assigns rank `r`
//! probability proportional to `1/r^θ`. `θ = 0` is uniform; growing `θ`
//! concentrates mass on low ranks — the canonical model for the heavy
//! hitters the paper's Section 4 is about (at `θ >= 1` the top rank's
//! expected frequency exceeds the paper's `m/p` heaviness threshold for any
//! realistic `p`).

use crate::rng::Rng;

/// A sampler for the Zipf distribution over `[0, n)` (value `v` has rank
/// `v + 1`), using an exact precomputed CDF with binary search.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build a sampler over `n` values with exponent `theta >= 0`.
    ///
    /// # Panics
    /// Panics when `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0 && theta.is_finite(), "invalid Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += (r as f64).powf(-theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf }
    }

    /// Number of values.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Probability of value `v`.
    pub fn pmf(&self, v: usize) -> f64 {
        if v == 0 {
            self.cdf[0]
        } else {
            self.cdf[v] - self.cdf[v - 1]
        }
    }

    /// Sample one value in `[0, n)`.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.f64();
        // First index with cdf >= u.
        let mut lo = 0usize;
        let mut hi = self.cdf.len() - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.cdf[mid] < u {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo as u64
    }

    /// Expected frequency of the heaviest value among `m` samples.
    pub fn expected_top_frequency(&self, m: usize) -> f64 {
        self.pmf(0) * m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        for v in 0..10 {
            assert!((z.pmf(v) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one() {
        for theta in [0.0, 0.5, 1.0, 2.0] {
            let z = Zipf::new(100, theta);
            let total: f64 = (0..100).map(|v| z.pmf(v)).sum();
            assert!((total - 1.0).abs() < 1e-9, "theta={theta}: total {total}");
        }
    }

    #[test]
    fn pmf_is_decreasing() {
        let z = Zipf::new(50, 1.2);
        for v in 1..50 {
            assert!(z.pmf(v) <= z.pmf(v - 1) + 1e-15);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn samples_match_pmf() {
        let z = Zipf::new(20, 1.0);
        let mut rng = Rng::seed_from_u64(123);
        let trials = 200_000;
        let mut counts = [0usize; 20];
        for _ in 0..trials {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for v in 0..20 {
            let expected = z.pmf(v) * trials as f64;
            let got = counts[v] as f64;
            // 5-sigma-ish binomial tolerance.
            let tol = 5.0 * expected.sqrt() + 5.0;
            assert!(
                (got - expected).abs() < tol,
                "value {v}: got {got}, expected {expected}"
            );
        }
    }

    #[test]
    fn high_theta_concentrates() {
        let z = Zipf::new(1000, 2.0);
        // P(0) ~ 1/zeta(2) ~ 0.6.
        assert!(z.pmf(0) > 0.5);
        assert!(z.expected_top_frequency(1_000_000) > 500_000.0);
    }

    #[test]
    fn sample_range() {
        let z = Zipf::new(5, 1.5);
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }
}
