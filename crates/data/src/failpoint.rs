//! A zero-cost-when-disabled failpoint registry for chaos testing.
//!
//! Named sites in the hot paths call [`hit`]; with no failpoints
//! configured that is a single relaxed atomic load and a predicted branch.
//! Sites are armed either from the `MPCSKEW_FAILPOINTS` environment
//! variable (read once, on the first hit) or programmatically via
//! [`configure_str`] / [`clear`] from tests.
//!
//! The configuration grammar is a comma-separated list of
//! `site:action[:arg]` triples:
//!
//! ```text
//! MPCSKEW_FAILPOINTS=shuffle:panic:0.01,local_join:delay:5ms
//! ```
//!
//! * `panic[:probability]` — unwind with a recognizable `String` payload
//!   (`failpoint `site` injected panic`); the probability (default 1)
//!   is evaluated by a deterministic per-site counter RNG, so a given
//!   configuration fires on exactly the same hits in every run.
//! * `delay[:duration]` — sleep for the duration (default `1ms`; accepts
//!   `ns`/`us`/`ms`/`s` suffixes) on every hit.
//!
//! The sites this workspace registers: `shuffle` (per routed chunk),
//! `merge` (per merged chunk on the consuming thread), `local_join` (per
//! local join evaluation). [`fires`] reports how many times a site has
//! fired, for tests asserting an injection actually happened.

use crate::rng::mix64;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;
use std::time::Duration;

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

/// Fast-path gate: UNINIT until the first hit (or explicit configuration),
/// then OFF or ON.
static STATE: AtomicU8 = AtomicU8::new(UNINIT);

static REGISTRY: Mutex<Vec<Site>> = Mutex::new(Vec::new());

/// Seed of the deterministic per-site coin flips.
const FAILPOINT_SEED: u64 = 0x5eed_fa11_9075_c0de;

#[derive(Debug)]
struct Site {
    name: String,
    action: Action,
    /// `panic` fires when `mix64(seed ^ hits) < threshold`; probability 1
    /// stores `u64::MAX` and always fires.
    threshold: u64,
    hits: u64,
    fires: u64,
}

#[derive(Clone, Copy, Debug)]
enum Action {
    Panic,
    Delay(Duration),
}

/// Mark a named failpoint site. Free when no failpoints are configured.
#[inline]
pub fn hit(site: &str) {
    if STATE.load(Ordering::Relaxed) == OFF {
        return;
    }
    hit_slow(site);
}

#[cold]
fn hit_slow(site: &str) {
    if STATE.load(Ordering::Relaxed) == UNINIT {
        init_from_env();
        if STATE.load(Ordering::Relaxed) == OFF {
            return;
        }
    }
    let action = {
        let mut reg = REGISTRY.lock().unwrap_or_else(|p| p.into_inner());
        let Some(s) = reg.iter_mut().find(|s| s.name == site) else {
            return;
        };
        let roll = mix64(s.hits.wrapping_mul(0x9e37_79b9_7f4a_7c15), FAILPOINT_SEED);
        s.hits += 1;
        if s.threshold != u64::MAX && roll >= s.threshold {
            return;
        }
        s.fires += 1;
        s.action
    };
    match action {
        Action::Panic => std::panic::panic_any(format!("failpoint `{site}` injected panic")),
        Action::Delay(d) => std::thread::sleep(d),
    }
}

fn init_from_env() {
    let spec = std::env::var("MPCSKEW_FAILPOINTS").unwrap_or_default();
    // configure_str also resolves the UNINIT state, racing initializers
    // included: last writer wins with identical input.
    configure_str(&spec);
}

/// Arm the registry from a `site:action[:arg],...` spec, replacing any
/// previous configuration. An empty spec disables every site (see
/// [`clear`]). Unparseable entries panic — a chaos run with a typo'd spec
/// should fail loudly, not silently test nothing.
pub fn configure_str(spec: &str) {
    let mut sites = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let mut parts = entry.splitn(3, ':');
        let name = parts.next().expect("split yields at least one part");
        let action = parts.next().unwrap_or_else(|| {
            panic!("failpoint entry `{entry}` is missing an action (site:action[:arg])")
        });
        let arg = parts.next();
        let (action, threshold) = match action {
            "panic" => {
                let prob: f64 = arg.map_or(1.0, |a| {
                    a.parse()
                        .unwrap_or_else(|_| panic!("failpoint `{entry}`: bad probability `{a}`"))
                });
                let threshold = if prob >= 1.0 {
                    u64::MAX
                } else {
                    (prob.max(0.0) * u64::MAX as f64) as u64
                };
                (Action::Panic, threshold)
            }
            "delay" => {
                let d = arg.map_or(Duration::from_millis(1), |a| {
                    parse_duration(a)
                        .unwrap_or_else(|| panic!("failpoint `{entry}`: bad duration `{a}`"))
                });
                (Action::Delay(d), u64::MAX)
            }
            other => panic!("failpoint `{entry}`: unknown action `{other}` (panic|delay)"),
        };
        sites.push(Site {
            name: name.to_string(),
            action,
            threshold,
            hits: 0,
            fires: 0,
        });
    }
    let state = if sites.is_empty() { OFF } else { ON };
    *REGISTRY.lock().unwrap_or_else(|p| p.into_inner()) = sites;
    STATE.store(state, Ordering::Relaxed);
}

/// Disarm every failpoint (tests call this to restore the zero-cost path).
pub fn clear() {
    configure_str("");
}

/// How many times `site` has fired (panicked or delayed) since it was
/// configured. 0 for unknown sites.
pub fn fires(site: &str) -> u64 {
    REGISTRY
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .iter()
        .find(|s| s.name == site)
        .map_or(0, |s| s.fires)
}

fn parse_duration(s: &str) -> Option<Duration> {
    let (num, unit) = s.split_at(s.find(|c: char| c.is_ascii_alphabetic())?);
    let n: u64 = num.parse().ok()?;
    match unit {
        "ns" => Some(Duration::from_nanos(n)),
        "us" => Some(Duration::from_micros(n)),
        "ms" => Some(Duration::from_millis(n)),
        "s" => Some(Duration::from_secs(n)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; these tests share it with any chaos
    // suite in the same binary, so each test fully configures and clears.

    #[test]
    fn parse_durations() {
        assert_eq!(parse_duration("5ms"), Some(Duration::from_millis(5)));
        assert_eq!(parse_duration("250us"), Some(Duration::from_micros(250)));
        assert_eq!(parse_duration("2s"), Some(Duration::from_secs(2)));
        assert_eq!(parse_duration("7"), None);
        assert_eq!(parse_duration("5min"), None);
    }

    #[test]
    fn unconfigured_site_is_silent_and_probability_is_deterministic() {
        configure_str("here:panic:0.5");
        hit("elsewhere"); // not configured: no-op
        let mut fired = 0;
        for _ in 0..64 {
            let r = std::panic::catch_unwind(|| hit("here"));
            if r.is_err() {
                fired += 1;
            }
        }
        assert_eq!(fired, fires("here"));
        assert!(fired > 0 && fired < 64, "p=0.5 fired {fired}/64");
        clear();
        hit("here"); // disarmed: no-op
                     // Re-arming resets the per-site counter: the same spec fires on
                     // the same hits again.
        configure_str("here:panic:0.5");
        let mut fired2 = 0;
        for _ in 0..64 {
            if std::panic::catch_unwind(|| hit("here")).is_err() {
                fired2 += 1;
            }
        }
        assert_eq!(fired, fired2);
        clear();
    }

    #[test]
    fn delay_site_sleeps_and_counts() {
        configure_str("slow:delay:1ms");
        let t = std::time::Instant::now();
        hit("slow");
        hit("slow");
        assert!(t.elapsed() >= Duration::from_millis(2));
        assert_eq!(fires("slow"), 2);
        clear();
    }
}
