//! Binding relations to query atoms.
//!
//! A [`Database`] pairs a [`Query`] with one relation instance per atom (in
//! atom order) over a common domain `[n]`, validating arities. All
//! algorithms and statistics collectors operate on a `Database`.

use crate::relation::{domain_bits, Relation};
use mpc_query::Query;
use std::fmt;
use std::sync::Arc;

/// Errors raised when assembling a database.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CatalogError {
    /// Wrong number of relations for the query's atoms.
    WrongRelationCount { expected: usize, got: usize },
    /// A relation's arity disagrees with its atom.
    ArityMismatch {
        atom: String,
        expected: usize,
        got: usize,
    },
    /// A tuple value falls outside the declared domain.
    ValueOutOfDomain {
        atom: String,
        value: u64,
        domain: u64,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::WrongRelationCount { expected, got } => {
                write!(
                    f,
                    "query has {expected} atoms but {got} relations were supplied"
                )
            }
            CatalogError::ArityMismatch {
                atom,
                expected,
                got,
            } => {
                write!(
                    f,
                    "atom `{atom}` has arity {expected} but its relation has arity {got}"
                )
            }
            CatalogError::ValueOutOfDomain {
                atom,
                value,
                domain,
            } => {
                write!(
                    f,
                    "relation for `{atom}` contains value {value} outside domain [0,{domain})"
                )
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// A query plus one relation instance per atom over domain `[0, n)`.
///
/// Relations are held behind [`Arc`], so a `Database` can be assembled from
/// a long-lived catalog (the resident service) without copying tuple data:
/// cloning a `Database`, or building several over the same relations, shares
/// the underlying buffers.
#[derive(Clone, Debug)]
pub struct Database {
    query: Query,
    relations: Vec<Arc<Relation>>,
    domain: u64,
}

impl Database {
    /// Assemble and validate (arity per atom, every value inside the
    /// domain — this scans all tuples once).
    pub fn new(
        query: Query,
        relations: Vec<Relation>,
        domain: u64,
    ) -> Result<Database, CatalogError> {
        for (atom, rel) in query.atoms().iter().zip(&relations) {
            if atom.arity() == rel.arity() {
                if let Some(&v) = rel.rows().flatten().find(|&&v| v >= domain) {
                    return Err(CatalogError::ValueOutOfDomain {
                        atom: atom.name().to_string(),
                        value: v,
                        domain,
                    });
                }
            }
        }
        Database::from_shared(query, relations.into_iter().map(Arc::new).collect(), domain)
    }

    /// Assemble from already-shared relations, validating the relation
    /// count and arities but **not** rescanning values against the domain:
    /// the caller warrants every value is in `[0, domain)`. This is the
    /// zero-copy path the resident service uses — it validates tuples once
    /// at ingest and then stamps out a `Database` per query from `Arc`
    /// clones.
    pub fn from_shared(
        query: Query,
        relations: Vec<Arc<Relation>>,
        domain: u64,
    ) -> Result<Database, CatalogError> {
        if relations.len() != query.num_atoms() {
            return Err(CatalogError::WrongRelationCount {
                expected: query.num_atoms(),
                got: relations.len(),
            });
        }
        for (atom, rel) in query.atoms().iter().zip(&relations) {
            if atom.arity() != rel.arity() {
                return Err(CatalogError::ArityMismatch {
                    atom: atom.name().to_string(),
                    expected: atom.arity(),
                    got: rel.arity(),
                });
            }
        }
        Ok(Database {
            query,
            relations,
            domain,
        })
    }

    /// The query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Relation bound to atom `j`.
    pub fn relation(&self, j: usize) -> &Relation {
        &self.relations[j]
    }

    /// All relations in atom order, behind their sharing handles.
    pub fn relations(&self) -> &[Arc<Relation>] {
        &self.relations
    }

    /// Domain size `n`.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// Bits per value: `ceil(log2 n)`.
    pub fn value_bits(&self) -> u32 {
        domain_bits(self.domain)
    }

    /// Cardinalities `m = (m_1, ..., m_ℓ)`.
    pub fn cardinalities(&self) -> Vec<usize> {
        self.relations.iter().map(|r| r.len()).collect()
    }

    /// Bit sizes `M = (M_1, ..., M_ℓ)` with `M_j = a_j m_j log n`.
    pub fn bit_sizes(&self) -> Vec<u64> {
        let bits = self.value_bits();
        self.relations.iter().map(|r| r.bit_size(bits)).collect()
    }

    /// Total input size in bits, `Σ_j M_j`.
    pub fn total_bits(&self) -> u64 {
        self.bit_sizes().iter().sum()
    }

    /// Replace the relation at atom `j` (arity/domain re-validated).
    pub fn replace_relation(&mut self, j: usize, rel: Relation) -> Result<(), CatalogError> {
        let atom = &self.query.atoms()[j];
        if atom.arity() != rel.arity() {
            return Err(CatalogError::ArityMismatch {
                atom: atom.name().to_string(),
                expected: atom.arity(),
                got: rel.arity(),
            });
        }
        self.relations[j] = Arc::new(rel);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_query::named;

    fn join_db() -> Database {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 5], &[2, 5]]);
        let s2 = Relation::from_rows("S2", 2, &[&[9, 5]]);
        Database::new(q, vec![s1, s2], 16).unwrap()
    }

    #[test]
    fn valid_database() {
        let db = join_db();
        assert_eq!(db.cardinalities(), vec![2, 1]);
        assert_eq!(db.value_bits(), 4);
        assert_eq!(db.bit_sizes(), vec![16, 8]);
        assert_eq!(db.total_bits(), 24);
    }

    #[test]
    fn wrong_count_rejected() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 5]]);
        let err = Database::new(q, vec![s1], 16).unwrap_err();
        assert!(matches!(err, CatalogError::WrongRelationCount { .. }));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 1, &[&[1]]);
        let s2 = Relation::from_rows("S2", 2, &[&[9, 5]]);
        let err = Database::new(q, vec![s1, s2], 16).unwrap_err();
        assert!(matches!(err, CatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn out_of_domain_rejected() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 99]]);
        let s2 = Relation::from_rows("S2", 2, &[&[9, 5]]);
        let err = Database::new(q, vec![s1, s2], 16).unwrap_err();
        assert!(matches!(err, CatalogError::ValueOutOfDomain { .. }));
    }

    #[test]
    fn from_shared_skips_value_scan_but_checks_shape() {
        let q = named::two_way_join();
        let s1 = Arc::new(Relation::from_rows("S1", 2, &[&[1, 5]]));
        let s2 = Arc::new(Relation::from_rows("S2", 2, &[&[9, 5]]));
        let db = Database::from_shared(q.clone(), vec![s1.clone(), s2.clone()], 16).unwrap();
        // Tuple data is shared, not copied.
        assert!(std::ptr::eq(db.relation(0), s1.as_ref()));
        let err = Database::from_shared(q.clone(), vec![s1.clone()], 16).unwrap_err();
        assert!(matches!(err, CatalogError::WrongRelationCount { .. }));
        let bad = Arc::new(Relation::from_rows("S1", 1, &[&[1]]));
        let err = Database::from_shared(q, vec![bad, s2], 16).unwrap_err();
        assert!(matches!(err, CatalogError::ArityMismatch { .. }));
    }

    #[test]
    fn replace_relation_validates() {
        let mut db = join_db();
        let bad = Relation::from_rows("S1", 1, &[&[1]]);
        assert!(db.replace_relation(0, bad).is_err());
        let good = Relation::from_rows("S1", 2, &[&[3, 3]]);
        assert!(db.replace_relation(0, good).is_ok());
        assert_eq!(db.relation(0).len(), 1);
    }
}
