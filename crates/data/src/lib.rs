//! # mpc-data
//!
//! Data substrate for the `mpc-skew` workspace:
//!
//! * [`relation::Relation`] — row-major `u64` tuple storage with the
//!   paper's bit-size accounting (`M_j = a_j m_j log n`);
//! * [`rng::Rng`] — deterministic xoshiro256** PRNG plus the keyed 64-bit
//!   mixer used as the simulator's "perfectly random hash function";
//! * [`zipf::Zipf`] — power-law sampling for skewed attributes;
//! * [`generators`] — uniform / matching / Zipf / exact-degree-sequence
//!   workloads matching each instance class the paper analyzes;
//! * [`catalog::Database`] — a query bound to one relation per atom;
//! * [`join`](mod@crate::join) — the local multiway join every simulated server runs, also
//!   the sequential ground truth for verification.

pub mod catalog;
pub mod generators;
pub mod join;
pub mod relation;
pub mod rng;
pub mod zipf;

pub use catalog::{CatalogError, Database};
pub use join::{
    join, join_count, join_database, join_database_count, join_foreach, partition_join,
    PartitionedJoin,
};
pub use relation::{domain_bits, Relation};
pub use rng::{mix64, splitmix64, Rng};
pub use zipf::Zipf;
