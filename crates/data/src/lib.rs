//! # mpc-data
//!
//! Data substrate for the `mpc-skew` workspace:
//!
//! * [`relation::Relation`] — row-major `u64` tuple storage with the
//!   paper's bit-size accounting (`M_j = a_j m_j log n`);
//! * [`rng::Rng`] — deterministic xoshiro256** PRNG plus the keyed 64-bit
//!   mixer used as the simulator's "perfectly random hash function";
//! * [`zipf::Zipf`] — power-law sampling for skewed attributes;
//! * [`generators`] — uniform / matching / Zipf / exact-degree-sequence
//!   workloads matching each instance class the paper analyzes;
//! * [`catalog::Database`] — a query bound to one relation per atom;
//! * [`answers::AnswerSet`] — flat row-major answer storage (the output
//!   side of the data plane: one allocation, arity-aware sort/dedup);
//! * [`fastmap`] — the `mix64`-keyed [`fastmap::FastMap`]/[`fastmap::FastSet`]
//!   used by every statistics and routing map in the workspace;
//! * [`join`](mod@crate::join) — the local multiway join every simulated server runs
//!   (CSR-indexed, allocation-free per tuple), also the sequential ground
//!   truth for verification;
//! * [`budget`] — cooperative per-query resource budgets (deadline, row
//!   cap, group cap) polled by the join and shuffle hot loops;
//! * [`failpoint`] — the zero-cost-when-disabled chaos-injection registry
//!   (`MPCSKEW_FAILPOINTS`), re-exported by `mpc-testkit` for test use.

pub mod answers;
pub mod budget;
pub mod catalog;
pub mod failpoint;
pub mod fastmap;
pub mod generators;
pub mod join;
pub mod relation;
pub mod rng;
pub mod zipf;

pub use answers::{rows_materialized_total, AnswerSet};
pub use budget::{BudgetExceeded, BudgetKind, QueryBudget};
pub use catalog::{CatalogError, Database};
pub use fastmap::{FastMap, FastSet};
pub use join::{
    join, join_count, join_count_ordered, join_database, join_database_count, join_foreach,
    join_foreach_mult, join_foreach_ordered, join_ordered, partition_join, try_join_foreach_mult,
    visited_bindings_total, JoinIndex, JoinOrder, JoinStats, PartitionedJoin,
};
pub use relation::{domain_bits, record_stats_scan_bytes, stats_scan_bytes_total, Relation};
pub use rng::{mix64, splitmix64, Rng};
pub use zipf::Zipf;
