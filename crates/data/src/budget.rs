//! Cooperative per-query resource budgets.
//!
//! A [`QueryBudget`] is a cheaply clonable handle (all clones share one
//! state) carrying up to three limits: a wall-clock **deadline**, a cap on
//! **answer rows** emitted, and a cap on **aggregate groups** materialized.
//! The budget is *cooperative*: the local join polls it every
//! [`CHECK_INTERVAL`] visited bindings, the shuffle polls it at chunk
//! boundaries, and the aggregate accumulators charge groups as they
//! allocate them. The first limit to fire *trips* the budget — a sticky
//! flag every clone observes — so all workers of a parallel run fail fast
//! once any one of them exceeds the budget.
//!
//! An unlimited budget (the default) is free: the join installs no
//! per-binding check at all, and `poll` on an unlimited handle is a single
//! branch.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How often (in visited bindings) the local join polls its budget. Small
/// enough that a deadline fires within microseconds of expiry on any real
/// workload, large enough that the amortized cost vanishes (<2% on the
/// `local_join/*` benches is the pinned bar).
pub const CHECK_INTERVAL: u64 = 4096;

/// Which limit a [`BudgetExceeded`] fired on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock deadline passed.
    Deadline,
    /// More than `max_rows` answer rows were produced.
    Rows,
    /// More than `max_groups` aggregate groups were materialized.
    Groups,
}

/// The error a budgeted evaluation returns when a limit fires. Also used
/// as the typed panic payload the join's cooperative checks unwind with —
/// [`crate::join::try_join_foreach_mult`] catches exactly this type and
/// converts it back into an `Err`, re-raising every other payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The limit that fired first (sticky across every handle clone).
    pub kind: BudgetKind,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            BudgetKind::Deadline => write!(f, "query deadline exceeded"),
            BudgetKind::Rows => write!(f, "query row limit exceeded"),
            BudgetKind::Groups => write!(f, "query group limit exceeded"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

/// Sticky trip state shared by every clone of a budget. 0 = live; 1..=3
/// encode the [`BudgetKind`] that fired first.
const LIVE: u8 = 0;

fn kind_code(kind: BudgetKind) -> u8 {
    match kind {
        BudgetKind::Deadline => 1,
        BudgetKind::Rows => 2,
        BudgetKind::Groups => 3,
    }
}

fn code_kind(code: u8) -> BudgetKind {
    match code {
        1 => BudgetKind::Deadline,
        2 => BudgetKind::Rows,
        _ => BudgetKind::Groups,
    }
}

#[derive(Debug)]
struct BudgetShared {
    deadline: Option<Instant>,
    max_rows: Option<u64>,
    max_groups: Option<u64>,
    rows: AtomicU64,
    tripped: AtomicU8,
}

/// A per-query resource budget: deadline, answer-row cap, aggregate-group
/// cap. Clones share state (row counts accumulate across every server of a
/// parallel run; one trip stops them all). `QueryBudget::default()` is
/// unlimited and imposes zero cost on the evaluation paths.
#[derive(Clone, Debug)]
pub struct QueryBudget {
    shared: Option<Arc<BudgetShared>>,
}

impl Default for QueryBudget {
    fn default() -> QueryBudget {
        QueryBudget::unlimited()
    }
}

impl QueryBudget {
    /// The no-limits budget: every check is a no-op.
    pub fn unlimited() -> QueryBudget {
        QueryBudget { shared: None }
    }

    /// Build a budget from its three optional limits. All `None` collapses
    /// to [`QueryBudget::unlimited`]. The deadline clock starts *now*.
    pub fn new(
        timeout: Option<Duration>,
        max_rows: Option<u64>,
        max_groups: Option<u64>,
    ) -> QueryBudget {
        if timeout.is_none() && max_rows.is_none() && max_groups.is_none() {
            return QueryBudget::unlimited();
        }
        QueryBudget {
            shared: Some(Arc::new(BudgetShared {
                deadline: timeout.map(|t| Instant::now() + t),
                max_rows,
                max_groups,
                rows: AtomicU64::new(0),
                tripped: AtomicU8::new(LIVE),
            })),
        }
    }

    /// True when no limit is set — callers skip installing checks entirely.
    pub fn is_unlimited(&self) -> bool {
        self.shared.is_none()
    }

    /// The configured group cap, if any (aggregate accumulators charge
    /// against it via [`QueryBudget::check_groups`]).
    pub fn max_groups(&self) -> Option<u64> {
        self.shared.as_ref().and_then(|s| s.max_groups)
    }

    /// Trip the budget on `kind`. First trip wins; later trips (other
    /// workers racing past their own check) keep the original kind.
    pub fn trip(&self, kind: BudgetKind) -> BudgetExceeded {
        if let Some(s) = &self.shared {
            let _ = s.tripped.compare_exchange(
                LIVE,
                kind_code(kind),
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            BudgetExceeded {
                kind: code_kind(s.tripped.load(Ordering::Relaxed)),
            }
        } else {
            BudgetExceeded { kind }
        }
    }

    /// Cooperative check: the sticky trip flag first (fail fast when any
    /// worker already tripped), then the deadline, then the row cap.
    pub fn poll(&self) -> Result<(), BudgetExceeded> {
        let Some(s) = &self.shared else {
            return Ok(());
        };
        let code = s.tripped.load(Ordering::Relaxed);
        if code != LIVE {
            return Err(BudgetExceeded {
                kind: code_kind(code),
            });
        }
        if let Some(d) = s.deadline {
            if Instant::now() >= d {
                return Err(self.trip(BudgetKind::Deadline));
            }
        }
        if let Some(cap) = s.max_rows {
            if s.rows.load(Ordering::Relaxed) > cap {
                return Err(self.trip(BudgetKind::Rows));
            }
        }
        Ok(())
    }

    /// Charge `n` emitted answer rows against the row cap (shared across
    /// clones — a parallel run's servers draw down one pool).
    pub fn charge_rows(&self, n: u64) -> Result<(), BudgetExceeded> {
        let Some(s) = &self.shared else {
            return Ok(());
        };
        let total = s.rows.fetch_add(n, Ordering::Relaxed).saturating_add(n);
        if let Some(cap) = s.max_rows {
            if total > cap {
                return Err(self.trip(BudgetKind::Rows));
            }
        }
        Ok(())
    }

    /// Check a current aggregate group count against the group cap.
    pub fn check_groups(&self, groups: u64) -> Result<(), BudgetExceeded> {
        if let Some(cap) = self.max_groups() {
            if groups > cap {
                return Err(self.trip(BudgetKind::Groups));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_fires() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.poll().is_ok());
        assert!(b.charge_rows(u64::MAX).is_ok());
        assert!(b.check_groups(u64::MAX).is_ok());
    }

    #[test]
    fn all_none_collapses_to_unlimited() {
        assert!(QueryBudget::new(None, None, None).is_unlimited());
    }

    #[test]
    fn expired_deadline_trips_on_poll() {
        let b = QueryBudget::new(Some(Duration::ZERO), None, None);
        let e = b.poll().unwrap_err();
        assert_eq!(e.kind, BudgetKind::Deadline);
        // Sticky: a clone sees the trip without consulting the clock.
        assert_eq!(b.clone().poll().unwrap_err().kind, BudgetKind::Deadline);
    }

    #[test]
    fn row_cap_counts_across_clones() {
        let b = QueryBudget::new(None, Some(10), None);
        let c = b.clone();
        assert!(b.charge_rows(6).is_ok());
        assert!(c.charge_rows(4).is_ok()); // exactly at the cap: still fine
        let e = c.charge_rows(1).unwrap_err();
        assert_eq!(e.kind, BudgetKind::Rows);
        assert_eq!(b.poll().unwrap_err().kind, BudgetKind::Rows);
    }

    #[test]
    fn first_trip_wins() {
        let b = QueryBudget::new(None, Some(1), Some(1));
        assert_eq!(b.trip(BudgetKind::Groups).kind, BudgetKind::Groups);
        assert_eq!(b.trip(BudgetKind::Rows).kind, BudgetKind::Groups);
        assert_eq!(b.poll().unwrap_err().kind, BudgetKind::Groups);
    }

    #[test]
    fn group_cap_checks() {
        let b = QueryBudget::new(None, None, Some(8));
        assert!(b.check_groups(8).is_ok());
        assert_eq!(b.check_groups(9).unwrap_err().kind, BudgetKind::Groups);
    }
}
