//! The `Strategy` trait and the built-in value generators.
//!
//! A [`Strategy`] knows how to draw a random value from a deterministic
//! [`Rng`] and how to propose *simpler* candidate values when a property
//! fails (shrinking). Unlike full proptest there is no value tree: shrink
//! candidates are derived from the failing value itself, which keeps the
//! implementation small while still minimizing ranges and collections.

use mpc_data::rng::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of random test values with optional shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draw one value using the deterministic RNG.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Propose simpler candidates for a failing value, most aggressive
    /// first. An empty vector means the value is fully shrunk.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Map generated values through `f` (shrinking does not cross the map,
    /// matching the fact that `f` is not invertible).
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        T: Clone + Debug,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    T: Clone + Debug,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut Rng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let span = self.end.wrapping_sub(self.start) as u128;
                assert!(
                    span <= u64::MAX as u128,
                    "range strategy {:?} spans more than 2^64 values",
                    self
                );
                self.start.wrapping_add(rng.below(span as u64) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*value, self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {:?}", self);
                let span = hi.wrapping_sub(lo) as u128;
                assert!(
                    span <= u64::MAX as u128,
                    "range strategy {:?} spans more than 2^64 values",
                    self
                );
                if span == u64::MAX as u128 {
                    // Full 64-bit span: below(span + 1) would overflow, but
                    // every 64-bit offset is in range.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add(rng.below(span as u64 + 1) as $t)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_int(*value, *self.start())
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

/// Shrink an integer toward the low end of its range: the minimum itself,
/// the midpoint, and one step down.
fn shrink_int<T>(value: T, lo: T) -> Vec<T>
where
    T: Copy + PartialEq + PartialOrd + ShrinkArith,
{
    if value == lo {
        return Vec::new();
    }
    let mut out = vec![lo];
    let mid = lo.midpoint_toward(value);
    if mid != lo && mid != value {
        out.push(mid);
    }
    let step = value.step_toward(lo);
    if step != lo && step != mid {
        out.push(step);
    }
    out
}

/// Minimal arithmetic needed by [`shrink_int`].
trait ShrinkArith {
    fn midpoint_toward(self, other: Self) -> Self;
    fn step_toward(self, lo: Self) -> Self;
}

macro_rules! shrink_arith {
    ($($t:ty),*) => {$(
        impl ShrinkArith for $t {
            fn midpoint_toward(self, other: $t) -> $t {
                // lo + (value - lo) / 2, computed without overflow for the
                // small spans property tests use.
                self.wrapping_add(other.wrapping_sub(self) / 2)
            }

            fn step_toward(self, lo: $t) -> $t {
                if self > lo { self - 1 } else { self }
            }
        }
    )*};
}

shrink_arith!(u8, u16, u32, u64, usize, i8, i16, i32, i64, i128);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range strategy {:?}", self);
                let v = self.start + rng.f64() as $t * (self.end - self.start);
                // f64() may return values arbitrarily close to 1; keep the
                // half-open contract under rounding.
                if v >= self.end { self.start } else { v }
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(*value, self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {:?}", self);
                lo + rng.f64() as $t * (hi - lo)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                shrink_float(*value, *self.start())
            }
        }
    )*};
}

float_range_strategies!(f32, f64);

fn shrink_float<T>(value: T, lo: T) -> Vec<T>
where
    T: Copy
        + PartialEq
        + PartialOrd
        + std::ops::Add<Output = T>
        + std::ops::Sub<Output = T>
        + Halvable,
{
    if value == lo {
        return Vec::new();
    }
    let mid = lo + (value - lo).half();
    if mid == lo || mid == value {
        vec![lo]
    } else {
        vec![lo, mid]
    }
}

trait Halvable {
    fn half(self) -> Self;
}

impl Halvable for f32 {
    fn half(self) -> f32 {
        self / 2.0
    }
}

impl Halvable for f64 {
    fn half(self) -> f64 {
        self / 2.0
    }
}

impl Strategy for Range<char> {
    type Value = char;

    fn generate(&self, rng: &mut Rng) -> char {
        let lo = self.start as u32;
        let hi = self.end as u32;
        assert!(lo < hi, "empty range strategy {:?}", self);
        // Rejection-sample around the surrogate gap.
        loop {
            let v = lo + rng.below((hi - lo) as u64) as u32;
            if let Some(c) = char::from_u32(v) {
                return c;
            }
        }
    }

    fn shrink(&self, value: &char) -> Vec<char> {
        if *value == self.start {
            Vec::new()
        } else {
            vec![self.start]
        }
    }
}

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

tuple_strategies! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7, S8.8, S9.9)
}
