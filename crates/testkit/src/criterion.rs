//! A criterion-compatible micro-benchmark harness (the slice of the API
//! the workspace benches use), for `harness = false` bench targets.
//!
//! Timing model: each benchmark is calibrated so one sample takes roughly
//! [`Criterion::sample_time_ms`], then `sample_size` samples are measured
//! and the median, minimum and maximum per-iteration times are printed,
//! plus throughput when the group declares one.
//!
//! CI hooks (all optional, read per benchmark):
//!
//! * `MPC_TESTKIT_SAMPLES=<n>` / `MPC_TESTKIT_SAMPLE_MS=<ms>` override the
//!   configured sample count / per-sample time budget — `ci.sh --bench`
//!   uses them to run every group on a reduced budget;
//! * `MPC_TESTKIT_BENCH_JSON=<path>` appends one JSON object per benchmark
//!   (`{"group","bench","median_ns","min_ns","max_ns","samples",
//!   "iters_per_sample"}`, plus `"allocs_per_iter"` when an allocation
//!   probe is registered and one extra named counter field when a
//!   [`set_counter_probe`] counter is registered) to `<path>`, which
//!   `ci.sh --bench` assembles into the repo-root `BENCH_*.json`
//!   trajectory file.
//!
//! Allocation accounting: a bench binary that installs a counting
//! `#[global_allocator]` can register its counter via [`set_alloc_probe`];
//! the harness then samples the counter around the measured samples of
//! every benchmark and reports heap allocations per iteration next to the
//! wall-clock numbers — on a noisy single-core CI host, allocs/iteration
//! is the stable signal a flat-data-plane optimization shows up in.

pub use crate::{criterion_group, criterion_main};
use std::fmt::Display;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// The registered allocation counter (monotone total allocation count for
/// the process), if any.
static ALLOC_PROBE: OnceLock<fn() -> u64> = OnceLock::new();

/// An extra monotone counter sampled like the allocation probe: the JSON
/// field name it reports under, plus the counter itself.
type NamedProbe = (&'static str, fn() -> u64);

/// The registered extra counter, if any.
static EXTRA_PROBE: OnceLock<NamedProbe> = OnceLock::new();

/// Register a process-wide allocation counter (typically backed by a
/// counting `#[global_allocator]` in the bench binary). Must be called
/// before the first benchmark runs; later registrations are ignored. Once
/// registered, every benchmark's JSON record gains `"allocs_per_iter"`,
/// the mean heap-allocation count per iteration over the measured samples.
pub fn set_alloc_probe(probe: fn() -> u64) {
    let _ = ALLOC_PROBE.set(probe);
}

/// Register one extra monotone process-wide counter to sample alongside
/// the allocation probe. `field` names the JSON field the mean
/// per-iteration delta is reported under (e.g. `"bindings_per_iter"`
/// backed by `mpc_data::join::visited_bindings_total`); it must be a
/// valid JSON string without escapes. Must be called before the first
/// benchmark runs; later registrations are ignored.
pub fn set_counter_probe(field: &'static str, probe: fn() -> u64) {
    let _ = EXTRA_PROBE.set((field, probe));
}

/// Benchmark driver. Mirrors `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    sample_time_ms: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            sample_time_ms: 50,
        }
    }
}

impl Criterion {
    /// Set the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Target wall-clock time per sample, in milliseconds.
    pub fn sample_time_ms(mut self, ms: u64) -> Self {
        self.sample_time_ms = ms.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run a standalone benchmark (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.0, self.sample_size, self.sample_time_ms, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and optional throughput.
/// Mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration workload size, enabling element/byte
    /// rates in the report.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Measure one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(
            &label,
            self.criterion.sample_size,
            self.criterion.sample_time_ms,
            self.throughput,
            f,
        );
        self
    }

    /// Finish the group (report separation only; statistics are printed
    /// per benchmark).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group. Mirrors
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter, for groups whose name already identifies the
    /// benchmark.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Per-iteration workload size. Mirrors `criterion::Throughput`.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing context handed to the benchmark closure. Mirrors
/// `criterion::Bencher`.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` executions of `routine`; the harness divides by the
    /// iteration count afterwards.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(
    label: &str,
    sample_size: usize,
    sample_time_ms: u64,
    throughput: Option<Throughput>,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let sample_size = env_usize("MPC_TESTKIT_SAMPLES")
        .unwrap_or(sample_size)
        .max(2);
    let sample_time_ms = env_usize("MPC_TESTKIT_SAMPLE_MS")
        .map(|ms| ms as u64)
        .unwrap_or(sample_time_ms)
        .max(1);
    // Calibration: run single iterations until we know roughly how long
    // one takes, then size samples to the target sample time.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let estimate = bencher.elapsed.max(Duration::from_nanos(1));
    let per_sample = Duration::from_millis(sample_time_ms);
    let iters = (per_sample.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as u64;
    // Minimum-time floor: µs-scale benchmarks are dominated by scheduler
    // and cache noise at the default budget, so quadruple the sample count
    // below the floor — medians over the larger population are what keep
    // `bench_compare` deltas meaningful on groups like `share_lp/star4`.
    // `MPC_TESTKIT_NOISE_FLOOR_NS` overrides the floor (0 disables it).
    let noise_floor_ns = env_usize("MPC_TESTKIT_NOISE_FLOOR_NS").unwrap_or(100_000) as u128;
    let sample_size = if estimate.as_nanos() < noise_floor_ns {
        sample_size * 4
    } else {
        sample_size
    };

    let probe = ALLOC_PROBE.get().copied();
    let allocs_before = probe.map(|p| p());
    let extra = EXTRA_PROBE.get().copied();
    let extra_before = extra.map(|(_, p)| p());
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    // Mean allocations per iteration across all measured samples (the
    // counter is process-global; concurrent noise is negligible because
    // benchmarks run one at a time).
    let allocs_per_iter = probe.zip(allocs_before).map(|(p, before)| {
        let total = p().saturating_sub(before);
        total / (sample_size as u64 * iters).max(1)
    });
    // Same averaging for the extra counter (e.g. join bindings visited).
    let extra_per_iter = extra.zip(extra_before).map(|((field, p), before)| {
        let total = p().saturating_sub(before);
        (field, total / (sample_size as u64 * iters).max(1))
    });
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];

    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!(" {:>12}/s", si(n as f64 * 1e9 / median, "elem")),
        Throughput::Bytes(n) => format!(" {:>12}/s", si(n as f64 * 1e9 / median, "B")),
    });
    let allocs_note = allocs_per_iter
        .map(|a| format!("  allocs/iter: {a}"))
        .unwrap_or_default();
    let extra_note = extra_per_iter
        .map(|(field, n)| format!("  {}: {n}", field.replace("_per_iter", "/iter")))
        .unwrap_or_default();
    eprintln!(
        "{label:<40} time: [{} {} {}]{}{}{}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        rate.unwrap_or_default(),
        allocs_note,
        extra_note
    );

    if let Ok(path) = std::env::var("MPC_TESTKIT_BENCH_JSON") {
        let (group, bench) = match label.split_once('/') {
            Some((g, b)) => (g, b),
            None => ("", label),
        };
        let alloc_field = allocs_per_iter
            .map(|a| format!(",\"allocs_per_iter\":{a}"))
            .unwrap_or_default();
        let extra_field = extra_per_iter
            .map(|(field, n)| format!(",\"{field}\":{n}"))
            .unwrap_or_default();
        let line = format!(
            "{{\"group\":\"{}\",\"bench\":\"{}\",\"median_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{},\"iters_per_sample\":{}{}{}}}\n",
            json_escape(group),
            json_escape(bench),
            median,
            lo,
            hi,
            sample_size,
            iters,
            alloc_field,
            extra_field,
        );
        use std::io::Write;
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        if let Err(e) = appended {
            eprintln!("warning: cannot append bench record to {path}: {e}");
        }
    }
}

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn si(value: f64, unit: &str) -> String {
    if value >= 1e9 {
        format!("{:.2} G{unit}", value / 1e9)
    } else if value >= 1e6 {
        format!("{:.2} M{unit}", value / 1e6)
    } else if value >= 1e3 {
        format!("{:.2} K{unit}", value / 1e3)
    } else {
        format!("{value:.1} {unit}")
    }
}

/// Declare a benchmark group function callable from
/// [`criterion_main!`](crate::criterion_main). Both the struct form
/// (`name = ..; config = ..; targets = ..`) and the positional form are
/// supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::criterion::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::criterion::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `fn main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
