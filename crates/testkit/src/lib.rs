//! # mpc-testkit
//!
//! Self-contained test infrastructure for the `mpc-skew` workspace: a
//! proptest-compatible property-testing surface and a criterion-compatible
//! micro-benchmark harness, with **zero dependencies outside the
//! workspace**. Randomness comes from the workspace's own deterministic
//! xoshiro256** PRNG ([`mpc_data::rng::Rng`]), so every property run is
//! reproducible from a printed seed.
//!
//! ## Property testing
//!
//! ```
//! use mpc_testkit::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(64))]
//!     // in a test module this would carry #[test]
//!     fn addition_commutes(a in -1000i64..=1000, b in -1000i64..=1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```
//!
//! The [`proptest!`] macro accepts the same shape as the `proptest` crate:
//! an optional `#![proptest_config(..)]` inner attribute, then `#[test]`
//! functions whose arguments are drawn from [`Strategy`] expressions
//! (integer/float ranges, tuples, [`collection::vec`],
//! [`collection::btree_set`], and [`Strategy::prop_map`]). On failure the
//! runner greedily shrinks the counterexample (ranges shrink toward their
//! low end, collections drop elements) and panics with the minimal failing
//! input plus the seed that reproduces it.
//!
//! Environment knobs: `MPC_TESTKIT_SEED` perturbs every test's base seed
//! (for soak runs); `MPC_TESTKIT_CASES` overrides the default case count
//! of configs built with [`ProptestConfig::default`].
//!
//! ## Benchmarks
//!
//! The [`criterion`] module mirrors the small slice of the criterion API
//! the workspace benches use (`criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`, throughput) and prints median
//! per-iteration times. Benches are declared with `harness = false`.

pub mod collection;
pub mod criterion;
mod macros;
pub mod runner;
pub mod strategy;

// The failpoint registry lives in `mpc-data` (the lowest crate with hot
// paths to instrument) but is a testing facility, so the testkit re-exports
// it as the canonical spelling for chaos suites: `mpc_testkit::failpoint`.
pub use mpc_data::failpoint;

pub use runner::{run_property, ProptestConfig, TestCaseError};
pub use strategy::{Just, Map, Strategy};

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::runner::{ProptestConfig, TestCaseError};
    pub use crate::strategy::{Just, Map, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}
