//! The `proptest!` macro family, source-compatible with the subset of the
//! `proptest` crate the workspace tests use.

/// Declare property tests. Accepts the `proptest` crate's surface:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(a in 0u64..100, b in collection::vec(0i64..=5, 0..10)) {
///         prop_assert!(a < 100);
///     }
/// }
/// ```
///
/// Each function body runs once per generated case and may use
/// [`prop_assert!`](crate::prop_assert),
/// [`prop_assert_eq!`](crate::prop_assert_eq),
/// [`prop_assert_ne!`](crate::prop_assert_ne) and
/// [`prop_assume!`](crate::prop_assume).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($config:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let __strategy = ($($strategy,)+);
                $crate::run_property(
                    &__config,
                    concat!(module_path!(), "::", stringify!($name)),
                    &__strategy,
                    |__case: &_| {
                        #[allow(unused_mut)]
                        let ($(mut $arg,)+) = ::std::clone::Clone::clone(__case);
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Assert a boolean condition inside a property; on failure the current
/// case is reported (after shrinking) instead of panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "property assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "property assertion failed: {} ({}) at {}:{}",
                format!($($fmt)+),
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
}

/// `prop_assert!` for equality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "property assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                __left,
                __right,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __left = &$left;
        let __right = &$right;
        if !(__left == __right) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "property assertion failed: {}\n  left: {:?}\n right: {:?}\n at {}:{}",
                format!($($fmt)+),
                __left,
                __right,
                file!(),
                line!()
            )));
        }
    }};
}

/// `prop_assert!` for inequality, reporting both operands.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __left = &$left;
        let __right = &$right;
        if __left == __right {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "property assertion failed: `{} != {}`\n  both: {:?}\n at {}:{}",
                stringify!($left),
                stringify!($right),
                __left,
                file!(),
                line!()
            )));
        }
    }};
}

/// Reject the current case (it does not satisfy the property's
/// preconditions); the runner retries with fresh input and the case does
/// not count toward the configured total.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(format!(
                "assumption failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
}
