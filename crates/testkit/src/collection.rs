//! Collection strategies mirroring `proptest::collection`.

use crate::strategy::Strategy;
use mpc_data::rng::Rng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Anything that can specify a collection size: an exact `usize`, a
/// half-open `Range<usize>`, or a `RangeInclusive<usize>`.
pub trait IntoSizeRange {
    /// Inclusive `(min, max)` bounds.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start < self.end, "empty size range {:?}", self);
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn bounds(&self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty size range {:?}", self);
        (*self.start(), *self.end())
    }
}

/// `proptest::collection::vec`: a `Vec` of `size` elements drawn from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min_len, max_len) = size.bounds();
    VecStrategy {
        element,
        min_len,
        max_len,
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
        let len = sample_len(rng, self.min_len, self.max_len);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Structural shrinks first: shorter vectors are simpler than
        // vectors of simpler elements.
        if value.len() > self.min_len {
            let half = (value.len() / 2).max(self.min_len);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            let mut tail = value.clone();
            tail.remove(0);
            out.push(tail);
            let mut head = value.clone();
            head.pop();
            out.push(head);
        }
        for (i, v) in value.iter().enumerate() {
            for cand in self.element.shrink(v) {
                let mut next = value.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// `proptest::collection::btree_set`: a `BTreeSet` of `size` distinct
/// elements drawn from `element`. Panics during generation if the element
/// domain cannot produce the minimum number of distinct values (a strategy
/// must honor its declared size contract).
pub fn btree_set<S>(element: S, size: impl IntoSizeRange) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    let (min_len, max_len) = size.bounds();
    BTreeSetStrategy {
        element,
        min_len,
        max_len,
    }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    min_len: usize,
    max_len: usize,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord + Debug,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut Rng) -> BTreeSet<S::Value> {
        let target = sample_len(rng, self.min_len, self.max_len);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 64 * (target + 1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        assert!(
            set.len() >= self.min_len,
            "btree_set strategy could not draw {} distinct elements in {attempts} \
             attempts (element domain too small?); got {}",
            self.min_len,
            set.len()
        );
        set
    }

    fn shrink(&self, value: &BTreeSet<S::Value>) -> Vec<BTreeSet<S::Value>> {
        if value.len() <= self.min_len {
            return Vec::new();
        }
        value
            .iter()
            .map(|drop| value.iter().filter(|v| *v != drop).cloned().collect())
            .collect()
    }
}

fn sample_len(rng: &mut Rng, min_len: usize, max_len: usize) -> usize {
    min_len + rng.below((max_len - min_len + 1) as u64) as usize
}
