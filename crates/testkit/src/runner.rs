//! The property-test runner: seeded case generation, rejection handling,
//! and greedy shrinking.

use crate::strategy::Strategy;
use mpc_data::rng::{mix64, Rng};

/// Outcome of one property-body execution. Produced by the `prop_assert*`
/// and `prop_assume!` macros.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy the property's preconditions
    /// (`prop_assume!`); the case is retried with fresh input.
    Reject(String),
}

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum number of shrink-candidate executions after a failure.
    pub max_shrink_iters: u32,
    /// Maximum number of `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("MPC_TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_shrink_iters: 512,
            max_global_rejects: 65536,
        }
    }
}

/// Execute a property: draw inputs from `strategy` until `config.cases`
/// cases pass, retrying rejected cases and shrinking + panicking on the
/// first failure. `test_name` seeds the deterministic RNG, so every test
/// function explores its own reproducible sequence of inputs.
pub fn run_property<S, F>(config: &ProptestConfig, test_name: &str, strategy: &S, body: F)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let base_seed = base_seed(test_name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        attempt += 1;
        let mut rng = case_rng(base_seed, attempt);
        let value = strategy.generate(&mut rng);
        match body(&value) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "[mpc-testkit] property `{test_name}`: too many rejected inputs \
                         ({rejected}; last: {why}); weaken prop_assume! or widen the strategy"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                let (minimal, final_msg, steps) =
                    shrink(strategy, value, msg, &body, config.max_shrink_iters);
                panic!(
                    "[mpc-testkit] property `{test_name}` failed after {passed} passing \
                     case(s), attempt {attempt} (base seed {base_seed:#018x}; rerun is \
                     deterministic, set MPC_TESTKIT_SEED to perturb).\n\
                     minimal failing input after {steps} shrink step(s):\n  \
                     {minimal:?}\n{final_msg}"
                );
            }
        }
    }
}

/// Greedy shrink: repeatedly adopt the first candidate that still fails,
/// until no candidate fails or the budget is exhausted.
fn shrink<S, F>(
    strategy: &S,
    mut current: S::Value,
    mut message: String,
    body: &F,
    budget: u32,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    let mut steps = 0u32;
    'outer: while steps < budget {
        for candidate in strategy.shrink(&current) {
            if steps >= budget {
                break 'outer;
            }
            steps += 1;
            if let Err(TestCaseError::Fail(msg)) = body(&candidate) {
                current = candidate;
                message = msg;
                continue 'outer;
            }
        }
        break;
    }
    (current, message, steps)
}

fn base_seed(test_name: &str) -> u64 {
    // FNV-1a over the fully qualified test name, perturbed by the optional
    // environment seed so soak runs can explore fresh inputs.
    let mut h = 0xcbf29ce484222325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    let env = std::env::var("MPC_TESTKIT_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    h ^ mix64(env, 0x5bf0_3635)
}

fn case_rng(base_seed: u64, attempt: u64) -> Rng {
    Rng::seed_from_u64(base_seed ^ mix64(attempt, 0x9e37_79b9_7f4a_7c15))
}
