//! The testkit tests itself: deterministic generation, strategy bounds,
//! macro plumbing, shrinking quality, and the bench harness.

use mpc_data::rng::Rng;
use mpc_testkit::collection;
use mpc_testkit::criterion::{Criterion, Throughput};
use mpc_testkit::prelude::*;
use mpc_testkit::run_property;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU32, Ordering};

#[test]
fn generation_is_deterministic() {
    let strategy = (0u64..1_000_000, collection::vec(-50i64..=50, 0..20));
    let a: Vec<_> = (0..100)
        .map(|i| strategy.generate(&mut Rng::seed_from_u64(i)))
        .collect();
    let b: Vec<_> = (0..100)
        .map(|i| strategy.generate(&mut Rng::seed_from_u64(i)))
        .collect();
    assert_eq!(a, b);
}

#[test]
fn ranges_respect_bounds() {
    let mut rng = Rng::seed_from_u64(7);
    for _ in 0..2000 {
        let v = (5u64..17).generate(&mut rng);
        assert!((5..17).contains(&v));
        let w = (-3i128..=3).generate(&mut rng);
        assert!((-3..=3).contains(&w));
        let x = (0.25f64..0.75).generate(&mut rng);
        assert!((0.25..0.75).contains(&x));
        let y = (1usize..2).generate(&mut rng);
        assert_eq!(y, 1);
    }
}

#[test]
fn collections_respect_size_bounds() {
    let mut rng = Rng::seed_from_u64(11);
    let vecs = collection::vec(0u32..100, 2..7);
    let sets = collection::btree_set(0usize..50, 1..=6);
    let mut seen_lens = std::collections::BTreeSet::new();
    for _ in 0..500 {
        let v = vecs.generate(&mut rng);
        assert!((2..7).contains(&v.len()), "len {}", v.len());
        seen_lens.insert(v.len());
        let s = sets.generate(&mut rng);
        assert!((1..=6).contains(&s.len()), "set len {}", s.len());
        assert!(s.iter().all(|&e| e < 50));
    }
    // The whole size range is actually exercised.
    assert_eq!(
        seen_lens.into_iter().collect::<Vec<_>>(),
        vec![2, 3, 4, 5, 6]
    );
}

#[test]
fn btree_set_panics_when_domain_cannot_fill_minimum() {
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        collection::btree_set(0usize..2, 3..=3).generate(&mut Rng::seed_from_u64(1))
    }));
    assert!(
        outcome.is_err(),
        "a 2-value domain must not satisfy a minimum size of 3 silently"
    );
}

#[test]
fn prop_map_transforms_values() {
    let evens = (0u64..100).prop_map(|v| v * 2);
    let mut rng = Rng::seed_from_u64(3);
    for _ in 0..200 {
        assert_eq!(evens.generate(&mut rng) % 2, 0);
    }
}

#[test]
fn failing_property_shrinks_to_minimal_counterexample() {
    // Property: all values are < 17. Greedy shrinking over 0u64..1000 must
    // land exactly on the boundary counterexample 17.
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_property(
            &ProptestConfig::with_cases(64),
            "selftest::shrinks_to_minimal",
            &(0u64..1000),
            |&v| {
                if v < 17 {
                    Ok(())
                } else {
                    Err(TestCaseError::Fail(format!("{v} is too big")))
                }
            },
        );
    }));
    let panic = outcome.expect_err("property must fail");
    let message = panic
        .downcast_ref::<String>()
        .expect("panic carries a String");
    assert!(
        message.contains("minimal failing input"),
        "unexpected message: {message}"
    );
    assert!(
        message.contains("17"),
        "did not shrink to the boundary counterexample: {message}"
    );
    assert!(
        message.contains("17 is too big"),
        "lost the failure detail: {message}"
    );
}

#[test]
fn vec_shrinking_reduces_length() {
    // Property: no vector contains a 9. The minimal counterexample is a
    // single-element vector [9].
    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_property(
            &ProptestConfig::with_cases(256),
            "selftest::vec_shrink",
            &collection::vec(0u32..10, 0..30),
            |v: &Vec<u32>| {
                if v.contains(&9) {
                    Err(TestCaseError::Fail("found a 9".into()))
                } else {
                    Ok(())
                }
            },
        );
    }));
    let panic = outcome.expect_err("property must fail");
    let message = panic.downcast_ref::<String>().unwrap();
    assert!(
        message.contains("[9]"),
        "expected minimal vector [9], got: {message}"
    );
}

#[test]
fn rejected_cases_are_retried_not_counted() {
    let executed = AtomicU32::new(0);
    run_property(
        &ProptestConfig::with_cases(50),
        "selftest::rejects",
        &(0u64..100),
        |&v| {
            if v % 2 == 1 {
                return Err(TestCaseError::Reject("odd".into()));
            }
            executed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        },
    );
    assert_eq!(executed.load(Ordering::Relaxed), 50);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The macro front end: multiple arguments, trailing comma, tuples
    /// through `prop_map`, and `prop_assume!` all cooperate.
    #[test]
    fn macro_roundtrip(
        a in 0u64..1000,
        pair in (1i64..=20, 1i64..=20).prop_map(|(x, y)| (x, x + y)),
        v in collection::vec(0u32..5, 1..8),
    ) {
        prop_assume!(a != 999);
        prop_assert!(pair.1 > pair.0, "mapped pair must be increasing");
        prop_assert_eq!(v.len(), v.iter().map(|&e| e as usize).filter(|&e| e < 5).count());
        prop_assert_ne!(v.len(), 0);
    }
}

#[test]
fn criterion_harness_runs_and_reports() {
    let mut c = Criterion::default().sample_size(2).sample_time_ms(1);
    let mut group = c.benchmark_group("selftest");
    group.throughput(Throughput::Elements(64));
    let mut runs = 0u64;
    group.bench_function("sum", |b| {
        runs += 1;
        b.iter(|| (0u64..64).sum::<u64>())
    });
    group.finish();
    // Calibration pass + sample_size samples, quadrupled by the noise
    // floor: a ns-scale bench sits far under the 100µs minimum-time floor,
    // so the harness grows its sample budget before reporting medians.
    assert_eq!(runs, 1 + 4 * 2);
}
