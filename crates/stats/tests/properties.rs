//! Property tests for the statistics collectors.

use mpc_data::{generators, Database, Rng};
use mpc_query::{named, VarSet};
use mpc_stats::bins::{bin_of_frequency, num_bins};
use mpc_stats::combination::enumerate_combinations;
use mpc_stats::degree::{degree_statistics, sum_over_assignments};
use mpc_stats::heavy::heavy_hitters;
use mpc_testkit::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Binning is exhaustive and exclusive over the heavy range: every
    /// frequency above m/p lands in exactly one bin 1..=log2(p), and every
    /// frequency at or below m/p in none.
    #[test]
    fn bins_partition_heavy_range(
        m in 64usize..100_000,
        p_exp in 1u32..10,
        freq_frac in 0.0f64..1.0,
    ) {
        let p = 1usize << p_exp;
        let freq = ((m as f64 * freq_frac) as usize).min(m);
        let threshold = m as f64 / p as f64;
        match bin_of_frequency(freq, m, p) {
            None => prop_assert!(freq as f64 <= threshold),
            Some(b) => {
                prop_assert!((1..=num_bins(p)).contains(&b));
                prop_assert!(freq as f64 > threshold);
                // Bin membership matches the defining inequality, except the
                // last bin which absorbs everything down to the threshold.
                let upper = m as f64 / 2f64.powi(b as i32 - 1);
                prop_assert!(freq as f64 <= upper + 1e-9,
                    "freq {freq} above bin {b} upper {upper}");
                if b < num_bins(p) {
                    let lower = m as f64 / 2f64.powi(b as i32);
                    prop_assert!(freq as f64 > lower - 1e-9);
                }
            }
        }
    }

    /// There are always fewer than p heavy hitters (the paper's O(p) claim
    /// is actually < p for strict threshold m/p).
    #[test]
    fn heavy_hitter_count_below_p(seed in 0u64..300, p_exp in 1u32..8, theta in 0.0f64..2.0) {
        let p = 1usize << p_exp;
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let m = 4096usize;
        let mut rng = Rng::seed_from_u64(seed);
        let d = generators::zipf_degrees(m, n, theta);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let z = db.query().var_index("z").unwrap();
        let hh = heavy_hitters(&db, 0, VarSet::singleton(z), p);
        prop_assert!(hh.len() < p, "{} heavy hitters at p = {p}", hh.len());
        // All reported frequencies really exceed the threshold.
        for &f in hh.entries.values() {
            prop_assert!(f as f64 > hh.threshold());
        }
    }

    /// sum_over_assignments with f = freq equals the true join size for the
    /// two-way join (Σ_h m1(h) m2(h) = |q(I)|).
    #[test]
    fn sum_over_assignments_is_join_size(seed in 0u64..300, theta in 0.0f64..1.6) {
        let q = named::two_way_join();
        let n = 1u64 << 10;
        let m = 800usize;
        let mut rng = Rng::seed_from_u64(seed);
        let d1 = generators::zipf_degrees(m, n, theta);
        let d2 = generators::zipf_degrees(m, n, theta * 0.5);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let z = db.query().var_index("z").unwrap();
        let st = degree_statistics(&db, VarSet::singleton(z));
        let s = sum_over_assignments(&st, &[0, 1], n, |_, f| f as f64);
        let actual = mpc_data::join_database_count(&db) as f64;
        prop_assert!((s - actual).abs() < 0.5, "sum {s} vs join size {actual}");
    }

    /// Every enumerated bin combination respects its own invariants:
    /// assignments consistent with (x, bins), |C'(B)| <= p, β ∈ [0, 1].
    #[test]
    fn combinations_are_internally_consistent(seed in 0u64..150, theta in 0.8f64..1.8) {
        let q = named::two_way_join();
        let n = 1u64 << 10;
        let m = 2048usize;
        let p = 16usize;
        let mut rng = Rng::seed_from_u64(seed);
        let d1 = generators::zipf_degrees(m, n, theta);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        for combo in enumerate_combinations(&db, p) {
            prop_assert!(combo.assignments.len() <= p);
            prop_assert!(!combo.assignments.is_empty());
            for beta in &combo.beta {
                prop_assert!((0.0..=1.0 + 1e-9).contains(beta));
            }
            for a in &combo.assignments {
                prop_assert_eq!(a.values.len(), combo.x.len());
            }
        }
    }
}
