//! Simple database statistics (Section 3): cardinalities and bit sizes.
//!
//! "Simple database statistics consists of the cardinalities `m_j` of all
//! input relations" — the information regime of Section 3's upper and lower
//! bounds. The bit sizes follow the paper's convention
//! `M_j = a_j · m_j · log n`.

use mpc_data::catalog::Database;

/// The statistics every input server knows in the simple regime.
#[derive(Clone, Debug, PartialEq)]
pub struct SimpleStatistics {
    /// Cardinalities `m_j`, in atom order.
    pub cardinalities: Vec<usize>,
    /// Bit sizes `M_j = a_j m_j log n`, in atom order.
    pub bit_sizes: Vec<u64>,
    /// Bits per value, `log n`.
    pub value_bits: u32,
    /// Domain size `n`.
    pub domain: u64,
}

impl SimpleStatistics {
    /// Collect from a database.
    pub fn of(db: &Database) -> SimpleStatistics {
        SimpleStatistics {
            cardinalities: db.cardinalities(),
            bit_sizes: db.bit_sizes(),
            value_bits: db.value_bits(),
            domain: db.domain(),
        }
    }

    /// Construct synthetic statistics without a materialized database
    /// (bounds can be evaluated without generating data).
    pub fn synthetic(
        arities: &[usize],
        cardinalities: Vec<usize>,
        domain: u64,
    ) -> SimpleStatistics {
        assert_eq!(arities.len(), cardinalities.len());
        let value_bits = mpc_data::domain_bits(domain);
        let bit_sizes = arities
            .iter()
            .zip(&cardinalities)
            .map(|(&a, &m)| a as u64 * m as u64 * value_bits as u64)
            .collect();
        SimpleStatistics {
            cardinalities,
            bit_sizes,
            value_bits,
            domain,
        }
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.cardinalities.len()
    }

    /// Total input bits `Σ_j M_j`.
    pub fn total_bits(&self) -> u64 {
        self.bit_sizes.iter().sum()
    }

    /// Bit sizes as `f64` (bounds math).
    pub fn bit_sizes_f64(&self) -> Vec<f64> {
        self.bit_sizes.iter().map(|&b| b as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::Relation;
    use mpc_query::named;

    #[test]
    fn collects_from_database() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[0, 1], &[2, 3], &[4, 5]]);
        let s2 = Relation::from_rows("S2", 2, &[&[6, 7]]);
        let db = Database::new(q, vec![s1, s2], 256).unwrap();
        let st = SimpleStatistics::of(&db);
        assert_eq!(st.cardinalities, vec![3, 1]);
        assert_eq!(st.value_bits, 8);
        assert_eq!(st.bit_sizes, vec![48, 16]);
        assert_eq!(st.total_bits(), 64);
        assert_eq!(st.num_relations(), 2);
    }

    #[test]
    fn synthetic_matches_formula() {
        let st = SimpleStatistics::synthetic(&[2, 2, 2], vec![100, 200, 400], 1 << 20);
        assert_eq!(st.value_bits, 20);
        assert_eq!(st.bit_sizes, vec![4000, 8000, 16000]);
    }
}
