//! Frequency bins for heavy hitters (Section 4.2).
//!
//! The general algorithm groups the heavy hitters of each `(relation,
//! attribute subset)` pair into `log2 p` geometric bins: bin `b`
//! (`b = 1..log2 p`) holds assignments with
//!
//! ```text
//! m_j / 2^{b-1}  >=  m_j(h_j)  >  m_j / 2^b
//! ```
//!
//! so all members of a bin have frequencies within a factor of two — which
//! is why approximate frequencies suffice for the algorithm. The *bin
//! exponent* is `β_b = log_p(2^{b-1})`; the light "bin" (everything at or
//! below the `m_j/p` threshold) has exponent 1.

use crate::heavy::HeavyHitters;

/// Number of heavy bins for `p` servers: `log2 p` (p is expected to be a
/// power of two per Section 4.2; other values round up).
pub fn num_bins(p: usize) -> usize {
    assert!(p >= 2, "binning needs p >= 2");
    (usize::BITS - (p - 1).leading_zeros()) as usize
}

/// The 1-based bin index of a frequency, or `None` when the assignment is
/// light (`freq <= m/p`).
pub fn bin_of_frequency(freq: usize, m: usize, p: usize) -> Option<usize> {
    let threshold = m as f64 / p as f64;
    if (freq as f64) <= threshold {
        return None;
    }
    for b in 1..=num_bins(p) {
        // bin b: m/2^{b-1} >= freq > m/2^b
        let upper = m as f64 / 2f64.powi(b as i32 - 1);
        let lower = m as f64 / 2f64.powi(b as i32);
        if (freq as f64) <= upper && (freq as f64) > lower {
            return Some(b);
        }
    }
    // Heavier than m/2 yet matched no bin can't happen (b = 1 catches it);
    // frequencies in (m/p, m/2^{log2 p}] land in the last bin.
    Some(num_bins(p))
}

/// The 1-based bin index of an error-bounded frequency estimate, with the
/// pinned conservative-fallback rule: an estimate whose interval straddles
/// the `m/p` threshold bins at its *largest* consistent count, so it lands
/// in a heavy bin rather than falling light. §4.2's bins are a factor of
/// two wide precisely so approximate frequencies suffice; rounding up
/// within the interval shifts load by at most those constants and never
/// changes answers.
pub fn bin_of_estimate(est: &crate::sketch::FreqEstimate, m: usize, p: usize) -> Option<usize> {
    if !est.may_exceed(m as f64 / p as f64) {
        return None;
    }
    bin_of_frequency(est.count_upper().min(m.max(1)), m, p)
}

/// The bin exponent `β_b = log_p(2^{b-1})` of heavy bin `b`; the light bin
/// is represented by exponent 1 ([`LIGHT_BIN_EXPONENT`]).
pub fn bin_exponent(b: usize, p: usize) -> f64 {
    assert!(b >= 1);
    ((b - 1) as f64) * 2f64.ln() / (p as f64).ln()
}

/// The light bin's exponent (`β = 1`): frequencies `<= m/p` behave like a
/// `p`-way split.
pub const LIGHT_BIN_EXPONENT: f64 = 1.0;

/// Heavy hitters of one `(relation, attribute subset)` pair, grouped into
/// geometric frequency bins.
#[derive(Clone, Debug)]
pub struct BinnedHitters {
    /// The underlying detection result (atom, vars, cols, threshold).
    pub source: HeavyHitters,
    /// `bins[b-1]` lists `(assignment, frequency)` for heavy bin `b`.
    pub bins: Vec<Vec<(Vec<u64>, usize)>>,
}

impl BinnedHitters {
    /// Group a detection result into bins.
    pub fn build(source: HeavyHitters) -> BinnedHitters {
        let nb = num_bins(source.p);
        let mut bins: Vec<Vec<(Vec<u64>, usize)>> = vec![Vec::new(); nb];
        for (key, &freq) in &source.entries {
            let b = bin_of_frequency(freq, source.cardinality, source.p)
                .expect("entries are heavy by construction");
            bins[b - 1].push((key.clone(), freq));
        }
        for bin in &mut bins {
            bin.sort();
        }
        BinnedHitters { source, bins }
    }

    /// Non-empty bins as `(bin index b, members)`.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, &[(Vec<u64>, usize)])> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (i + 1, v.as_slice()))
    }

    /// The bin exponent of bin `b` for this relation's `p`.
    pub fn exponent(&self, b: usize) -> f64 {
        bin_exponent(b, self.source.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heavy::heavy_hitters;
    use mpc_data::catalog::Database;
    use mpc_data::generators;
    use mpc_data::rng::Rng;
    use mpc_query::{named, VarSet};

    #[test]
    fn num_bins_matches_log2() {
        assert_eq!(num_bins(2), 1);
        assert_eq!(num_bins(4), 2);
        assert_eq!(num_bins(64), 6);
        assert_eq!(num_bins(60), 6); // non-power-of-two rounds up
    }

    #[test]
    fn bin_boundaries() {
        let (m, p) = (1024usize, 16usize);
        // m/p = 64: anything <= 64 is light.
        assert_eq!(bin_of_frequency(64, m, p), None);
        assert_eq!(bin_of_frequency(1, m, p), None);
        // Bin 1: (512, 1024]; bin 2: (256, 512]; ... bin 4: (64, 128].
        assert_eq!(bin_of_frequency(1024, m, p), Some(1));
        assert_eq!(bin_of_frequency(513, m, p), Some(1));
        assert_eq!(bin_of_frequency(512, m, p), Some(2));
        assert_eq!(bin_of_frequency(300, m, p), Some(2));
        assert_eq!(bin_of_frequency(128, m, p), Some(4));
        assert_eq!(bin_of_frequency(65, m, p), Some(4));
    }

    #[test]
    fn members_within_factor_two() {
        // Any two members of the same bin differ by at most 2x in frequency.
        let (m, p) = (1 << 14, 64usize);
        for freq_a in [300usize, 400, 500, 1000, 5000, 16000] {
            for freq_b in [300usize, 400, 500, 1000, 5000, 16000] {
                if bin_of_frequency(freq_a, m, p) == bin_of_frequency(freq_b, m, p)
                    && bin_of_frequency(freq_a, m, p).is_some()
                {
                    let ratio = freq_a.max(freq_b) as f64 / freq_a.min(freq_b) as f64;
                    assert!(ratio <= 2.0, "{freq_a} and {freq_b} share a bin");
                }
            }
        }
    }

    #[test]
    fn estimates_bin_conservatively() {
        use crate::sketch::{ErrorDirection, FreqEstimate};
        let (m, p) = (1024usize, 16usize);
        // Exact estimates bin exactly like raw frequencies.
        let e = FreqEstimate::exact(vec![1], 300);
        assert_eq!(bin_of_estimate(&e, m, p), bin_of_frequency(300, m, p));
        assert_eq!(
            bin_of_estimate(&FreqEstimate::exact(vec![1], 64), m, p),
            None
        );
        // A straddling interval (threshold 64 inside [60, 70]) rounds up
        // into a heavy bin instead of falling light.
        let straddle = FreqEstimate {
            key: vec![2],
            estimate: 70,
            error_bound: 10,
            direction: ErrorDirection::Overcount,
        };
        assert_eq!(bin_of_estimate(&straddle, m, p), bin_of_frequency(70, m, p));
        // Entirely-light intervals stay light.
        let light = FreqEstimate {
            key: vec![3],
            estimate: 60,
            error_bound: 4,
            direction: ErrorDirection::Overcount,
        };
        assert_eq!(bin_of_estimate(&light, m, p), None);
        // Symmetric intervals bin at their upper end (clamped to m).
        let sym = FreqEstimate {
            key: vec![4],
            estimate: m,
            error_bound: 50,
            direction: ErrorDirection::Symmetric,
        };
        assert_eq!(bin_of_estimate(&sym, m, p), Some(1));
    }

    #[test]
    fn exponents_are_monotone_from_zero() {
        let p = 64;
        assert_eq!(bin_exponent(1, p), 0.0);
        let nb = num_bins(p);
        for b in 2..=nb {
            assert!(bin_exponent(b, p) > bin_exponent(b - 1, p));
        }
        // The last heavy bin's exponent approaches (but stays below) 1.
        assert!(bin_exponent(nb, p) < LIGHT_BIN_EXPONENT + 1e-12);
        // For p a power of two: β_{log2 p} = log_p(p/2) = 1 - 1/log2(p).
        let expected = 1.0 - 1.0 / (p as f64).log2();
        assert!((bin_exponent(nb, p) - expected).abs() < 1e-12);
    }

    #[test]
    fn binned_hitters_group_planted_degrees() {
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(1);
        let m = 1024usize;
        let p = 16usize;
        // Frequencies: 600 (bin 1), 300 (bin 2), 100 (bin 4), rest light.
        let degrees: Vec<(Vec<u64>, usize)> = vec![
            (vec![1], 600),
            (vec![2], 300),
            (vec![3], 100),
            (vec![4], 24),
        ];
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, 1 << 10, &mut rng);
        assert_eq!(s1.len(), m);
        let s2 = generators::uniform("S2", 2, 64, 1 << 10, &mut rng);
        let db = Database::new(q, vec![s1, s2], 1 << 10).unwrap();
        let z = db.query().var_index("z").unwrap();
        let hh = heavy_hitters(&db, 0, VarSet::singleton(z), p);
        let binned = BinnedHitters::build(hh);
        assert_eq!(binned.bins[0], vec![(vec![1u64], 600)]);
        assert_eq!(binned.bins[1], vec![(vec![2u64], 300)]);
        assert_eq!(binned.bins[3], vec![(vec![3u64], 100)]);
        // freq 24 <= 1024/16 = 64: light, absent everywhere.
        for bin in &binned.bins {
            assert!(!bin.iter().any(|(k, _)| k == &vec![4u64]));
        }
        let occupied: Vec<usize> = binned.occupied().map(|(b, _)| b).collect();
        assert_eq!(occupied, vec![1, 2, 4]);
    }
}
