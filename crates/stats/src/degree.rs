//! Degree sequences — the paper's *x-statistics* (Section 4.3).
//!
//! For a variable set `x` and each atom `S_j` with `x_j = x ∩ vars(S_j)`,
//! the x-statistics record the exact frequency `m_j(h_j) = |σ_{x_j=h_j}(S_j)|`
//! of every partial assignment. The skewed lower bound `L_x(u, M, p)`
//! (Theorem 4.7) is a sum over joint assignments `h` of products of these
//! frequencies; [`sum_over_assignments`] evaluates such sums exactly,
//! factorizing over connected components of the atom-overlap graph so that
//! cartesian blow-ups never materialize.

use mpc_data::catalog::Database;
use mpc_data::fastmap::FastMap;
use mpc_query::VarSet;

/// Frequencies of one atom's projections onto `x_j`.
#[derive(Clone, Debug)]
pub struct AtomDegrees {
    /// Atom index `j`.
    pub atom: usize,
    /// `x_j = x ∩ vars(S_j)`.
    pub vars: VarSet,
    /// Attribute positions realizing `vars`, in `vars.iter()` order.
    pub cols: Vec<usize>,
    /// `m_j(h_j)` for every present assignment (absent ⇒ 0). For
    /// `x_j = ∅` this holds a single empty key mapping to `m_j`.
    pub map: FastMap<Vec<u64>, usize>,
    /// Cardinality `m_j`.
    pub cardinality: usize,
}

/// The full x-statistics of a database.
#[derive(Clone, Debug)]
pub struct DegreeStatistics {
    /// The variable set `x`.
    pub x: VarSet,
    /// Per-atom degree maps, in atom order.
    pub per_atom: Vec<AtomDegrees>,
}

/// Collect exact x-statistics from the data.
pub fn degree_statistics(db: &Database, x: VarSet) -> DegreeStatistics {
    let q = db.query();
    let per_atom = (0..q.num_atoms())
        .map(|j| {
            let vars = x.intersect(q.atom(j).var_set());
            let cols = crate::heavy::columns_for(q, j, vars);
            let rel = db.relation(j);
            let map = rel.frequencies(&cols);
            AtomDegrees {
                atom: j,
                vars,
                cols,
                map,
                cardinality: rel.len(),
            }
        })
        .collect();
    DegreeStatistics { x, per_atom }
}

/// Positions (within `x.iter()` order) of the variables of `sub ⊆ x`.
fn slots_of(x: VarSet, sub: VarSet) -> Vec<usize> {
    let xvars: Vec<usize> = x.iter().collect();
    sub.iter()
        .map(|v| {
            xvars
                .iter()
                .position(|&w| w == v)
                .expect("sub must be a subset of x")
        })
        .collect()
}

/// Enumerate the joint assignments `h` to `x` that are *present* (nonzero
/// frequency) in every atom of `active`, together with the per-active-atom
/// frequencies. Variables of `x` not covered by any active atom must not
/// exist (assert), since they would make the assignment set infinite.
///
/// Returned values are in `x.iter()` (ascending variable index) order.
pub fn joint_assignments(
    stats: &DegreeStatistics,
    active: &[usize],
) -> Vec<(Vec<u64>, Vec<usize>)> {
    let x = stats.x;
    let d = x.len();
    let covered = active
        .iter()
        .fold(VarSet::EMPTY, |s, &j| s.union(stats.per_atom[j].vars));
    assert_eq!(
        covered, x,
        "active atoms must cover all of x for explicit enumeration"
    );
    // Partial assignments: values over x-slots (None = unbound) plus the
    // frequencies of the atoms processed so far.
    let mut partials: Vec<(Vec<Option<u64>>, Vec<usize>)> = vec![(vec![None; d], Vec::new())];
    for &j in active {
        let ad = &stats.per_atom[j];
        let slots = slots_of(x, ad.vars);
        if slots.is_empty() {
            for p in &mut partials {
                p.1.push(ad.cardinality);
            }
            continue;
        }
        // Index this atom's keys by the sub-key on slots already bound by
        // *all* partials. Bound slots are identical across partials (they
        // are determined by the processing order), so inspect the first.
        let bound_positions: Vec<usize> = (0..slots.len())
            .filter(|&i| partials.first().is_some_and(|p| p.0[slots[i]].is_some()))
            .collect();
        let mut index: FastMap<Vec<u64>, Vec<(&Vec<u64>, usize)>> = FastMap::default();
        for (key, &freq) in &ad.map {
            let sub: Vec<u64> = bound_positions.iter().map(|&i| key[i]).collect();
            index.entry(sub).or_default().push((key, freq));
        }
        let mut next: Vec<(Vec<Option<u64>>, Vec<usize>)> = Vec::new();
        for (values, freqs) in &partials {
            let probe: Vec<u64> = bound_positions
                .iter()
                .map(|&i| values[slots[i]].expect("bound position"))
                .collect();
            let Some(matches) = index.get(&probe) else {
                continue;
            };
            for (key, freq) in matches {
                let mut v2 = values.clone();
                let mut ok = true;
                for (i, &slot) in slots.iter().enumerate() {
                    match v2[slot] {
                        None => v2[slot] = Some(key[i]),
                        Some(existing) => {
                            if existing != key[i] {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    let mut f2 = freqs.clone();
                    f2.push(*freq);
                    next.push((v2, f2));
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return Vec::new();
        }
    }
    partials
        .into_iter()
        .map(|(values, freqs)| {
            let vals: Vec<u64> = values
                .into_iter()
                .map(|v| v.expect("all x variables covered"))
                .collect();
            (vals, freqs)
        })
        .collect()
}

/// Evaluate `Σ_h Π_{j ∈ active} f(j, m_j(h_j))` over joint assignments `h`
/// to `x` present in every active atom, factorized over connected
/// components of the overlap graph (atoms are connected when their `x_j`
/// intersect). Variables of `x` covered by no active atom contribute a free
/// factor of `domain` each (they range over all of `[n]`).
pub fn sum_over_assignments(
    stats: &DegreeStatistics,
    active: &[usize],
    domain: u64,
    f: impl Fn(usize, usize) -> f64,
) -> f64 {
    // Partition active atoms into overlap components.
    let mut remaining: Vec<usize> = active.to_vec();
    let mut total = 1.0f64;
    let mut covered = VarSet::EMPTY;
    while let Some(seed) = remaining.pop() {
        let mut comp = vec![seed];
        let mut comp_vars = stats.per_atom[seed].vars;
        loop {
            let before = comp.len();
            remaining.retain(|&j| {
                if !stats.per_atom[j].vars.intersect(comp_vars).is_empty() {
                    comp.push(j);
                    comp_vars = comp_vars.union(stats.per_atom[j].vars);
                    false
                } else {
                    true
                }
            });
            if comp.len() == before {
                break;
            }
        }
        covered = covered.union(comp_vars);
        // Sum within the component by explicit enumeration restricted to the
        // component's variables.
        let comp_stats = DegreeStatistics {
            x: comp_vars,
            per_atom: stats.per_atom.clone(),
        };
        let mut comp_sum = 0.0f64;
        if comp_vars.is_empty() {
            // All atoms in this component have x_j = ∅: single assignment.
            let mut term = 1.0;
            for &j in &comp {
                term *= f(j, stats.per_atom[j].cardinality);
            }
            comp_sum = term;
        } else {
            for (_, freqs) in joint_assignments(&comp_stats, &comp) {
                let mut term = 1.0;
                for (idx, &j) in comp.iter().enumerate() {
                    term *= f(j, freqs[idx]);
                }
                comp_sum += term;
            }
        }
        total *= comp_sum;
    }
    // Free variables of x range over the whole domain.
    let free = stats.x.minus(covered).len() as u32;
    total * (domain as f64).powi(free as i32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Database, Relation, Rng};
    use mpc_query::named;

    fn join_db() -> Database {
        // S1(x,z), S2(y,z) with controlled z-degrees.
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(1);
        let d1: Vec<(Vec<u64>, usize)> = vec![(vec![5], 4), (vec![6], 2), (vec![7], 1)];
        let d2: Vec<(Vec<u64>, usize)> = vec![(vec![5], 3), (vec![7], 5), (vec![8], 2)];
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, 64, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, 64, &mut rng);
        Database::new(q, vec![s1, s2], 64).unwrap()
    }

    #[test]
    fn degree_maps_are_exact() {
        let db = join_db();
        let z = db.query().var_index("z").unwrap();
        let st = degree_statistics(&db, VarSet::singleton(z));
        assert_eq!(st.per_atom[0].map[&vec![5u64]], 4);
        assert_eq!(st.per_atom[1].map[&vec![7u64]], 5);
        assert_eq!(st.per_atom[0].cardinality, 7);
    }

    #[test]
    fn empty_x_gives_cardinality_stat() {
        let db = join_db();
        let st = degree_statistics(&db, VarSet::EMPTY);
        assert_eq!(st.per_atom[0].map[&Vec::<u64>::new()], 7);
        assert_eq!(st.per_atom[1].map[&Vec::<u64>::new()], 10);
    }

    #[test]
    fn joint_assignments_intersect_keys() {
        let db = join_db();
        let z = db.query().var_index("z").unwrap();
        let st = degree_statistics(&db, VarSet::singleton(z));
        let mut ja = joint_assignments(&st, &[0, 1]);
        ja.sort();
        // Shared z values: 5 (4 & 3) and 7 (1 & 5). 6 and 8 are one-sided.
        assert_eq!(ja, vec![(vec![5u64], vec![4, 3]), (vec![7u64], vec![1, 5])]);
    }

    #[test]
    fn sum_over_assignments_matches_manual_join_size() {
        // Σ_h m1(h)·m2(h) is the exact join size: 4*3 + 1*5 = 17.
        let db = join_db();
        let z = db.query().var_index("z").unwrap();
        let st = degree_statistics(&db, VarSet::singleton(z));
        let s = sum_over_assignments(&st, &[0, 1], db.domain(), |_, freq| freq as f64);
        assert!((s - 17.0).abs() < 1e-9);
        // Cross-check against the actual join.
        assert_eq!(mpc_data::join_database_count(&db), 17);
    }

    #[test]
    fn sum_factorizes_over_disjoint_atoms() {
        // x = {x, y}: S1 covers x, S2 covers y, no overlap: the sum of
        // m1(hx)·m2(hy) over pairs = m1 · m2 (each tuple counted once per
        // side) = 7 * 10 = 70. The factorized path must not materialize the
        // cross product.
        let db = join_db();
        let xv = db.query().var_index("x").unwrap();
        let yv = db.query().var_index("y").unwrap();
        let st = degree_statistics(&db, VarSet::from_iter([xv, yv]));
        let s = sum_over_assignments(&st, &[0, 1], db.domain(), |_, freq| freq as f64);
        assert!((s - 70.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn uncovered_variables_multiply_by_domain() {
        // x = {x}, active = [1] (S2 does not contain x): every value of x in
        // [n] is consistent, so Σ_h m2 = n * m2 = 64 * 10.
        let db = join_db();
        let xv = db.query().var_index("x").unwrap();
        let st = degree_statistics(&db, VarSet::singleton(xv));
        let s = sum_over_assignments(&st, &[1], db.domain(), |_, freq| freq as f64);
        assert!((s - 640.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn triangle_joint_assignments_chain_through_shared_vars() {
        // C3 with tiny explicit relations; x = {x1, x2}: S1 sees both, S2
        // sees x2, S3 sees x1.
        let q = named::cycle(3);
        let s1 = Relation::from_rows("S1", 2, &[&[1, 2], &[1, 3], &[4, 2]]);
        let s2 = Relation::from_rows("S2", 2, &[&[2, 9], &[3, 9], &[5, 9]]);
        let s3 = Relation::from_rows("S3", 2, &[&[9, 1], &[9, 4], &[9, 6]]);
        let db = Database::new(q, vec![s1, s2, s3], 16).unwrap();
        let st = degree_statistics(&db, VarSet::from_iter([0, 1]));
        let mut ja = joint_assignments(&st, &[0, 1, 2]);
        ja.sort();
        // Consistent (x1,x2) pairs present in S1 (cols x1,x2), S2 (x2), S3 (x1):
        // (1,2): S1 freq 1, S2(x2=2) 1, S3(x1=1) 1 -> yes
        // (1,3): S1 1, S2(3) 1, S3(1) 1 -> yes
        // (4,2): S1 1, S2(2) 1, S3(4) 1 -> yes
        assert_eq!(ja.len(), 3);
        for (_, freqs) in &ja {
            assert_eq!(freqs, &vec![1, 1, 1]);
        }
    }

    #[test]
    #[should_panic(expected = "cover")]
    fn joint_assignments_rejects_uncovered_x() {
        let db = join_db();
        let xv = db.query().var_index("x").unwrap();
        let st = degree_statistics(&db, VarSet::singleton(xv));
        // Active atom S2 does not contain x.
        let _ = joint_assignments(&st, &[1]);
    }
}
