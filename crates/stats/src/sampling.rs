//! Sampling-based heavy-hitter detection.
//!
//! The paper assumes heavy hitters and their (approximate) frequencies are
//! known, noting that production engines obtain them by sampling
//! (Section 1: "first detecting the heavy hitters (e.g. using sampling)"),
//! and that *approximate* frequencies suffice for the Section 4.2 algorithm
//! because its bins already tolerate a factor-2 slack.
//!
//! This module implements the standard Bernoulli-sample estimator: keep each
//! tuple independently with probability `rate`, estimate
//! `m̂(h) = count_in_sample(h) / rate`, and report every assignment whose
//! estimate clears a *detection* threshold set at half the heaviness
//! threshold `m/p`. Chernoff bounds give: with `rate >= c·p·ln(p)/m`, every
//! true heavy hitter is detected and every reported frequency is within a
//! constant factor, with high probability — which is exactly the accuracy
//! the binning of Section 4.2 needs. Tests exercise both guarantees
//! empirically.

use crate::sketch::{ErrorDirection, FreqEstimate};
use mpc_data::fastmap::FastMap;
use mpc_data::relation::{record_stats_scan_bytes, Relation};
use mpc_data::rng::Rng;

/// Frequencies estimated from a Bernoulli sample.
#[derive(Clone, Debug)]
pub struct SampledFrequencies {
    /// Estimated frequency per assignment (only assignments whose estimate
    /// cleared the detection threshold are kept).
    pub estimates: FastMap<Vec<u64>, usize>,
    /// The sampling rate used.
    pub rate: f64,
    /// Number of sampled tuples.
    pub sample_size: usize,
}

impl SampledFrequencies {
    /// The detected assignments as error-bounded [`FreqEstimate`]s — the
    /// redesigned Stats surface ([`crate::sketch`]) over sampled counts.
    ///
    /// The bounds are [`ErrorDirection::Symmetric`] with
    /// `error_bound = estimate`, covering the factor-2 interval
    /// `[est/2, 2·est]` that the Chernoff analysis guarantees at the
    /// recommended rate. Unlike SpaceSaving's bounds these hold only with
    /// high probability, not absolutely — consumers that need certainty
    /// (the planner's conservative fallback) already treat a straddling
    /// interval as heavy, which is the safe direction here too. Sorted by
    /// key.
    pub fn to_estimates(&self) -> Vec<FreqEstimate> {
        let mut out: Vec<FreqEstimate> = self
            .estimates
            .iter()
            .map(|(key, &est)| FreqEstimate {
                key: key.clone(),
                estimate: est,
                error_bound: est,
                direction: ErrorDirection::Symmetric,
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }
}

/// The recommended sampling rate for detecting `m/p`-heavy hitters in a
/// relation of `m` tuples: `min(1, 8 p ln(max(p,2)) / m)`.
pub fn recommended_rate(m: usize, p: usize) -> f64 {
    if m == 0 {
        return 1.0;
    }
    let r = 8.0 * p as f64 * (p.max(2) as f64).ln() / m as f64;
    r.min(1.0)
}

/// Estimate the frequencies of the projections on `cols` from a Bernoulli
/// sample at `rate`, keeping assignments whose *estimated* frequency
/// exceeds `m / (2p)` (half the heaviness threshold, so true heavy hitters
/// survive estimation noise).
pub fn sampled_frequencies(
    rel: &Relation,
    cols: &[usize],
    p: usize,
    rate: f64,
    rng: &mut Rng,
) -> SampledFrequencies {
    assert!((0.0..=1.0).contains(&rate) && rate > 0.0, "invalid rate");
    // The Bernoulli pass still reads every row once; tax it like any other
    // statistics scan.
    record_stats_scan_bytes(rel.len() as u64 * rel.arity() as u64 * 8);
    let mut counts: FastMap<Vec<u64>, usize> = FastMap::default();
    let mut sample_size = 0usize;
    for row in rel.rows() {
        if rng.f64() < rate {
            sample_size += 1;
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            *counts.entry(key).or_insert(0) += 1;
        }
    }
    let m = rel.len();
    let detect = m as f64 / (2.0 * p as f64);
    let estimates = counts
        .into_iter()
        .filter_map(|(key, c)| {
            let est = c as f64 / rate;
            if est > detect {
                Some((key, est.round() as usize))
            } else {
                None
            }
        })
        .collect();
    SampledFrequencies {
        estimates,
        rate,
        sample_size,
    }
}

/// Convenience: sampled frequencies at the recommended rate.
pub fn sample_heavy_hitters(
    rel: &Relation,
    cols: &[usize],
    p: usize,
    rng: &mut Rng,
) -> SampledFrequencies {
    let rate = recommended_rate(rel.len(), p);
    sampled_frequencies(rel, cols, p, rate, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::generators;

    fn planted(m: usize, heavies: &[(u64, usize)], rng: &mut Rng) -> Relation {
        let planted: usize = heavies.iter().map(|(_, c)| c).sum();
        let mut degrees: Vec<(Vec<u64>, usize)> =
            heavies.iter().map(|&(v, c)| (vec![v], c)).collect();
        degrees.extend((0..(m - planted) as u64).map(|i| (vec![10_000 + i], 1)));
        generators::from_degree_sequence("S", 2, &[1], &degrees, 1 << 20, rng)
    }

    #[test]
    fn recommended_rate_shrinks_with_m() {
        assert_eq!(recommended_rate(10, 64), 1.0); // tiny relation: keep all
        let r1 = recommended_rate(1 << 16, 16);
        let r2 = recommended_rate(1 << 20, 16);
        assert!(r1 > r2);
        assert!(r2 > 0.0);
    }

    #[test]
    fn detects_all_true_heavy_hitters() {
        let m = 1 << 16;
        let p = 16usize;
        // Heavies at 2x..8x the threshold m/p = 4096.
        let heavies = [(1u64, 8192usize), (2, 16384), (3, 32768)];
        let mut misses = 0;
        for seed in 0..20u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let rel = planted(m, &heavies, &mut rng);
            let sf = sample_heavy_hitters(&rel, &[1], p, &mut rng);
            for (v, _) in &heavies {
                if !sf.estimates.contains_key(&vec![*v]) {
                    misses += 1;
                }
            }
        }
        assert_eq!(misses, 0, "true heavy hitters missed by sampling");
    }

    #[test]
    fn estimates_within_factor_two() {
        let m = 1 << 16;
        let p = 16usize;
        let heavies = [(1u64, 8192usize), (2, 16384)];
        let mut rng = Rng::seed_from_u64(7);
        let rel = planted(m, &heavies, &mut rng);
        let sf = sample_heavy_hitters(&rel, &[1], p, &mut rng);
        for (v, true_freq) in &heavies {
            let est = sf.estimates[&vec![*v]] as f64;
            let ratio = est / *true_freq as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "estimate {est} vs true {true_freq} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn few_false_positives() {
        // Uniform data: nothing is heavy; the detector should report close
        // to nothing (noise can push a few values over half-threshold only
        // if the sample is pathological).
        let m = 1 << 16;
        let p = 16usize;
        let mut rng = Rng::seed_from_u64(9);
        let rel = generators::uniform("S", 2, m, 1 << 18, &mut rng);
        let sf = sample_heavy_hitters(&rel, &[1], p, &mut rng);
        assert!(
            sf.estimates.len() <= 2,
            "{} false positives on uniform data",
            sf.estimates.len()
        );
    }

    #[test]
    fn estimates_surface_is_symmetric_and_sorted() {
        let m = 1 << 14;
        let p = 8usize;
        let heavies = [(2u64, 4096usize), (1, 2048)];
        let mut rng = Rng::seed_from_u64(5);
        let rel = planted(m, &heavies, &mut rng);
        let sf = sample_heavy_hitters(&rel, &[1], p, &mut rng);
        let ests = sf.to_estimates();
        assert!(!ests.is_empty());
        assert!(ests.windows(2).all(|w| w[0].key < w[1].key), "sorted");
        for e in &ests {
            assert_eq!(e.direction, super::ErrorDirection::Symmetric);
            assert_eq!(e.error_bound, e.estimate);
            // The factor-2 interval really is [est/2, 2 est].
            assert_eq!(e.count_lower(), e.estimate.saturating_sub(e.error_bound));
            assert_eq!(e.count_upper(), 2 * e.estimate);
            // True heavy hitters must sit inside their whp interval.
            if let Some(&(_, t)) = heavies.iter().find(|&&(v, _)| e.key == vec![v]) {
                assert!(e.count_lower() <= t && t <= e.count_upper());
            }
        }
    }

    #[test]
    fn full_rate_equals_exact_counts() {
        let m = 4096;
        let p = 8usize;
        let heavies = [(1u64, 1024usize)];
        let mut rng = Rng::seed_from_u64(3);
        let rel = planted(m, &heavies, &mut rng);
        let sf = sampled_frequencies(&rel, &[1], p, 1.0, &mut rng);
        assert_eq!(sf.sample_size, m);
        assert_eq!(sf.estimates[&vec![1u64]], 1024);
    }
}
