//! Streaming statistics sketches: sublinear heavy-hitter and distinct
//! estimates for data too big to rescan.
//!
//! The paper assumes the heavy hitters and their *approximate* frequencies
//! are simply known ("e.g. using sampling", §1), and the §4.2 bins tolerate
//! constant-factor frequency error by construction. This module realizes
//! that assumption at production scale:
//!
//! * [`SpaceSaving`] — the Metwally–Agrawal–El Abbadi counter summary for
//!   one `(relation, cols)` projection. `O(capacity)` space, `O(1)`
//!   amortized per observed tuple (`O(capacity)` on an eviction, which is
//!   constant in the relation size), deterministic, and mergeable. At
//!   capacity `>= p` it **never misses** a true `m/p`-heavy hitter: an
//!   untracked key's frequency is at most `items/capacity <= m/p`.
//! * [`DistinctCounter`] — an HLL-style distinct estimator (2^10 registers,
//!   `mix64`-hashed, per-register max merge), for per-variable domain
//!   estimates.
//! * [`RelationSketch`] — the per-relation bundle a resident service
//!   maintains next to its catalog: one `SpaceSaving` per projection the
//!   planner has asked about plus one `DistinctCounter` per column, all
//!   advanced in `O(projections)` per appended tuple — **no relation
//!   rescan on append**.
//!
//! Every estimate is reported as a [`FreqEstimate`]: the point estimate
//! plus a *guaranteed* error bound and its direction. Planners consume
//! these through the conservative rule pinned by
//! [`FreqEstimate::may_exceed`]: when the error interval straddles the
//! `m_j/p` heaviness threshold, the key is treated as heavy. That only
//! ever moves keys from light to heavy handling — load can shift within
//! the paper's constants, answers never change (every algorithm in this
//! workspace is answer-complete under any heavy classification).
//!
//! ```
//! use mpc_stats::sketch::{ErrorDirection, SpaceSaving};
//!
//! // One heavy key (40 of 100 observations) among many light ones,
//! // summarized in 8 slots instead of a 61-entry frequency map. The
//! // heavy key arrives last, after evictions have begun, so its count
//! // inherits an evicted slot's — an overcount, never an undercount.
//! let mut ss = SpaceSaving::new(8);
//! for k in 0..60u64 {
//!     ss.observe(&[100 + k]);
//! }
//! for _ in 0..40 {
//!     ss.observe(&[7]);
//! }
//!
//! // p = 10 servers → heaviness threshold m/p = 10. The true heavy key
//! // is guaranteed present, its interval `[estimate - error, estimate]`
//! // covering the true count.
//! let est = ss
//!     .estimates()
//!     .into_iter()
//!     .find(|e| e.key == [7])
//!     .expect("capacity >= p never misses a true m/p-heavy hitter");
//! assert_eq!(est.direction, ErrorDirection::Overcount);
//! assert!(est.count_lower() <= 40 && 40 <= est.count_upper());
//! assert!(est.may_exceed(10.0), "treated as heavy — conservatively");
//! ```

use mpc_data::fastmap::FastMap;
use mpc_data::relation::{record_stats_scan_bytes, Relation};
use mpc_data::rng::mix64;

/// Which side of the true count an estimate can err on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorDirection {
    /// `estimate == true count` (error bound is 0).
    Exact,
    /// `true count ∈ [estimate - error_bound, estimate]` (SpaceSaving).
    Overcount,
    /// `true count ∈ [estimate, estimate + error_bound]`.
    Undercount,
    /// `true count ∈ [estimate - error_bound, estimate + error_bound]`
    /// (Bernoulli sampling).
    Symmetric,
}

/// One frequency estimate with a guaranteed error interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FreqEstimate {
    /// The projected assignment (in the projection's `cols` order).
    pub key: Vec<u64>,
    /// Point estimate of `m_j(h_j)`.
    pub estimate: usize,
    /// Guaranteed error bound in the direction(s) of `direction`.
    pub error_bound: usize,
    /// Which side(s) of the truth the estimate can sit on.
    pub direction: ErrorDirection,
}

impl FreqEstimate {
    /// An estimate that is known exactly (error bound 0).
    pub fn exact(key: Vec<u64>, count: usize) -> FreqEstimate {
        FreqEstimate {
            key,
            estimate: count,
            error_bound: 0,
            direction: ErrorDirection::Exact,
        }
    }

    /// Smallest count consistent with the estimate and its bound.
    pub fn count_lower(&self) -> usize {
        match self.direction {
            ErrorDirection::Exact | ErrorDirection::Undercount => self.estimate,
            ErrorDirection::Overcount | ErrorDirection::Symmetric => {
                self.estimate.saturating_sub(self.error_bound)
            }
        }
    }

    /// Largest count consistent with the estimate and its bound.
    pub fn count_upper(&self) -> usize {
        match self.direction {
            ErrorDirection::Exact | ErrorDirection::Overcount => self.estimate,
            ErrorDirection::Undercount | ErrorDirection::Symmetric => {
                self.estimate.saturating_add(self.error_bound)
            }
        }
    }

    /// Conservative heaviness test — the **pinned fallback rule**: true as
    /// soon as *any* count consistent with the bound exceeds `threshold`,
    /// i.e. whenever the error interval straddles it. Planners classify
    /// `may_exceed` keys as heavy; see the module docs for why that is
    /// always safe.
    pub fn may_exceed(&self, threshold: f64) -> bool {
        self.count_upper() as f64 > threshold
    }

    /// Certain heaviness: even the smallest consistent count exceeds
    /// `threshold`.
    pub fn must_exceed(&self, threshold: f64) -> bool {
        self.count_lower() as f64 > threshold
    }
}

/// One tracked counter of a [`SpaceSaving`] summary.
#[derive(Clone, Debug)]
struct Slot {
    key: Vec<u64>,
    /// Overestimated count: `true ∈ [count - over, count]`.
    count: u64,
    /// Maximum possible overcount (the evicted minimum inherited at
    /// takeover, plus merge slack).
    over: u64,
}

/// SpaceSaving heavy-hitter summary (Metwally et al., "Efficient
/// computation of frequent and top-k elements in data streams").
///
/// Deterministic: identical observation sequences produce identical
/// summaries (eviction ties break on the lowest slot index, and slot order
/// is a pure function of the stream).
#[derive(Clone, Debug)]
pub struct SpaceSaving {
    capacity: usize,
    /// key -> slot index.
    index: FastMap<Vec<u64>, usize>,
    slots: Vec<Slot>,
    /// Total observations (`Σ true counts`).
    items: u64,
}

impl SpaceSaving {
    /// New summary tracking at most `capacity` keys (`capacity >= 1`).
    pub fn new(capacity: usize) -> SpaceSaving {
        assert!(capacity >= 1, "SpaceSaving needs capacity >= 1");
        SpaceSaving {
            capacity,
            index: FastMap::default(),
            slots: Vec::with_capacity(capacity),
            items: 0,
        }
    }

    /// Count one occurrence of `key`. `O(1)` amortized; `O(capacity)` when
    /// a new key evicts the current minimum — constant in the stream
    /// length, which is what makes the summary sublinear to maintain.
    pub fn observe(&mut self, key: &[u64]) {
        self.items += 1;
        if let Some(&i) = self.index.get(key) {
            self.slots[i].count += 1;
            return;
        }
        if self.slots.len() < self.capacity {
            self.index.insert(key.to_vec(), self.slots.len());
            self.slots.push(Slot {
                key: key.to_vec(),
                count: 1,
                over: 0,
            });
            return;
        }
        // Evict the minimum (first such slot: deterministic) and let the
        // new key inherit its count as overcount slack.
        let i = self.min_slot();
        let evicted = std::mem::replace(&mut self.slots[i].key, key.to_vec());
        self.index.remove(&evicted);
        self.index.insert(key.to_vec(), i);
        self.slots[i].over = self.slots[i].count;
        self.slots[i].count += 1;
    }

    fn min_slot(&self) -> usize {
        let mut best = 0;
        for (i, s) in self.slots.iter().enumerate().skip(1) {
            if s.count < self.slots[best].count {
                best = i;
            }
        }
        best
    }

    /// Number of tracked keys (`<= capacity`).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff nothing has been tracked yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total observations fed into the summary.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// The smallest tracked count — an upper bound on the true frequency
    /// of **every untracked key** (0 while the summary is not full).
    pub fn min_count(&self) -> u64 {
        if self.slots.len() < self.capacity {
            0
        } else {
            self.slots.iter().map(|s| s.count).min().unwrap_or(0)
        }
    }

    /// The largest per-entry overcount bound (telemetry).
    pub fn max_over(&self) -> u64 {
        self.slots.iter().map(|s| s.over).max().unwrap_or(0)
    }

    /// All tracked estimates, sorted by key (deterministic output order).
    pub fn estimates(&self) -> Vec<FreqEstimate> {
        let mut out: Vec<FreqEstimate> = self
            .slots
            .iter()
            .map(|s| FreqEstimate {
                key: s.key.clone(),
                estimate: s.count as usize,
                error_bound: s.over as usize,
                direction: if s.over == 0 {
                    ErrorDirection::Exact
                } else {
                    ErrorDirection::Overcount
                },
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Tracked keys that [`FreqEstimate::may_exceed`] `threshold` — the
    /// conservative heavy superset, sorted by key. At capacity `>= p` and
    /// `threshold = items/p` this contains every true heavy hitter.
    pub fn heavy_hitters(&self, threshold: f64) -> Vec<FreqEstimate> {
        let mut out: Vec<FreqEstimate> = self
            .slots
            .iter()
            .filter(|s| (s.count as f64) > threshold)
            .map(|s| FreqEstimate {
                key: s.key.clone(),
                estimate: s.count as usize,
                error_bound: s.over as usize,
                direction: if s.over == 0 {
                    ErrorDirection::Exact
                } else {
                    ErrorDirection::Overcount
                },
            })
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    /// Merge `other` into `self` (both summaries over disjoint substreams
    /// of one logical stream). For every key in the union the counts and
    /// overcount bounds add, with an absent side contributing its
    /// `min_count` to both (the standard mergeable-summary rule); the
    /// heaviest `capacity` keys survive, ties broken by key order.
    pub fn merge(&mut self, other: &SpaceSaving) {
        let self_min = self.min_count();
        let other_min = other.min_count();
        let mut combined: FastMap<Vec<u64>, (u64, u64)> = FastMap::default();
        for s in &self.slots {
            combined.insert(s.key.clone(), (s.count, s.over));
        }
        for s in &other.slots {
            let e = combined
                .entry(s.key.clone())
                .or_insert((self_min, self_min));
            e.0 += s.count;
            e.1 += s.over;
        }
        // Keys tracked here but not there: the other side may still have
        // seen them up to its min_count times.
        for s in &mut combined.iter_mut() {
            if !other.index.contains_key(s.0) {
                s.1 .0 += other_min;
                s.1 .1 += other_min;
            }
        }
        let mut entries: Vec<(Vec<u64>, (u64, u64))> = combined.into_iter().collect();
        entries.sort_by(|a, b| b.1 .0.cmp(&a.1 .0).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(self.capacity);
        self.items += other.items;
        self.index.clear();
        self.slots.clear();
        for (key, (count, over)) in entries {
            self.index.insert(key.clone(), self.slots.len());
            self.slots.push(Slot { key, count, over });
        }
    }

    /// Resident byte accounting: slot storage plus index keys (an
    /// estimate, not an allocator measurement — deterministic across
    /// hosts).
    pub fn bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| 2 * (s.key.len() * 8) + 24)
            .sum::<usize>()
    }
}

/// Number of index bits for [`DistinctCounter`] registers (2^10 = 1024
/// registers, ~3% standard error).
const HLL_BITS: u32 = 10;

/// Seed of the register hash (any fixed odd constant works; `mix64` keys
/// on it).
const HLL_SEED: u64 = 0x5EED_D157_1BC7;

/// HLL-style distinct-value estimator: 2^10 single-byte registers holding
/// the max leading-zero rank per bucket. Deterministic and mergeable
/// (per-register max).
#[derive(Clone, Debug)]
pub struct DistinctCounter {
    registers: Vec<u8>,
}

impl Default for DistinctCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl DistinctCounter {
    /// New empty counter.
    pub fn new() -> DistinctCounter {
        DistinctCounter {
            registers: vec![0; 1 << HLL_BITS],
        }
    }

    /// Observe one value (idempotent per distinct value modulo hash
    /// collisions).
    pub fn observe(&mut self, value: u64) {
        let h = mix64(HLL_SEED, value);
        let idx = (h >> (64 - HLL_BITS)) as usize;
        // Rank of the first set bit in the remaining 54 bits (1-based);
        // an all-zero suffix ranks highest.
        let rest = h << HLL_BITS;
        let rank = if rest == 0 {
            (64 - HLL_BITS + 1) as u8
        } else {
            (rest.leading_zeros() + 1) as u8
        };
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Distinct-count estimate (harmonic mean over registers, with the
    /// standard linear-counting correction for the small range).
    pub fn estimate(&self) -> usize {
        let m = self.registers.len() as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let alpha = 0.7213 / (1.0 + 1.079 / m);
        let raw = alpha * m * m / sum;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        if raw <= 2.5 * m && zeros > 0 {
            (m * (m / zeros as f64).ln()).round() as usize
        } else {
            raw.round() as usize
        }
    }

    /// Merge another counter (union of the observed value sets).
    pub fn merge(&mut self, other: &DistinctCounter) {
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
    }

    /// Resident bytes (the register array).
    pub fn bytes(&self) -> usize {
        self.registers.len()
    }
}

/// The streaming statistics bundle a resident catalog keeps per relation:
/// one [`SpaceSaving`] per projection the planner has asked about plus one
/// [`DistinctCounter`] per column.
///
/// Appends are `O(registered projections)` per tuple and never rescan the
/// relation; registering a *new* projection over already-resident data
/// costs one backfill scan (taxed to the same meter as exact statistics,
/// [`mpc_data::relation::stats_scan_bytes_total`]).
#[derive(Clone, Debug)]
pub struct RelationSketch {
    arity: usize,
    rows: u64,
    capacity: usize,
    projections: FastMap<Vec<usize>, SpaceSaving>,
    distinct: Vec<DistinctCounter>,
}

impl RelationSketch {
    /// New empty sketch for an `arity`-column relation; per-projection
    /// summaries will track `capacity` keys. For the no-miss guarantee at
    /// `p` servers, pick `capacity >= p`.
    pub fn new(arity: usize, capacity: usize) -> RelationSketch {
        assert!(arity > 0);
        RelationSketch {
            arity,
            rows: 0,
            capacity: capacity.max(1),
            projections: FastMap::default(),
            distinct: vec![DistinctCounter::new(); arity],
        }
    }

    /// Sketch an existing relation (one scan — the load-time cost, taxed
    /// to the stats-scan meter; appends after this are incremental).
    pub fn of(rel: &Relation, capacity: usize) -> RelationSketch {
        let mut sk = RelationSketch::new(rel.arity(), capacity);
        record_stats_scan_bytes(rel.len() as u64 * rel.arity() as u64 * 8);
        for row in rel.rows() {
            sk.observe_row(row);
        }
        sk
    }

    /// Tuples observed so far (`= m_j` when fed every ingested tuple).
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Per-projection tracking capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Registered projections, sorted (telemetry / fingerprinting).
    pub fn tracked_projections(&self) -> Vec<Vec<usize>> {
        let mut cols: Vec<Vec<usize>> = self.projections.keys().cloned().collect();
        cols.sort();
        cols
    }

    /// Ensure a `cols` projection is tracked, backfilling from `rel` (one
    /// scan, taxed to the stats-scan meter) when it is new. `rel` must be
    /// the relation this sketch has been fed from.
    pub fn ensure_projection(&mut self, rel: &Relation, cols: &[usize]) {
        if self.projections.contains_key(cols) {
            return;
        }
        record_stats_scan_bytes(rel.len() as u64 * rel.arity() as u64 * 8);
        let mut ss = SpaceSaving::new(self.capacity);
        let mut key = vec![0u64; cols.len()];
        for row in rel.rows() {
            for (slot, &c) in key.iter_mut().zip(cols) {
                *slot = row[c];
            }
            ss.observe(&key);
        }
        self.projections.insert(cols.to_vec(), ss);
    }

    /// Feed appended tuples (row-major flat, as handed to
    /// `Relation::push_rows`). `O(projections)` per tuple — **no rescan**.
    ///
    /// # Panics
    /// Panics when `flat.len()` is not a multiple of the arity.
    pub fn append_rows(&mut self, flat: &[u64]) {
        assert_eq!(flat.len() % self.arity, 0, "flat data not row-aligned");
        for row in flat.chunks_exact(self.arity) {
            self.observe_row(row);
        }
    }

    fn observe_row(&mut self, row: &[u64]) {
        self.rows += 1;
        for (c, d) in self.distinct.iter_mut().enumerate() {
            d.observe(row[c]);
        }
        for (cols, ss) in self.projections.iter_mut() {
            let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
            ss.observe(&key);
        }
    }

    /// The tracked summary at `cols`, if registered.
    pub fn projection(&self, cols: &[usize]) -> Option<&SpaceSaving> {
        self.projections.get(cols)
    }

    /// Conservative heavy hitters of the `cols` projection at the paper's
    /// `m/p` threshold (`None` when the projection is not registered).
    pub fn heavy_hitters(&self, cols: &[usize], p: usize) -> Option<Vec<FreqEstimate>> {
        let ss = self.projections.get(cols)?;
        let threshold = self.rows as f64 / p as f64;
        Some(ss.heavy_hitters(threshold))
    }

    /// Distinct-count estimate for one column.
    pub fn distinct(&self, col: usize) -> Option<usize> {
        self.distinct.get(col).map(|d| d.estimate())
    }

    /// Resident bytes across all summaries and counters (telemetry).
    pub fn bytes(&self) -> usize {
        self.projections.values().map(|s| s.bytes()).sum::<usize>()
            + self.distinct.iter().map(|d| d.bytes()).sum::<usize>()
    }

    /// Largest per-entry overcount bound across projections (telemetry:
    /// the worst guaranteed error of any reported estimate).
    pub fn max_error_bound(&self) -> u64 {
        self.projections
            .values()
            .map(|s| s.max_over())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::rng::Rng;
    use mpc_data::zipf::Zipf;

    #[test]
    fn spacesaving_is_exact_below_capacity() {
        let mut ss = SpaceSaving::new(8);
        for _ in 0..5 {
            ss.observe(&[1]);
        }
        for _ in 0..3 {
            ss.observe(&[2]);
        }
        let est = ss.estimates();
        assert_eq!(est.len(), 2);
        assert_eq!(est[0], FreqEstimate::exact(vec![1], 5));
        assert_eq!(est[1], FreqEstimate::exact(vec![2], 3));
        assert_eq!(ss.min_count(), 0, "not full: untracked keys are absent");
    }

    #[test]
    fn spacesaving_bounds_hold_under_eviction() {
        // 3 slots, 6 distinct keys: counts must overestimate within `over`.
        let mut ss = SpaceSaving::new(3);
        let stream: Vec<u64> = vec![1, 1, 1, 1, 2, 3, 4, 2, 5, 6, 1, 2];
        let mut truth: FastMap<Vec<u64>, usize> = FastMap::default();
        for v in stream {
            ss.observe(&[v]);
            *truth.entry(vec![v]).or_insert(0) += 1;
        }
        assert_eq!(ss.items(), 12);
        for e in ss.estimates() {
            let t = truth[&e.key];
            assert!(
                e.count_lower() <= t && t <= e.count_upper(),
                "true {t} outside [{}, {}] for {:?}",
                e.count_lower(),
                e.count_upper(),
                e.key
            );
        }
        // Untracked keys: bounded by min_count.
        for (key, &t) in &truth {
            if ss.estimates().iter().all(|e| &e.key != key) {
                assert!(t as u64 <= ss.min_count());
            }
        }
    }

    #[test]
    fn spacesaving_never_misses_heavy_at_capacity_p() {
        // Zipf stream, capacity = p: every true m/p-heavy hitter tracked.
        let p = 16usize;
        let mut rng = Rng::seed_from_u64(7);
        let zipf = Zipf::new(1 << 10, 1.3);
        let mut ss = SpaceSaving::new(p);
        let mut truth: FastMap<Vec<u64>, usize> = FastMap::default();
        let m = 20_000usize;
        for _ in 0..m {
            let v = zipf.sample(&mut rng);
            ss.observe(&[v]);
            *truth.entry(vec![v]).or_insert(0) += 1;
        }
        let threshold = m as f64 / p as f64;
        let reported = ss.heavy_hitters(threshold);
        for (key, &t) in &truth {
            if t as f64 > threshold {
                assert!(
                    reported.iter().any(|e| &e.key == key),
                    "missed true heavy hitter {key:?} (freq {t})"
                );
            }
        }
        // And the superset is conservative: every reported estimate's
        // interval really contains its true count.
        for e in &reported {
            let t = truth.get(&e.key).copied().unwrap_or(0);
            assert!(e.count_lower() <= t && t <= e.count_upper());
        }
    }

    #[test]
    fn spacesaving_merge_preserves_bounds() {
        let mut rng = Rng::seed_from_u64(3);
        let zipf = Zipf::new(256, 1.2);
        let mut a = SpaceSaving::new(8);
        let mut b = SpaceSaving::new(8);
        let mut truth: FastMap<Vec<u64>, usize> = FastMap::default();
        for i in 0..4000 {
            let v = zipf.sample(&mut rng);
            if i % 2 == 0 { &mut a } else { &mut b }.observe(&[v]);
            *truth.entry(vec![v]).or_insert(0) += 1;
        }
        a.merge(&b);
        assert_eq!(a.items(), 4000);
        for e in a.estimates() {
            let t = truth.get(&e.key).copied().unwrap_or(0);
            assert!(
                e.count_lower() <= t && t <= e.count_upper(),
                "merged bound violated for {:?}: true {t} not in [{}, {}]",
                e.key,
                e.count_lower(),
                e.count_upper()
            );
        }
    }

    #[test]
    fn distinct_counter_tracks_cardinality() {
        let mut d = DistinctCounter::new();
        for v in 0..5000u64 {
            d.observe(v * 31 + 7);
            d.observe(v * 31 + 7); // repeats must not inflate
        }
        let est = d.estimate() as f64;
        assert!(
            (est - 5000.0).abs() / 5000.0 < 0.15,
            "estimate {est} too far from 5000"
        );
        // Merge with an overlapping counter: still one union estimate.
        let mut e = DistinctCounter::new();
        for v in 2500..7500u64 {
            e.observe(v * 31 + 7);
        }
        d.merge(&e);
        let est = d.estimate() as f64;
        assert!(
            (est - 7500.0).abs() / 7500.0 < 0.15,
            "merged estimate {est} too far from 7500"
        );
    }

    #[test]
    fn distinct_counter_small_range_is_near_exact() {
        let mut d = DistinctCounter::new();
        for v in 0..10u64 {
            d.observe(v);
        }
        let est = d.estimate();
        assert!((9..=11).contains(&est), "small-range estimate {est}");
    }

    #[test]
    fn relation_sketch_appends_without_rescan() {
        use mpc_data::relation::stats_scan_bytes_total;
        let mut rel = Relation::new("S", 2);
        for i in 0..100u64 {
            rel.push(&[i % 4, i]);
        }
        let mut sk = RelationSketch::of(&rel, 8);
        sk.ensure_projection(&rel, &[0]);
        let before = stats_scan_bytes_total();
        for i in 0..50u64 {
            let row = [i % 4, 1000 + i];
            rel.push(&row);
            sk.append_rows(&row);
        }
        assert_eq!(
            stats_scan_bytes_total(),
            before,
            "appends must not rescan the relation"
        );
        assert_eq!(sk.rows(), 150);
        // The projection kept exact counts (4 distinct keys < capacity 8).
        let hh = sk.heavy_hitters(&[0], 4).unwrap();
        let exact = rel.frequencies(&[0]);
        for e in &hh {
            assert_eq!(e.estimate, exact[&e.key]);
            assert_eq!(e.direction, ErrorDirection::Exact);
        }
    }

    #[test]
    fn relation_sketch_matches_exact_heavy_set_with_headroom() {
        let mut rng = Rng::seed_from_u64(11);
        let zipf = Zipf::new(512, 1.4);
        let mut rel = Relation::new("S", 2);
        for i in 0..8000u64 {
            rel.push(&[i, zipf.sample(&mut rng)]);
        }
        let p = 8usize;
        let sk = {
            let mut sk = RelationSketch::of(&rel, 4 * p);
            sk.ensure_projection(&rel, &[1]);
            sk
        };
        let threshold = rel.len() as f64 / p as f64;
        let exact: Vec<Vec<u64>> = {
            let mut v: Vec<Vec<u64>> = rel
                .frequencies(&[1])
                .into_iter()
                .filter(|(_, c)| *c as f64 > threshold)
                .map(|(k, _)| k)
                .collect();
            v.sort();
            v
        };
        let sketched: Vec<Vec<u64>> = sk
            .heavy_hitters(&[1], p)
            .unwrap()
            .into_iter()
            .map(|e| e.key)
            .collect();
        // Conservative superset that contains every exact heavy hitter.
        for k in &exact {
            assert!(sketched.contains(k), "missed exact heavy hitter {k:?}");
        }
        assert!(sk.bytes() > 0);
    }

    #[test]
    fn freq_estimate_interval_semantics() {
        let e = FreqEstimate {
            key: vec![1],
            estimate: 100,
            error_bound: 10,
            direction: ErrorDirection::Overcount,
        };
        assert_eq!((e.count_lower(), e.count_upper()), (90, 100));
        assert!(e.may_exceed(95.0) && !e.must_exceed(95.0));
        assert!(!e.may_exceed(100.0));
        assert!(e.must_exceed(89.0));
        let s = FreqEstimate {
            key: vec![2],
            estimate: 100,
            error_bound: 10,
            direction: ErrorDirection::Symmetric,
        };
        assert_eq!((s.count_lower(), s.count_upper()), (90, 110));
        assert!(s.may_exceed(105.0) && !s.must_exceed(91.0));
    }
}
