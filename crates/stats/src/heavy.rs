//! Heavy-hitter detection (Section 4).
//!
//! A partial assignment `h_j` to a variable subset `x_j ⊆ vars(S_j)` is a
//! *heavy hitter* when its frequency exceeds the threshold:
//! `m_j(h_j) > m_j / p` (Section 4.2). By construction there are fewer than
//! `p` heavy hitters per `(relation, subset)` pair. The paper assumes every
//! input server knows all heavy hitters and their (approximate)
//! frequencies; this collector computes them exactly from the data, which
//! is how a real engine's statistics pass would realize that assumption.

use mpc_data::catalog::Database;
use mpc_data::fastmap::FastMap;
use mpc_query::{Query, VarSet};

/// The heavy hitters of one relation at one variable subset.
#[derive(Clone, Debug)]
pub struct HeavyHitters {
    /// Atom index `j`.
    pub atom: usize,
    /// The variable subset `x_j` (query variable indices).
    pub vars: VarSet,
    /// Attribute positions within the atom realizing `vars`, in `vars.iter()`
    /// order (first position for repeated variables).
    pub cols: Vec<usize>,
    /// Heavy assignments and their exact frequencies `m_j(h_j)`, keyed in
    /// `cols` order (`mix64`-hashed: this map is probed per tuple).
    pub entries: FastMap<Vec<u64>, usize>,
    /// The relation's cardinality `m_j` (denominator of the threshold).
    pub cardinality: usize,
    /// The `p` used for the threshold.
    pub p: usize,
}

impl HeavyHitters {
    /// Build a detection result from error-bounded frequency estimates —
    /// the §4.2 entry point for sketch- or sample-backed statistics.
    ///
    /// Applies the pinned conservative-fallback rule: every estimate whose
    /// error interval *may* exceed the `m/p` threshold
    /// ([`crate::sketch::FreqEstimate::may_exceed`]) is kept as heavy, at
    /// its largest consistent count (clamped to `m`; a key cannot occur
    /// more often than the relation has tuples). Overcounting only moves
    /// keys from light to heavy handling, which shifts load but never
    /// answers — every consumer in this workspace is answer-complete under
    /// any heavy classification.
    pub fn from_estimates(
        atom: usize,
        vars: VarSet,
        cols: Vec<usize>,
        estimates: &[crate::sketch::FreqEstimate],
        cardinality: usize,
        p: usize,
    ) -> HeavyHitters {
        let threshold = cardinality as f64 / p as f64;
        let entries = estimates
            .iter()
            .filter(|e| e.may_exceed(threshold))
            .map(|e| (e.key.clone(), e.count_upper().min(cardinality.max(1))))
            .collect();
        HeavyHitters {
            atom,
            vars,
            cols,
            entries,
            cardinality,
            p,
        }
    }

    /// The heaviness threshold `m_j / p`.
    pub fn threshold(&self) -> f64 {
        self.cardinality as f64 / self.p as f64
    }

    /// True iff assignment `key` (in `cols` order) is heavy.
    pub fn is_heavy(&self, key: &[u64]) -> bool {
        self.entries.contains_key(key)
    }

    /// Frequency of a heavy assignment (`None` for light ones).
    pub fn frequency(&self, key: &[u64]) -> Option<usize> {
        self.entries.get(key).copied()
    }

    /// Number of heavy hitters (always `< p`).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff there are no heavy hitters.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Attribute positions of `vars` within atom `j` of `q`, in `vars.iter()`
/// order. Variables not present in the atom are skipped.
pub fn columns_for(q: &Query, atom: usize, vars: VarSet) -> Vec<usize> {
    let a = q.atom(atom);
    vars.iter().filter_map(|v| a.position_of_var(v)).collect()
}

/// Detect the heavy hitters of atom `j` at variable subset `vars`
/// (`vars ⊆ vars(S_j)` after intersection; variables outside the atom are
/// ignored).
pub fn heavy_hitters(db: &Database, atom: usize, vars: VarSet, p: usize) -> HeavyHitters {
    let q = db.query();
    let eff_vars = vars.intersect(q.atom(atom).var_set());
    let cols = columns_for(q, atom, eff_vars);
    let rel = db.relation(atom);
    let m = rel.len();
    let threshold = m as f64 / p as f64;
    let entries = rel
        .frequencies(&cols)
        .into_iter()
        .filter(|(_, c)| (*c as f64) > threshold)
        .collect();
    HeavyHitters {
        atom,
        vars: eff_vars,
        cols,
        entries,
        cardinality: m,
        p,
    }
}

/// Detect heavy hitters for *every* atom and every nonempty variable subset
/// of that atom — the full complex-statistics regime of Section 4.2 ("one
/// needs to consider sets of attributes of each relation S_j that may be
/// heavy hitters jointly, even if none of them is a heavy hitter by
/// itself").
pub fn all_heavy_hitters(db: &Database, p: usize) -> Vec<HeavyHitters> {
    let q = db.query();
    let mut out = Vec::new();
    for j in 0..q.num_atoms() {
        let atom_vars = q.atom(j).var_set();
        for subset in atom_vars.subsets() {
            if subset.is_empty() {
                continue;
            }
            out.push(heavy_hitters(db, j, subset, p));
        }
    }
    out
}

/// Split a relation's tuples into (heavy, light) with respect to a set of
/// heavy assignments at `cols`.
pub fn split_heavy_light(
    rel: &mpc_data::Relation,
    hh: &HeavyHitters,
) -> (mpc_data::Relation, mpc_data::Relation) {
    rel.partition(|row| {
        let key: Vec<u64> = hh.cols.iter().map(|&c| row[c]).collect();
        hh.entries.contains_key(&key)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Relation, Rng};
    use mpc_query::named;

    fn skewed_join_db(p: usize) -> (Database, usize) {
        // S1(x,z): 100 tuples with z=7 (heavy for p >= 2), 100 spread out.
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(1);
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![7u64], 100))
            .chain((0..100).map(|i| (vec![100 + i as u64], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, 1 << 10, &mut rng);
        let s2 = generators::uniform("S2", 2, 200, 1 << 10, &mut rng);
        let db = Database::new(q, vec![s1, s2], 1 << 10).unwrap();
        (db, p)
    }

    #[test]
    fn detects_planted_heavy_hitter() {
        let (db, p) = skewed_join_db(8);
        let q = db.query();
        let z = q.var_index("z").unwrap();
        let hh = heavy_hitters(&db, 0, VarSet::singleton(z), p);
        // threshold = 200/8 = 25; only z=7 (freq 100) exceeds it.
        assert_eq!(hh.len(), 1);
        assert_eq!(hh.frequency(&[7]), Some(100));
        assert!(hh.is_heavy(&[7]));
        assert!(!hh.is_heavy(&[100]));
        assert!((hh.threshold() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn heavy_count_is_below_p() {
        // Structural guarantee: fewer than p assignments can each exceed m/p.
        let (db, _) = skewed_join_db(4);
        for p in [2usize, 4, 8, 64] {
            for j in 0..db.query().num_atoms() {
                for subset in db.query().atom(j).var_set().subsets() {
                    if subset.is_empty() {
                        continue;
                    }
                    let hh = heavy_hitters(&db, j, subset, p);
                    assert!(hh.len() < p, "p={p}: {} heavy hitters", hh.len());
                }
            }
        }
    }

    #[test]
    fn joint_attribute_subsets_are_enumerated() {
        // 14 tuples share the pair (x,z) = (1,2) out of 120; with p = 16 the
        // threshold is 7.5, so the *pair* is a heavy hitter of the attribute
        // subset {x,z}, and all_heavy_hitters must inspect that subset.
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(2);
        let mut s1 = Relation::new("S1", 2);
        for _ in 0..14 {
            s1.push(&[1, 2]);
        }
        for i in 0..106u64 {
            s1.push(&[10 + i, 300 + i]);
        }
        let s2 = generators::uniform("S2", 2, 100, 1 << 10, &mut rng);
        let db = Database::new(q, vec![s1, s2], 1 << 10).unwrap();
        let p = 16;
        // threshold = 120/16 = 7.5
        let x = db.query().var_index("x").unwrap();
        let z = db.query().var_index("z").unwrap();
        let joint = heavy_hitters(&db, 0, VarSet::from_iter([x, z]), p);
        assert_eq!(joint.frequency(&[1, 2]), Some(14));
        let single_x = heavy_hitters(&db, 0, VarSet::singleton(x), p);
        assert_eq!(single_x.frequency(&[1]), Some(14));
        // All subsets are enumerated by all_heavy_hitters.
        let all = all_heavy_hitters(&db, p);
        // Atom 0 has vars {x,z}: subsets {x},{z},{x,z}; atom 1: {y},{z},{y,z}.
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn split_heavy_light_partitions() {
        let (db, p) = skewed_join_db(8);
        let z = db.query().var_index("z").unwrap();
        let hh = heavy_hitters(&db, 0, VarSet::singleton(z), p);
        let (heavy, light) = split_heavy_light(db.relation(0), &hh);
        assert_eq!(heavy.len(), 100);
        assert_eq!(light.len(), 100);
        assert!(heavy.rows().all(|r| r[1] == 7));
        assert!(light.rows().all(|r| r[1] != 7));
    }

    #[test]
    fn uniform_data_has_no_heavy_hitters() {
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(3);
        let n = 1u64 << 16;
        let s1 = generators::matching("S1", 2, 1000, n, &mut rng);
        let s2 = generators::matching("S2", 2, 1000, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        for hh in all_heavy_hitters(&db, 64) {
            assert!(hh.is_empty(), "unexpected heavy hitters: {hh:?}");
        }
    }
}
