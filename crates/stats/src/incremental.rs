//! Incrementally-maintained per-relation statistics for a resident service.
//!
//! A long-lived catalog cannot afford to rescan a relation on every append
//! just to keep its planning statistics fresh. [`IncrementalStats`] keeps,
//! per relation:
//!
//! * the cardinality `m_j`;
//! * memoized frequency maps for every column projection a planner has
//!   asked about (built by one scan on first request, then updated in
//!   `O(appended tuples)` per append);
//! * [`HeavyTracker`]s — the exact heavy-hitter *set* at a `(cols, p)`
//!   pair, maintained incrementally under the paper's threshold
//!   `m_j(h) > m_j / p` (Section 4.2), together with an order-independent
//!   membership hash.
//!
//! Exactness under appends: the threshold denominator `m_j` only grows, so
//! after an append the heavy set can change in exactly two ways — a
//! previously-heavy key falls below the new threshold (there are fewer than
//! `p` of those to re-check), or a key whose count just grew crosses it
//! (only appended keys can). Checking those two finite sets keeps the
//! tracker bit-identical to a fresh scan, without touching the rest of the
//! frequency map. The membership hash covers heavy *keys only*, not their
//! counts: any statistics yield a correct (answer-identical) plan — drifting
//! frequencies of an unchanged heavy set merely shift load within the
//! paper's constants, so a plan cache keyed on this hash stays warm across
//! such drift and invalidates exactly when membership changes.

use mpc_data::fastmap::FastMap;
use mpc_data::relation::Relation;
use mpc_data::rng::mix64;
use std::sync::Arc;

/// Order-independent hash of a heavy-hitter key (one projected assignment).
fn key_hash(key: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15;
    for &v in key {
        h = mix64(h, v);
    }
    h
}

/// The exact heavy-hitter set of one `(cols, p)` projection, maintained
/// incrementally (see the module docs for the exactness argument).
#[derive(Clone, Debug)]
pub struct HeavyTracker {
    heavy: FastMap<Vec<u64>, usize>,
    hash: u64,
}

impl HeavyTracker {
    fn from_frequencies(freq: &FastMap<Vec<u64>, usize>, len: usize, p: usize) -> HeavyTracker {
        let threshold = len as f64 / p as f64;
        let heavy: FastMap<Vec<u64>, usize> = freq
            .iter()
            .filter(|(_, &c)| (c as f64) > threshold)
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        let hash = heavy.keys().fold(0u64, |acc, k| acc ^ key_hash(k));
        HeavyTracker { heavy, hash }
    }

    /// Heavy assignments (projected keys) and their exact frequencies.
    pub fn entries(&self) -> &FastMap<Vec<u64>, usize> {
        &self.heavy
    }

    /// XOR-combined hash of the heavy *keys* (membership only; counts are
    /// deliberately excluded — see the module docs).
    pub fn membership_hash(&self) -> u64 {
        self.hash
    }
}

/// Incrementally-maintained statistics for one relation of the catalog.
#[derive(Clone, Debug, Default)]
pub struct IncrementalStats {
    arity: usize,
    len: usize,
    /// Frequency maps per requested column projection, behind `Arc` so a
    /// planner-facing stats view can hand them out without cloning the map
    /// (the map is only mutated through `Arc::make_mut` in [`Self::append`],
    /// which copies lazily iff a reader still holds the previous snapshot).
    freq: FastMap<Vec<usize>, Arc<FastMap<Vec<u64>, usize>>>,
    /// Heavy-hitter trackers per `(cols, p)`.
    trackers: FastMap<(Vec<usize>, usize), HeavyTracker>,
}

impl IncrementalStats {
    /// Statistics for `rel` as currently loaded. Only the cardinality is
    /// computed eagerly; frequency maps are built lazily on first request
    /// and maintained incrementally afterwards.
    pub fn of(rel: &Relation) -> IncrementalStats {
        IncrementalStats {
            arity: rel.arity(),
            len: rel.len(),
            freq: FastMap::default(),
            trackers: FastMap::default(),
        }
    }

    /// Current cardinality `m_j`.
    pub fn cardinality(&self) -> usize {
        self.len
    }

    /// The cardinality rounded up to a power of two — the coarse bucket a
    /// plan-cache fingerprint uses, so appends that stay within a bucket
    /// keep cached plans warm.
    pub fn cardinality_bucket(&self) -> u64 {
        (self.len.max(1) as u64).next_power_of_two()
    }

    /// Number of column projections with a memoized frequency map.
    pub fn tracked_projections(&self) -> usize {
        self.freq.len()
    }

    /// The frequency map of projection `cols`, building it from `rel` (one
    /// scan) if this is the first request. `rel` must be the relation these
    /// statistics describe.
    pub fn frequencies(
        &mut self,
        rel: &Relation,
        cols: &[usize],
    ) -> &Arc<FastMap<Vec<u64>, usize>> {
        debug_assert_eq!(rel.len(), self.len, "stats out of sync with relation");
        self.freq
            .entry(cols.to_vec())
            .or_insert_with(|| Arc::new(rel.frequencies(cols)))
    }

    /// The memoized frequency map of `cols`, if one has been built. The
    /// `Arc` clones for free; it is detached from future appends only when
    /// the caller outlives them (copy-on-write).
    pub fn frequencies_cached(&self, cols: &[usize]) -> Option<&Arc<FastMap<Vec<u64>, usize>>> {
        self.freq.get(cols)
    }

    /// Ensure a heavy tracker exists for `(cols, p)` and return its
    /// membership hash. Builds the frequency map (one scan of `rel`) on
    /// first request.
    pub fn ensure_tracker(&mut self, rel: &Relation, cols: &[usize], p: usize) -> u64 {
        if let Some(t) = self.trackers.get(&(cols.to_vec(), p)) {
            return t.hash;
        }
        self.frequencies(rel, cols);
        let freq = self.freq.get(cols).expect("just built");
        let tracker = HeavyTracker::from_frequencies(freq, self.len, p);
        let hash = tracker.hash;
        self.trackers.insert((cols.to_vec(), p), tracker);
        hash
    }

    /// Membership hash of the `(cols, p)` tracker, if one exists.
    pub fn tracker_hash(&self, cols: &[usize], p: usize) -> Option<u64> {
        self.trackers.get(&(cols.to_vec(), p)).map(|t| t.hash)
    }

    /// The `(cols, p)` tracker, if one exists.
    pub fn tracker(&self, cols: &[usize], p: usize) -> Option<&HeavyTracker> {
        self.trackers.get(&(cols.to_vec(), p))
    }

    /// Fold `rows` (row-major flat, length a multiple of the arity) into
    /// every memoized frequency map and heavy tracker, in
    /// `O(rows × tracked projections)` — no rescan of the relation.
    ///
    /// # Panics
    /// Panics when `rows.len()` is not a multiple of the arity.
    pub fn append(&mut self, rows: &[u64]) {
        assert!(self.arity > 0, "append on uninitialized stats");
        assert_eq!(
            rows.len() % self.arity,
            0,
            "flat tuple data not a multiple of arity {}",
            self.arity
        );
        for (cols, map) in self.freq.iter_mut() {
            let map = Arc::make_mut(map);
            for row in rows.chunks_exact(self.arity) {
                let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
                *map.entry(key).or_insert(0) += 1;
            }
        }
        self.len += rows.len() / self.arity;
        let threshold_num = self.len;
        for ((cols, p), tracker) in self.trackers.iter_mut() {
            let map = self.freq.get(cols).expect("tracker implies frequency map");
            let threshold = threshold_num as f64 / *p as f64;
            let mut changed = false;
            // Previously-heavy keys may fall below the risen threshold.
            tracker.heavy.retain(|k, c| {
                // Refresh the stored count while we are here.
                *c = map.get(k).copied().unwrap_or(0);
                let keep = (*c as f64) > threshold;
                changed |= !keep;
                keep
            });
            // Appended keys may have crossed it.
            for row in rows.chunks_exact(self.arity) {
                let key: Vec<u64> = cols.iter().map(|&c| row[c]).collect();
                let count = map.get(&key).copied().unwrap_or(0);
                if (count as f64) > threshold && !tracker.heavy.contains_key(&key) {
                    tracker.heavy.insert(key, count);
                    changed = true;
                }
            }
            if changed {
                tracker.hash = tracker.heavy.keys().fold(0u64, |acc, k| acc ^ key_hash(k));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::Rng;

    fn scan_heavy(rel: &Relation, cols: &[usize], p: usize) -> FastMap<Vec<u64>, usize> {
        let threshold = rel.len() as f64 / p as f64;
        rel.frequencies(cols)
            .into_iter()
            .filter(|(_, c)| (*c as f64) > threshold)
            .collect()
    }

    #[test]
    fn incremental_matches_fresh_scan_under_random_appends() {
        let mut rng = Rng::seed_from_u64(42);
        for p in [2usize, 4, 8] {
            let mut rel = Relation::new("S", 2);
            let mut stats = IncrementalStats::of(&rel);
            stats.ensure_tracker(&rel, &[1], p);
            stats.ensure_tracker(&rel, &[0, 1], p);
            for round in 0..20 {
                let nrows = 1 + (rng.next_u64() % 40) as usize;
                let mut flat = Vec::with_capacity(nrows * 2);
                for _ in 0..nrows {
                    // Skewed small domain so heavy sets actually change.
                    let x = rng.next_u64() % 32;
                    let z = rng.next_u64() % 8;
                    flat.extend_from_slice(&[x, z]);
                }
                rel.push_rows(&flat);
                stats.append(&flat);
                assert_eq!(stats.cardinality(), rel.len());
                for cols in [vec![1usize], vec![0usize, 1]] {
                    let expect_freq = rel.frequencies(&cols);
                    assert_eq!(
                        stats.frequencies_cached(&cols).map(|a| a.as_ref()),
                        Some(&expect_freq),
                        "p={p} round={round} cols={cols:?}: frequency drift"
                    );
                    let expect_heavy = scan_heavy(&rel, &cols, p);
                    let tracker = stats.tracker(&cols, p).unwrap();
                    assert_eq!(
                        tracker.entries(),
                        &expect_heavy,
                        "p={p} round={round} cols={cols:?}: heavy drift"
                    );
                    let fresh = HeavyTracker::from_frequencies(&expect_freq, rel.len(), p);
                    assert_eq!(
                        tracker.membership_hash(),
                        fresh.membership_hash(),
                        "p={p} round={round}: hash drift"
                    );
                }
            }
        }
    }

    #[test]
    fn membership_hash_ignores_count_drift_and_sees_membership_changes() {
        let mut rel = Relation::new("S", 2);
        // 8 tuples, z=7 appears 3 times: threshold at p=4 is 2.0, so z=7 is
        // heavy.
        for (i, z) in [
            (0u64, 7u64),
            (1, 7),
            (2, 7),
            (3, 1),
            (4, 2),
            (5, 3),
            (6, 4),
            (7, 5),
        ] {
            rel.push(&[i, z]);
        }
        let mut stats = IncrementalStats::of(&rel);
        let h0 = stats.ensure_tracker(&rel, &[1], 4);
        assert_eq!(stats.tracker(&[1], 4).unwrap().entries().len(), 1);
        // Growing the heavy key's count (and m with it) keeps membership —
        // hash unchanged.
        let grow = [(8u64, 7u64)]
            .iter()
            .flat_map(|&(x, z)| [x, z])
            .collect::<Vec<_>>();
        rel.push_rows(&grow);
        stats.append(&grow);
        assert_eq!(stats.tracker_hash(&[1], 4), Some(h0));
        assert_eq!(stats.tracker(&[1], 4).unwrap().entries()[&vec![7]], 4);
        // Flooding with distinct z values raises the threshold until z=7
        // falls light: membership changes, hash changes.
        let flood: Vec<u64> = (0..40u64).flat_map(|i| [100 + i, 200 + i]).collect();
        rel.push_rows(&flood);
        stats.append(&flood);
        let h1 = stats.tracker_hash(&[1], 4).unwrap();
        assert_ne!(h0, h1);
        assert!(stats.tracker(&[1], 4).unwrap().entries().is_empty());
    }

    #[test]
    fn cardinality_bucket_is_power_of_two() {
        let mut rel = Relation::new("S", 1);
        let mut stats = IncrementalStats::of(&rel);
        assert_eq!(stats.cardinality_bucket(), 1);
        let flat: Vec<u64> = (0..5).collect();
        rel.push_rows(&flat);
        stats.append(&flat);
        assert_eq!(stats.cardinality_bucket(), 8);
        let flat: Vec<u64> = (0..3).collect();
        rel.push_rows(&flat);
        stats.append(&flat);
        assert_eq!(stats.cardinality_bucket(), 8);
        let more: Vec<u64> = (0..1).collect();
        rel.push_rows(&more);
        stats.append(&more);
        assert_eq!(stats.cardinality_bucket(), 16);
    }
}
