//! Bin combinations (Definition 4.1) and their assignment sets.
//!
//! A *bin combination* `B = (x, (β_j)_j)` picks a variable set `x ⊆ vars(q)`
//! and, for every atom with `x_j = x ∩ vars(S_j) ≠ ∅`, a frequency bin of
//! that atom's `x_j`-projection (a heavy bin `b` with exponent
//! `β = log_p 2^{b-1}`, or the light bin with exponent 1). `C(B)` is the set
//! of joint assignments `h` to `x` realizing those bins.
//!
//! The paper's algorithm caps the assignments actually processed per
//! combination at `p` (`|C'(B)| <= p`, Lemma 4.2) via the overweight
//! recursion; this collector enforces the same cap by keeping the
//! heaviest-by-frequency-product assignments, which realizes the same
//! guarantee directly from the exact statistics it already holds (the
//! difference is documented in DESIGN.md §4).
//!
//! Enumerating `C(B)` requires every variable of `x` to be pinned by at
//! least one atom in a *heavy* bin (light projections have up to `n`
//! distinct values and are handled by the residual-share LP, not by
//! per-assignment processing). Combinations violating that are skipped.

use crate::bins::{bin_exponent, BinnedHitters, LIGHT_BIN_EXPONENT};
use crate::heavy::{heavy_hitters, HeavyHitters};
use mpc_data::catalog::Database;
use mpc_query::{Query, VarSet};
use std::collections::HashMap;

/// Where the combination enumerator gets its frequencies: either the exact
/// per-projection scans ([`ExactSource`]) or any error-bounded estimate
/// provider (sketches, samples) adapted through
/// [`HeavyHitters::from_estimates`]'s conservative rule.
pub trait FrequencySource {
    /// Heavy hitters of atom `j` at variable subset `vars` (already
    /// intersected with the atom's variables).
    fn heavy(&self, atom: usize, vars: VarSet) -> HeavyHitters;

    /// Best-known frequency of a *light* assignment (used only to order
    /// the `|C'(B)| <= p` cap; any value at or below the threshold is
    /// consistent, so estimate providers may return 0 for unknown keys).
    fn light_frequency(&self, atom: usize, cols: &[usize], key: &[u64]) -> usize;
}

/// The exact source: scans the database's relations (the paper's
/// all-knowing statistics oracle).
pub struct ExactSource<'a> {
    /// The database whose relations are scanned.
    pub db: &'a Database,
    /// Threshold denominator `p`.
    pub p: usize,
}

impl FrequencySource for ExactSource<'_> {
    fn heavy(&self, atom: usize, vars: VarSet) -> HeavyHitters {
        heavy_hitters(self.db, atom, vars, self.p)
    }

    fn light_frequency(&self, atom: usize, cols: &[usize], key: &[u64]) -> usize {
        self.db
            .relation(atom)
            .frequencies(cols)
            .get(key)
            .copied()
            .unwrap_or(0)
    }
}

/// The per-atom bin choice inside a combination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BinChoice {
    /// `x_j = ∅`: the atom does not participate (`β_j = 0`).
    Absent,
    /// Heavy bin `b` (1-based): `β_j = log_p 2^{b-1}`.
    Heavy(usize),
    /// The light bin: `β_j = 1`.
    Light,
}

/// One joint assignment `h ∈ C'(B)` with its per-atom frequencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CombinationAssignment {
    /// Values for the variables of `x`, in `x.iter()` order.
    pub values: Vec<u64>,
    /// `m_j(h_j)` per atom (`None` where `x_j = ∅`).
    pub freqs: Vec<Option<usize>>,
}

/// A bin combination with its (capped) assignment set.
#[derive(Clone, Debug)]
pub struct BinCombination {
    /// The variable set `x`.
    pub x: VarSet,
    /// Per-atom bin choice.
    pub bins: Vec<BinChoice>,
    /// Per-atom bin exponents `β_j` (0 for absent atoms, 1 for light).
    pub beta: Vec<f64>,
    /// `C'(B)`: at most `p` assignments.
    pub assignments: Vec<CombinationAssignment>,
}

impl BinCombination {
    /// `α = log_p |C'(B)|` — the exponent of the assignment count.
    pub fn alpha(&self, p: usize) -> f64 {
        if self.assignments.is_empty() {
            0.0
        } else {
            (self.assignments.len() as f64).ln() / (p as f64).ln()
        }
    }

    /// The empty combination `B_∅` (x = ∅, all atoms absent, one empty
    /// assignment) that drives the all-light run of the general algorithm.
    pub fn empty(num_atoms: usize) -> BinCombination {
        BinCombination {
            x: VarSet::EMPTY,
            bins: vec![BinChoice::Absent; num_atoms],
            beta: vec![0.0; num_atoms],
            assignments: vec![CombinationAssignment {
                values: Vec::new(),
                freqs: vec![None; num_atoms],
            }],
        }
    }
}

/// Enumerate the bin combinations realized by the data, including `B_∅`,
/// with `|C'(B)| <= p` per combination.
///
/// For every nonempty `x ⊆ vars(q)` and every per-atom bin choice (over
/// occupied heavy bins plus Light), the assignments are the join of the
/// chosen heavy bins' members, filtered so light-choosing atoms really see a
/// light projection. Combinations whose heavy atoms do not cover `x`, or
/// with no realizable assignment, are dropped.
pub fn enumerate_combinations(db: &Database, p: usize) -> Vec<BinCombination> {
    enumerate_combinations_with(db.query(), p, &ExactSource { db, p })
}

/// [`enumerate_combinations`] over any [`FrequencySource`] — the entry
/// point for sketch- and sample-backed planning (exact statistics go
/// through the same path via [`ExactSource`], bit-identically).
pub fn enumerate_combinations_with(
    q: &Query,
    p: usize,
    source: &dyn FrequencySource,
) -> Vec<BinCombination> {
    let l = q.num_atoms();
    let mut out = vec![BinCombination::empty(l)];

    // Pre-bin every (atom, nonempty subset of its variables).
    let mut binned: HashMap<(usize, VarSet), BinnedHitters> = HashMap::new();
    for j in 0..l {
        for sub in q.atom(j).var_set().subsets() {
            if sub.is_empty() {
                continue;
            }
            binned.insert((j, sub), BinnedHitters::build(source.heavy(j, sub)));
        }
    }

    for x in q.all_vars().subsets() {
        if x.is_empty() {
            continue;
        }
        let xj: Vec<VarSet> = (0..l).map(|j| x.intersect(q.atom(j).var_set())).collect();
        let participants: Vec<usize> = (0..l).filter(|&j| !xj[j].is_empty()).collect();
        if participants.is_empty() {
            continue;
        }
        // Per-participant choices: occupied heavy bins + Light.
        let choices: Vec<Vec<BinChoice>> = participants
            .iter()
            .map(|&j| {
                let bh = &binned[&(j, xj[j])];
                let mut cs: Vec<BinChoice> =
                    bh.occupied().map(|(b, _)| BinChoice::Heavy(b)).collect();
                cs.push(BinChoice::Light);
                cs
            })
            .collect();
        // Cartesian product over participant choices (odometer).
        let mut odo = vec![0usize; participants.len()];
        'combos: loop {
            let chosen: Vec<&BinChoice> = odo.iter().zip(&choices).map(|(&i, cs)| &cs[i]).collect();
            // Coverage check: heavy atoms must pin all of x.
            let covered = participants
                .iter()
                .zip(&chosen)
                .filter(|(_, c)| matches!(c, BinChoice::Heavy(_)))
                .fold(VarSet::EMPTY, |s, (&j, _)| s.union(xj[j]));
            if covered == x {
                if let Some(combo) =
                    realize_combination(q, p, x, &participants, &chosen, &binned, source)
                {
                    out.push(combo);
                }
            }
            // Advance odometer.
            let mut i = participants.len();
            loop {
                if i == 0 {
                    break 'combos;
                }
                i -= 1;
                odo[i] += 1;
                if odo[i] < choices[i].len() {
                    break;
                }
                odo[i] = 0;
            }
        }
    }
    out
}

/// Join the chosen heavy bins' members into joint assignments, verify light
/// choices, cap at `p`, and package the combination.
#[allow(clippy::too_many_arguments)]
fn realize_combination(
    q: &Query,
    p: usize,
    x: VarSet,
    participants: &[usize],
    chosen: &[&BinChoice],
    binned: &HashMap<(usize, VarSet), BinnedHitters>,
    source: &dyn FrequencySource,
) -> Option<BinCombination> {
    let l = q.num_atoms();
    let xvars: Vec<usize> = x.iter().collect();
    let d = xvars.len();

    // Join heavy members across heavy atoms.
    let mut partials: Vec<Vec<Option<u64>>> = vec![vec![None; d]];
    for (&j, choice) in participants.iter().zip(chosen) {
        let BinChoice::Heavy(b) = choice else {
            continue;
        };
        let bh = &binned[&(j, x.intersect(q.atom(j).var_set()))];
        let members = &bh.bins[b - 1];
        let slots: Vec<usize> = bh
            .source
            .vars
            .iter()
            .map(|v| xvars.iter().position(|&w| w == v).expect("x_j ⊆ x"))
            .collect();
        let mut next = Vec::new();
        for partial in &partials {
            for (key, _freq) in members {
                let mut v2 = partial.clone();
                let mut ok = true;
                for (i, &slot) in slots.iter().enumerate() {
                    match v2[slot] {
                        None => v2[slot] = Some(key[i]),
                        Some(existing) if existing != key[i] => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                    }
                }
                if ok {
                    next.push(v2);
                }
            }
        }
        partials = next;
        if partials.is_empty() {
            return None;
        }
    }

    // Materialize, check bins of every participant, collect frequencies.
    let mut assignments: Vec<CombinationAssignment> = Vec::new();
    'cand: for partial in partials {
        let values: Vec<u64> = partial
            .into_iter()
            .map(|v| v.expect("heavy atoms cover x"))
            .collect();
        let mut freqs: Vec<Option<usize>> = vec![None; l];
        for (&j, choice) in participants.iter().zip(chosen) {
            let bh = &binned[&(j, x.intersect(q.atom(j).var_set()))];
            let key: Vec<u64> = bh
                .source
                .vars
                .iter()
                .map(|v| values[xvars.iter().position(|&w| w == v).expect("x_j ⊆ x")])
                .collect();
            let freq = bh.source.frequency(&key);
            match (choice, freq) {
                (BinChoice::Heavy(b), Some(f)) => {
                    // Must sit in exactly the chosen bin.
                    let actual = crate::bins::bin_of_frequency(f, bh.source.cardinality, p);
                    if actual != Some(*b) {
                        continue 'cand;
                    }
                    freqs[j] = Some(f);
                }
                (BinChoice::Heavy(_), None) => continue 'cand,
                (BinChoice::Light, Some(_)) => continue 'cand, // actually heavy
                (BinChoice::Light, None) => {
                    // Light: best-known frequency (may be 0; only orders
                    // the cap, see `FrequencySource::light_frequency`).
                    freqs[j] = Some(source.light_frequency(j, &bh.source.cols, &key));
                }
                (BinChoice::Absent, _) => unreachable!("participants are non-absent"),
            }
        }
        assignments.push(CombinationAssignment { values, freqs });
    }
    if assignments.is_empty() {
        return None;
    }
    // Cap |C'(B)| <= p, keeping the heaviest assignments by frequency
    // product (Lemma 4.2's bound, realized greedily).
    if assignments.len() > p {
        assignments.sort_by(|a, b| {
            let fa: f64 = a
                .freqs
                .iter()
                .flatten()
                .map(|&f| (f.max(1) as f64).ln())
                .sum();
            let fb: f64 = b
                .freqs
                .iter()
                .flatten()
                .map(|&f| (f.max(1) as f64).ln())
                .sum();
            fb.partial_cmp(&fa).expect("finite")
        });
        assignments.truncate(p);
    }
    assignments.sort_by(|a, b| a.values.cmp(&b.values));

    let mut bins = vec![BinChoice::Absent; l];
    let mut beta = vec![0.0f64; l];
    for (&j, choice) in participants.iter().zip(chosen) {
        bins[j] = (*choice).clone();
        beta[j] = match choice {
            BinChoice::Heavy(b) => bin_exponent(*b, p),
            BinChoice::Light => LIGHT_BIN_EXPONENT,
            BinChoice::Absent => 0.0,
        };
    }
    Some(BinCombination {
        x,
        bins,
        beta,
        assignments,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Database, Rng};
    use mpc_query::named;

    /// Join with one planted heavy z value in S1 only.
    fn one_sided_skew(p: usize) -> Database {
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(1);
        let m = 1 << 10;
        let heavy = m / 2;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![7u64], heavy))
            .chain((0..heavy as u64).map(|i| (vec![100 + i], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, 1 << 12, &mut rng);
        let s2 = generators::matching("S2", 2, m, 1 << 12, &mut rng);
        let _ = p;
        Database::new(q, vec![s1, s2], 1 << 12).unwrap()
    }

    #[test]
    fn empty_combination_always_present() {
        let db = one_sided_skew(16);
        let combos = enumerate_combinations(&db, 16);
        assert!(combos
            .iter()
            .any(|c| c.x.is_empty() && c.assignments.len() == 1));
    }

    #[test]
    fn planted_heavy_hitter_yields_combination() {
        let db = one_sided_skew(16);
        let z = db.query().var_index("z").unwrap();
        let combos = enumerate_combinations(&db, 16);
        // Expect a combination with x = {z}, S1 heavy bin 2 (freq = m/2 sits
        // in (m/4, m/2]), S2 light, containing the assignment [7].
        let hit = combos.iter().find(|c| {
            c.x == VarSet::singleton(z)
                && c.bins[0] == BinChoice::Heavy(2)
                && c.bins[1] == BinChoice::Light
        });
        let hit = hit.expect("combination for planted skew missing");
        assert_eq!(hit.assignments.len(), 1);
        assert_eq!(hit.assignments[0].values, vec![7]);
        assert_eq!(hit.assignments[0].freqs[0], Some(512));
        // S2 is a matching: z=7 appears at most once there.
        assert!(hit.assignments[0].freqs[1].unwrap_or(0) <= 1);
        // β: bin 2 -> log_p 2 for S1; light -> 1.0 for S2.
        assert!((hit.beta[0] - 2f64.ln() / 16f64.ln()).abs() < 1e-12);
        assert_eq!(hit.beta[1], 1.0);
    }

    #[test]
    fn assignments_capped_at_p() {
        // Plant 2p-ish moderately heavy values; cap must hold.
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(2);
        let p = 8usize;
        let m = 1 << 12;
        let hh_count = 30usize;
        let per = m / hh_count; // ~136 > m/p = 512? No: 4096/8 = 512 > 136.
                                // Make them genuinely heavy: use fewer, bigger plants with p = 8:
                                // threshold 512; plant 30 values of ~600 needs m = 18000.
        let m = 18_000usize;
        let degrees: Vec<(Vec<u64>, usize)> =
            (0..hh_count as u64).map(|i| (vec![i], 600)).collect();
        let _ = per;
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, 1 << 16, &mut rng);
        let s2 = generators::matching("S2", 2, m, 1 << 16, &mut rng);
        let db = Database::new(q, vec![s1, s2], 1 << 16).unwrap();
        for combo in enumerate_combinations(&db, p) {
            assert!(
                combo.assignments.len() <= p,
                "combination exceeds cap: {} > {p}",
                combo.assignments.len()
            );
        }
    }

    #[test]
    fn alpha_matches_assignment_count() {
        let db = one_sided_skew(16);
        let combos = enumerate_combinations(&db, 16);
        for c in &combos {
            let alpha = c.alpha(16);
            assert!((0.0..=1.0 + 1e-9).contains(&alpha));
            let recon = (16f64).powf(alpha).round() as usize;
            assert_eq!(recon, c.assignments.len().max(1));
        }
    }

    #[test]
    fn skew_free_data_has_only_empty_combination() {
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(3);
        let n = 1u64 << 16;
        let s1 = generators::matching("S1", 2, 2000, n, &mut rng);
        let s2 = generators::matching("S2", 2, 2000, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let combos = enumerate_combinations(&db, 32);
        assert_eq!(combos.len(), 1, "matchings have no heavy hitters");
        assert!(combos[0].x.is_empty());
    }

    #[test]
    fn both_sided_skew_yields_joint_combination() {
        // Heavy z = 7 in BOTH relations: expect a combination with both
        // atoms in a heavy bin (the H12 case of Section 4.1).
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(4);
        let m = 1 << 10;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![7u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + i], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, 1 << 12, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &degrees, 1 << 12, &mut rng);
        let db = Database::new(q, vec![s1, s2], 1 << 12).unwrap();
        let z = db.query().var_index("z").unwrap();
        let combos = enumerate_combinations(&db, 16);
        let joint = combos.iter().find(|c| {
            c.x == VarSet::singleton(z)
                && matches!(c.bins[0], BinChoice::Heavy(_))
                && matches!(c.bins[1], BinChoice::Heavy(_))
        });
        let joint = joint.expect("joint heavy combination missing");
        assert_eq!(joint.assignments[0].values, vec![7]);
        assert_eq!(joint.assignments[0].freqs[0], Some(512));
        assert_eq!(joint.assignments[0].freqs[1], Some(512));
    }
}
