//! # mpc-stats
//!
//! Database statistics for the `mpc-skew` workspace, covering both
//! information regimes of Beame–Koutris–Suciu (PODS 2014):
//!
//! * [`cardinality::SimpleStatistics`] — cardinalities and bit sizes
//!   (Section 3's "simple database statistics");
//! * [`heavy`] — heavy-hitter detection per `(relation, attribute subset)`
//!   at the `m_j/p` threshold (Section 4);
//! * [`bins`] — the `log2 p` geometric frequency bins and bin exponents of
//!   Section 4.2;
//! * [`combination`] — bin combinations (Definition 4.1) with capped
//!   assignment sets (`|C'(B)| <= p`, Lemma 4.2);
//! * [`degree`] — exact x-statistics / degree sequences and the factorized
//!   sum-of-products evaluator behind the `L_x(u, M, p)` lower bound
//!   (Theorem 4.7).

pub mod bins;
pub mod cardinality;
pub mod combination;
pub mod degree;
pub mod heavy;
pub mod incremental;
pub mod sampling;
pub mod sketch;

pub use bins::{
    bin_exponent, bin_of_estimate, bin_of_frequency, num_bins, BinnedHitters, LIGHT_BIN_EXPONENT,
};
pub use cardinality::SimpleStatistics;
pub use combination::{
    enumerate_combinations, enumerate_combinations_with, BinChoice, BinCombination,
    CombinationAssignment, ExactSource, FrequencySource,
};
pub use degree::{degree_statistics, joint_assignments, sum_over_assignments, DegreeStatistics};
pub use heavy::{all_heavy_hitters, heavy_hitters, split_heavy_light, HeavyHitters};
pub use incremental::{HeavyTracker, IncrementalStats};
pub use sampling::{
    recommended_rate, sample_heavy_hitters, sampled_frequencies, SampledFrequencies,
};
pub use sketch::{DistinctCounter, ErrorDirection, FreqEstimate, RelationSketch, SpaceSaving};
