//! Per-dimension hash families and the bucket-load experiment of Lemma 3.1.
//!
//! The HyperCube algorithm needs `k` independent hash functions
//! `h_i : [n] → [p_i]` (Section 3.1). We realize them as keyed 64-bit
//! mixers with independently drawn keys — the empirical stand-in for the
//! paper's "independent and perfectly random hash functions", whose max-load
//! behaviour Lemma 3.1 analyzes and `exp_hashing` measures.

use crate::topology::Grid;
use mpc_data::relation::Relation;
use mpc_data::rng::{mix64, Rng};

/// A family of independent hash functions, one per grid dimension.
#[derive(Clone, Debug)]
pub struct HashFamily {
    keys: Vec<u64>,
}

impl HashFamily {
    /// Draw `dims` independent functions from the seed.
    pub fn new(dims: usize, seed: u64) -> HashFamily {
        let mut rng = Rng::seed_from_u64(seed ^ 0x6A09_E667_F3BC_C908);
        let keys = (0..dims).map(|_| rng.next_u64()).collect();
        HashFamily { keys }
    }

    /// Number of functions in the family.
    pub fn dims(&self) -> usize {
        self.keys.len()
    }

    /// `h_i(value)` in `[0, buckets)`.
    #[inline]
    pub fn hash(&self, dim: usize, value: u64, buckets: usize) -> usize {
        debug_assert!(buckets > 0);
        (mix64(value, self.keys[dim]) % buckets as u64) as usize
    }
}

/// Hash every tuple of `relation` onto `grid` — attribute `a` of the tuple
/// is hashed by family dimension `attr_dims[a]` into the grid's dimension
/// `attr_dims[a]` — and return the per-cell tuple loads.
///
/// This is precisely the experiment of Lemma 3.1: an `r`-ary relation
/// hashed to `p = p1 ··· pr` bins via independent per-attribute hashes.
/// The grid must have one dimension per attribute.
pub fn bucket_loads(relation: &Relation, grid: &Grid, family: &HashFamily) -> Vec<u64> {
    assert_eq!(
        grid.rank(),
        relation.arity(),
        "grid must have one dimension per attribute"
    );
    assert!(family.dims() >= grid.rank());
    let mut loads = vec![0u64; grid.num_cells()];
    let mut coords = vec![0usize; grid.rank()];
    for row in relation.rows() {
        for (a, &v) in row.iter().enumerate() {
            coords[a] = family.hash(a, v, grid.dims()[a]);
        }
        loads[grid.encode(&coords)] += 1;
    }
    loads
}

/// Summary statistics of a load vector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadSummary {
    /// Largest per-cell load.
    pub max: u64,
    /// Mean per-cell load.
    pub mean: f64,
    /// max / mean — the headroom factor the high-probability bounds cap.
    pub imbalance: f64,
}

/// Summarize a load vector.
pub fn summarize(loads: &[u64]) -> LoadSummary {
    let max = loads.iter().copied().max().unwrap_or(0);
    let total: u64 = loads.iter().sum();
    let mean = total as f64 / loads.len().max(1) as f64;
    let imbalance = if mean > 0.0 { max as f64 / mean } else { 0.0 };
    LoadSummary {
        max,
        mean,
        imbalance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::generators;

    #[test]
    fn family_is_deterministic_per_seed() {
        let f1 = HashFamily::new(3, 7);
        let f2 = HashFamily::new(3, 7);
        let f3 = HashFamily::new(3, 8);
        for v in 0..100u64 {
            assert_eq!(f1.hash(0, v, 16), f2.hash(0, v, 16));
        }
        let diff = (0..100u64)
            .filter(|&v| f1.hash(0, v, 16) != f3.hash(0, v, 16))
            .count();
        assert!(diff > 50);
    }

    #[test]
    fn dimensions_are_independent() {
        let f = HashFamily::new(2, 42);
        let diff = (0..200u64)
            .filter(|&v| f.hash(0, v, 64) != f.hash(1, v, 64))
            .count();
        assert!(diff > 150, "dimensions look correlated: {diff}");
    }

    #[test]
    fn total_load_is_cardinality() {
        let mut rng = Rng::seed_from_u64(1);
        let r = generators::uniform("R", 2, 5000, 1 << 16, &mut rng);
        let grid = Grid::new(vec![4, 8]);
        let loads = bucket_loads(&r, &grid, &HashFamily::new(2, 3));
        assert_eq!(loads.iter().sum::<u64>(), 5000);
        assert_eq!(loads.len(), 32);
    }

    /// Lemma 3.1(2): matchings spread within a small constant of m/p.
    #[test]
    fn matching_loads_concentrate() {
        let mut rng = Rng::seed_from_u64(2);
        let m = 1 << 14;
        let r = generators::matching("R", 2, m, 1 << 20, &mut rng);
        let grid = Grid::new(vec![8, 8]);
        let s = summarize(&bucket_loads(&r, &grid, &HashFamily::new(2, 5)));
        assert!((s.mean - (m / 64) as f64).abs() < 1e-9);
        assert!(s.imbalance < 2.0, "matching imbalance {}", s.imbalance);
    }

    /// Lemma 3.1(4): a single-value attribute pins the load at m / p_other.
    #[test]
    fn single_value_attribute_floors_load() {
        let mut rng = Rng::seed_from_u64(3);
        let m = 1 << 12;
        let r = generators::single_value_column("R", 2, m, 1 << 16, 0, 99, &mut rng);
        let grid = Grid::new(vec![8, 8]);
        let s = summarize(&bucket_loads(&r, &grid, &HashFamily::new(2, 5)));
        // All tuples land in one slice of 8 cells: max >= m/8, and in fact
        // mean within the slice is m/8.
        assert!(s.max >= (m / 8) as u64, "max {} < m/p_2 {}", s.max, m / 8);
    }

    #[test]
    fn summarize_empty() {
        let s = summarize(&[]);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }
}
