//! # mpc-sim
//!
//! A simulator for the MPC (Massively Parallel Communication) model of
//! Beame–Koutris–Suciu (PODS 2014, Section 2.1): `p` servers, one global
//! communication round, cost = maximum bits received by any server.
//!
//! * [`cluster::Cluster`] — executes a [`cluster::Router`] (a pure
//!   tuple-at-a-time routing policy, the paper's one-round algorithm model)
//!   and materializes per-server fragments;
//! * [`backend::Backend`] — the execution backend (`Sequential`,
//!   `Threaded(n)`, or the persistent-pool `Pooled(n)`) driving the
//!   pipelined shuffle and the per-server local joins, with bit-identical
//!   results whatever the thread count;
//! * [`pool::WorkerPool`] — the persistent worker pool behind
//!   `Backend::Pooled`, reused across rounds, queries, and batches;
//! * [`oracle`] — the parallel ground-truth join (hash-partitioned
//!   sub-joins on the backend chunking) that verification measures
//!   distributed answers against;
//! * [`load::LoadReport`] — exact per-server bit/tuple accounting, maximum
//!   load `L`, and the replication rate `r` of Section 5;
//! * [`topology::Grid`] — the hypercube server grid with subcube
//!   enumeration (the HC replication pattern) and integer share rounding;
//! * [`hashing::HashFamily`] — independent per-dimension hash functions and
//!   the bucket-load experiment of Lemma 3.1.

pub mod backend;
pub mod cluster;
pub mod hashing;
pub mod load;
pub mod oracle;
pub mod pool;
pub mod topology;

pub use backend::Backend;
pub use cluster::{BatchJob, BroadcastRouter, Cluster, Router};
pub use hashing::{bucket_loads, summarize, HashFamily, LoadSummary};
pub use load::LoadReport;
pub use pool::WorkerPool;
pub use topology::{round_shares, Grid};
