//! Per-server load accounting.
//!
//! The MPC model's cost (Section 2.1) is the *load* `L`: the maximum number
//! of bits any server receives during the communication round. The
//! replication rate `r = Σ_i L_i / |I|` of Section 5 is derived from the
//! same counters.

/// Exact communication accounting for one round, produced by
/// [`crate::cluster::Cluster::report`]. Equality is exact per-server
/// equality — the differential suite uses it to prove backend determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadReport {
    /// Bits received per server.
    pub per_server_bits: Vec<u64>,
    /// Tuples received per server (all relations combined).
    pub per_server_tuples: Vec<u64>,
    /// Tuples received per server, split by atom: `[atom][server]`.
    pub per_atom_server_tuples: Vec<Vec<u64>>,
    /// Total input size `Σ_j M_j` in bits (for replication-rate math).
    pub input_bits: u64,
}

impl LoadReport {
    /// Number of servers.
    pub fn num_servers(&self) -> usize {
        self.per_server_bits.len()
    }

    /// The load `L`: maximum bits received by any server.
    pub fn max_load_bits(&self) -> u64 {
        self.per_server_bits.iter().copied().max().unwrap_or(0)
    }

    /// Maximum tuples received by any server.
    pub fn max_load_tuples(&self) -> u64 {
        self.per_server_tuples.iter().copied().max().unwrap_or(0)
    }

    /// Total bits communicated, `Σ_i L_i`.
    pub fn total_bits(&self) -> u64 {
        self.per_server_bits.iter().sum()
    }

    /// Total tuples communicated.
    pub fn total_tuples(&self) -> u64 {
        self.per_server_tuples.iter().sum()
    }

    /// Replication rate `r = Σ_i L_i / |I|` (Section 5).
    pub fn replication_rate(&self) -> f64 {
        if self.input_bits == 0 {
            0.0
        } else {
            self.total_bits() as f64 / self.input_bits as f64
        }
    }

    /// Mean bits per server.
    pub fn mean_load_bits(&self) -> f64 {
        if self.per_server_bits.is_empty() {
            0.0
        } else {
            self.total_bits() as f64 / self.per_server_bits.len() as f64
        }
    }

    /// Max/mean imbalance factor (1.0 = perfectly even).
    pub fn imbalance(&self) -> f64 {
        let mean = self.mean_load_bits();
        if mean == 0.0 {
            0.0
        } else {
            self.max_load_bits() as f64 / mean
        }
    }

    /// Maximum tuples of a single atom's relation received by any server.
    pub fn max_load_tuples_for_atom(&self, atom: usize) -> u64 {
        self.per_atom_server_tuples[atom]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> LoadReport {
        LoadReport {
            per_server_bits: vec![100, 300, 200, 0],
            per_server_tuples: vec![10, 30, 20, 0],
            per_atom_server_tuples: vec![vec![10, 10, 0, 0], vec![0, 20, 20, 0]],
            input_bits: 300,
        }
    }

    #[test]
    fn maxima_and_totals() {
        let r = report();
        assert_eq!(r.num_servers(), 4);
        assert_eq!(r.max_load_bits(), 300);
        assert_eq!(r.max_load_tuples(), 30);
        assert_eq!(r.total_bits(), 600);
        assert_eq!(r.total_tuples(), 60);
    }

    #[test]
    fn replication_rate() {
        let r = report();
        assert!((r.replication_rate() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance() {
        let r = report();
        assert!((r.mean_load_bits() - 150.0).abs() < 1e-12);
        assert!((r.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn per_atom_maxima() {
        let r = report();
        assert_eq!(r.max_load_tuples_for_atom(0), 10);
        assert_eq!(r.max_load_tuples_for_atom(1), 20);
    }

    #[test]
    fn empty_report() {
        let r = LoadReport {
            per_server_bits: vec![],
            per_server_tuples: vec![],
            per_atom_server_tuples: vec![],
            input_bits: 0,
        };
        assert_eq!(r.max_load_bits(), 0);
        assert_eq!(r.replication_rate(), 0.0);
        assert_eq!(r.imbalance(), 0.0);
    }
}
