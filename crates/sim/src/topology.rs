//! Hypercube server grids with mixed-radix addressing.
//!
//! The HyperCube algorithm (Section 3.1) organizes `p = p1 · p2 ··· pk`
//! servers as a k-dimensional grid, one dimension per query variable with
//! `p_i` *shares*. A tuple hashing to known coordinates in some dimensions
//! is replicated to the whole subcube spanned by the remaining dimensions;
//! [`Grid::subcube`] enumerates exactly that set of server ids.

/// A k-dimensional grid of servers, `dims[i]` cells along dimension `i`.
/// Server ids are mixed-radix encodings of coordinate vectors, dimension 0
/// most significant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Grid {
    dims: Vec<usize>,
}

impl Grid {
    /// Build a grid; every dimension must be non-empty.
    pub fn new(dims: Vec<usize>) -> Grid {
        assert!(!dims.is_empty(), "grid needs at least one dimension");
        assert!(
            dims.iter().all(|&d| d > 0),
            "grid dimensions must be positive"
        );
        Grid { dims }
    }

    /// Dimension sizes (the share vector).
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions `k`.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of cells `p1 ··· pk`.
    pub fn num_cells(&self) -> usize {
        self.dims.iter().product()
    }

    /// Encode a coordinate vector into a server id.
    pub fn encode(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.dims.len(), "coordinate rank mismatch");
        let mut id = 0usize;
        for (c, d) in coords.iter().zip(&self.dims) {
            debug_assert!(c < d, "coordinate {c} out of range for dim {d}");
            id = id * d + c;
        }
        id
    }

    /// Decode a server id into coordinates.
    pub fn decode(&self, mut id: usize) -> Vec<usize> {
        let mut coords = vec![0usize; self.dims.len()];
        for i in (0..self.dims.len()).rev() {
            coords[i] = id % self.dims[i];
            id /= self.dims[i];
        }
        debug_assert_eq!(id, 0, "server id out of range");
        coords
    }

    /// Enumerate all server ids whose coordinates agree with `fixed`
    /// (a list of `(dimension, coordinate)` pairs); the remaining dimensions
    /// range over everything. This is the subcube a tuple is replicated to
    /// during the HyperCube shuffle.
    ///
    /// Destinations are appended to `out` (cleared first). This convenience
    /// form allocates fresh enumeration buffers; routing hot loops should
    /// hold a [`SubcubeScratch`] and call [`Grid::subcube_into`].
    pub fn subcube(&self, fixed: &[(usize, usize)], out: &mut Vec<usize>) {
        self.subcube_into(fixed, &mut SubcubeScratch::default(), out)
    }

    /// [`Grid::subcube`] with caller-owned enumeration buffers: called once
    /// per routed tuple, this performs **no allocation** in the steady
    /// state (the scratch is cleared, not reallocated).
    pub fn subcube_into(
        &self,
        fixed: &[(usize, usize)],
        scratch: &mut SubcubeScratch,
        out: &mut Vec<usize>,
    ) {
        out.clear();
        let k = self.dims.len();
        scratch.coord.clear();
        scratch.coord.resize(k, None);
        let coord = &mut scratch.coord;
        for &(dim, c) in fixed {
            assert!(dim < k, "fixed dimension out of range");
            assert!(c < self.dims[dim], "fixed coordinate out of range");
            // Repeated variables may fix the same dim twice; they must agree
            // or the tuple matches no server.
            if let Some(prev) = coord[dim] {
                if prev != c {
                    return;
                }
            }
            coord[dim] = Some(c);
        }
        // Iterate the free dimensions with an odometer.
        scratch.free.clear();
        scratch.free.extend((0..k).filter(|&i| coord[i].is_none()));
        let free = &scratch.free;
        let total: usize = free.iter().map(|&i| self.dims[i]).product();
        out.reserve(total);
        scratch.odo.clear();
        scratch.odo.resize(free.len(), 0);
        let odo = &mut scratch.odo;
        scratch.current.clear();
        scratch.current.resize(k, 0);
        let current = &mut scratch.current;
        for (i, c) in coord.iter().enumerate() {
            if let Some(v) = c {
                current[i] = *v;
            }
        }
        loop {
            for (slot, &dim) in odo.iter().zip(free) {
                current[dim] = *slot;
            }
            out.push(self.encode(current));
            // Advance odometer.
            let mut i = free.len();
            loop {
                if i == 0 {
                    return;
                }
                i -= 1;
                odo[i] += 1;
                if odo[i] < self.dims[free[i]] {
                    break;
                }
                odo[i] = 0;
            }
        }
    }

    /// Convenience wrapper returning the subcube as a fresh vector.
    pub fn subcube_vec(&self, fixed: &[(usize, usize)]) -> Vec<usize> {
        let mut out = Vec::new();
        self.subcube(fixed, &mut out);
        out
    }
}

/// Reusable enumeration buffers for [`Grid::subcube_into`] (the odometer
/// walk needs one small buffer per grid rank; routers keep one scratch per
/// worker thread so the per-tuple subcube enumeration never allocates).
#[derive(Clone, Debug, Default)]
pub struct SubcubeScratch {
    coord: Vec<Option<usize>>,
    free: Vec<usize>,
    odo: Vec<usize>,
    current: Vec<usize>,
}

/// Round real-valued shares `p^{e_i}` down to an integer share vector with
/// `Π p_i <= p`, then greedily grow the dimension with the largest
/// fractional headroom while the budget allows. This is the integer-share
/// materialization step between Theorem 3.4's exponents and an actual grid.
pub fn round_shares(p: usize, exponents: &[f64]) -> Vec<usize> {
    assert!(p >= 1);
    let k = exponents.len();
    let ideal: Vec<f64> = exponents
        .iter()
        .map(|&e| (p as f64).powf(e.max(0.0)))
        .collect();
    let mut shares: Vec<usize> = ideal.iter().map(|&x| (x.floor() as usize).max(1)).collect();
    // Clamp in case of floating error.
    loop {
        let product: usize = shares.iter().product();
        if product <= p {
            break;
        }
        // Shrink the dimension with the largest overshoot.
        let i = (0..k)
            .filter(|&i| shares[i] > 1)
            .max_by(|&a, &b| {
                let ra = shares[a] as f64 / ideal[a];
                let rb = shares[b] as f64 / ideal[b];
                ra.partial_cmp(&rb).expect("finite ratios")
            })
            .expect("some dimension is shrinkable");
        shares[i] -= 1;
    }
    // Greedily grow while the budget allows, preferring the dimension whose
    // current share is furthest below its ideal.
    loop {
        let product: usize = shares.iter().product();
        let candidate = (0..k)
            .filter(|&i| product / shares[i] * (shares[i] + 1) <= p)
            .min_by(|&a, &b| {
                let ra = (shares[a] + 1) as f64 / ideal[a].max(1.0);
                let rb = (shares[b] + 1) as f64 / ideal[b].max(1.0);
                ra.partial_cmp(&rb).expect("finite ratios")
            });
        match candidate {
            Some(i) => shares[i] += 1,
            None => break,
        }
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let g = Grid::new(vec![3, 4, 5]);
        assert_eq!(g.num_cells(), 60);
        for id in 0..60 {
            assert_eq!(g.encode(&g.decode(id)), id);
        }
    }

    #[test]
    fn subcube_fixes_dimensions() {
        let g = Grid::new(vec![2, 3, 2]);
        // Fix dim 1 = 2: expect 2*2 = 4 servers, all decoding with coord[1]=2.
        let cells = g.subcube_vec(&[(1, 2)]);
        assert_eq!(cells.len(), 4);
        for id in cells {
            assert_eq!(g.decode(id)[1], 2);
        }
    }

    #[test]
    fn subcube_with_all_fixed_is_single_cell() {
        let g = Grid::new(vec![2, 3]);
        let cells = g.subcube_vec(&[(0, 1), (1, 2)]);
        assert_eq!(cells, vec![g.encode(&[1, 2])]);
    }

    #[test]
    fn subcube_with_nothing_fixed_is_broadcast() {
        let g = Grid::new(vec![2, 2]);
        let mut cells = g.subcube_vec(&[]);
        cells.sort_unstable();
        assert_eq!(cells, vec![0, 1, 2, 3]);
    }

    #[test]
    fn subcube_conflicting_fixed_is_empty() {
        let g = Grid::new(vec![4, 4]);
        // Repeated variable mapped to the same dim with different hashes.
        let cells = g.subcube_vec(&[(0, 1), (0, 2)]);
        assert!(cells.is_empty());
    }

    #[test]
    fn subcube_sizes_multiply() {
        let g = Grid::new(vec![3, 5, 7]);
        assert_eq!(g.subcube_vec(&[(0, 0)]).len(), 35);
        assert_eq!(g.subcube_vec(&[(2, 6)]).len(), 15);
        assert_eq!(g.subcube_vec(&[(0, 1), (2, 3)]).len(), 5);
    }

    #[test]
    fn round_shares_respects_budget() {
        for (p, exps) in [
            (64usize, vec![1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0]),
            (100, vec![0.5, 0.5, 0.0]),
            (17, vec![0.9, 0.1]),
            (8, vec![1.0]),
            (1, vec![0.3, 0.7]),
        ] {
            let shares = round_shares(p, &exps);
            let product: usize = shares.iter().product();
            assert!(product <= p, "p={p} exps={exps:?} -> {shares:?}");
            assert!(shares.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn round_shares_hits_exact_cubes() {
        // p = 64 with equal thirds: 4 x 4 x 4.
        assert_eq!(round_shares(64, &[1.0 / 3.0; 3]), vec![4, 4, 4]);
        // p = 16 with halves: 4 x 4.
        assert_eq!(round_shares(16, &[0.5, 0.5]), vec![4, 4]);
    }

    #[test]
    fn round_shares_degenerate_dimension() {
        // e = 0 should pin the share to ~1 but greedy growth may use spare
        // budget; the product must stay within p.
        let shares = round_shares(8, &[0.0, 1.0]);
        let product: usize = shares.iter().product();
        assert!(product <= 8);
        assert!(shares[1] >= 4, "main dimension starved: {shares:?}");
    }
}
