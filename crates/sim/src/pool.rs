//! A persistent worker pool for the [`crate::backend::Backend::Pooled`]
//! execution backend.
//!
//! The MPC model runs *many* rounds and *many* queries over the same
//! cluster; spawning and tearing down scoped threads on every parallel loop
//! (the `Threaded` backend) pays the spawn cost on each of them. A
//! [`WorkerPool`] is created once, its threads live for the lifetime of the
//! pool, and every `run_chunks` call — across rounds, queries, and batches —
//! reuses them. `std::thread` + `std::sync::mpsc` only, no dependencies.
//!
//! Semantics match the scoped-thread backend exactly:
//!
//! * jobs of one submission are identified by index and their results are
//!   returned (or consumed) **in index order**, so merges stay bit-identical
//!   to `Sequential`/`Threaded(n)`;
//! * a panicking job is caught on the worker (the worker thread survives and
//!   keeps serving other jobs) and its payload is re-raised **verbatim** on
//!   the submitting thread — a panic poisons only its own submission;
//! * dropping the pool closes the queue and joins every worker.
//!
//! [`global`] keeps one process-wide pool per worker count, so the `Copy`
//! [`crate::backend::Backend`] enum can name a persistent pool by size
//! alone; those shared pools live until process exit. Pool workers flag
//! themselves via [`in_worker`], letting the backend degrade nested
//! submissions to inline execution instead of deadlocking on a full queue.

use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A unit of work shipped to a worker thread. Lifetimes are erased at the
/// submission site; the submitter blocks until every job of its submission
/// has reported back, which keeps the erased borrows alive long enough.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// True when the current thread is a pool worker. Backends use this to run
/// nested parallel loops inline (submitting from a worker to its own pool
/// could otherwise deadlock once all workers wait on sub-jobs).
pub fn in_worker() -> bool {
    IN_POOL_WORKER.with(|f| f.get())
}

/// A fixed-size persistent thread pool with index-ordered scatter/gather.
pub struct WorkerPool {
    /// Job queue; `None` only during drop (closing it stops the workers).
    queue: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Threads ever spawned by this pool. The pool never respawns, so this
    /// equals the worker count for the pool's whole lifetime — tests assert
    /// on it to prove reuse.
    spawned: AtomicUsize,
    /// Incremented by each worker as its main loop exits.
    exited: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// Spawn a pool of `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let exited = Arc::new(AtomicUsize::new(0));
        let spawned = AtomicUsize::new(0);
        let handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let exited = Arc::clone(&exited);
                spawned.fetch_add(1, Ordering::SeqCst);
                std::thread::Builder::new()
                    .name(format!("mpc-pool-{i}"))
                    .spawn(move || worker_main(rx, exited))
                    .expect("spawning a pool worker")
            })
            .collect();
        WorkerPool {
            queue: Some(tx),
            workers: handles,
            spawned,
            exited,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Total threads ever spawned by this pool (constant after
    /// construction: the pool reuses its workers, it never respawns).
    pub fn spawn_count(&self) -> usize {
        self.spawned.load(Ordering::SeqCst)
    }

    /// Shared counter of workers whose main loop has exited; after drop it
    /// equals [`WorkerPool::spawn_count`].
    pub fn exit_counter(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.exited)
    }

    /// Run `work(0..jobs)` on the pool and return each job's outcome in
    /// **index order** (`Err` carries the verbatim panic payload of that
    /// job). Blocks until every job has finished; the pool itself stays
    /// usable afterwards whatever the outcomes.
    pub fn run_jobs<T, F>(&self, jobs: usize, work: F) -> Vec<std::thread::Result<T>>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let rx = self.submit(jobs, &work);
        let mut out: Vec<Option<std::thread::Result<T>>> = (0..jobs).map(|_| None).collect();
        for _ in 0..jobs {
            let (i, r) = rx.recv().expect("pool worker reports every job");
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|r| r.expect("each job reports exactly once"))
            .collect()
    }

    /// Pipelined variant of [`WorkerPool::run_jobs`]: `consume` runs on the
    /// calling thread, in job-index order, *while later jobs are still
    /// executing on the workers* — the producer/consumer overlap behind the
    /// pipelined shuffle. The first panic (in index order) is re-raised
    /// verbatim after all jobs of this submission have finished; a panic in
    /// `consume` itself likewise waits for the in-flight jobs to drain
    /// before propagating (their erased borrows must not outlive the
    /// caller's frame).
    pub fn run_jobs_pipelined<T, F, C>(&self, jobs: usize, work: F, mut consume: C)
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
        C: FnMut(T),
    {
        let rx = self.submit(jobs, &work);
        consume_in_order(&rx, jobs, &mut consume);
    }

    /// Enqueue `jobs` erased closures and return the result channel. Every
    /// job sends exactly one `(index, outcome)` message, even when it
    /// panics.
    fn submit<'env, T, F>(
        &self,
        jobs: usize,
        work: &'env F,
    ) -> Receiver<(usize, std::thread::Result<T>)>
    where
        T: Send + 'env,
        F: Fn(usize) -> T + Sync,
    {
        let queue = self.queue.as_ref().expect("pool is alive until drop");
        let (tx, rx) = channel::<(usize, std::thread::Result<T>)>();
        for i in 0..jobs {
            let tx = tx.clone();
            let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
                let outcome = catch_unwind(AssertUnwindSafe(|| work(i)));
                let _ = tx.send((i, outcome));
            });
            // SAFETY: the job sends its message as its final action and the
            // caller blocks on the returned receiver until all `jobs`
            // messages arrived (run_jobs / run_jobs_pipelined), so the
            // borrows captured by the closure (`work`, the caller-lifetime
            // `T` sender) outlive every use. Erasing the lifetime is the
            // standard scoped-pool transmute; the Box layouts are identical.
            let job: Job =
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
            queue.send(job).expect("pool workers are alive until drop");
        }
        rx
    }
}

/// Receive exactly `total` `(index, outcome)` messages from `rx`, handing
/// `Ok` values to `consume` **in index order** (later arrivals wait in a
/// reorder buffer) and re-raising the first panic — by index order —
/// verbatim once all messages have arrived. Shared by the pool and the
/// scoped-thread pipelined paths so their semantics cannot drift.
///
/// Every exit, including an unwind out of `consume`, first drains the
/// outstanding messages: the producers' closures hold lifetime-erased
/// borrows of the caller's frame (pool path) and must have finished before
/// this frame is popped.
pub(crate) fn consume_in_order<T>(
    rx: &Receiver<(usize, std::thread::Result<T>)>,
    total: usize,
    consume: &mut impl FnMut(T),
) {
    struct Drain<'a, T> {
        rx: &'a Receiver<(usize, std::thread::Result<T>)>,
        remaining: usize,
    }
    impl<T> Drop for Drain<'_, T> {
        fn drop(&mut self) {
            while self.remaining > 0 {
                if self.rx.recv().is_err() {
                    break; // producers gone: nothing left to wait for
                }
                self.remaining -= 1;
            }
        }
    }
    let mut guard = Drain {
        rx,
        remaining: total,
    };
    let mut pending: BTreeMap<usize, std::thread::Result<T>> = BTreeMap::new();
    let mut next = 0usize;
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    for _ in 0..total {
        let (i, outcome) = guard.rx.recv().expect("every job reports exactly once");
        guard.remaining -= 1;
        pending.insert(i, outcome);
        while let Some(outcome) = pending.remove(&next) {
            next += 1;
            match outcome {
                Ok(value) => {
                    if first_panic.is_none() {
                        consume(value);
                    }
                }
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
    }
    if let Some(payload) = first_panic {
        std::panic::resume_unwind(payload);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the queue makes every worker's recv fail, ending its loop.
        drop(self.queue.take());
        for handle in self.workers.drain(..) {
            // Workers catch job panics themselves; join errors would mean a
            // bug in the pool, not in user code.
            handle.join().expect("pool worker exits cleanly");
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .field("spawned", &self.spawn_count())
            .finish()
    }
}

fn worker_main(rx: Arc<Mutex<Receiver<Job>>>, exited: Arc<AtomicUsize>) {
    IN_POOL_WORKER.with(|f| f.set(true));
    loop {
        // Hold the lock only while dequeuing, never while running a job.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(poisoned) => poisoned.into_inner().recv(),
        };
        match job {
            Ok(job) => job(),
            Err(_) => break, // queue closed: pool is being dropped
        }
    }
    exited.fetch_add(1, Ordering::SeqCst);
}

/// The process-wide pool of `workers` threads, created on first use and
/// shared by every [`crate::backend::Backend::Pooled`] value of that size
/// (this is what makes the `Copy` backend enum persistent: the pool outlives
/// every round, query, and batch submitted to it).
pub fn global(workers: usize) -> Arc<WorkerPool> {
    static REGISTRY: OnceLock<Mutex<HashMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
    let registry = REGISTRY.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = registry.lock().unwrap_or_else(|p| p.into_inner());
    Arc::clone(
        map.entry(workers.max(1))
            .or_insert_with(|| Arc::new(WorkerPool::new(workers))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_gather_is_index_ordered() {
        let pool = WorkerPool::new(4);
        let results = pool.run_jobs(64, |i| i * i);
        let values: Vec<usize> = results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reused_and_never_respawns() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.spawn_count(), 3);
        for round in 0..5 {
            let sum: usize = pool
                .run_jobs(16, |i| i + round)
                .into_iter()
                .map(|r| r.unwrap())
                .sum();
            assert_eq!(sum, (0..16).map(|i| i + round).sum::<usize>());
            assert_eq!(pool.spawn_count(), 3, "round {round} spawned threads");
        }
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(3);
        let exited = pool.exit_counter();
        let _ = pool.run_jobs(8, |i| i);
        assert_eq!(exited.load(Ordering::SeqCst), 0, "workers exited early");
        drop(pool);
        assert_eq!(
            exited.load(Ordering::SeqCst),
            3,
            "drop must join all workers"
        );
    }

    #[test]
    fn panic_poisons_only_its_job_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let results = pool.run_jobs(8, |i| {
            assert!(i != 5, "pool job exploded at {i}");
            i
        });
        for (i, r) in results.iter().enumerate() {
            if i == 5 {
                let payload = r.as_ref().expect_err("job 5 panicked");
                let msg = payload
                    .downcast_ref::<String>()
                    .expect("panic payload is the formatted message");
                assert_eq!(msg, "pool job exploded at 5");
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
        // The same workers keep serving jobs after the panic.
        assert_eq!(pool.spawn_count(), 2);
        let ok: Vec<usize> = pool
            .run_jobs(4, |i| i)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(ok, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pipelined_consume_sees_index_order() {
        let pool = WorkerPool::new(4);
        let mut seen = Vec::new();
        pool.run_jobs_pipelined(32, |i| i, |v| seen.push(v));
        assert_eq!(seen, (0..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "pipelined job exploded at 3")]
    fn pipelined_reraises_first_panic_in_index_order() {
        let pool = WorkerPool::new(4);
        pool.run_jobs_pipelined(
            8,
            |i| {
                assert!(i != 3 && i != 6, "pipelined job exploded at {i}");
                i
            },
            |_| {},
        );
    }

    #[test]
    fn consumer_panic_drains_in_flight_jobs_before_unwinding() {
        // If `consume` panics, the unwind must wait for every outstanding
        // job of the submission: the jobs hold lifetime-erased borrows of
        // the caller's frame, so leaving early would be a use-after-free.
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(4);
        let completed = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run_jobs_pipelined(
                32,
                |i| {
                    // Stagger the jobs so plenty are still in flight when
                    // the consumer bails on the very first result.
                    std::thread::sleep(std::time::Duration::from_micros(200 * (i as u64 % 4)));
                    completed.fetch_add(1, Ordering::SeqCst);
                    i
                },
                |_| panic!("consumer bailed"),
            );
        }));
        let payload = result.expect_err("consumer panic propagates");
        assert_eq!(payload.downcast_ref::<&str>(), Some(&"consumer bailed"));
        // By the time the unwind escaped, every job had finished.
        assert_eq!(completed.load(Ordering::SeqCst), 32);
        // And the pool still works.
        let ok: Vec<usize> = pool
            .run_jobs(4, |i| i)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(ok, vec![0, 1, 2, 3]);
    }

    #[test]
    fn global_registry_hands_out_one_pool_per_size() {
        let a = global(2);
        let b = global(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.workers(), 2);
        let c = global(3);
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn workers_flag_in_worker() {
        let pool = WorkerPool::new(2);
        assert!(!in_worker());
        let flags = pool.run_jobs(4, |_| in_worker());
        assert!(flags.into_iter().all(|r| r.unwrap()));
        assert!(!in_worker());
    }
}
