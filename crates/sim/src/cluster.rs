//! The one-round MPC cluster simulator.
//!
//! The MPC model (Section 2.1): `p` servers, one global communication round,
//! cost = maximum bits received by a server. An algorithm in this simulator
//! is a [`Router`]: a pure function from `(atom, tuple)` to destination
//! servers, evaluated tuple-at-a-time — exactly the paper's upper-bound
//! model in which "all our algorithms treat tuples in `S_j` independently of
//! other tuples". After the round, each server holds one fragment per
//! relation and evaluates the query locally; [`Cluster::all_answers`] unions
//! the per-server outputs.

use crate::load::LoadReport;
use mpc_data::catalog::Database;
use mpc_data::join;
use mpc_data::relation::Relation;
use mpc_query::Query;

/// A one-round tuple routing policy. `route` appends the destination server
/// ids for `tuple` of atom `atom` to `out` (`out` arrives cleared;
/// duplicates are tolerated and deduplicated by the simulator).
pub trait Router {
    /// Compute destinations for one tuple.
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>);
}

impl<F: Fn(usize, &[u64], &mut Vec<usize>)> Router for F {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        self(atom, tuple, out)
    }
}

/// The post-shuffle state: per-atom, per-server relation fragments.
#[derive(Clone, Debug)]
pub struct Cluster {
    p: usize,
    value_bits: u32,
    input_bits: u64,
    /// `fragments[atom][server]`.
    fragments: Vec<Vec<Relation>>,
}

impl Cluster {
    /// Execute one communication round of `router` over `db` on `p` servers.
    ///
    /// # Panics
    /// Panics when a router emits an out-of-range server id.
    pub fn run_round(db: &Database, p: usize, router: &impl Router) -> Cluster {
        assert!(p > 0, "cluster needs at least one server");
        let q = db.query();
        let mut fragments: Vec<Vec<Relation>> = q
            .atoms()
            .iter()
            .map(|a| (0..p).map(|_| Relation::new(a.name(), a.arity())).collect())
            .collect();
        let mut dests: Vec<usize> = Vec::new();
        for (j, rel) in db.relations().iter().enumerate() {
            let frag = &mut fragments[j];
            for tuple in rel.rows() {
                dests.clear();
                router.route(j, tuple, &mut dests);
                dests.sort_unstable();
                dests.dedup();
                for &server in dests.iter() {
                    assert!(server < p, "router sent a tuple to server {server} >= p={p}");
                    frag[server].push(tuple);
                }
            }
        }
        Cluster {
            p,
            value_bits: db.value_bits(),
            input_bits: db.total_bits(),
            fragments,
        }
    }

    /// Number of servers.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The fragment of atom `j` on `server`.
    pub fn fragment(&self, atom: usize, server: usize) -> &Relation {
        &self.fragments[atom][server]
    }

    /// Exact load accounting for the round.
    pub fn report(&self) -> LoadReport {
        let mut per_server_bits = vec![0u64; self.p];
        let mut per_server_tuples = vec![0u64; self.p];
        let mut per_atom_server_tuples = Vec::with_capacity(self.fragments.len());
        for frags in &self.fragments {
            let mut row = vec![0u64; self.p];
            for (s, frag) in frags.iter().enumerate() {
                let tuples = frag.len() as u64;
                row[s] = tuples;
                per_server_tuples[s] += tuples;
                per_server_bits[s] += frag.bit_size(self.value_bits);
            }
            per_atom_server_tuples.push(row);
        }
        LoadReport {
            per_server_bits,
            per_server_tuples,
            per_atom_server_tuples,
            input_bits: self.input_bits,
        }
    }

    /// Answers found by one server: the local join of its fragments.
    pub fn server_answers(&self, query: &Query, server: usize) -> Vec<Vec<u64>> {
        let rels: Vec<&Relation> = self.fragments.iter().map(|f| &f[server]).collect();
        join::join(query, &rels)
    }

    /// The union of all servers' answers, sorted and deduplicated. A correct
    /// one-round algorithm makes this equal to the sequential join.
    pub fn all_answers(&self, query: &Query) -> Vec<Vec<u64>> {
        let mut out: Vec<Vec<u64>> = Vec::new();
        for s in 0..self.p {
            let rels: Vec<&Relation> = self.fragments.iter().map(|f| &f[s]).collect();
            join::join_foreach(query, &rels, |row| out.push(row.to_vec()));
        }
        out.sort();
        out.dedup();
        out
    }

    /// Count of distinct answers across servers.
    pub fn answer_count(&self, query: &Query) -> u64 {
        self.all_answers(query).len() as u64
    }

    /// [`Cluster::all_answers`] with the per-server local joins spread over
    /// `threads` OS threads (the servers are independent, so this is an
    /// embarrassingly parallel map). Results are identical to the
    /// sequential path.
    pub fn all_answers_parallel(&self, query: &Query, threads: usize) -> Vec<Vec<u64>> {
        let threads = threads.max(1).min(self.p.max(1));
        if threads <= 1 || self.p <= 1 {
            return self.all_answers(query);
        }
        let chunk = self.p.div_ceil(threads);
        let mut out: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for t in 0..threads {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(self.p);
                if lo >= hi {
                    break;
                }
                let fragments = &self.fragments;
                handles.push(scope.spawn(move || {
                    let mut local: Vec<Vec<u64>> = Vec::new();
                    for s in lo..hi {
                        let rels: Vec<&Relation> =
                            fragments.iter().map(|f| &f[s]).collect();
                        join::join_foreach(query, &rels, |row| local.push(row.to_vec()));
                    }
                    local
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("local join panicked"))
                .collect()
        });
        out.sort();
        out.dedup();
        out
    }
}

/// A router that broadcasts every tuple of every relation to all servers
/// (the trivially correct, maximally expensive baseline; footnote 1 of the
/// paper uses broadcasting for tiny relations).
pub struct BroadcastRouter {
    /// Number of servers.
    pub p: usize,
}

impl Router for BroadcastRouter {
    fn route(&self, _atom: usize, _tuple: &[u64], out: &mut Vec<usize>) {
        out.extend(0..self.p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::generators;
    use mpc_data::rng::Rng;
    use mpc_query::named;

    fn join_db(m: usize, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(seed);
        let s1 = generators::uniform("S1", 2, m, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    #[test]
    fn broadcast_is_correct_and_expensive() {
        let db = join_db(500, 1);
        let p = 8;
        let cluster = Cluster::run_round(&db, p, &BroadcastRouter { p });
        let expected = {
            let mut ans = mpc_data::join_database(&db);
            ans.sort();
            ans.dedup();
            ans
        };
        assert_eq!(cluster.all_answers(db.query()), expected);
        let report = cluster.report();
        // Every server got everything.
        assert_eq!(report.max_load_bits(), db.total_bits());
        assert!((report.replication_rate() - p as f64).abs() < 1e-9);
    }

    #[test]
    fn hash_join_router_is_correct() {
        // Route both relations by hashing z (attribute 1 of each) to p
        // buckets: the classic parallel hash join.
        let db = join_db(800, 2);
        let p = 16usize;
        let key = 0xDEAD_BEEFu64;
        let router = move |_atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            out.push((mpc_data::mix64(tuple[1], key) % p as u64) as usize);
        };
        let cluster = Cluster::run_round(&db, p, &router);
        let expected = {
            let mut ans = mpc_data::join_database(&db);
            ans.sort();
            ans.dedup();
            ans
        };
        assert_eq!(cluster.all_answers(db.query()), expected);
        // No replication: every tuple goes to exactly one server.
        let report = cluster.report();
        assert!((report.replication_rate() - 1.0).abs() < 1e-9);
        assert_eq!(report.total_tuples(), 1600);
    }

    #[test]
    fn dropping_tuples_loses_answers() {
        // A router that drops one relation entirely must lose answers
        // (sanity check that verification catches broken algorithms).
        let db = join_db(500, 3);
        let p = 4usize;
        let router = move |atom: usize, _tuple: &[u64], out: &mut Vec<usize>| {
            if atom == 0 {
                out.push(0);
            } // atom 1 dropped
        };
        let cluster = Cluster::run_round(&db, p, &router);
        assert!(cluster.all_answers(db.query()).is_empty());
    }

    #[test]
    fn report_counts_replication() {
        let db = join_db(100, 4);
        let p = 4usize;
        // Send S1 tuples to two servers each, S2 to one.
        let router = move |atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            let h = (mpc_data::mix64(tuple[1], 7) % p as u64) as usize;
            out.push(h);
            if atom == 0 {
                out.push((h + 1) % p);
            }
        };
        let cluster = Cluster::run_round(&db, p, &router);
        let report = cluster.report();
        assert_eq!(report.total_tuples(), 100 * 2 + 100);
    }

    #[test]
    fn duplicate_destinations_are_deduped() {
        let db = join_db(50, 5);
        let router = |_atom: usize, _tuple: &[u64], out: &mut Vec<usize>| {
            out.extend([2usize, 2, 2]);
        };
        let cluster = Cluster::run_round(&db, 4, &router);
        let report = cluster.report();
        assert_eq!(report.per_server_tuples[2], 100);
        assert_eq!(report.total_tuples(), 100);
    }

    #[test]
    #[should_panic(expected = "server")]
    fn out_of_range_destination_panics() {
        let db = join_db(10, 6);
        let router = |_: usize, _: &[u64], out: &mut Vec<usize>| out.push(99);
        let _ = Cluster::run_round(&db, 4, &router);
    }
}
