//! The one-round MPC cluster simulator.
//!
//! The MPC model (Section 2.1): `p` servers, one global communication round,
//! cost = maximum bits received by a server. An algorithm in this simulator
//! is a [`Router`]: a pure function from `(atom, tuple)` to destination
//! servers, evaluated tuple-at-a-time — exactly the paper's upper-bound
//! model in which "all our algorithms treat tuples in `S_j` independently of
//! other tuples". After the round, each server holds one fragment per
//! relation and evaluates the query locally; [`Cluster::all_answers`] unions
//! the per-server outputs.

use crate::backend::Backend;
use crate::load::LoadReport;
use mpc_data::answers::AnswerSet;
use mpc_data::budget::{BudgetExceeded, QueryBudget};
use mpc_data::catalog::Database;
use mpc_data::failpoint;
use mpc_data::join;
use mpc_data::relation::Relation;
use mpc_query::Query;
use std::cell::RefCell;

/// Smallest number of tuples a shuffle worker is worth spawning for.
const SHUFFLE_MIN_CHUNK: usize = 512;
/// Smallest number of servers a load-accounting worker is worth spawning
/// for (per-server accounting is O(num_atoms), i.e. very cheap).
const REPORT_MIN_CHUNK: usize = 256;

/// A one-round tuple routing policy. `route` appends the destination server
/// ids for `tuple` of atom `atom` to `out` (`out` arrives cleared;
/// duplicates are tolerated and deduplicated by the simulator).
pub trait Router {
    /// Compute destinations for one tuple.
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>);
}

impl<F: Fn(usize, &[u64], &mut Vec<usize>)> Router for F {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        self(atom, tuple, out)
    }
}

/// One independent round in a [`Cluster::run_batch`] submission.
pub struct BatchJob<'a> {
    /// The input database (query + relations).
    pub db: &'a Database,
    /// Number of servers for this round.
    pub p: usize,
    /// The routing policy (type-erased so one batch can mix algorithms).
    pub router: &'a (dyn Router + Sync),
}

/// Adapter giving a `&dyn Router` the `impl Router` shape `run_round_on`
/// expects (a blanket `impl Router for &R` would collide with the closure
/// impl above).
struct DynRouter<'a>(&'a (dyn Router + Sync));

impl Router for DynRouter<'_> {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        self.0.route(atom, tuple, out)
    }
}

/// The post-shuffle state: per-atom, per-server relation fragments.
#[derive(Clone, Debug)]
pub struct Cluster {
    p: usize,
    value_bits: u32,
    input_bits: u64,
    /// `fragments[atom][server]`.
    fragments: Vec<Vec<Relation>>,
    /// Execution backend for local evaluation and load accounting.
    backend: Backend,
}

/// Reusable per-worker routing scratch: per-server flat tuple buffers plus
/// the destination list, **cleared — not reallocated — across chunks,
/// rounds, and batch jobs**. Each worker thread (including the persistent
/// pool's) owns one instance through a thread-local, so the steady-state
/// shuffle performs no per-chunk buffer allocation beyond the single
/// contiguous [`RoutedChunk`] arena it hands to the merge.
#[derive(Default)]
struct ShuffleScratch {
    /// Per-server flat tuple data (`bufs[s]` holds server `s`'s tuples of
    /// the current chunk, row-major).
    bufs: Vec<Vec<u64>>,
    /// Destination-server scratch for one tuple.
    dests: Vec<usize>,
}

impl ShuffleScratch {
    /// Clear all buffers (cheap: lengths only, capacity kept) and make
    /// sure at least `p` per-server buffers exist. Clearing *everything* —
    /// not just the first `p` — also recovers from a router panic that
    /// left stale data behind on this worker thread.
    fn reset(&mut self, p: usize) {
        for buf in &mut self.bufs {
            buf.clear();
        }
        if self.bufs.len() < p {
            self.bufs.resize_with(p, Vec::new);
        }
        self.dests.clear();
    }
}

thread_local! {
    static SHUFFLE_SCRATCH: RefCell<ShuffleScratch> = RefCell::new(ShuffleScratch::default());
}

/// One routed chunk: every destination's tuples packed into a single
/// arena, per-server word counts alongside (`counts[s]` words belong to
/// server `s`, in server order). This is the only allocation a routed
/// chunk performs.
struct RoutedChunk {
    data: Vec<u64>,
    counts: Vec<usize>,
}

/// Route rows `lo..hi` of `rel` (atom `j`) through the thread-local
/// [`ShuffleScratch`] into one [`RoutedChunk`]. Shared by all backends so
/// fragment contents stay bit-identical.
fn route_chunk(
    rel: &Relation,
    j: usize,
    name: &str,
    lo: usize,
    hi: usize,
    p: usize,
    router: &(impl Router + Sync),
) -> RoutedChunk {
    failpoint::hit("shuffle");
    SHUFFLE_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        scratch.reset(p);
        for i in lo..hi {
            let tuple = rel.row(i);
            scratch.dests.clear();
            router.route(j, tuple, &mut scratch.dests);
            scratch.dests.sort_unstable();
            scratch.dests.dedup();
            for &server in scratch.dests.iter() {
                assert!(
                    server < p,
                    "router sent a tuple of atom {j} ({name}) to server {server} >= p={p}"
                );
                scratch.bufs[server].extend_from_slice(tuple);
            }
        }
        let total: usize = scratch.bufs[..p].iter().map(Vec::len).sum();
        let mut data = Vec::with_capacity(total);
        let mut counts = Vec::with_capacity(p);
        for buf in &mut scratch.bufs[..p] {
            counts.push(buf.len());
            data.extend_from_slice(buf);
            buf.clear();
        }
        RoutedChunk { data, counts }
    })
}

/// Route every row of `rel` (atom `j`) straight into the per-server
/// fragments — the sequential path, with no intermediate buffers at all.
fn route_into_fragments(
    rel: &Relation,
    j: usize,
    name: &str,
    p: usize,
    router: &(impl Router + Sync),
    frag: &mut [Relation],
) {
    failpoint::hit("shuffle");
    SHUFFLE_SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        for i in 0..rel.len() {
            let tuple = rel.row(i);
            scratch.dests.clear();
            router.route(j, tuple, &mut scratch.dests);
            scratch.dests.sort_unstable();
            scratch.dests.dedup();
            for &server in scratch.dests.iter() {
                assert!(
                    server < p,
                    "router sent a tuple of atom {j} ({name}) to server {server} >= p={p}"
                );
                frag[server].push(tuple);
            }
        }
    })
}

impl Cluster {
    /// Execute one communication round of `router` over `db` on `p` servers,
    /// with the backend chosen by [`Backend::from_env`].
    ///
    /// # Panics
    /// Panics when a router emits an out-of-range server id, naming the
    /// offending atom and server.
    pub fn run_round(db: &Database, p: usize, router: &(impl Router + Sync)) -> Cluster {
        Cluster::run_round_on(db, p, router, Backend::from_env())
    }

    /// [`Cluster::run_round`] on an explicit [`Backend`].
    ///
    /// On the parallel backends each relation's rows are sharded into
    /// contiguous chunks, every worker routes its chunk into private
    /// per-server buffers, and buffers are merged in worker-index order —
    /// so fragment tuple order (hence answers and [`LoadReport`]s) is
    /// independent of the thread count. The shuffle is **pipelined**: the
    /// per-server fragment merge runs on the calling thread, through
    /// [`Backend::run_chunks_pipelined`]'s bounded channel, overlapping
    /// with the routing of later chunks instead of waiting for the whole
    /// relation — the merge still consumes chunks strictly in worker-index
    /// order, so the pipelining is invisible in the output.
    pub fn run_round_on(
        db: &Database,
        p: usize,
        router: &(impl Router + Sync),
        backend: Backend,
    ) -> Cluster {
        Cluster::try_run_round_on(db, p, router, backend, &QueryBudget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    /// [`Cluster::run_round_on`] under a cooperative [`QueryBudget`]: the
    /// budget is polled once per routed chunk (both the sequential and the
    /// pipelined shuffle), so an expired deadline stops the shuffle within
    /// one chunk of work. On a trip the partially built fragments are
    /// dropped and a clean `Err` comes back — routing scratch is
    /// thread-local and reset at the start of every chunk, so nothing is
    /// poisoned for the next round.
    pub fn try_run_round_on(
        db: &Database,
        p: usize,
        router: &(impl Router + Sync),
        backend: Backend,
        budget: &QueryBudget,
    ) -> Result<Cluster, BudgetExceeded> {
        assert!(p > 0, "cluster needs at least one server");
        let q = db.query();
        let mut fragments: Vec<Vec<Relation>> = q
            .atoms()
            .iter()
            .map(|a| (0..p).map(|_| Relation::new(a.name(), a.arity())).collect())
            .collect();
        for (j, rel) in db.relations().iter().enumerate() {
            let rel: &Relation = rel;
            let name = q.atom(j).name();
            let frag = &mut fragments[j];
            if backend.workers_for(rel.len(), SHUFFLE_MIN_CHUNK) <= 1 {
                budget.poll()?;
                // Route straight into the fragments, no intermediate buffers.
                route_into_fragments(rel, j, name, p, router, frag);
            } else {
                // Producers poll at chunk boundaries and ship `Result`s;
                // the merge keeps consuming (the pipelined contract drains
                // every chunk) but stops merging after the first trip.
                let mut tripped: Option<BudgetExceeded> = None;
                backend.run_chunks_pipelined(
                    rel.len(),
                    SHUFFLE_MIN_CHUNK,
                    |lo, hi| {
                        budget
                            .poll()
                            .map(|()| route_chunk(rel, j, name, lo, hi, p, router))
                    },
                    |chunk| {
                        failpoint::hit("merge");
                        match chunk {
                            Ok(chunk) if tripped.is_none() => {
                                let mut off = 0usize;
                                for (s, &words) in chunk.counts.iter().enumerate() {
                                    frag[s].push_rows(&chunk.data[off..off + words]);
                                    off += words;
                                }
                            }
                            Ok(_) => {}
                            Err(e) => tripped = tripped.or(Some(e)),
                        }
                    },
                );
                if let Some(e) = tripped {
                    return Err(e);
                }
            }
        }
        Ok(Cluster {
            p,
            value_bits: db.value_bits(),
            input_bits: db.total_bits(),
            fragments,
            backend,
        })
    }

    /// Execute a whole batch of independent rounds — many small queries or
    /// repeated rounds — parallelizing **across** jobs on one backend
    /// instead of inside each round: the multi-query-throughput shape,
    /// where a persistent pool ([`Backend::Pooled`]) amortizes its spawn
    /// cost over the entire batch and schedules jobs dynamically (a slow
    /// round does not hold up the queue behind it). Each job runs its own
    /// round sequentially (so results are bit-identical to
    /// `run_round_on(.., Sequential)`) and the `(Cluster, LoadReport)`
    /// pairs come back in job order.
    pub fn run_batch(jobs: &[BatchJob<'_>], backend: Backend) -> Vec<(Cluster, LoadReport)> {
        backend.run_items(jobs.len(), |i| {
            let job = &jobs[i];
            let cluster =
                Cluster::run_round_on(job.db, job.p, &DynRouter(job.router), Backend::Sequential);
            let report = cluster.report();
            (cluster, report)
        })
    }

    /// Number of servers.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The backend used for local evaluation and load accounting.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Replace the local-evaluation backend (the fragments are unchanged).
    pub fn with_backend(mut self, backend: Backend) -> Cluster {
        self.backend = backend;
        self
    }

    /// The fragment of atom `j` on `server`.
    pub fn fragment(&self, atom: usize, server: usize) -> &Relation {
        &self.fragments[atom][server]
    }

    /// Exact load accounting for the round. Per-server counters are
    /// computed on the cluster's backend (server ranges are independent)
    /// and stitched together in server-index order, so the report is
    /// identical whatever the thread count.
    pub fn report(&self) -> LoadReport {
        let num_atoms = self.fragments.len();
        // Per-chunk partials keep the per-atom counters in one flat vector
        // (`[atom * width + (s - lo)]`) instead of a nested vec-of-vecs per
        // chunk — three allocations per chunk, independent of atom count.
        let parts = self.backend.run_chunks(self.p, REPORT_MIN_CHUNK, |lo, hi| {
            let width = hi - lo;
            let mut bits = vec![0u64; width];
            let mut tuples = vec![0u64; width];
            let mut per_atom = vec![0u64; num_atoms * width];
            for (a, frags) in self.fragments.iter().enumerate() {
                for s in lo..hi {
                    let t = frags[s].len() as u64;
                    per_atom[a * width + (s - lo)] = t;
                    tuples[s - lo] += t;
                    bits[s - lo] += frags[s].bit_size(self.value_bits);
                }
            }
            (bits, tuples, per_atom)
        });
        let mut per_server_bits = Vec::with_capacity(self.p);
        let mut per_server_tuples = Vec::with_capacity(self.p);
        let mut per_atom_server_tuples: Vec<Vec<u64>> =
            (0..num_atoms).map(|_| Vec::with_capacity(self.p)).collect();
        for (bits, tuples, per_atom) in parts {
            let width = bits.len();
            per_server_bits.extend(bits);
            per_server_tuples.extend(tuples);
            for (a, row) in per_atom.chunks_exact(width).enumerate() {
                per_atom_server_tuples[a].extend_from_slice(row);
            }
        }
        LoadReport {
            per_server_bits,
            per_server_tuples,
            per_atom_server_tuples,
            input_bits: self.input_bits,
        }
    }

    /// Answers found by one server: the local join of its fragments.
    pub fn server_answers(&self, query: &Query, server: usize) -> AnswerSet {
        let rels: Vec<&Relation> = self.fragments.iter().map(|f| &f[server]).collect();
        join::join(query, &rels)
    }

    /// The union of all servers' answers, sorted and deduplicated. A correct
    /// one-round algorithm makes this equal to the sequential join.
    ///
    /// The per-server local joins are independent, so the cluster's backend
    /// evaluates server ranges in parallel into flat per-worker
    /// [`AnswerSet`]s and merges them in server-index order before the final
    /// arity-aware sort — answers are identical for every thread count.
    pub fn all_answers(&self, query: &Query) -> AnswerSet {
        let mut out = self.collect_answers(query);
        out.sort_dedup();
        out
    }

    /// [`Cluster::all_answers`] under a cooperative [`QueryBudget`]: every
    /// server's local join polls the budget and charges emitted rows
    /// against the (shared) row cap, so an overgrown output trips cleanly
    /// instead of materializing.
    pub fn try_all_answers(
        &self,
        query: &Query,
        budget: &QueryBudget,
    ) -> Result<AnswerSet, BudgetExceeded> {
        let mut out = self.try_collect_answers(query, budget)?;
        out.sort_dedup();
        Ok(out)
    }

    /// The concatenated (unsorted, undeduplicated) per-server outputs.
    fn collect_answers(&self, query: &Query) -> AnswerSet {
        self.try_collect_answers(query, &QueryBudget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    fn try_collect_answers(
        &self,
        query: &Query,
        budget: &QueryBudget,
    ) -> Result<AnswerSet, BudgetExceeded> {
        let parts = self.backend.run_chunks(self.p, 1, |lo, hi| {
            let mut local = AnswerSet::new(query.num_vars());
            for s in lo..hi {
                let rels: Vec<&Relation> = self.fragments.iter().map(|f| &f[s]).collect();
                join::try_join_foreach_mult(
                    query,
                    &rels,
                    join::JoinOrder::Dynamic,
                    budget,
                    |row, mult| {
                        local.push_repeat(row, mult);
                    },
                )?;
            }
            Ok(local)
        });
        let mut out = AnswerSet::new(query.num_vars());
        for part in parts {
            out.append(part?);
        }
        Ok(out)
    }

    /// Fold every server's local join into accumulators without ever
    /// materializing an [`AnswerSet`] — the collection half of aggregate
    /// pushdown. `fold` sees each server's distinct bindings once, with
    /// the number of *local derivations* (row combinations) as `mult`;
    /// when the routing partitions the join's derivation multiset across
    /// servers (every aggregate-eligible plan does — see
    /// `mpc_core::aggregate`), summing per-server folds of a
    /// derivation-additive aggregate is exact.
    ///
    /// Server ranges run in parallel on the cluster's backend (one `init`
    /// accumulator per worker chunk); the chunk accumulators come back in
    /// server-index order, so an order-sensitive merge stays deterministic
    /// — though a correct aggregate merge is commutative anyway.
    pub fn fold_answers<A: Send>(
        &self,
        query: &Query,
        init: impl Fn() -> A + Sync,
        fold: impl Fn(&mut A, &[u64], u64) + Sync,
    ) -> Vec<A> {
        self.try_fold_answers(query, &QueryBudget::unlimited(), init, |acc, row, mult| {
            fold(acc, row, mult);
            Ok(())
        })
        .expect("an unlimited budget cannot be exceeded")
    }

    /// [`Cluster::fold_answers`] under a cooperative [`QueryBudget`]. The
    /// fold itself is fallible so accumulators can charge their own
    /// resources (the aggregate path trips on its group cap); the first
    /// error in server-index order wins.
    pub fn try_fold_answers<A: Send>(
        &self,
        query: &Query,
        budget: &QueryBudget,
        init: impl Fn() -> A + Sync,
        fold: impl Fn(&mut A, &[u64], u64) -> Result<(), BudgetExceeded> + Sync,
    ) -> Result<Vec<A>, BudgetExceeded> {
        let parts = self.backend.run_chunks(self.p, 1, |lo, hi| {
            let mut acc = init();
            for s in lo..hi {
                let rels: Vec<&Relation> = self.fragments.iter().map(|f| &f[s]).collect();
                let mut failed = None;
                join::try_join_foreach_mult(
                    query,
                    &rels,
                    join::JoinOrder::Dynamic,
                    budget,
                    |row, mult| {
                        if failed.is_none() {
                            failed = fold(&mut acc, row, mult).err();
                        }
                    },
                )?;
                if let Some(e) = failed {
                    return Err(e);
                }
            }
            Ok(acc)
        });
        parts.into_iter().collect()
    }

    /// Count of distinct answers across servers: counts runs over the
    /// sorted flat union ([`AnswerSet::sorted_distinct_count`]) instead of
    /// rebuilding a deduplicated copy like [`Cluster::all_answers`] must.
    pub fn answer_count(&self, query: &Query) -> u64 {
        self.collect_answers(query).sorted_distinct_count() as u64
    }
}

/// A router that broadcasts every tuple of every relation to all servers
/// (the trivially correct, maximally expensive baseline; footnote 1 of the
/// paper uses broadcasting for tiny relations).
pub struct BroadcastRouter {
    /// Number of servers.
    pub p: usize,
}

impl Router for BroadcastRouter {
    fn route(&self, _atom: usize, _tuple: &[u64], out: &mut Vec<usize>) {
        out.extend(0..self.p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::generators;
    use mpc_data::rng::Rng;
    use mpc_query::named;

    fn join_db(m: usize, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(seed);
        let s1 = generators::uniform("S1", 2, m, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    #[test]
    fn broadcast_is_correct_and_expensive() {
        let db = join_db(500, 1);
        let p = 8;
        let cluster = Cluster::run_round(&db, p, &BroadcastRouter { p });
        let expected = {
            let mut ans = mpc_data::join_database(&db);
            ans.sort_dedup();
            ans
        };
        assert_eq!(cluster.all_answers(db.query()), expected);
        let report = cluster.report();
        // Every server got everything.
        assert_eq!(report.max_load_bits(), db.total_bits());
        assert!((report.replication_rate() - p as f64).abs() < 1e-9);
    }

    #[test]
    fn hash_join_router_is_correct() {
        // Route both relations by hashing z (attribute 1 of each) to p
        // buckets: the classic parallel hash join.
        let db = join_db(800, 2);
        let p = 16usize;
        let key = 0xDEAD_BEEFu64;
        let router = move |_atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            out.push((mpc_data::mix64(tuple[1], key) % p as u64) as usize);
        };
        let cluster = Cluster::run_round(&db, p, &router);
        let expected = {
            let mut ans = mpc_data::join_database(&db);
            ans.sort_dedup();
            ans
        };
        assert_eq!(cluster.all_answers(db.query()), expected);
        // No replication: every tuple goes to exactly one server.
        let report = cluster.report();
        assert!((report.replication_rate() - 1.0).abs() < 1e-9);
        assert_eq!(report.total_tuples(), 1600);
    }

    #[test]
    fn dropping_tuples_loses_answers() {
        // A router that drops one relation entirely must lose answers
        // (sanity check that verification catches broken algorithms).
        let db = join_db(500, 3);
        let p = 4usize;
        let router = move |atom: usize, _tuple: &[u64], out: &mut Vec<usize>| {
            if atom == 0 {
                out.push(0);
            } // atom 1 dropped
        };
        let cluster = Cluster::run_round(&db, p, &router);
        assert!(cluster.all_answers(db.query()).is_empty());
    }

    #[test]
    fn report_counts_replication() {
        let db = join_db(100, 4);
        let p = 4usize;
        // Send S1 tuples to two servers each, S2 to one.
        let router = move |atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            let h = (mpc_data::mix64(tuple[1], 7) % p as u64) as usize;
            out.push(h);
            if atom == 0 {
                out.push((h + 1) % p);
            }
        };
        let cluster = Cluster::run_round(&db, p, &router);
        let report = cluster.report();
        assert_eq!(report.total_tuples(), 100 * 2 + 100);
    }

    #[test]
    fn duplicate_destinations_are_deduped() {
        let db = join_db(50, 5);
        let router = |_atom: usize, _tuple: &[u64], out: &mut Vec<usize>| {
            out.extend([2usize, 2, 2]);
        };
        let cluster = Cluster::run_round(&db, 4, &router);
        let report = cluster.report();
        assert_eq!(report.per_server_tuples[2], 100);
        assert_eq!(report.total_tuples(), 100);
    }

    #[test]
    #[should_panic(expected = "server")]
    fn out_of_range_destination_panics() {
        let db = join_db(10, 6);
        let router = |_: usize, _: &[u64], out: &mut Vec<usize>| out.push(99);
        let _ = Cluster::run_round(&db, 4, &router);
    }

    #[test]
    #[should_panic(expected = "router sent a tuple of atom 1 (S2) to server 99 >= p=4")]
    fn out_of_range_panic_names_atom_and_server() {
        let db = join_db(10, 6);
        let router = |atom: usize, _: &[u64], out: &mut Vec<usize>| {
            out.push(if atom == 1 { 99 } else { 0 });
        };
        let _ = Cluster::run_round_on(&db, 4, &router, Backend::Sequential);
    }

    #[test]
    #[should_panic(expected = "router sent a tuple of atom 0 (S1) to server 99 >= p=4")]
    fn out_of_range_panic_propagates_from_worker_threads() {
        // Big enough that the threaded shuffle really shards; the worker's
        // panic payload must reach the caller verbatim.
        let db = join_db(4096, 6);
        let router = |atom: usize, _: &[u64], out: &mut Vec<usize>| {
            out.push(if atom == 0 { 99 } else { 0 });
        };
        let _ = Cluster::run_round_on(&db, 4, &router, Backend::Threaded(4));
    }

    #[test]
    fn backends_produce_identical_clusters() {
        // Fragment contents (incl. tuple order), reports, and answers must
        // be bit-identical whatever the thread count.
        let db = join_db(3000, 7);
        let p = 8;
        let router = BroadcastRouter { p };
        let seq = Cluster::run_round_on(&db, p, &router, Backend::Sequential);
        for threads in [1usize, 2, 3, 8] {
            let thr = Cluster::run_round_on(&db, p, &router, Backend::Threaded(threads));
            assert_eq!(thr.backend(), Backend::Threaded(threads));
            for atom in 0..2 {
                for s in 0..p {
                    assert_eq!(
                        seq.fragment(atom, s),
                        thr.fragment(atom, s),
                        "fragment[{atom}][{s}] differs at {threads} threads"
                    );
                }
            }
            assert_eq!(seq.report(), thr.report(), "{threads} threads");
            assert_eq!(
                seq.all_answers(db.query()),
                thr.all_answers(db.query()),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn report_merge_is_exercised_beyond_the_chunk_threshold() {
        // p large enough that workers_for(p, REPORT_MIN_CHUNK) > 1, so the
        // threaded report really takes the multi-part stitch path.
        let db = join_db(2000, 9);
        let p = 1024;
        let key = 0xBADC_0FFEu64;
        let router = move |atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            let h = (mpc_data::mix64(tuple[1], key) % p as u64) as usize;
            out.push(h);
            if atom == 0 {
                out.push((h + 513) % p);
            }
        };
        let backend = Backend::Threaded(4);
        assert!(backend.workers_for(p, super::REPORT_MIN_CHUNK) > 1);
        let seq = Cluster::run_round_on(&db, p, &router, Backend::Sequential);
        let thr = Cluster::run_round_on(&db, p, &router, backend);
        let (rs, rt) = (seq.report(), thr.report());
        assert_eq!(rs, rt);
        assert_eq!(rs.num_servers(), p);
        assert_eq!(rs.total_tuples(), 2000 * 2 + 2000);
    }

    #[test]
    fn pooled_cluster_is_identical_and_reuses_threads() {
        // The pooled backend must produce bit-identical fragments, reports,
        // and answers — and ≥3 consecutive rounds on the same pool must not
        // spawn a single new thread (the whole point of the pool).
        let db = join_db(3000, 7);
        let p = 8;
        let router = BroadcastRouter { p };
        let seq = Cluster::run_round_on(&db, p, &router, Backend::Sequential);
        let pool = crate::pool::global(4);
        let spawned_before = pool.spawn_count();
        for round in 0..3 {
            let pooled = Cluster::run_round_on(&db, p, &router, Backend::Pooled(4));
            assert_eq!(pooled.backend(), Backend::Pooled(4));
            for atom in 0..2 {
                for s in 0..p {
                    assert_eq!(
                        seq.fragment(atom, s),
                        pooled.fragment(atom, s),
                        "fragment[{atom}][{s}] differs on the pooled backend"
                    );
                }
            }
            assert_eq!(seq.report(), pooled.report(), "round {round}");
            assert_eq!(
                seq.all_answers(db.query()),
                pooled.all_answers(db.query()),
                "round {round}"
            );
            assert_eq!(
                pool.spawn_count(),
                spawned_before,
                "round {round} spawned new threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "router sent a tuple of atom 0 (S1) to server 99 >= p=4")]
    fn out_of_range_panic_propagates_from_pool_workers() {
        let db = join_db(4096, 6);
        let router = |atom: usize, _: &[u64], out: &mut Vec<usize>| {
            out.push(if atom == 0 { 99 } else { 0 });
        };
        let _ = Cluster::run_round_on(&db, 4, &router, Backend::Pooled(4));
    }

    #[test]
    fn run_batch_matches_individual_rounds_in_job_order() {
        let dbs: Vec<Database> = (0..6).map(|seed| join_db(700, 100 + seed)).collect();
        let p = 8usize;
        let broadcast = BroadcastRouter { p };
        let key = 0x5EED_F00Du64;
        let hash = move |_atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            out.push((mpc_data::mix64(tuple[1], key) % p as u64) as usize);
        };
        let jobs: Vec<BatchJob> = dbs
            .iter()
            .enumerate()
            .map(|(i, db)| BatchJob {
                db,
                p,
                router: if i % 2 == 0 {
                    &broadcast as &(dyn Router + Sync)
                } else {
                    &hash as &(dyn Router + Sync)
                },
            })
            .collect();
        let expected: Vec<(mpc_data::AnswerSet, LoadReport)> = jobs
            .iter()
            .map(|job| {
                let c = Cluster::run_round_on(
                    job.db,
                    job.p,
                    &DynRouter(job.router),
                    Backend::Sequential,
                );
                (c.all_answers(job.db.query()), c.report())
            })
            .collect();
        for backend in [
            Backend::Sequential,
            Backend::Threaded(3),
            Backend::Pooled(4),
        ] {
            let results = Cluster::run_batch(&jobs, backend);
            assert_eq!(results.len(), jobs.len(), "{backend}");
            for (i, ((cluster, report), (exp_answers, exp_report))) in
                results.iter().zip(&expected).enumerate()
            {
                assert_eq!(report, exp_report, "job {i} report [{backend}]");
                assert_eq!(
                    &cluster.all_answers(dbs[i].query()),
                    exp_answers,
                    "job {i} answers [{backend}]"
                );
            }
        }
    }

    #[test]
    fn with_backend_swaps_local_evaluation() {
        let db = join_db(500, 8);
        let p = 4;
        let cluster = Cluster::run_round_on(&db, p, &BroadcastRouter { p }, Backend::Sequential);
        let answers_seq = cluster.all_answers(db.query());
        let cluster = cluster.with_backend(Backend::Threaded(3));
        assert_eq!(cluster.backend(), Backend::Threaded(3));
        assert_eq!(cluster.all_answers(db.query()), answers_seq);
    }
}
