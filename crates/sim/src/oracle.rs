//! Parallel ground-truth join.
//!
//! Verification compares every distributed answer set against the
//! sequential join of the input, which under the `--ignored` stress suite
//! is the slowest single step. This module evaluates the ground truth on an
//! execution [`Backend`]: the join is hash-partitioned on a shared variable
//! ([`mpc_data::join::partition_join`]) and the independent buckets run
//! through the same [`Backend::run_chunks`] primitive as the simulator —
//! including the persistent pool. The result is sorted and deduplicated,
//! and is identical to the sequential oracle for every backend.
//!
//! The oracle deliberately evaluates with [`JoinOrder::Fixed`] — the legacy
//! greedy atom order — while the simulated servers run the default dynamic
//! cardinality-guided ordering, so every verification pass doubles as a
//! dynamic-vs-fixed differential on the two engines' answer sets.

use crate::backend::Backend;
use mpc_data::answers::AnswerSet;
use mpc_data::catalog::Database;
use mpc_data::join::{partition_join, JoinOrder};
use mpc_data::relation::Relation;
use mpc_query::Query;

/// Buckets per worker: oversplitting only pays off because the buckets run
/// through [`Backend::run_items`] — on the pooled backend each bucket is a
/// separate queue-scheduled job, so a heavy bucket (a skewed join key sends
/// all its work to one bucket) occupies one worker while the others drain
/// the remaining small buckets.
const BUCKETS_PER_WORKER: usize = 4;

/// The ground-truth answer set of `query` over `relations`, sorted and
/// deduplicated, computed on `backend`. Rows are collected flat
/// ([`AnswerSet`]) on every path — one arena per bucket, not one `Vec` per
/// answer.
pub fn join_on(query: &Query, relations: &[&Relation], backend: Backend) -> AnswerSet {
    let workers = backend.threads();
    let mut answers: AnswerSet = if workers <= 1 {
        mpc_data::join_ordered(query, relations, JoinOrder::Fixed)
    } else {
        let parts = partition_join(query, relations, workers * BUCKETS_PER_WORKER);
        let buckets = backend.run_items(parts.num_buckets(), |b| {
            let mut out = AnswerSet::new(query.num_vars());
            parts.join_bucket_foreach_mult(b, JoinOrder::Fixed, |row, mult| {
                out.push_repeat(row, mult);
            });
            out
        });
        let mut merged = AnswerSet::new(query.num_vars());
        for bucket in buckets {
            merged.append(bucket);
        }
        merged
    };
    answers.sort_dedup();
    answers
}

/// [`join_on`] over a whole [`Database`].
pub fn join_database_on(db: &Database, backend: Backend) -> AnswerSet {
    let rels: Vec<&Relation> = db.relations().iter().map(|r| r.as_ref()).collect();
    join_on(db.query(), &rels, backend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Rng};
    use mpc_query::named;

    fn sequential_oracle(db: &Database) -> AnswerSet {
        let mut ans = mpc_data::join_database(db);
        ans.sort_dedup();
        ans
    }

    #[test]
    fn parallel_oracle_matches_sequential_for_every_backend() {
        let q = named::two_way_join();
        let n = 1u64 << 9;
        let mut rng = Rng::seed_from_u64(0x0AC1E);
        let s1 = generators::uniform("S1", 2, 1200, n, &mut rng);
        let s2 = generators::uniform("S2", 2, 1200, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let expected = sequential_oracle(&db);
        assert!(!expected.is_empty());
        for backend in [
            Backend::Sequential,
            Backend::Threaded(2),
            Backend::Threaded(8),
            Backend::Pooled(4),
        ] {
            assert_eq!(join_database_on(&db, backend), expected, "{backend}");
        }
    }

    #[test]
    fn parallel_oracle_matches_on_triangles() {
        let q = named::cycle(3);
        let n = 1u64 << 6;
        let mut rng = Rng::seed_from_u64(77);
        let rels: Vec<_> = q
            .atoms()
            .iter()
            .map(|a| generators::uniform(a.name(), a.arity(), 400, n, &mut rng))
            .collect();
        let db = Database::new(q, rels, n).unwrap();
        let expected = sequential_oracle(&db);
        for backend in [Backend::Threaded(4), Backend::Pooled(4)] {
            assert_eq!(join_database_on(&db, backend), expected, "{backend}");
        }
    }
}
