//! Execution backends for the simulator.
//!
//! The MPC model is massively *parallel*, so the simulator should be too: a
//! [`Backend`] selects how the two hot loops — the shuffle in
//! [`crate::cluster::Cluster::run_round_on`] and the per-server local joins
//! in [`crate::cluster::Cluster::all_answers`] — are executed.
//!
//! All backends are **bit-identical**: work is split into contiguous index
//! chunks, each worker produces its partial result independently, and
//! partials are merged in worker-index order. Fragment tuple order, answer
//! sets, and [`crate::load::LoadReport`]s therefore never depend on the
//! thread count (the differential suite in `tests/differential.rs` enforces
//! this).
//!
//! Selection precedence: explicit [`Backend`] argument > the
//! `MPCSKEW_THREADS` environment variable (`1` = sequential, `0`/unset =
//! all available cores, `n` = n scoped threads, `pool:n` = the persistent
//! `n`-worker pool) > available parallelism.

use crate::pool;

/// How simulator loops over independent work items are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Everything on the calling thread.
    Sequential,
    /// Up to `n` std::thread workers per parallel loop (scoped threads
    /// spawned and joined per loop; `Threaded(1)` behaves exactly like
    /// [`Backend::Sequential`]).
    Threaded(usize),
    /// Up to `n` workers from the persistent process-wide pool of that size
    /// ([`crate::pool::global`]): threads are spawned once and reused across
    /// every loop, round, query, and batch, amortizing spawn cost for
    /// many-round / many-query workloads. Results are bit-identical to the
    /// other backends.
    Pooled(usize),
}

impl Backend {
    /// `Threaded(available_parallelism)`.
    pub fn available() -> Backend {
        Backend::Threaded(available_threads())
    }

    /// `Pooled(available_parallelism)`.
    pub fn available_pooled() -> Backend {
        Backend::Pooled(available_threads())
    }

    /// Backend selected by the `MPCSKEW_THREADS` environment variable:
    /// `1` → [`Backend::Sequential`], `n > 1` → `Threaded(n)`, `pool:n` →
    /// `Pooled(n)` (`pool:0` = pool over all cores), `0`/unset →
    /// [`Backend::available`].
    ///
    /// The variable is re-read on every call (no process-wide cache), so a
    /// test or embedder that changes `MPCSKEW_THREADS` mid-process gets the
    /// new backend on the next round — `from_env_tracks_environment_changes`
    /// pins this.
    ///
    /// # Panics
    /// Panics when the variable is set but not a valid spec — a typo must
    /// not silently downgrade a pinned-backend CI run to the default.
    pub fn from_env() -> Backend {
        match std::env::var("MPCSKEW_THREADS") {
            Err(_) => Backend::available(),
            Ok(v) => Backend::parse(&v)
                .unwrap_or_else(|e| panic!("MPCSKEW_THREADS must be an integer or `pool:N`: {e}")),
        }
    }

    /// Parse a backend spec: an integer (the [`Backend::from_thread_count`]
    /// convention) or `pool:N` for the persistent pool (`pool:0` = all
    /// available cores). The CLI `--threads` flag and `MPCSKEW_THREADS` both
    /// use this grammar.
    pub fn parse(spec: &str) -> Result<Backend, String> {
        let s = spec.trim();
        if let Some(rest) = s.strip_prefix("pool:") {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| format!("bad pool worker count in `{spec}`"))?;
            Ok(match n {
                0 => Backend::available_pooled(),
                n => Backend::Pooled(n),
            })
        } else {
            let n: usize = s.parse().map_err(|_| format!("got `{spec}`"))?;
            Ok(Backend::from_thread_count(Some(n)))
        }
    }

    /// The numeric [`Backend::from_env`] mapping, exposed for flag parsing.
    pub fn from_thread_count(threads: Option<usize>) -> Backend {
        match threads {
            None | Some(0) => Backend::available(),
            Some(1) => Backend::Sequential,
            Some(n) => Backend::Threaded(n),
        }
    }

    /// Worker-thread budget of this backend (>= 1).
    pub fn threads(&self) -> usize {
        match *self {
            Backend::Sequential => 1,
            Backend::Threaded(n) | Backend::Pooled(n) => n.max(1),
        }
    }

    /// Number of workers a loop over `len` items with at least `min_chunk`
    /// items per worker would actually use.
    pub fn workers_for(&self, len: usize, min_chunk: usize) -> usize {
        if len == 0 {
            return 0;
        }
        self.threads().min(len.div_ceil(min_chunk.max(1))).max(1)
    }

    /// The contiguous chunk ranges a loop over `len` items splits into.
    fn chunk_ranges(&self, len: usize, workers: usize) -> Vec<(usize, usize)> {
        let chunk = len.div_ceil(workers);
        (0..workers)
            .map(|t| (t * chunk, ((t + 1) * chunk).min(len)))
            .filter(|&(lo, hi)| lo < hi)
            .collect()
    }

    /// Split `0..len` into contiguous chunks of at least `min_chunk` items,
    /// evaluate `work(lo, hi)` for each (in parallel on the threaded and
    /// pooled backends), and return the per-chunk results **in chunk
    /// order** — the deterministic-merge primitive every parallel loop in
    /// the simulator is built on. Worker panics are re-raised on the caller
    /// with their original payload (the first panicking chunk in chunk
    /// order).
    ///
    /// Called from inside a pool worker (a nested parallel loop), the work
    /// runs inline on that worker: submitting sub-jobs to the same pool the
    /// caller occupies could deadlock, and batch submissions parallelize
    /// across items, not inside them.
    pub fn run_chunks<T, F>(&self, len: usize, min_chunk: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let workers = self.workers_for(len, min_chunk);
        if workers == 0 {
            return Vec::new();
        }
        if workers == 1 || pool::in_worker() {
            return vec![work(0, len)];
        }
        let ranges = self.chunk_ranges(len, workers);
        match *self {
            Backend::Sequential => unreachable!("workers_for caps Sequential at 1"),
            Backend::Threaded(_) => {
                let work = &work;
                std::thread::scope(|scope| {
                    let handles: Vec<_> = ranges
                        .iter()
                        .map(|&(lo, hi)| scope.spawn(move || work(lo, hi)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                        .collect()
                })
            }
            Backend::Pooled(n) => pool::global(n)
                .run_jobs(ranges.len(), |i| {
                    let (lo, hi) = ranges[i];
                    work(lo, hi)
                })
                .into_iter()
                .map(|r| r.unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect(),
        }
    }

    /// Run `count` independent work items and return their results **in
    /// item order**. Unlike [`Backend::run_chunks`], items are not
    /// statically grouped into contiguous per-worker chunks on the pooled
    /// backend: each item is its own pool job pulled from the shared queue,
    /// so a slow item (a heavy oracle bucket, a big batch round) occupies
    /// one worker while the others keep draining the rest — dynamic load
    /// balancing for heterogeneous items. On the scoped-thread backend the
    /// items fall back to contiguous chunking. Worker panics are re-raised
    /// verbatim (first panicking item in item order).
    pub fn run_items<T, F>(&self, count: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if count == 0 {
            return Vec::new();
        }
        if self.threads() <= 1 || pool::in_worker() {
            return (0..count).map(work).collect();
        }
        match *self {
            Backend::Pooled(n) => pool::global(n)
                .run_jobs(count, &work)
                .into_iter()
                .map(|r| r.unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect(),
            _ => self
                .run_chunks(count, 1, |lo, hi| (lo..hi).map(&work).collect::<Vec<_>>())
                .into_iter()
                .flatten()
                .collect(),
        }
    }

    /// Pipelined [`Backend::run_chunks`]: chunk results are handed to
    /// `consume` on the **calling thread, in chunk order, while later chunks
    /// are still being computed** — producers and the (order-sensitive)
    /// merge overlap through a bounded channel instead of a full barrier.
    /// Because `consume` still sees every chunk in chunk order, anything
    /// merged through it is bit-identical to the unpipelined path. Worker
    /// panics are re-raised verbatim (first panicking chunk in chunk order)
    /// after the in-flight chunks have drained.
    pub fn run_chunks_pipelined<T, F, C>(
        &self,
        len: usize,
        min_chunk: usize,
        work: F,
        mut consume: C,
    ) where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
        C: FnMut(T),
    {
        let workers = self.workers_for(len, min_chunk);
        if workers == 0 {
            return;
        }
        if workers == 1 || pool::in_worker() {
            consume(work(0, len));
            return;
        }
        let ranges = self.chunk_ranges(len, workers);
        match *self {
            Backend::Sequential => unreachable!("workers_for caps Sequential at 1"),
            Backend::Threaded(_) => {
                use std::panic::{catch_unwind, AssertUnwindSafe};
                let work = &work;
                // Capacity covers every chunk, so producers never block on
                // the channel even if the consumer unwinds early.
                let (tx, rx) = std::sync::mpsc::sync_channel(ranges.len());
                std::thread::scope(|scope| {
                    for (i, &(lo, hi)) in ranges.iter().enumerate() {
                        let tx = tx.clone();
                        scope.spawn(move || {
                            let outcome = catch_unwind(AssertUnwindSafe(|| work(lo, hi)));
                            let _ = tx.send((i, outcome));
                        });
                    }
                    drop(tx);
                    pool::consume_in_order(&rx, ranges.len(), &mut consume);
                });
            }
            Backend::Pooled(n) => pool::global(n).run_jobs_pipelined(
                ranges.len(),
                |i| {
                    let (lo, hi) = ranges[i];
                    work(lo, hi)
                },
                consume,
            ),
        }
    }
}

fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

impl Default for Backend {
    fn default() -> Backend {
        Backend::from_env()
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Sequential => write!(f, "sequential"),
            Backend::Threaded(n) => write!(f, "threaded({n})"),
            Backend::Pooled(n) => write!(f, "pooled({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every parallel flavour the primitive-level tests sweep.
    const PARALLEL: [Backend; 2] = [Backend::Threaded(4), Backend::Pooled(4)];

    #[test]
    fn thread_count_mapping() {
        assert_eq!(Backend::from_thread_count(Some(1)), Backend::Sequential);
        assert_eq!(Backend::from_thread_count(Some(2)), Backend::Threaded(2));
        assert_eq!(Backend::from_thread_count(Some(8)), Backend::Threaded(8));
        // 0 and unset mean "all available cores".
        assert_eq!(Backend::from_thread_count(Some(0)), Backend::available());
        assert_eq!(Backend::from_thread_count(None), Backend::available());
        assert!(Backend::available().threads() >= 1);
    }

    #[test]
    fn spec_parsing() {
        assert_eq!(Backend::parse("1"), Ok(Backend::Sequential));
        assert_eq!(Backend::parse(" 6 "), Ok(Backend::Threaded(6)));
        assert_eq!(Backend::parse("0"), Ok(Backend::available()));
        assert_eq!(Backend::parse("pool:4"), Ok(Backend::Pooled(4)));
        assert_eq!(Backend::parse("pool: 2"), Ok(Backend::Pooled(2)));
        assert_eq!(Backend::parse("pool:0"), Ok(Backend::available_pooled()));
        assert!(Backend::parse("many").is_err());
        assert!(Backend::parse("pool:x").is_err());
        assert!(Backend::parse("pool:").is_err());
    }

    #[test]
    fn from_env_tracks_environment_changes() {
        // Regression test for the stale-OnceLock bug: from_env used to cache
        // the first read for the process lifetime, so a test that set
        // MPCSKEW_THREADS after any earlier read silently kept the old
        // backend. The variable must now be re-read on every call. (Only
        // valid specs are written here: other tests of this binary may read
        // the variable concurrently, and every valid backend is
        // bit-identical, so the worst cross-talk is a different but correct
        // executor for one round.)
        let saved = std::env::var("MPCSKEW_THREADS").ok();
        std::env::set_var("MPCSKEW_THREADS", "3");
        assert_eq!(Backend::from_env(), Backend::Threaded(3));
        std::env::set_var("MPCSKEW_THREADS", "pool:5");
        assert_eq!(Backend::from_env(), Backend::Pooled(5));
        std::env::set_var("MPCSKEW_THREADS", "1");
        assert_eq!(Backend::from_env(), Backend::Sequential);
        match saved {
            Some(v) => std::env::set_var("MPCSKEW_THREADS", v),
            None => std::env::remove_var("MPCSKEW_THREADS"),
        }
    }

    #[test]
    fn worker_budgeting_respects_min_chunk() {
        for b in [Backend::Threaded(8), Backend::Pooled(8)] {
            assert_eq!(b.workers_for(0, 16), 0, "{b}");
            assert_eq!(b.workers_for(10, 16), 1, "{b}");
            assert_eq!(b.workers_for(32, 16), 2, "{b}");
            assert_eq!(b.workers_for(1 << 20, 16), 8, "{b}");
        }
        assert_eq!(Backend::Sequential.workers_for(1 << 20, 1), 1);
        assert_eq!(Backend::Threaded(0).threads(), 1);
        assert_eq!(Backend::Pooled(0).threads(), 1);
    }

    #[test]
    fn run_chunks_covers_range_in_order() {
        for backend in [
            Backend::Sequential,
            Backend::Threaded(1),
            Backend::Threaded(3),
            Backend::Threaded(64),
            Backend::Pooled(1),
            Backend::Pooled(3),
            Backend::Pooled(16),
        ] {
            let parts = backend.run_chunks(1000, 1, |lo, hi| (lo..hi).collect::<Vec<_>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "{backend}");
        }
    }

    #[test]
    fn run_chunks_result_is_thread_count_invariant() {
        let sum = |lo: usize, hi: usize| (lo..hi).map(|i| i as u64 * i as u64).sum::<u64>();
        let seq: u64 = Backend::Sequential
            .run_chunks(4096, 1, sum)
            .into_iter()
            .sum();
        for n in [2usize, 3, 8, 17] {
            let thr: u64 = Backend::Threaded(n)
                .run_chunks(4096, 1, sum)
                .into_iter()
                .sum();
            assert_eq!(thr, seq, "Threaded({n})");
            let pooled: u64 = Backend::Pooled(n)
                .run_chunks(4096, 1, sum)
                .into_iter()
                .sum();
            assert_eq!(pooled, seq, "Pooled({n})");
        }
    }

    #[test]
    fn empty_range_runs_no_work() {
        for backend in PARALLEL {
            let parts = backend.run_chunks(0, 1, |_, _| panic!("no work expected"));
            assert!(parts.is_empty(), "{backend}");
            backend.run_chunks_pipelined(
                0,
                1,
                |_, _| panic!("no work"),
                |_: ()| panic!("no consume"),
            );
        }
    }

    #[test]
    #[should_panic(expected = "worker exploded at 7")]
    fn worker_panics_propagate_with_payload() {
        Backend::Threaded(4).run_chunks(16, 1, |lo, hi| {
            for i in lo..hi {
                assert!(i != 7, "worker exploded at {i}");
            }
        });
    }

    #[test]
    #[should_panic(expected = "pool worker exploded at 7")]
    fn pooled_worker_panics_propagate_with_payload() {
        Backend::Pooled(4).run_chunks(16, 1, |lo, hi| {
            for i in lo..hi {
                assert!(i != 7, "pool worker exploded at {i}");
            }
        });
    }

    #[test]
    fn pooled_backend_survives_a_panicking_loop() {
        // A panic poisons only its own submission: the shared pool keeps
        // serving later loops, on the same threads it spawned originally.
        let backend = Backend::Pooled(4);
        let pool = pool::global(4);
        let spawned_before = pool.spawn_count();
        let result = std::panic::catch_unwind(|| {
            backend.run_chunks(16, 1, |lo, _| {
                assert!(lo == 0, "poisoned chunk at {lo}");
            })
        });
        assert!(result.is_err());
        let parts = backend.run_chunks(100, 1, |lo, hi| hi - lo);
        assert_eq!(parts.iter().sum::<usize>(), 100);
        assert_eq!(
            pool.spawn_count(),
            spawned_before,
            "panic must not respawn workers"
        );
    }

    #[test]
    fn pipelined_consume_is_chunk_ordered_and_complete() {
        for backend in [
            Backend::Sequential,
            Backend::Threaded(3),
            Backend::Threaded(8),
            Backend::Pooled(3),
            Backend::Pooled(8),
        ] {
            let mut flat: Vec<usize> = Vec::new();
            backend.run_chunks_pipelined(
                1000,
                1,
                |lo, hi| (lo..hi).collect::<Vec<_>>(),
                |part| flat.extend(part),
            );
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "{backend}");
        }
    }

    #[test]
    #[should_panic(expected = "pipelined worker exploded at 9")]
    fn pipelined_threaded_panics_propagate_with_payload() {
        Backend::Threaded(4).run_chunks_pipelined(
            16,
            1,
            |lo, hi| {
                for i in lo..hi {
                    assert!(i != 9, "pipelined worker exploded at {i}");
                }
            },
            |_: ()| {},
        );
    }

    #[test]
    #[should_panic(expected = "pipelined worker exploded at 9")]
    fn pipelined_pooled_panics_propagate_with_payload() {
        Backend::Pooled(4).run_chunks_pipelined(
            16,
            1,
            |lo, hi| {
                for i in lo..hi {
                    assert!(i != 9, "pipelined worker exploded at {i}");
                }
            },
            |_: ()| {},
        );
    }

    #[test]
    fn run_items_is_item_ordered_on_every_backend() {
        for backend in [
            Backend::Sequential,
            Backend::Threaded(1),
            Backend::Threaded(3),
            Backend::Pooled(1),
            Backend::Pooled(4),
        ] {
            let items = backend.run_items(100, |i| i * 3);
            assert_eq!(
                items,
                (0..100).map(|i| i * 3).collect::<Vec<_>>(),
                "{backend}"
            );
            assert!(backend.run_items(0, |_| 0).is_empty(), "{backend}");
        }
    }

    #[test]
    #[should_panic(expected = "item exploded at 11")]
    fn run_items_panics_propagate_from_the_pool() {
        Backend::Pooled(4).run_items(32, |i| {
            assert!(i != 11, "item exploded at {i}");
        });
    }

    #[test]
    fn pipelined_consumer_panic_propagates_and_pool_survives() {
        let backend = Backend::Pooled(4);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            backend.run_chunks_pipelined(
                1000,
                1,
                |lo, hi| (lo..hi).sum::<usize>(),
                |_| panic!("merge bailed"),
            );
        }));
        assert!(result.is_err());
        let parts = backend.run_chunks(100, 1, |lo, hi| hi - lo);
        assert_eq!(parts.iter().sum::<usize>(), 100);
    }

    #[test]
    fn nested_pooled_loops_run_inline() {
        // A parallel loop launched from inside a pool worker degrades to
        // inline execution instead of deadlocking on the shared queue.
        let backend = Backend::Pooled(2);
        let parts = backend.run_chunks(4, 1, |lo, hi| {
            let inner: usize = backend.run_chunks(64, 1, |a, b| b - a).into_iter().sum();
            (hi - lo) * inner
        });
        assert_eq!(parts.iter().sum::<usize>(), 4 * 64);
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::Sequential.to_string(), "sequential");
        assert_eq!(Backend::Threaded(4).to_string(), "threaded(4)");
        assert_eq!(Backend::Pooled(8).to_string(), "pooled(8)");
    }
}
