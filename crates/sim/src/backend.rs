//! Execution backends for the simulator.
//!
//! The MPC model is massively *parallel*, so the simulator should be too: a
//! [`Backend`] selects how the two hot loops — the shuffle in
//! [`crate::cluster::Cluster::run_round_on`] and the per-server local joins
//! in [`crate::cluster::Cluster::all_answers`] — are executed.
//!
//! Both backends are **bit-identical**: work is split into contiguous index
//! chunks, each worker produces its partial result independently, and
//! partials are merged in worker-index order. Fragment tuple order, answer
//! sets, and [`crate::load::LoadReport`]s therefore never depend on the
//! thread count (the differential suite in `tests/differential.rs` enforces
//! this).
//!
//! Selection precedence: explicit [`Backend`] argument > the
//! `MPCSKEW_THREADS` environment variable (`1` = sequential, `0`/unset =
//! all available cores, `n` = n threads) > available parallelism.

use std::sync::OnceLock;

/// How simulator loops over independent work items are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Everything on the calling thread.
    Sequential,
    /// Up to `n` std::thread workers per parallel loop (scoped threads, no
    /// pool; `Threaded(1)` behaves exactly like [`Backend::Sequential`]).
    Threaded(usize),
}

impl Backend {
    /// `Threaded(available_parallelism)`.
    pub fn available() -> Backend {
        Backend::Threaded(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Backend selected by the `MPCSKEW_THREADS` environment variable
    /// (read once per process): `1` → [`Backend::Sequential`], `n > 1` →
    /// `Threaded(n)`, `0`/unset → [`Backend::available`].
    ///
    /// # Panics
    /// Panics when the variable is set but not an integer — a typo must
    /// not silently downgrade a pinned-backend CI run to the default.
    pub fn from_env() -> Backend {
        static ENV: OnceLock<Option<usize>> = OnceLock::new();
        let parsed = *ENV.get_or_init(|| {
            std::env::var("MPCSKEW_THREADS").ok().map(|v| {
                v.trim().parse::<usize>().unwrap_or_else(|_| {
                    panic!("MPCSKEW_THREADS must be an integer, got `{v}`")
                })
            })
        });
        Backend::from_thread_count(parsed)
    }

    /// The [`Backend::from_env`] mapping, exposed for flag parsing (the CLI
    /// `--threads` flag uses the same convention).
    pub fn from_thread_count(threads: Option<usize>) -> Backend {
        match threads {
            None | Some(0) => Backend::available(),
            Some(1) => Backend::Sequential,
            Some(n) => Backend::Threaded(n),
        }
    }

    /// Worker-thread budget of this backend (>= 1).
    pub fn threads(&self) -> usize {
        match *self {
            Backend::Sequential => 1,
            Backend::Threaded(n) => n.max(1),
        }
    }

    /// Number of workers a loop over `len` items with at least `min_chunk`
    /// items per worker would actually use.
    pub fn workers_for(&self, len: usize, min_chunk: usize) -> usize {
        if len == 0 {
            return 0;
        }
        self.threads().min(len.div_ceil(min_chunk.max(1))).max(1)
    }

    /// Split `0..len` into contiguous chunks of at least `min_chunk` items,
    /// evaluate `work(lo, hi)` for each (in parallel on the threaded
    /// backend), and return the per-chunk results **in chunk order** — the
    /// deterministic-merge primitive every parallel loop in the simulator
    /// is built on. Worker panics are re-raised on the caller with their
    /// original payload.
    pub fn run_chunks<T, F>(&self, len: usize, min_chunk: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, usize) -> T + Sync,
    {
        let workers = self.workers_for(len, min_chunk);
        if workers == 0 {
            return Vec::new();
        }
        if workers == 1 {
            return vec![work(0, len)];
        }
        let chunk = len.div_ceil(workers);
        let work = &work;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|t| (t * chunk, ((t + 1) * chunk).min(len)))
                .filter(|&(lo, hi)| lo < hi)
                .map(|(lo, hi)| scope.spawn(move || work(lo, hi)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
                .collect()
        })
    }
}

impl Default for Backend {
    fn default() -> Backend {
        Backend::from_env()
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Sequential => write!(f, "sequential"),
            Backend::Threaded(n) => write!(f, "threaded({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_mapping() {
        assert_eq!(Backend::from_thread_count(Some(1)), Backend::Sequential);
        assert_eq!(Backend::from_thread_count(Some(2)), Backend::Threaded(2));
        assert_eq!(Backend::from_thread_count(Some(8)), Backend::Threaded(8));
        // 0 and unset mean "all available cores".
        assert_eq!(Backend::from_thread_count(Some(0)), Backend::available());
        assert_eq!(Backend::from_thread_count(None), Backend::available());
        assert!(Backend::available().threads() >= 1);
    }

    #[test]
    fn worker_budgeting_respects_min_chunk() {
        let b = Backend::Threaded(8);
        assert_eq!(b.workers_for(0, 16), 0);
        assert_eq!(b.workers_for(10, 16), 1);
        assert_eq!(b.workers_for(32, 16), 2);
        assert_eq!(b.workers_for(1 << 20, 16), 8);
        assert_eq!(Backend::Sequential.workers_for(1 << 20, 1), 1);
        assert_eq!(Backend::Threaded(0).threads(), 1);
    }

    #[test]
    fn run_chunks_covers_range_in_order() {
        for backend in [
            Backend::Sequential,
            Backend::Threaded(1),
            Backend::Threaded(3),
            Backend::Threaded(64),
        ] {
            let parts = backend.run_chunks(1000, 1, |lo, hi| (lo..hi).collect::<Vec<_>>());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, (0..1000).collect::<Vec<_>>(), "{backend}");
        }
    }

    #[test]
    fn run_chunks_result_is_thread_count_invariant() {
        let sum = |lo: usize, hi: usize| (lo..hi).map(|i| i as u64 * i as u64).sum::<u64>();
        let seq: u64 = Backend::Sequential.run_chunks(4096, 1, sum).into_iter().sum();
        for n in [2usize, 3, 8, 17] {
            let par: u64 = Backend::Threaded(n).run_chunks(4096, 1, sum).into_iter().sum();
            assert_eq!(par, seq, "Threaded({n})");
        }
    }

    #[test]
    fn empty_range_runs_no_work() {
        let parts = Backend::Threaded(4).run_chunks(0, 1, |_, _| panic!("no work expected"));
        assert!(parts.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker exploded at 7")]
    fn worker_panics_propagate_with_payload() {
        Backend::Threaded(4).run_chunks(16, 1, |lo, hi| {
            for i in lo..hi {
                assert!(i != 7, "worker exploded at {i}");
            }
        });
    }

    #[test]
    fn display_names() {
        assert_eq!(Backend::Sequential.to_string(), "sequential");
        assert_eq!(Backend::Threaded(4).to_string(), "threaded(4)");
    }
}
