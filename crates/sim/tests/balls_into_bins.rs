//! Empirical reproduction of Appendix C (balls into bins).
//!
//! Lemma C.1: throwing weighted balls (total weight ≤ m, each ball ≤
//! B = a·m/p) uniformly into `p` bins keeps every bin below
//! `3·ln(1/δ)·a·m/p` with probability ≥ 1 − pδ. Corollary C.2 is the
//! unit-weight case with `δ = e^{-m/p}`. These tests throw real balls with
//! the simulator's own hash functions and check the bounds across many
//! seeds — the empirical footing under Lemma 3.1 and every high-probability
//! claim downstream.

use mpc_data::rng::{mix64, Rng};

/// Throw `weights` into `p` bins keyed by `seed`; return max bin weight.
fn max_bin_weight(weights: &[u64], p: usize, seed: u64) -> u64 {
    let mut bins = vec![0u64; p];
    for (i, &w) in weights.iter().enumerate() {
        let b = (mix64(i as u64, seed) % p as u64) as usize;
        bins[b] += w;
    }
    bins.into_iter().max().unwrap_or(0)
}

/// Corollary C.2: m unit balls into p bins stay below 3m/p w.h.p.
/// (meaningful regime: m >= p ln p).
#[test]
fn corollary_c2_unit_balls() {
    let m = 1usize << 14;
    let p = 64usize;
    let weights = vec![1u64; m];
    let cap = 3 * (m / p) as u64;
    let mut violations = 0;
    let trials = 200;
    for seed in 0..trials {
        if max_bin_weight(&weights, p, seed) > cap {
            violations += 1;
        }
    }
    // Failure probability p·e^{-m/p} is astronomically small here.
    assert_eq!(violations, 0, "{violations}/{trials} trials broke Cor C.2");
}

/// Lemma C.1: weighted balls with max weight B = a·m/p.
#[test]
fn lemma_c1_weighted_balls() {
    let m = 1u64 << 16;
    let p = 64usize;
    let a = 4.0f64; // each ball up to 4x the per-bin average
    let ball = (a * m as f64 / p as f64) as u64;
    let count = (m / ball) as usize;
    let weights = vec![ball; count];
    let delta: f64 = 1e-3;
    let cap = (3.0 * (1.0 / delta).ln() * a * m as f64 / p as f64) as u64;
    let mut violations = 0;
    let trials = 300usize;
    for seed in 0..trials as u64 {
        if max_bin_weight(&weights, p, 1000 + seed) > cap {
            violations += 1;
        }
    }
    let allowed = (trials as f64 * p as f64 * delta).ceil() as usize + 1;
    assert!(
        violations <= allowed,
        "{violations} > {allowed} violations of Lemma C.1"
    );
}

/// The concentration is tight-ish: with m >> p the max load approaches the
/// mean (ratio close to 1), while with m ~ p it does not — the reason the
/// paper needs m >= p polylog(p) (remark after Corollary C.2).
#[test]
fn concentration_needs_m_much_bigger_than_p() {
    let p = 64usize;
    let dense = vec![1u64; 1 << 16];
    let sparse = vec![1u64; 2 * p];
    let mut dense_ratio = 0.0;
    let mut sparse_ratio = 0.0;
    let trials = 50;
    for seed in 0..trials {
        dense_ratio += max_bin_weight(&dense, p, seed) as f64 / (dense.len() as f64 / p as f64);
        sparse_ratio += max_bin_weight(&sparse, p, seed) as f64 / (sparse.len() as f64 / p as f64);
    }
    dense_ratio /= trials as f64;
    sparse_ratio /= trials as f64;
    assert!(dense_ratio < 1.3, "dense imbalance {dense_ratio}");
    assert!(
        sparse_ratio > 2.0,
        "sparse regime should be visibly imbalanced: {sparse_ratio}"
    );
}

/// Convexity remark in Lemma C.1's proof: for fixed total weight, fewer
/// larger balls concentrate worse than many small ones.
#[test]
fn fewer_larger_balls_concentrate_worse() {
    let p = 32usize;
    let total = 1u64 << 14;
    let small = vec![1u64; total as usize];
    let big = vec![total / 64; 64];
    let mut rng = Rng::seed_from_u64(5);
    let mut small_max = 0.0;
    let mut big_max = 0.0;
    let trials = 100;
    for _ in 0..trials {
        let seed = rng.next_u64();
        small_max += max_bin_weight(&small, p, seed) as f64;
        big_max += max_bin_weight(&big, p, seed) as f64;
    }
    assert!(
        big_max > small_max * 1.5,
        "big balls {big_max} should dominate small balls {small_max}"
    );
}
