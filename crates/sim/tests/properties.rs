//! Property tests for the MPC simulator substrate.

use mpc_data::{generators, Database, Rng};
use mpc_query::named;
use mpc_sim::cluster::Cluster;
use mpc_sim::topology::{round_shares, Grid};
use mpc_testkit::prelude::*;

fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    mpc_testkit::collection::vec(1usize..6, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Mixed-radix encode/decode round-trips for every cell.
    #[test]
    fn grid_encode_decode_roundtrip(dims in arb_dims()) {
        let g = Grid::new(dims);
        for id in 0..g.num_cells() {
            prop_assert_eq!(g.encode(&g.decode(id)), id);
        }
    }

    /// Subcubes over a fixed dimension partition the grid: every cell lies
    /// in exactly one subcube slice.
    #[test]
    fn subcube_slices_partition(dims in arb_dims(), dim_sel in 0usize..4) {
        let g = Grid::new(dims.clone());
        let dim = dim_sel % dims.len();
        let mut seen = vec![0usize; g.num_cells()];
        for c in 0..dims[dim] {
            for cell in g.subcube_vec(&[(dim, c)]) {
                seen[cell] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "slices overlap or miss cells");
    }

    /// Subcube sizes multiply: |subcube(fixed)| = Π over free dims.
    #[test]
    fn subcube_size_is_product_of_free_dims(dims in arb_dims()) {
        let g = Grid::new(dims.clone());
        // Fix dimension 0 (always present).
        let sub = g.subcube_vec(&[(0, 0)]);
        let expected: usize = dims.iter().skip(1).product();
        prop_assert_eq!(sub.len(), expected);
    }

    /// round_shares never exceeds the budget and never starves a dimension.
    #[test]
    fn round_shares_budget(
        p in 1usize..5000,
        exps in mpc_testkit::collection::vec(0.0f64..1.0, 1..5),
    ) {
        // Normalize exponents to sum <= 1 as the LP guarantees.
        let total: f64 = exps.iter().sum();
        let exps: Vec<f64> = if total > 1.0 {
            exps.iter().map(|e| e / total).collect()
        } else {
            exps
        };
        let shares = round_shares(p, &exps);
        let product: usize = shares.iter().product();
        prop_assert!(product <= p.max(1), "p={p} exps={exps:?} shares={shares:?}");
        prop_assert!(shares.iter().all(|&s| s >= 1));
    }

    /// Conservation: the cluster's total received tuples equal the sum of
    /// per-tuple destination counts, for an arbitrary deterministic router.
    #[test]
    fn cluster_conserves_tuples(seed in 0u64..500, p in 1usize..12, fanout in 1usize..4) {
        let q = named::two_way_join();
        let n = 256u64;
        let mut rng = Rng::seed_from_u64(seed);
        let s1 = generators::uniform("S1", 2, 200, n, &mut rng);
        let s2 = generators::uniform("S2", 2, 100, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let router = move |_atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            for i in 0..fanout {
                out.push(((tuple[0] as usize) + i * 7) % p);
            }
        };
        let cluster = Cluster::run_round(&db, p, &router);
        let report = cluster.report();
        // Destinations may collide (dedup), so total <= 300 * fanout and
        // >= 300 (every tuple lands somewhere at least once).
        prop_assert!(report.total_tuples() <= (300 * fanout) as u64);
        prop_assert!(report.total_tuples() >= 300);
        // Bits are consistent with tuples: each tuple is 2 values wide.
        let bits = db.value_bits() as u64;
        prop_assert_eq!(report.total_bits(), report.total_tuples() * 2 * bits);
    }
}
