//! Property-based tests for the exact-rational and LP substrate.

use mpc_lp::{enumerate_vertices, is_feasible, Cmp, LinearProgram, Rat, RatMatrix, Sense};
use mpc_testkit::prelude::*;

/// Small rationals that cannot overflow through a few field operations.
fn small_rat() -> impl Strategy<Value = Rat> {
    (-50i128..=50, 1i128..=12).prop_map(|(n, d)| Rat::new(n, d))
}

proptest! {
    #[test]
    fn rat_addition_commutes(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn rat_multiplication_commutes(a in small_rat(), b in small_rat()) {
        prop_assert_eq!(a * b, b * a);
    }

    #[test]
    fn rat_distributivity(a in small_rat(), b in small_rat(), c in small_rat()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn rat_additive_inverse(a in small_rat()) {
        prop_assert_eq!(a + (-a), Rat::ZERO);
    }

    #[test]
    fn rat_mul_div_roundtrip(a in small_rat(), b in small_rat()) {
        prop_assume!(!b.is_zero());
        prop_assert_eq!((a * b) / b, a);
    }

    #[test]
    fn rat_ordering_consistent_with_f64(a in small_rat(), b in small_rat()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
    }

    #[test]
    fn rat_canonical_form(n in -200i128..=200, d in 1i128..=60) {
        let r = Rat::new(n, d);
        // gcd(num, den) == 1 and den > 0
        prop_assert!(r.denom() > 0);
        let g = {
            let (mut a, mut b) = (r.numer().abs(), r.denom());
            while b != 0 { let t = a % b; a = b; b = t; }
            a
        };
        prop_assert!(g <= 1 || r.numer() == 0);
    }
}

// Random exactly-solvable square systems: Gaussian elimination must
// reconstruct the planted solution.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn solve_reconstructs_planted_solution(
        entries in mpc_testkit::collection::vec(-6i64..=6, 9),
        xs in mpc_testkit::collection::vec(-5i64..=5, 3),
    ) {
        let a = RatMatrix::from_fn(3, 3, |r, c| Rat::int(entries[r * 3 + c]));
        let x: Vec<Rat> = xs.iter().map(|&v| Rat::int(v)).collect();
        let b = a.mul_vec(&x);
        if let Some(solved) = a.solve(&b) {
            // Solution must satisfy the system even if A is singular-adjacent.
            prop_assert_eq!(a.mul_vec(&solved), b);
        }
    }
}

// Every enumerated vertex must be feasible, and every vertex must make at
// least `n` constraints tight (it is a basic feasible solution).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn vertices_are_basic_feasible(rows in mpc_testkit::collection::vec(
        mpc_testkit::collection::vec(0i64..=2, 3), 2..5))
    {
        let m = rows.len();
        let a = RatMatrix::from_fn(m, 3, |r, c| Rat::int(rows[r][c]));
        let b = vec![Rat::ONE; m];
        for v in enumerate_vertices(&a, &b) {
            prop_assert!(is_feasible(&a, &b, &v));
            let tight_nonneg = v.iter().filter(|x| x.is_zero()).count();
            let ax = a.mul_vec(&v);
            let tight_rows = ax.iter().zip(&b).filter(|(l, r)| l == r).count();
            prop_assert!(tight_nonneg + tight_rows >= 3,
                "vertex {:?} has only {} tight constraints", v, tight_nonneg + tight_rows);
        }
    }
}

// LP solutions must be feasible and no worse than a brute-force grid scan
// over the feasible region (sanity optimality check on random 2-var LPs).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn simplex_beats_grid_scan(
        c0 in -5.0f64..5.0, c1 in -5.0f64..5.0,
        a00 in 0.1f64..3.0, a01 in 0.1f64..3.0,
        a10 in 0.1f64..3.0, a11 in 0.1f64..3.0,
        b0 in 1.0f64..10.0, b1 in 1.0f64..10.0,
    ) {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_var("x", c0);
        let y = lp.add_var("y", c1);
        lp.add_constraint(&[(x, a00), (y, a01)], Cmp::Le, b0);
        lp.add_constraint(&[(x, a10), (y, a11)], Cmp::Le, b1);
        let sol = lp.solve().expect("bounded feasible LP");
        // Feasibility.
        prop_assert!(sol.x[x] >= -1e-9 && sol.x[y] >= -1e-9);
        prop_assert!(a00 * sol.x[x] + a01 * sol.x[y] <= b0 + 1e-6);
        prop_assert!(a10 * sol.x[x] + a11 * sol.x[y] <= b1 + 1e-6);
        // Optimality vs a coarse grid of feasible points.
        let hi = (b0 / a00.min(a01)).max(b1 / a10.min(a11));
        let steps = 60;
        for i in 0..=steps {
            for j in 0..=steps {
                let px = hi * i as f64 / steps as f64;
                let py = hi * j as f64 / steps as f64;
                if a00 * px + a01 * py <= b0 && a10 * px + a11 * py <= b1 {
                    let val = c0 * px + c1 * py;
                    prop_assert!(sol.objective >= val - 1e-5,
                        "grid point ({px},{py}) beats simplex: {val} > {}", sol.objective);
                }
            }
        }
    }
}
