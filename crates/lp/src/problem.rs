//! Linear-program model builder.
//!
//! The paper solves three closely-related LPs: the share-exponent LP (5), its
//! dual (8), and the per-bin-combination LP (11). All of them have
//! non-negative variables and a handful of constraints, which is exactly the
//! shape this builder targets. Models are solved by the two-phase simplex in
//! [`crate::simplex`].

use std::fmt;

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective.
    Minimize,
    /// Maximize the objective.
    Maximize,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `lhs <= rhs`
    Le,
    /// `lhs >= rhs`
    Ge,
    /// `lhs == rhs`
    Eq,
}

/// A single linear constraint `sum(coeffs[i] * x[i]) cmp rhs`.
#[derive(Clone, Debug)]
pub struct Constraint {
    /// Dense coefficient vector over all model variables.
    pub coeffs: Vec<f64>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over non-negative variables.
///
/// Variables are identified by the index returned from [`LinearProgram::add_var`].
#[derive(Clone, Debug)]
pub struct LinearProgram {
    sense: Sense,
    objective: Vec<f64>,
    names: Vec<String>,
    constraints: Vec<Constraint>,
}

/// Outcome of solving a [`LinearProgram`].
#[derive(Clone, Debug)]
pub struct Solution {
    /// Optimal assignment for the model variables, in `add_var` order.
    pub x: Vec<f64>,
    /// Objective value at `x` (in the model's own sense).
    pub objective: f64,
}

/// Reasons an LP has no optimal solution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpError {
    /// The feasible region is empty.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
    /// The solver exceeded its iteration budget (should not happen with
    /// Bland's rule; indicates a malformed model).
    IterationLimit,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

impl LinearProgram {
    /// New empty model with the given sense.
    pub fn new(sense: Sense) -> LinearProgram {
        LinearProgram {
            sense,
            objective: Vec::new(),
            names: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Add a non-negative variable with objective coefficient `obj`.
    /// Returns the variable's index.
    pub fn add_var(&mut self, name: impl Into<String>, obj: f64) -> usize {
        self.objective.push(obj);
        self.names.push(name.into());
        for c in &mut self.constraints {
            c.coeffs.push(0.0);
        }
        self.objective.len() - 1
    }

    /// Number of variables added so far.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable name lookup (for diagnostics).
    pub fn var_name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Add the constraint `sum(coeff * x[var]) cmp rhs` from a sparse list of
    /// `(var, coeff)` terms. Terms for the same variable accumulate.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        let mut coeffs = vec![0.0; self.num_vars()];
        for &(var, coef) in terms {
            assert!(var < coeffs.len(), "constraint references unknown variable");
            coeffs[var] += coef;
        }
        self.constraints.push(Constraint { coeffs, cmp, rhs });
    }

    /// Model sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Objective coefficients.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// Constraint list.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Solve with the two-phase simplex method.
    pub fn solve(&self) -> Result<Solution, LpError> {
        crate::simplex::solve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_model_shape() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_var("x", 3.0);
        let y = lp.add_var("y", 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(&[(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.var_name(x), "x");
        assert_eq!(lp.constraints()[1].coeffs, vec![1.0, 3.0]);
    }

    #[test]
    fn add_var_after_constraint_pads() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(&[(x, 2.0)], Cmp::Ge, 1.0);
        let _y = lp.add_var("y", 1.0);
        assert_eq!(lp.constraints()[0].coeffs.len(), 2);
        assert_eq!(lp.constraints()[0].coeffs[1], 0.0);
    }

    #[test]
    fn duplicate_terms_accumulate() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(&[(x, 1.0), (x, 2.0)], Cmp::Le, 3.0);
        assert_eq!(lp.constraints()[0].coeffs[0], 3.0);
    }
}
