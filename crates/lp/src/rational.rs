//! Exact rational arithmetic over `i128`.
//!
//! The polytope machinery of the paper (Section 3.3) works with fractional
//! edge packings whose defining constraint matrices contain only 0/1
//! coefficients, so vertex coordinates are small rationals (denominators
//! bounded by the determinant of a 0/1 matrix of the query's size). `i128`
//! therefore gives plenty of headroom; all operations are overflow-checked
//! and panic with a descriptive message if the headroom is ever exceeded,
//! which for the supported query sizes cannot happen.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0`, always in lowest
/// terms.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

/// Greatest common divisor of the absolute values (Euclid).
fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational 0.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational 1.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Create `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "Rat::new: zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        if g == 0 {
            return Rat::ZERO;
        }
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// The integer `n` as a rational.
    pub fn int(n: i64) -> Rat {
        Rat {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Exact conversion to `f64` (within `f64` precision).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// True iff this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// True iff strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True iff strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// True iff this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "Rat::recip of zero");
        Rat::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// `min` of two rationals.
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `max` of two rationals.
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }

    fn checked(num: Option<i128>, den: Option<i128>, op: &str) -> Rat {
        match (num, den) {
            (Some(n), Some(d)) => Rat::new(n, d),
            _ => panic!("Rat arithmetic overflow in {op}"),
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::ZERO
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n)
    }
}

impl From<u32> for Rat {
    fn from(n: u32) -> Rat {
        Rat::int(n as i64)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Reduce cross terms first to delay overflow.
        let g = gcd(self.den, rhs.den);
        let (ld, rd) = (self.den / g, rhs.den / g);
        let num = self
            .num
            .checked_mul(rd)
            .and_then(|a| rhs.num.checked_mul(ld).and_then(|b| a.checked_add(b)));
        let den = self.den.checked_mul(rd);
        Rat::checked(num, den, "add")
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce to keep intermediates small.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2);
        let den = (self.den / g2).checked_mul(rhs.den / g1);
        Rat::checked(num, den, "mul")
    }
}

impl Div for Rat {
    type Output = Rat;
    // a / b as a * b^{-1} is the canonical exact-rational division.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, rhs: Rat) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rat {
    fn sub_assign(&mut self, rhs: Rat) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rat {
    fn mul_assign(&mut self, rhs: Rat) {
        *self = *self * rhs;
    }
}

impl DivAssign for Rat {
    fn div_assign(&mut self, rhs: Rat) {
        *self = *self / rhs;
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        let lhs = self
            .num
            .checked_mul(other.den)
            .expect("Rat comparison overflow");
        let rhs = other
            .num
            .checked_mul(self.den)
            .expect("Rat comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl std::iter::Sum for Rat {
    fn sum<I: Iterator<Item = Rat>>(iter: I) -> Rat {
        iter.fold(Rat::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_reduces() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rat::new(1, 0);
    }

    #[test]
    fn basic_arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert_eq!(Rat::new(3, 6).cmp(&Rat::new(1, 2)), Ordering::Equal);
        assert_eq!(Rat::new(2, 3).max(Rat::new(3, 4)), Rat::new(3, 4));
        assert_eq!(Rat::new(2, 3).min(Rat::new(3, 4)), Rat::new(2, 3));
    }

    #[test]
    fn display() {
        assert_eq!(Rat::new(1, 2).to_string(), "1/2");
        assert_eq!(Rat::int(7).to_string(), "7");
        assert_eq!(Rat::new(-3, 9).to_string(), "-1/3");
    }

    #[test]
    fn to_f64_roundtrip() {
        assert!((Rat::new(1, 3).to_f64() - 1.0 / 3.0).abs() < 1e-15);
        assert_eq!(Rat::int(-5).to_f64(), -5.0);
    }

    #[test]
    fn recip_and_predicates() {
        assert_eq!(Rat::new(2, 3).recip(), Rat::new(3, 2));
        assert!(Rat::new(-1, 7).is_negative());
        assert!(Rat::new(1, 7).is_positive());
        assert!(Rat::ZERO.is_zero());
        assert!(Rat::int(4).is_integer());
        assert!(!Rat::new(4, 3).is_integer());
    }

    #[test]
    fn sum_iterator() {
        let s: Rat = (1..=4).map(|i| Rat::new(1, i)).sum();
        assert_eq!(s, Rat::new(25, 12));
    }
}
