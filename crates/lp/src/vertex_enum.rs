//! Exact vertex enumeration for small H-polytopes.
//!
//! Section 3.3 of the paper characterizes the optimal load as a maximum of
//! `L(u, M, p)` over the *vertices* of the fractional edge packing polytope
//! `pk(q)`. This module enumerates those vertices exactly: every vertex of
//! `{x >= 0, A x <= b}` in dimension `n` is the unique solution of some
//! square subsystem of `n` tight constraints, so we enumerate all
//! `n`-subsets of the `m + n` constraints, solve each exactly over the
//! rationals, and keep the feasible, deduplicated solutions.
//!
//! This is exponential in general, but the paper's polytopes have `n = ℓ`
//! (one coordinate per atom) and `m = k` (one constraint per variable), and
//! conjunctive queries of interest have a handful of atoms, so the
//! enumeration is instantaneous and — unlike floating-point pivoting — never
//! misses a degenerate vertex.

use crate::matrix::RatMatrix;
use crate::rational::Rat;
use std::collections::HashSet;

/// Enumerate all vertices of `{x in R^n : x >= 0, A x <= b}` exactly.
///
/// Returns each vertex once, in an unspecified but deterministic order.
/// The polytope must be bounded in the region of interest for the result to
/// be meaningful as "the set of vertices"; unbounded polyhedra simply yield
/// the vertices of their bounded skeleton (sufficient for packing polytopes,
/// which live in `[0,1]^n`).
pub fn enumerate_vertices(a: &RatMatrix, b: &[Rat]) -> Vec<Vec<Rat>> {
    let n = a.cols();
    let m = a.rows();
    assert_eq!(b.len(), m, "rhs length mismatch");
    let total = m + n;
    if n == 0 {
        return vec![vec![]];
    }

    // Constraint row i (< m): A_i x <= b_i. Row m+j: -x_j <= 0.
    let constraint_row = |idx: usize| -> (Vec<Rat>, Rat) {
        if idx < m {
            (a.row(idx).to_vec(), b[idx])
        } else {
            let j = idx - m;
            let mut row = vec![Rat::ZERO; n];
            row[j] = -Rat::ONE;
            (row, Rat::ZERO)
        }
    };

    let mut seen: HashSet<Vec<Rat>> = HashSet::new();
    let mut out = Vec::new();
    let mut subset: Vec<usize> = (0..n).collect();

    loop {
        // Solve the tight system for this subset.
        let sys = RatMatrix::from_fn(n, n, |r, c| constraint_row(subset[r]).0[c]);
        let rhs: Vec<Rat> = subset.iter().map(|&i| constraint_row(i).1).collect();
        if let Some(x) = sys.solve(&rhs) {
            if is_feasible(a, b, &x) && seen.insert(x.clone()) {
                out.push(x);
            }
        }

        // Advance to the next n-combination of [0, total).
        let mut i = n;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if subset[i] != i + total - n {
                subset[i] += 1;
                for j in (i + 1)..n {
                    subset[j] = subset[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Check `x >= 0` and `A x <= b` exactly.
pub fn is_feasible(a: &RatMatrix, b: &[Rat], x: &[Rat]) -> bool {
    if x.iter().any(Rat::is_negative) {
        return false;
    }
    let ax = a.mul_vec(x);
    ax.iter().zip(b).all(|(lhs, rhs)| lhs <= rhs)
}

/// Filter a set of points down to the maximal (non-dominated) ones under the
/// componentwise partial order: `u` is dominated when some *other* point
/// `u'` satisfies `u'_j >= u_j` for all `j` with at least one strict.
///
/// This is exactly the `pk(q)` filter of Section 3.3: dominated packing
/// vertices can never achieve the maximum of `L(u, M, p)` because `L` is
/// monotone in each `u_j` (for `M_j >= p`).
pub fn non_dominated_max(points: &[Vec<Rat>]) -> Vec<Vec<Rat>> {
    points
        .iter()
        .filter(|u| {
            !points.iter().any(|v| {
                v.as_slice() != u.as_slice() && v.iter().zip(u.iter()).all(|(a, b)| a >= b)
            })
        })
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n as i128, d as i128)
    }

    /// The unit square {0<=x<=1, 0<=y<=1}.
    #[test]
    fn unit_square_vertices() {
        let a = RatMatrix::from_fn(2, 2, |i, j| if i == j { Rat::ONE } else { Rat::ZERO });
        let b = vec![Rat::ONE, Rat::ONE];
        let mut vs = enumerate_vertices(&a, &b);
        vs.sort();
        assert_eq!(
            vs,
            vec![
                vec![Rat::ZERO, Rat::ZERO],
                vec![Rat::ZERO, Rat::ONE],
                vec![Rat::ONE, Rat::ZERO],
                vec![Rat::ONE, Rat::ONE],
            ]
        );
    }

    /// The triangle-query packing polytope:
    ///   u1+u2 <= 1, u2+u3 <= 1, u3+u1 <= 1, u >= 0.
    /// Vertices: 0, the three unit vectors, and (1/2,1/2,1/2).
    #[test]
    fn c3_packing_polytope() {
        let pairs = [[0usize, 1], [1, 2], [2, 0]];
        let a = RatMatrix::from_fn(3, 3, |i, j| {
            if pairs[i].contains(&j) {
                Rat::ONE
            } else {
                Rat::ZERO
            }
        });
        let b = vec![Rat::ONE; 3];
        let mut vs = enumerate_vertices(&a, &b);
        vs.sort();
        let mut expected = vec![
            vec![Rat::ZERO, Rat::ZERO, Rat::ZERO],
            vec![Rat::ONE, Rat::ZERO, Rat::ZERO],
            vec![Rat::ZERO, Rat::ONE, Rat::ZERO],
            vec![Rat::ZERO, Rat::ZERO, Rat::ONE],
            vec![r(1, 2), r(1, 2), r(1, 2)],
        ];
        expected.sort();
        assert_eq!(vs, expected);
    }

    #[test]
    fn non_dominated_filters_origin_and_units_below_half() {
        let pts = vec![
            vec![Rat::ZERO, Rat::ZERO],
            vec![Rat::ONE, Rat::ZERO],
            vec![Rat::ZERO, Rat::ONE],
            vec![r(1, 2), r(1, 2)],
        ];
        let mut nd = non_dominated_max(&pts);
        nd.sort();
        // Origin is dominated by everything; the rest are incomparable.
        let mut expected = vec![
            vec![Rat::ONE, Rat::ZERO],
            vec![Rat::ZERO, Rat::ONE],
            vec![r(1, 2), r(1, 2)],
        ];
        expected.sort();
        assert_eq!(nd, expected);
    }

    #[test]
    fn feasibility_is_exact() {
        let a = RatMatrix::from_fn(1, 2, |_, _| Rat::ONE);
        let b = vec![Rat::ONE];
        assert!(is_feasible(&a, &b, &[r(1, 2), r(1, 2)]));
        assert!(!is_feasible(&a, &b, &[r(1, 2), r(2, 3)]));
        assert!(!is_feasible(&a, &b, &[-r(1, 10), r(1, 2)]));
    }

    /// A degenerate polytope (a single point) is handled.
    #[test]
    fn single_point_polytope() {
        // x <= 0 together with x >= 0 pins x = 0.
        let a = RatMatrix::from_fn(1, 1, |_, _| Rat::ONE);
        let b = vec![Rat::ZERO];
        let vs = enumerate_vertices(&a, &b);
        assert_eq!(vs, vec![vec![Rat::ZERO]]);
    }
}
