//! # mpc-lp
//!
//! Self-contained linear-programming substrate for the `mpc-skew` workspace:
//!
//! * [`rational::Rat`] — exact rational arithmetic over `i128`;
//! * [`matrix::RatMatrix`] — dense exact linear algebra (solve / rank);
//! * [`problem::LinearProgram`] + [`simplex`] — two-phase primal simplex
//!   over `f64` with Bland's anti-cycling rule, used for the share-exponent
//!   LP (5), its dual (8) and the bin-combination LP (11) of
//!   Beame–Koutris–Suciu (PODS 2014);
//! * [`vertex_enum`] — exact vertex enumeration of the fractional
//!   edge-packing polytope `pk(q)` of Section 3.3.
//!
//! Everything is implemented from scratch; there is no dependency on an
//! external solver.

pub mod matrix;
pub mod problem;
pub mod rational;
pub mod simplex;
pub mod vertex_enum;

pub use matrix::RatMatrix;
pub use problem::{Cmp, Constraint, LinearProgram, LpError, Sense, Solution};
pub use rational::Rat;
pub use vertex_enum::{enumerate_vertices, is_feasible, non_dominated_max};
