//! Dense matrices over exact rationals with Gaussian elimination.
//!
//! Used by the vertex enumerator to solve the square systems that arise when
//! a subset of packing constraints is made tight (Section 3.3 of the paper:
//! "Each vertex can be obtained by choosing m out of the k+ℓ inequalities,
//! transforming them into equalities, then solving for u").

use crate::rational::Rat;
use std::fmt;

/// A dense row-major matrix of exact rationals.
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rat>,
}

impl RatMatrix {
    /// An all-zero `rows x cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> RatMatrix {
        RatMatrix {
            rows,
            cols,
            data: vec![Rat::ZERO; rows * cols],
        }
    }

    /// Build from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Rat) -> RatMatrix {
        let mut m = RatMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// The identity matrix of size `n`.
    pub fn identity(n: usize) -> RatMatrix {
        RatMatrix::from_fn(n, n, |r, c| if r == c { Rat::ONE } else { Rat::ZERO })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `r` as a slice.
    pub fn row(&self, r: usize) -> &[Rat] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: &[Rat]) -> Vec<Rat> {
        assert_eq!(v.len(), self.cols, "mul_vec: dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v)
                    .fold(Rat::ZERO, |acc, (a, b)| acc + *a * *b)
            })
            .collect()
    }

    /// Solve the square system `A x = b` exactly.
    ///
    /// Returns `None` when `A` is singular. `A` must be square and `b` must
    /// have matching length.
    pub fn solve(&self, b: &[Rat]) -> Option<Vec<Rat>> {
        assert_eq!(self.rows, self.cols, "solve: matrix must be square");
        assert_eq!(b.len(), self.rows, "solve: rhs length mismatch");
        let n = self.rows;
        // Augmented matrix [A | b].
        let mut a = self.clone();
        let mut rhs = b.to_vec();
        for col in 0..n {
            // Partial pivoting by largest absolute value keeps numbers small.
            let pivot = (col..n)
                .filter(|&r| !a[(r, col)].is_zero())
                .max_by_key(|&r| a[(r, col)].abs())?;
            if pivot != col {
                a.swap_rows(pivot, col);
                rhs.swap(pivot, col);
            }
            let pv = a[(col, col)];
            for r in 0..n {
                if r == col || a[(r, col)].is_zero() {
                    continue;
                }
                let factor = a[(r, col)] / pv;
                for c in col..n {
                    let sub = factor * a[(col, c)];
                    a[(r, c)] -= sub;
                }
                let sub = factor * rhs[col];
                rhs[r] -= sub;
            }
        }
        Some((0..n).map(|i| rhs[i] / a[(i, i)]).collect())
    }

    /// Rank via fraction-free style row reduction.
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let (rows, cols) = (a.rows, a.cols);
        let mut rank = 0;
        let mut row = 0;
        for col in 0..cols {
            if row >= rows {
                break;
            }
            let Some(pivot) = (row..rows).find(|&r| !a[(r, col)].is_zero()) else {
                continue;
            };
            a.swap_rows(pivot, row);
            let pv = a[(row, col)];
            for r in (row + 1)..rows {
                if a[(r, col)].is_zero() {
                    continue;
                }
                let factor = a[(r, col)] / pv;
                for c in col..cols {
                    let sub = factor * a[(row, c)];
                    a[(r, c)] -= sub;
                }
            }
            rank += 1;
            row += 1;
        }
        rank
    }

    fn swap_rows(&mut self, r1: usize, r2: usize) {
        if r1 == r2 {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(r1 * self.cols + c, r2 * self.cols + c);
        }
    }
}

impl std::ops::Index<(usize, usize)> for RatMatrix {
    type Output = Rat;
    fn index(&self, (r, c): (usize, usize)) -> &Rat {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for RatMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Rat {
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{} ", self[(r, c)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n as i128, d as i128)
    }

    #[test]
    fn identity_solves_trivially() {
        let id = RatMatrix::identity(3);
        let b = vec![r(1, 2), r(3, 1), r(-2, 5)];
        assert_eq!(id.solve(&b).unwrap(), b);
    }

    #[test]
    fn solve_2x2() {
        // x + y = 1 ; x - y = 0  =>  x = y = 1/2
        let a = RatMatrix::from_fn(2, 2, |i, j| match (i, j) {
            (0, _) => Rat::ONE,
            (1, 0) => Rat::ONE,
            (1, 1) => -Rat::ONE,
            _ => unreachable!(),
        });
        let x = a.solve(&[Rat::ONE, Rat::ZERO]).unwrap();
        assert_eq!(x, vec![r(1, 2), r(1, 2)]);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = RatMatrix::from_fn(2, 2, |_, _| Rat::ONE);
        assert!(a.solve(&[Rat::ONE, Rat::ONE]).is_none());
    }

    #[test]
    fn solve_triangle_packing_system() {
        // The C3 tight system: u1+u2 = 1, u2+u3 = 1, u3+u1 = 1
        // has the unique solution (1/2, 1/2, 1/2).
        let a = RatMatrix::from_fn(3, 3, |i, j| {
            let pairs = [[0, 1], [1, 2], [2, 0]];
            if pairs[i].contains(&j) {
                Rat::ONE
            } else {
                Rat::ZERO
            }
        });
        let x = a.solve(&[Rat::ONE, Rat::ONE, Rat::ONE]).unwrap();
        assert_eq!(x, vec![r(1, 2), r(1, 2), r(1, 2)]);
    }

    #[test]
    fn rank_of_rectangular() {
        let a = RatMatrix::from_fn(3, 2, |i, j| r((i + j) as i64, 1));
        // rows (0,1),(1,2),(2,3): rank 2
        assert_eq!(a.rank(), 2);
        assert_eq!(RatMatrix::identity(4).rank(), 4);
        assert_eq!(RatMatrix::zeros(3, 3).rank(), 0);
    }

    #[test]
    fn mul_vec_matches_solve() {
        let a = RatMatrix::from_fn(3, 3, |i, j| r((i * 3 + j + 1) as i64, 1 + (i == j) as i64));
        let x = vec![r(1, 3), r(-2, 7), r(5, 1)];
        let b = a.mul_vec(&x);
        let solved = a.solve(&b).unwrap();
        assert_eq!(solved, x);
    }
}
