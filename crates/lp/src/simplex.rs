//! Two-phase primal simplex over `f64` with Bland's anti-cycling rule.
//!
//! The LPs solved in this workspace (share-exponent LP (5), its dual (8),
//! the bin-combination LP (11)) have at most a few dozen variables and
//! constraints, so a dense tableau implementation is both simple and fast.
//! Bland's rule guarantees termination even on the degenerate bases these
//! packing polytopes produce.

use crate::problem::{Cmp, LinearProgram, LpError, Sense, Solution};

const EPS: f64 = 1e-9;

/// Dense simplex tableau in the standard `min c'x, Ax = b, x >= 0, b >= 0`
/// form. The last column of `rows` is the right-hand side.
struct Tableau {
    /// m x (n+1) constraint rows (rhs in the final slot).
    rows: Vec<Vec<f64>>,
    /// Cost row of length n+1 (objective constant in the final slot, negated).
    cost: Vec<f64>,
    /// Index of the basic variable for each row.
    basis: Vec<usize>,
    /// Total number of columns excluding the rhs.
    n: usize,
}

impl Tableau {
    /// Bring the cost row to canonical form: zero reduced cost for basic
    /// variables.
    fn price_out(&mut self) {
        for (r, &bv) in self.basis.iter().enumerate() {
            let c = self.cost[bv];
            if c.abs() > 0.0 {
                for j in 0..=self.n {
                    self.cost[j] -= c * self.rows[r][j];
                }
            }
        }
    }

    /// One simplex pivot targeting column `col` and row `row`.
    fn pivot(&mut self, row: usize, col: usize) {
        let pv = self.rows[row][col];
        debug_assert!(pv.abs() > EPS, "pivot on (near-)zero element");
        for j in 0..=self.n {
            self.rows[row][j] /= pv;
        }
        for r in 0..self.rows.len() {
            if r == row {
                continue;
            }
            let factor = self.rows[r][col];
            if factor.abs() > 0.0 {
                for j in 0..=self.n {
                    self.rows[r][j] -= factor * self.rows[row][j];
                }
            }
        }
        let factor = self.cost[col];
        if factor.abs() > 0.0 {
            for j in 0..=self.n {
                self.cost[j] -= factor * self.rows[row][j];
            }
        }
        self.basis[row] = col;
    }

    /// Run simplex iterations until optimal, unbounded, or iteration limit.
    /// `allowed` masks which columns may enter the basis.
    fn iterate(&mut self, allowed: &[bool]) -> Result<(), LpError> {
        // Generous budget: these LPs have << 100 columns.
        let limit = 50_000usize;
        for _ in 0..limit {
            // Bland: entering column = lowest index with negative reduced cost.
            let Some(col) = (0..self.n).find(|&j| allowed[j] && self.cost[j] < -EPS) else {
                return Ok(());
            };
            // Ratio test; Bland tie-break on lowest basic variable index.
            let mut best: Option<(usize, f64)> = None;
            for r in 0..self.rows.len() {
                let a = self.rows[r][col];
                if a > EPS {
                    let ratio = self.rows[r][self.n] / a;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((br, bratio)) => {
                            if ratio < bratio - EPS
                                || (ratio < bratio + EPS && self.basis[r] < self.basis[br])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(LpError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(LpError::IterationLimit)
    }
}

/// Solve a [`LinearProgram`]; see [`LinearProgram::solve`].
pub fn solve(lp: &LinearProgram) -> Result<Solution, LpError> {
    let n_orig = lp.num_vars();
    let m = lp.num_constraints();

    // Count auxiliary columns: one slack/surplus per inequality, one
    // artificial per >=/= (or per <= with negative rhs, after normalization).
    let mut n_total = n_orig;
    let mut slack_col = vec![None; m];
    let mut art_col = vec![None; m];
    // Normalize rows to have non-negative rhs.
    let mut rows_sign = vec![1.0; m];
    let mut cmps = Vec::with_capacity(m);
    for (i, c) in lp.constraints().iter().enumerate() {
        let mut cmp = c.cmp;
        if c.rhs < 0.0 {
            rows_sign[i] = -1.0;
            cmp = match cmp {
                Cmp::Le => Cmp::Ge,
                Cmp::Ge => Cmp::Le,
                Cmp::Eq => Cmp::Eq,
            };
        }
        cmps.push(cmp);
    }
    for (i, cmp) in cmps.iter().enumerate() {
        match cmp {
            Cmp::Le => {
                slack_col[i] = Some(n_total);
                n_total += 1;
            }
            Cmp::Ge => {
                slack_col[i] = Some(n_total);
                n_total += 1;
                art_col[i] = Some(n_total);
                n_total += 1;
            }
            Cmp::Eq => {
                art_col[i] = Some(n_total);
                n_total += 1;
            }
        }
    }

    let mut rows = vec![vec![0.0; n_total + 1]; m];
    let mut basis = vec![0usize; m];
    for (i, c) in lp.constraints().iter().enumerate() {
        for (j, &coef) in c.coeffs.iter().enumerate() {
            rows[i][j] = rows_sign[i] * coef;
        }
        rows[i][n_total] = rows_sign[i] * c.rhs;
        match cmps[i] {
            Cmp::Le => {
                let s = slack_col[i].expect("slack allocated");
                rows[i][s] = 1.0;
                basis[i] = s;
            }
            Cmp::Ge => {
                let s = slack_col[i].expect("surplus allocated");
                let a = art_col[i].expect("artificial allocated");
                rows[i][s] = -1.0;
                rows[i][a] = 1.0;
                basis[i] = a;
            }
            Cmp::Eq => {
                let a = art_col[i].expect("artificial allocated");
                rows[i][a] = 1.0;
                basis[i] = a;
            }
        }
    }

    let has_artificials = art_col.iter().any(Option::is_some);
    let is_artificial = |j: usize| -> bool { art_col.contains(&Some(j)) };

    // ---- Phase 1: minimize sum of artificials. ----
    if has_artificials {
        let mut cost = vec![0.0; n_total + 1];
        for a in art_col.iter().flatten() {
            cost[*a] = 1.0;
        }
        let mut t = Tableau {
            rows,
            cost,
            basis,
            n: n_total,
        };
        t.price_out();
        let allowed = vec![true; n_total];
        t.iterate(&allowed)?;
        // Objective constant sits negated in the last cost slot.
        let phase1_obj = -t.cost[n_total];
        if phase1_obj > 1e-7 {
            return Err(LpError::Infeasible);
        }
        // Pivot any artificial still in the basis out (degenerate), or note
        // its row as redundant by leaving it with zero rhs.
        for r in 0..t.rows.len() {
            if is_artificial(t.basis[r]) {
                if let Some(col) =
                    (0..n_total).find(|&j| !is_artificial(j) && t.rows[r][j].abs() > EPS)
                {
                    t.pivot(r, col);
                }
            }
        }
        rows = t.rows;
        basis = t.basis;
    }

    // ---- Phase 2: original objective (as minimization). ----
    let sign = match lp.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let mut cost = vec![0.0; n_total + 1];
    for (j, &c) in lp.objective().iter().enumerate() {
        cost[j] = sign * c;
    }
    let mut t = Tableau {
        rows,
        cost,
        basis,
        n: n_total,
    };
    t.price_out();
    let allowed: Vec<bool> = (0..n_total).map(|j| !is_artificial(j)).collect();
    t.iterate(&allowed)?;

    let mut x = vec![0.0; n_orig];
    for (r, &bv) in t.basis.iter().enumerate() {
        if bv < n_orig {
            x[bv] = t.rows[r][n_total];
        }
    }
    // Cost row's last slot holds -z for the minimized objective.
    let objective = sign * -t.cost[n_total];
    Ok(Solution { x, objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Cmp, LinearProgram, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "expected {b}, got {a}");
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 => x=4, y=0, z=12.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_var("x", 3.0);
        let y = lp.add_var("y", 2.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(&[(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 12.0);
        assert_close(s.x[x], 4.0);
        assert_close(s.x[y], 0.0);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y s.t. x + y >= 10, x >= 3 => x=10,y=0? check: obj 2*10=20;
        // or x=3,y=7 -> 6+21=27. Optimum x=10.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_var("x", 2.0);
        let y = lp.add_var("y", 3.0);
        lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 10.0);
        lp.add_constraint(&[(x, 1.0)], Cmp::Ge, 3.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 20.0);
        assert_close(s.x[x], 10.0);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y = 4, x - y = 1 => y=1, x=2, z=3.
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 1.0);
        lp.add_constraint(&[(x, 1.0), (y, 2.0)], Cmp::Eq, 4.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 3.0);
        assert_close(s.x[x], 2.0);
        assert_close(s.x[y], 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(&[(x, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(&[(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_var("x", 1.0);
        let y = lp.add_var("y", 0.0);
        lp.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
        assert_eq!(lp.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // min x s.t. -x <= -5  (i.e. x >= 5)
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_var("x", 1.0);
        lp.add_constraint(&[(x, -1.0)], Cmp::Le, -5.0);
        let s = lp.solve().unwrap();
        assert_close(s.x[x], 5.0);
        assert_close(s.objective, 5.0);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate example; Bland's rule must terminate.
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x1 = lp.add_var("x1", 10.0);
        let x2 = lp.add_var("x2", -57.0);
        let x3 = lp.add_var("x3", -9.0);
        let x4 = lp.add_var("x4", -24.0);
        lp.add_constraint(
            &[(x1, 0.5), (x2, -5.5), (x3, -2.5), (x4, 9.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(
            &[(x1, 0.5), (x2, -1.5), (x3, -0.5), (x4, 1.0)],
            Cmp::Le,
            0.0,
        );
        lp.add_constraint(&[(x1, 1.0)], Cmp::Le, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.0);
    }

    #[test]
    fn share_exponent_lp_for_triangle() {
        // LP (5) for C3 with equal sizes: mu_j = mu for all j. With
        // p-normalized units mu = 1: minimize lambda s.t.
        //   e1+e2+lambda >= 1, e2+e3+lambda >= 1, e3+e1+lambda >= 1,
        //   e1+e2+e3 <= 1.
        // Optimum: e_i = 1/3, lambda = 1/3  (load M/p^{1/3}... in exponent
        // space: lambda = mu - 2/3 = 1/3 when mu = 1).
        let mut lp = LinearProgram::new(Sense::Minimize);
        let l = lp.add_var("lambda", 1.0);
        let e1 = lp.add_var("e1", 0.0);
        let e2 = lp.add_var("e2", 0.0);
        let e3 = lp.add_var("e3", 0.0);
        lp.add_constraint(&[(e1, 1.0), (e2, 1.0), (e3, 1.0)], Cmp::Le, 1.0);
        lp.add_constraint(&[(e1, 1.0), (e2, 1.0), (l, 1.0)], Cmp::Ge, 1.0);
        lp.add_constraint(&[(e2, 1.0), (e3, 1.0), (l, 1.0)], Cmp::Ge, 1.0);
        lp.add_constraint(&[(e3, 1.0), (e1, 1.0), (l, 1.0)], Cmp::Ge, 1.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 1.0 / 3.0);
    }
}
