//! The HyperCube (HC) algorithm (Section 3.1).
//!
//! Servers form a grid with one dimension per query variable (`p_i` shares
//! for variable `x_i`, `Π p_i <= p`). A tuple `S_j(a_{i1}, ..., a_{ir})`
//! knows its coordinates in the dimensions of its own variables — it hashes
//! each attribute — and is replicated along every other dimension:
//! the subcube `{y : y_{i_m} = h_{i_m}(a_{i_m})}`. Every potential answer
//! `(a_1, ..., a_k)` is then fully known by the server
//! `(h_1(a_1), ..., h_k(a_k))`, so one local join per server finds all
//! answers in a single round.

use crate::shares::ShareAllocation;
use mpc_data::catalog::Database;
use mpc_query::Query;
use mpc_sim::backend::Backend;
use mpc_sim::cluster::{Cluster, Router};
use mpc_sim::hashing::HashFamily;
use mpc_sim::load::LoadReport;
use mpc_sim::topology::{Grid, SubcubeScratch};
use mpc_stats::cardinality::SimpleStatistics;
use std::cell::RefCell;

/// A configured HyperCube run: query + grid + hash family.
///
/// ```
/// use mpc_core::hypercube::HyperCube;
/// use mpc_core::verify;
/// use mpc_data::{generators, Database, Rng};
/// use mpc_query::named;
/// use mpc_stats::SimpleStatistics;
///
/// // Triangles over three uniform relations, 16 servers.
/// let q = named::cycle(3);
/// let mut rng = Rng::seed_from_u64(1);
/// let rels = q.atoms().iter()
///     .map(|a| generators::uniform(a.name(), a.arity(), 500, 64, &mut rng))
///     .collect();
/// let db = Database::new(q.clone(), rels, 64).unwrap();
/// let stats = SimpleStatistics::of(&db);
///
/// let hc = HyperCube::with_optimal_shares(&q, &stats, 16, 42);
/// let (cluster, report) = hc.run(&db);
/// assert!(verify::verify(&db, &cluster).is_complete());
/// assert!(report.max_load_bits() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct HyperCube {
    query: Query,
    grid: Grid,
    family: HashFamily,
    /// Physical server count (the grid may use fewer cells).
    p: usize,
}

impl HyperCube {
    /// Build from an explicit share allocation. Hash functions are drawn
    /// deterministically from `seed`.
    pub fn new(query: &Query, alloc: &ShareAllocation, seed: u64) -> HyperCube {
        assert_eq!(alloc.shares.len(), query.num_vars());
        let grid = Grid::new(alloc.shares.clone());
        assert!(
            grid.num_cells() <= alloc.p,
            "share product exceeds server budget"
        );
        HyperCube {
            query: query.clone(),
            grid,
            family: HashFamily::new(query.num_vars(), seed),
            p: alloc.p,
        }
    }

    /// LP-optimal shares for the statistics (Theorem 3.4).
    pub fn with_optimal_shares(
        query: &Query,
        stats: &SimpleStatistics,
        p: usize,
        seed: u64,
    ) -> HyperCube {
        let alloc =
            ShareAllocation::optimize(query, stats, p).expect("share LP is always feasible");
        HyperCube::new(query, &alloc, seed)
    }

    /// Equal shares `p^{1/k}` — the skew-resilient configuration of
    /// Corollary 3.2(ii).
    pub fn with_equal_shares(query: &Query, p: usize, seed: u64) -> HyperCube {
        HyperCube::new(query, &ShareAllocation::equal(query, p), seed)
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Replication factor of atom `j`: the number of servers each of its
    /// tuples is sent to (`Π_{i ∉ S_j} p_i`).
    pub fn replication_of(&self, atom: usize) -> usize {
        let vars = self.query.atom(atom).var_set();
        self.grid
            .dims()
            .iter()
            .enumerate()
            .filter(|(i, _)| !vars.contains(*i))
            .map(|(_, &d)| d)
            .product()
    }

    /// Execute the round on `db` with the [`Backend::from_env`] backend;
    /// returns the cluster state and its load report.
    pub fn run(&self, db: &Database) -> (Cluster, LoadReport) {
        self.run_on(db, Backend::from_env())
    }

    /// [`HyperCube::run`] on an explicit execution backend. Results are
    /// bit-identical across backends (`Sequential`, `Threaded(n)`, and the
    /// persistent-pool `Pooled(n)`).
    pub fn run_on(&self, db: &Database, backend: Backend) -> (Cluster, LoadReport) {
        let cluster = Cluster::run_round_on(db, self.p, self, backend);
        let report = cluster.report();
        (cluster, report)
    }

    /// Corollary 3.2(i): the expected per-server load on data that is
    /// skew-free w.r.t. these shares, in bits:
    /// `max_j M_j / Π_{i ∈ S_j} p_i`.
    pub fn skew_free_load_bits(&self, stats: &SimpleStatistics) -> f64 {
        (0..self.query.num_atoms())
            .map(|j| {
                let denom: f64 = self
                    .query
                    .atom(j)
                    .var_set()
                    .iter()
                    .map(|i| self.grid.dims()[i] as f64)
                    .product();
                stats.bit_sizes_f64()[j] / denom
            })
            .fold(0.0, f64::max)
    }

    /// Corollary 3.2(ii): the *unconditional* load cap, valid on any
    /// *set* instance (the paper's model: relations are subsets of
    /// `[n]^{a_j}`, so duplicate tuples — which no algorithm could split —
    /// do not occur): `Σ_j M_j / min_{i ∈ S_j} p_i` bits. A worst-case
    /// instance pins an entire relation into one slice of its
    /// least-sharded dimension, and nothing can be worse.
    pub fn worst_case_load_bits(&self, stats: &SimpleStatistics) -> f64 {
        (0..self.query.num_atoms())
            .map(|j| {
                let min_share = self
                    .query
                    .atom(j)
                    .var_set()
                    .iter()
                    .map(|i| self.grid.dims()[i])
                    .min()
                    .unwrap_or(1)
                    .max(1);
                stats.bit_sizes_f64()[j] / min_share as f64
            })
            .sum() // every relation can concentrate simultaneously
    }
}

/// Reusable per-worker routing buffers: the fixed-coordinate list plus the
/// subcube enumeration scratch, cleared — never reallocated — per tuple.
#[derive(Default)]
struct RouteScratch {
    fixed: Vec<(usize, usize)>,
    sub: SubcubeScratch,
}

thread_local! {
    static ROUTE_SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::default());
}

impl Router for HyperCube {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        ROUTE_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            let a = self.query.atom(atom);
            // Fix the dimension of every variable occurring in the atom.
            // For a repeated variable with unequal values the subcube is
            // empty — such tuples can never satisfy the atom, and HC
            // correctly drops them.
            scratch.fixed.clear();
            for (pos, &var) in a.vars().iter().enumerate() {
                let h = self.family.hash(var, tuple[pos], self.grid.dims()[var]);
                scratch.fixed.push((var, h));
            }
            self.grid
                .subcube_into(&scratch.fixed, &mut scratch.sub, out);
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Rng};
    use mpc_query::named;

    fn verify_complete(db: &Database, cluster: &Cluster) {
        let mut expected = mpc_data::join_database(db);
        expected.sort_dedup();
        assert_eq!(cluster.all_answers(db.query()), expected);
    }

    fn uniform_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
        let mut rng = Rng::seed_from_u64(seed);
        let rels = q
            .atoms()
            .iter()
            .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
            .collect();
        Database::new(q.clone(), rels, n).unwrap()
    }

    #[test]
    fn triangle_hc_finds_all_answers() {
        let q = named::cycle(3);
        let db = uniform_db(&q, 3000, 64, 1); // dense: plenty of triangles
        let st = SimpleStatistics::of(&db);
        let hc = HyperCube::with_optimal_shares(&q, &st, 64, 42);
        let (cluster, report) = hc.run(&db);
        verify_complete(&db, &cluster);
        assert!(report.max_load_bits() > 0);
    }

    #[test]
    fn join_hc_optimal_equals_hash_join_shape() {
        // Skew-free join: optimal shares are (1, p, 1) on (x, z, y); the
        // algorithm degenerates to a hash join with zero replication.
        let q = named::two_way_join();
        let db = uniform_db(&q, 2000, 1 << 14, 2);
        let st = SimpleStatistics::of(&db);
        let hc = HyperCube::with_optimal_shares(&q, &st, 16, 7);
        let z = q.var_index("z").unwrap();
        assert_eq!(hc.grid().dims()[z], 16);
        let (cluster, report) = hc.run(&db);
        verify_complete(&db, &cluster);
        assert!((report.replication_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cartesian_grid_replication() {
        // 2-way product on a 4x4 grid: each S1 tuple to 4 servers, each S2
        // tuple to 4 servers; replication rate ~4 on equal sizes.
        let q = named::cartesian(2);
        let db = uniform_db(&q, 1000, 1 << 12, 3);
        let st = SimpleStatistics::of(&db);
        let hc = HyperCube::with_optimal_shares(&q, &st, 16, 9);
        assert_eq!(hc.grid().dims(), &[4, 4]);
        assert_eq!(hc.replication_of(0), 4);
        assert_eq!(hc.replication_of(1), 4);
        let (cluster, report) = hc.run(&db);
        verify_complete(&db, &cluster);
        assert!((report.replication_rate() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn skew_free_load_tracks_lupper() {
        // Theorem 3.4: on skew-free data the max load is within a polylog
        // factor of p^λ. Use matchings (the extreme skew-free case).
        let q = named::cycle(3);
        let n = 1u64 << 16;
        let m = 1 << 13;
        let mut rng = Rng::seed_from_u64(4);
        let rels = q
            .atoms()
            .iter()
            .map(|a| generators::matching(a.name(), a.arity(), m, n, &mut rng))
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let st = SimpleStatistics::of(&db);
        let p = 64usize;
        let hc = HyperCube::with_optimal_shares(&q, &st, p, 5);
        let (_, report) = hc.run(&db);
        let lupper = ShareAllocation::optimize(&q, &st, p)
            .unwrap()
            .predicted_load_bits();
        let measured = report.max_load_bits() as f64;
        // Within [0.3, polylog] of the prediction.
        assert!(measured >= 0.3 * lupper, "measured {measured} << {lupper}");
        assert!(
            measured <= lupper * (p as f64).ln().powi(2),
            "measured {measured} >> {lupper}"
        );
    }

    #[test]
    fn equal_shares_resilient_to_skew() {
        // Example 3.3: all z equal. Hash-join shares (1,p,1) overload one
        // server with everything; equal shares cap at ~m/p^{1/3} per
        // relation.
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let m = 4096usize;
        let mut rng = Rng::seed_from_u64(6);
        let s1 = generators::single_value_column("S1", 2, m, n, 1, 7, &mut rng);
        let s2 = generators::single_value_column("S2", 2, m, n, 1, 7, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        let p = 64usize;

        let equal = HyperCube::with_equal_shares(&q, p, 8);
        let (_, rep_eq) = equal.run(&db);
        let mut hj_shares = vec![1usize; 3];
        hj_shares[q.var_index("z").unwrap()] = p;
        let hj = HyperCube::new(&q, &ShareAllocation::explicit(hj_shares, p), 8);
        let (_, rep_hj) = hj.run(&db);

        // Hash join: one server receives both entire relations.
        assert_eq!(rep_hj.max_load_tuples(), 2 * m as u64);
        // Equal shares: max load around 2m/p^{1/3} = 2m/4, far below 2m.
        assert!(
            rep_eq.max_load_tuples() < rep_hj.max_load_tuples() / 2,
            "equal {} vs hash-join {}",
            rep_eq.max_load_tuples(),
            rep_hj.max_load_tuples()
        );
        let cap = 3.0 * 2.0 * m as f64 / (p as f64).powf(1.0 / 3.0);
        assert!(
            (rep_eq.max_load_tuples() as f64) <= cap,
            "equal-share load {} above resilience cap {cap}",
            rep_eq.max_load_tuples()
        );
    }

    #[test]
    fn repeated_variable_tuples_are_dropped() {
        // Atom R(x,x): tuples with row[0] != row[1] reach no server.
        let q = mpc_query::Query::build("q", &[("R", &["x", "x"])]).unwrap();
        let mut rel = mpc_data::Relation::new("R", 2);
        rel.push(&[3, 3]);
        rel.push(&[4, 5]);
        let db = Database::new(q.clone(), vec![rel], 16).unwrap();
        let alloc = ShareAllocation::explicit(vec![4], 4);
        let hc = HyperCube::new(&q, &alloc, 1);
        let (cluster, report) = hc.run(&db);
        assert_eq!(report.total_tuples(), 1);
        let answers = cluster.all_answers(&q);
        assert_eq!(answers, vec![vec![3]]);
    }
}
