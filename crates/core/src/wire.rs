//! The service's line protocol — what `mpcskew serve` speaks on stdin or a
//! TCP socket, factored out so it is testable without a process.
//!
//! One command per line; every command produces one or more response
//! lines, the first always starting with `ok` or `err`:
//!
//! ```text
//! LOAD <rel> <arity> [<v>,<v>,..;<v>,..]   register/replace a relation
//! APPEND <rel> <v>,<v>,..;..               incremental ingest
//! QUERY <body> [p=N] [seed=N] [algo=NAME] [timeout=MS] [limit=N] [rows]
//! SET [timeout_ms=N] [max_rows=N] [max_groups=N]   session-wide defaults
//! BATCH / RUN                              queue QUERYs, run multiplexed
//! STATS                                    counters + catalog, then `end`
//! SHUTDOWN                                 `ok bye`, session done
//! ```
//!
//! `QUERY` takes a conjunctive-query body (`S1(x,z), S2(y,z)`, optionally
//! double-quoted) followed by options; with `rows` the answer tuples
//! follow the `ok` line, one per line, terminated by `end`. The body may
//! also carry an aggregate head (`Q(x; count) :- S1(x,z), S2(y,z)`), in
//! which case the status line reports `ok groups=N ...` and `rows` emits
//! `key.. | value..` group lines instead of answer tuples. Blank lines
//! and `#` comments are ignored.
//!
//! **Budgets and errors.** `SET timeout_ms=`/`max_rows=`/`max_groups=`
//! install default query budgets on the shared service (0 = unlimited);
//! per-query `timeout=MS` and `limit=N` (answer rows, or groups for an
//! aggregate head; 0 = unlimited) override them. Every failure is one
//! `err` line whose first word classifies it: `err timeout ...` (deadline
//! expired), `err limit ...` (row/group cap), `err unsupported ...`
//! (recognized capability limit), `err internal ...` (a worker panic,
//! contained — the session and service survive, and the next query on
//! the same connection runs normally). The TCP front end additionally
//! sheds clients past its `--max-clients` cap with `err overloaded ...`.
//!
//! ```
//! use mpc_core::service::Service;
//! use mpc_core::wire::Session;
//! use mpc_sim::backend::Backend;
//!
//! let mut svc = Service::new(64).with_backend(Backend::Sequential).with_defaults(4, 1);
//! let mut session = Session::new();
//! session.handle(&mut svc, "LOAD S1 2 0,1;2,3");
//! session.handle(&mut svc, "LOAD S2 2 9,1");
//! let reply = session.handle(&mut svc, "QUERY S1(x,z), S2(y,z) rows");
//! assert!(reply[0].starts_with("ok answers=1 "));
//! assert!(reply[0].contains("cache=miss"));
//! assert_eq!(reply[1], "0 1 9"); // x z y, interning order
//! assert_eq!(reply[2], "end");
//! assert!(session.handle(&mut svc, "SHUTDOWN")[0].starts_with("ok bye"));
//! assert!(session.is_done());
//! ```

use crate::engine::Algorithm;
use crate::service::{QuerySpec, Service, ServiceError, ServiceOutcome};
use mpc_query::parse_aggregate_query;

/// Per-connection protocol state: queued batch specs and the shutdown
/// flag. All catalog/cache state lives in the [`Service`], which many
/// sessions may share.
#[derive(Default)]
pub struct Session {
    pending: Vec<QuerySpec>,
    pending_rows: Vec<bool>,
    in_batch: bool,
    done: bool,
}

impl Session {
    /// A fresh session.
    pub fn new() -> Session {
        Session::default()
    }

    /// True once the client sent `SHUTDOWN`.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Process one protocol line against `service`, returning the
    /// response lines.
    pub fn handle(&mut self, service: &mut Service, line: &str) -> Vec<String> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Vec::new();
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword.to_ascii_uppercase().as_str() {
            "LOAD" => self.cmd_load(service, rest),
            "APPEND" => self.cmd_append(service, rest),
            "QUERY" => self.cmd_query(service, rest),
            "SET" => self.cmd_set(service, rest),
            "BATCH" => self.cmd_batch(),
            "RUN" => self.cmd_run(service),
            "STATS" => self.cmd_stats(service),
            "SHUTDOWN" => {
                if self.in_batch {
                    return vec!["err SHUTDOWN inside BATCH (send RUN first)".to_string()];
                }
                self.done = true;
                vec!["ok bye".to_string()]
            }
            other => vec![format!("err unknown command `{other}`")],
        }
    }

    fn cmd_load(&mut self, service: &mut Service, rest: &str) -> Vec<String> {
        if self.in_batch {
            return vec!["err LOAD inside BATCH".to_string()];
        }
        let mut parts = rest.splitn(3, char::is_whitespace);
        let name = match parts.next().filter(|s| !s.is_empty()) {
            Some(n) => n,
            None => return vec!["err LOAD needs: LOAD <rel> <arity> [rows]".to_string()],
        };
        let arity: usize = match parts.next().and_then(|a| a.parse().ok()) {
            Some(a) if a > 0 => a,
            _ => return vec!["err LOAD needs a positive integer arity".to_string()],
        };
        let flat = match parse_rows(parts.next().unwrap_or(""), arity) {
            Ok(flat) => flat,
            Err(e) => return vec![format!("err {e}")],
        };
        let rel = mpc_data::relation::Relation::from_flat(name, arity, flat);
        match service.load(rel) {
            Ok(len) => vec![format!("ok loaded {name} arity={arity} tuples={len}")],
            Err(e) => vec![format!("err {e}")],
        }
    }

    fn cmd_append(&mut self, service: &mut Service, rest: &str) -> Vec<String> {
        if self.in_batch {
            return vec!["err APPEND inside BATCH".to_string()];
        }
        let (name, rows) = match rest.split_once(char::is_whitespace) {
            Some((n, r)) => (n, r.trim()),
            None => return vec!["err APPEND needs: APPEND <rel> <rows>".to_string()],
        };
        let arity = match service.relation(name) {
            Some(rel) => rel.arity(),
            None => return vec![format!("err relation `{name}` is not loaded")],
        };
        let flat = match parse_rows(rows, arity) {
            Ok(flat) if !flat.is_empty() => flat,
            Ok(_) => return vec!["err APPEND needs at least one tuple".to_string()],
            Err(e) => return vec![format!("err {e}")],
        };
        let appended = flat.len() / arity;
        match service.append(name, &flat) {
            Ok(len) => vec![format!("ok appended {name} +{appended} tuples={len}")],
            Err(e) => vec![format!("err {e}")],
        }
    }

    fn cmd_query(&mut self, service: &mut Service, rest: &str) -> Vec<String> {
        let (spec, want_rows) = match parse_query_line(rest) {
            Ok(parsed) => parsed,
            Err(e) => return vec![format!("err {e}")],
        };
        if self.in_batch {
            self.pending.push(spec);
            self.pending_rows.push(want_rows);
            return vec![format!("ok queued {}", self.pending.len())];
        }
        match service.query_spec(&spec) {
            Ok(outcome) => render_outcome(&outcome, want_rows),
            Err(e) => vec![format!("err {e}")],
        }
    }

    /// `SET key=value ...`: install default query budgets on the service
    /// (shared by every session on a TCP front). `0` clears a default
    /// back to unlimited.
    fn cmd_set(&mut self, service: &mut Service, rest: &str) -> Vec<String> {
        if self.in_batch {
            return vec!["err SET inside BATCH".to_string()];
        }
        if rest.is_empty() {
            return vec![
                "err SET needs: SET [timeout_ms=N] [max_rows=N] [max_groups=N]".to_string(),
            ];
        }
        let mut echo = Vec::new();
        for pair in rest.split_whitespace() {
            let Some((key, value)) = pair.split_once('=') else {
                return vec![format!("err SET expects key=value, got `{pair}`")];
            };
            let Ok(n) = value.parse::<u64>() else {
                return vec![format!("err SET {key}= expects an integer, got `{value}`")];
            };
            let setting = if n == 0 { None } else { Some(n) };
            match key {
                "timeout_ms" => service.set_default_timeout_ms(setting),
                "max_rows" => service.set_default_max_rows(setting),
                "max_groups" => service.set_default_max_groups(setting),
                other => return vec![format!("err SET has no key `{other}`")],
            }
            echo.push(format!("{key}={n}"));
        }
        vec![format!("ok set {}", echo.join(" "))]
    }

    fn cmd_batch(&mut self) -> Vec<String> {
        if self.in_batch {
            return vec!["err already in BATCH".to_string()];
        }
        self.in_batch = true;
        vec!["ok batch".to_string()]
    }

    fn cmd_run(&mut self, service: &mut Service) -> Vec<String> {
        if !self.in_batch {
            return vec!["err RUN outside BATCH".to_string()];
        }
        self.in_batch = false;
        let specs = std::mem::take(&mut self.pending);
        let rows = std::mem::take(&mut self.pending_rows);
        let mut out = Vec::new();
        for (result, want_rows) in service.query_batch(&specs).into_iter().zip(rows) {
            match result {
                Ok(outcome) => out.extend(render_outcome(&outcome, want_rows)),
                Err(e) => out.push(format!("err {e}")),
            }
        }
        out.push(format!("ok ran {}", specs.len()));
        out
    }

    fn cmd_stats(&mut self, service: &mut Service) -> Vec<String> {
        let c = service.counters();
        let mut out = vec![format!(
            "ok plans={} hits={} misses={} invalidations={} evictions={} relations={} mode={}",
            service.cached_plans(),
            c.hits,
            c.misses,
            c.invalidations,
            c.evictions,
            service.relation_infos().len(),
            service.stats_mode()
        )];
        if let Some(t) = service.sketch_telemetry() {
            out.push(format!(
                "sketch bytes={} capacity={} max_error={}",
                t.bytes, t.capacity, t.max_error
            ));
        }
        for info in service.relation_infos() {
            out.push(format!(
                "rel {} arity={} tuples={} tracked={}",
                info.name, info.arity, info.tuples, info.tracked_projections
            ));
        }
        out.push("end".to_string());
        out
    }
}

/// Render one query outcome: the `ok` status line, plus the answer tuples
/// (or `key | value` group lines for aggregate heads) and an `end`
/// terminator when the client asked for rows.
fn render_outcome(outcome: &ServiceOutcome, want_rows: bool) -> Vec<String> {
    if let Some(agg) = outcome.aggregate() {
        let mut out = vec![format!(
            "ok groups={} algo={} cache={} rounds={} load={} predicted={:.0}",
            agg.num_groups(),
            outcome.algorithm(),
            outcome.cache_status(),
            outcome.num_rounds(),
            outcome.max_load_bits(),
            outcome.run_outcome().predicted_load_bits(),
        )];
        if want_rows {
            out.extend(agg.to_string().lines().map(str::to_string));
            out.push("end".to_string());
        }
        return out;
    }
    // Containment extends to the lazy row materialization: a worker panic
    // while joining the rows yields one `err` line, not a torn reply.
    let answers = match outcome.try_answers() {
        Ok(a) => a,
        Err(e) => return vec![format!("err {e}")],
    };
    let mut out = vec![format!(
        "ok answers={} algo={} cache={} rounds={} load={} predicted={:.0}",
        answers.len(),
        outcome.algorithm(),
        outcome.cache_status(),
        outcome.num_rounds(),
        outcome.max_load_bits(),
        outcome.run_outcome().predicted_load_bits(),
    )];
    if want_rows {
        for row in answers.rows() {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push(cells.join(" "));
        }
        out.push("end".to_string());
    }
    out
}

/// Parse `v,v,..;v,v,..` into flat row-major data, validating row widths.
fn parse_rows(text: &str, arity: usize) -> Result<Vec<u64>, String> {
    let text = text.trim();
    let mut flat = Vec::new();
    if text.is_empty() {
        return Ok(flat);
    }
    for (i, row) in text.split(';').enumerate() {
        let row = row.trim();
        if row.is_empty() {
            continue;
        }
        let before = flat.len();
        for cell in row.split(',') {
            let v: u64 = cell
                .trim()
                .parse()
                .map_err(|_| format!("tuple {} has non-integer value `{}`", i + 1, cell.trim()))?;
            flat.push(v);
        }
        if flat.len() - before != arity {
            return Err(format!(
                "tuple {} has {} values, expected arity {}",
                i + 1,
                flat.len() - before,
                arity
            ));
        }
    }
    Ok(flat)
}

/// Split a `QUERY` line into the query body and trailing options. Options
/// are parsed right-to-left so the body itself may contain spaces without
/// quoting. Syntax problems come back as [`ServiceError::Parse`] — the
/// same typed vocabulary every other query failure uses.
fn parse_query_line(rest: &str) -> Result<(QuerySpec, bool), ServiceError> {
    let parse_err = |msg: &str| ServiceError::Parse(msg.to_string());
    let mut body = rest.trim();
    let mut p = None;
    let mut seed = None;
    let mut timeout_ms = None;
    let mut limit = None;
    let mut algorithm = Algorithm::Auto;
    let mut want_rows = false;
    while let Some((head, tail)) = body.rsplit_once(char::is_whitespace) {
        let tail = tail.trim();
        if tail.eq_ignore_ascii_case("rows") {
            want_rows = true;
        } else if let Some(v) = tail.strip_prefix("p=") {
            p = Some(
                v.parse::<usize>()
                    .map_err(|_| parse_err("p= expects an integer"))?,
            );
            if p == Some(0) {
                return Err(parse_err("p= must be at least 1"));
            }
        } else if let Some(v) = tail.strip_prefix("seed=") {
            seed = Some(
                v.parse::<u64>()
                    .map_err(|_| parse_err("seed= expects an integer"))?,
            );
        } else if let Some(v) = tail.strip_prefix("timeout=") {
            timeout_ms = Some(
                v.parse::<u64>()
                    .map_err(|_| parse_err("timeout= expects milliseconds"))?,
            );
        } else if let Some(v) = tail.strip_prefix("limit=") {
            limit = Some(
                v.parse::<u64>()
                    .map_err(|_| parse_err("limit= expects an integer"))?,
            );
        } else if let Some(v) = tail.strip_prefix("algo=") {
            algorithm = Algorithm::parse(v).map_err(ServiceError::Parse)?;
        } else {
            break;
        }
        body = head.trim_end();
    }
    let body = body
        .strip_prefix('"')
        .and_then(|b| b.strip_suffix('"'))
        .unwrap_or(body)
        .trim();
    if body.is_empty() {
        return Err(parse_err("QUERY needs a query body"));
    }
    let (query, aggregate) = parse_aggregate_query(body)
        .map_err(|e| ServiceError::Parse(format!("cannot parse query: {e}")))?;
    let mut spec = QuerySpec::new(query).algorithm(algorithm);
    if let Some(agg) = aggregate {
        spec = spec.aggregate(agg);
    }
    if let Some(p) = p {
        spec = spec.p(p);
    }
    if let Some(seed) = seed {
        spec = spec.seed(seed);
    }
    if let Some(ms) = timeout_ms {
        spec = spec.timeout_ms(ms);
    }
    if let Some(n) = limit {
        spec = spec.limit(n);
    }
    Ok((spec, want_rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_sim::backend::Backend;

    fn service() -> Service {
        Service::new(1 << 10)
            .with_backend(Backend::Sequential)
            .with_defaults(4, 1)
    }

    fn one(session: &mut Session, svc: &mut Service, line: &str) -> String {
        let out = session.handle(svc, line);
        assert_eq!(out.len(), 1, "expected one line, got {out:?}");
        out.into_iter().next().unwrap()
    }

    #[test]
    fn load_query_append_roundtrip() {
        let mut svc = service();
        let mut s = Session::new();
        assert_eq!(
            one(&mut s, &mut svc, "LOAD S1 2 0,1;1,1;2,3"),
            "ok loaded S1 arity=2 tuples=3"
        );
        assert_eq!(
            one(&mut s, &mut svc, "LOAD S2 2 5,1;6,3"),
            "ok loaded S2 arity=2 tuples=2"
        );
        let out = s.handle(&mut svc, "QUERY S1(x,z), S2(y,z) rows");
        assert!(out[0].starts_with("ok answers=3 "), "{out:?}");
        assert!(out[0].contains("cache=miss"), "{out:?}");
        // Answers in (x, z, y) interning order, sorted.
        assert_eq!(out[1..], ["0 1 5", "1 1 5", "2 3 6", "end"]);
        assert_eq!(
            one(&mut s, &mut svc, "APPEND S2 7,1"),
            "ok appended S2 +1 tuples=3"
        );
        let out = s.handle(&mut svc, "QUERY S1(x,z), S2(y,z) rows");
        assert!(out[0].starts_with("ok answers=5 "), "{out:?}");
        assert_eq!(
            out[1..],
            ["0 1 5", "0 1 7", "1 1 5", "1 1 7", "2 3 6", "end"]
        );
        // Comments and blank lines are ignored.
        assert!(s.handle(&mut svc, "  ").is_empty());
        assert!(s.handle(&mut svc, "# hi").is_empty());
        assert_eq!(one(&mut s, &mut svc, "SHUTDOWN"), "ok bye");
        assert!(s.is_done());
    }

    #[test]
    fn stats_reports_counters_and_catalog() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,2");
        s.handle(&mut svc, "LOAD S2 2 5,1");
        s.handle(&mut svc, "QUERY S1(x,z), S2(y,z)");
        s.handle(&mut svc, "QUERY S1(x,z), S2(y,z)");
        let out = s.handle(&mut svc, "STATS");
        assert_eq!(
            out[0],
            "ok plans=1 hits=1 misses=1 invalidations=0 evictions=0 relations=2 mode=exact"
        );
        // No sketch record outside sketch mode.
        assert!(!out.iter().any(|l| l.starts_with("sketch ")), "{out:?}");
        assert!(
            out.contains(&"rel S1 arity=2 tuples=2 tracked=1".to_string()),
            "{out:?}"
        );
        assert_eq!(out.last().unwrap(), "end");
    }

    #[test]
    fn stats_reports_sketch_telemetry_in_sketch_mode() {
        use crate::engine::StatsMode;
        let mut svc = service().with_stats_mode(StatsMode::Sketch);
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,2");
        s.handle(&mut svc, "LOAD S2 2 5,1");
        s.handle(&mut svc, "QUERY S1(x,z), S2(y,z)");
        let out = s.handle(&mut svc, "STATS");
        assert!(out[0].ends_with(" mode=sketch"), "{out:?}");
        let sketch = out
            .iter()
            .find(|l| l.starts_with("sketch "))
            .unwrap_or_else(|| panic!("no sketch record: {out:?}"));
        assert!(sketch.contains(" capacity="), "{sketch}");
        assert!(sketch.contains(" max_error="), "{sketch}");
        let bytes: usize = sketch
            .split_whitespace()
            .find_map(|f| f.strip_prefix("bytes="))
            .unwrap()
            .parse()
            .unwrap();
        assert!(bytes > 0);
        assert_eq!(out.last().unwrap(), "end");
    }

    #[test]
    fn batch_queues_and_runs_multiplexed() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,1");
        s.handle(&mut svc, "LOAD S2 2 5,1");
        s.handle(&mut svc, "LOAD S3 2 1,9");
        assert_eq!(one(&mut s, &mut svc, "BATCH"), "ok batch");
        assert_eq!(
            one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z)"),
            "ok queued 1"
        );
        assert_eq!(
            one(&mut s, &mut svc, "QUERY S2(x,z), S3(z,y) rows"),
            "ok queued 2"
        );
        assert_eq!(one(&mut s, &mut svc, "LOAD X 1 1"), "err LOAD inside BATCH");
        let out = s.handle(&mut svc, "RUN");
        assert!(out[0].starts_with("ok answers=2 "), "{out:?}");
        // S2(x,z) ⋈ S3(z,y): (5,1) ⋈ (1,9) → x=5, z=1, y=9.
        assert!(out[1].starts_with("ok answers=1 "), "{out:?}");
        assert_eq!(out[2..], ["5 1 9", "end", "ok ran 2"]);
        assert_eq!(one(&mut s, &mut svc, "RUN"), "err RUN outside BATCH");
    }

    #[test]
    fn query_options_parse_from_the_right() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,1");
        s.handle(&mut svc, "LOAD S2 2 5,1");
        let out = one(
            &mut s,
            &mut svc,
            "QUERY \"S1(x,z), S2(y,z)\" p=2 seed=9 algo=hash",
        );
        assert!(out.starts_with("ok answers=2 algo=hash "), "{out}");
        // Same options without quotes.
        let out = one(
            &mut s,
            &mut svc,
            "QUERY S1(x,z), S2(y,z) p=2 seed=9 algo=hash",
        );
        assert!(out.starts_with("ok answers=2 algo=hash cache=hit"), "{out}");
    }

    #[test]
    fn aggregate_query_over_the_wire() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,1;2,3");
        s.handle(&mut svc, "LOAD S2 2 5,1;6,3");
        let out = s.handle(&mut svc, "QUERY Q(z; count) :- S1(x,z), S2(y,z) rows");
        assert!(out[0].starts_with("ok groups=2 "), "{out:?}");
        assert!(out[0].contains("cache=miss"), "{out:?}");
        assert_eq!(out[1..], ["1 | 2", "3 | 1", "end"]);
        // Global aggregates have an empty key before the separator.
        let out = s.handle(
            &mut svc,
            "QUERY \"Q(; count, sum(z)) :- S1(x,z), S2(y,z)\" rows",
        );
        assert!(out[0].starts_with("ok groups=1 "), "{out:?}");
        assert_eq!(out[1..], ["| 3 5", "end"]);
        // Without `rows` only the status line comes back.
        let out = s.handle(&mut svc, "QUERY Q(z; count) :- S1(x,z), S2(y,z)");
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].starts_with("ok groups=2 "), "{out:?}");
        assert!(out[0].contains("cache=hit"), "{out:?}");
    }

    #[test]
    fn aggregate_and_plain_twins_do_not_share_a_plan() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,1");
        s.handle(&mut svc, "LOAD S2 2 5,1");
        let plain = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z)");
        assert!(plain.contains("cache=miss"), "{plain}");
        // Same body with an aggregate head must be a fresh cache entry.
        let agg = one(&mut s, &mut svc, "QUERY Q(z; count) :- S1(x,z), S2(y,z)");
        assert!(agg.starts_with("ok groups="), "{agg}");
        assert!(agg.contains("cache=miss"), "{agg}");
    }

    #[test]
    fn aggregate_rejects_multi_round() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,1");
        s.handle(&mut svc, "LOAD S2 2 5,1");
        let out = one(
            &mut s,
            &mut svc,
            "QUERY \"Q(; count) :- S1(x,z), S2(y,z)\" algo=multi-round",
        );
        assert!(
            out.starts_with("err unsupported invalid aggregate"),
            "{out}"
        );
    }

    #[test]
    fn query_limit_and_timeout_options() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,1;2,3");
        s.handle(&mut svc, "LOAD S2 2 5,1;6,3");
        // Three answers fit a limit of 3 (exactly at the cap passes) ...
        let out = s.handle(&mut svc, "QUERY S1(x,z), S2(y,z) limit=3 rows");
        assert!(out[0].starts_with("ok answers=3 "), "{out:?}");
        // ... but not a limit of 2.
        let out = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z) limit=2");
        assert_eq!(out, "err limit max_rows exceeded");
        // limit=0 is explicitly unlimited.
        let out = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z) limit=0");
        assert!(out.starts_with("ok answers=3 "), "{out}");
        // For an aggregate head the limit caps groups.
        let out = one(
            &mut s,
            &mut svc,
            "QUERY Q(z; count) :- S1(x,z), S2(y,z) limit=1",
        );
        assert_eq!(out, "err limit max_groups exceeded");
        // An already-expired deadline trips before any work happens; the
        // session keeps serving afterwards.
        let out = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z) timeout=0");
        assert!(
            out.starts_with("ok answers=3 "),
            "timeout=0 is unlimited: {out}"
        );
        let out = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z) seed=77");
        assert!(out.starts_with("ok answers=3 "), "{out}");
        assert!(one(&mut s, &mut svc, "QUERY S1(x,z) timeout=abc").starts_with("err timeout="));
        assert!(one(&mut s, &mut svc, "QUERY S1(x,z) limit=abc").starts_with("err limit="));
    }

    #[test]
    fn set_installs_service_defaults() {
        let mut svc = service();
        let mut s = Session::new();
        s.handle(&mut svc, "LOAD S1 2 0,1;1,1;2,3");
        s.handle(&mut svc, "LOAD S2 2 5,1;6,3");
        assert_eq!(
            one(&mut s, &mut svc, "SET max_rows=2 timeout_ms=60000"),
            "ok set max_rows=2 timeout_ms=60000"
        );
        let out = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z)");
        assert_eq!(out, "err limit max_rows exceeded");
        // Per-query limit=0 overrides the default back to unlimited.
        let out = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z) limit=0");
        assert!(out.starts_with("ok answers=3 "), "{out}");
        // SET ...=0 clears the default.
        assert_eq!(one(&mut s, &mut svc, "SET max_rows=0"), "ok set max_rows=0");
        let out = one(&mut s, &mut svc, "QUERY S1(x,z), S2(y,z)");
        assert!(out.starts_with("ok answers=3 "), "{out}");
        // Group caps apply to aggregate heads.
        one(&mut s, &mut svc, "SET max_groups=1");
        let out = one(&mut s, &mut svc, "QUERY Q(z; count) :- S1(x,z), S2(y,z)");
        assert_eq!(out, "err limit max_groups exceeded");
        // Bad SET lines are rejected without touching anything.
        assert!(one(&mut s, &mut svc, "SET").starts_with("err SET needs"));
        assert!(one(&mut s, &mut svc, "SET frobs=1").starts_with("err SET has no key"));
        assert!(one(&mut s, &mut svc, "SET max_rows=abc").starts_with("err SET max_rows="));
        assert!(one(&mut s, &mut svc, "SET max_rows").starts_with("err SET expects key=value"));
    }

    #[test]
    fn protocol_errors() {
        let mut svc = service();
        let mut s = Session::new();
        assert!(one(&mut s, &mut svc, "FROB x").starts_with("err unknown command"));
        assert!(one(&mut s, &mut svc, "LOAD S1").starts_with("err LOAD needs"));
        assert!(one(&mut s, &mut svc, "LOAD S1 two").starts_with("err LOAD needs"));
        assert!(one(&mut s, &mut svc, "LOAD S1 2 1,2,3").starts_with("err tuple 1 has 3 values"));
        assert!(one(&mut s, &mut svc, "LOAD S1 2 1,x").starts_with("err tuple 1 has non-integer"));
        assert!(one(&mut s, &mut svc, "APPEND Nope 1,2").starts_with("err relation `Nope`"));
        assert!(one(&mut s, &mut svc, "QUERY").starts_with("err QUERY needs"));
        assert!(one(&mut s, &mut svc, "QUERY S1(x,").starts_with("err cannot parse query"));
        assert!(one(&mut s, &mut svc, "QUERY S1(x,z) p=zero").starts_with("err p="));
        s.handle(&mut svc, "LOAD S1 2 1000,0");
        assert!(one(&mut s, &mut svc, "LOAD S2 2 9999,0").starts_with("err value 9999"));
        assert!(one(&mut s, &mut svc, "QUERY S1(x,z) algo=quantum")
            .starts_with("err unknown algorithm"));
    }
}
