//! The general skew-aware algorithm of Section 4.2.
//!
//! One HyperCube sub-instance per *bin combination* `B = (x, (β_j)_j)`
//! (Definition 4.1), all packed into a single communication round:
//!
//! * the empty combination `B_∅` runs the plain share-LP HyperCube over all
//!   tuples that contain no heavy hitter (the "all light" run);
//! * every other combination owns `|C'(B)| <= p` assignments `h`; each
//!   assignment gets a block of `p^{1-α}` virtual servers
//!   (`α = log_p |C'(B)|`) running HyperCube on the *residual* variables
//!   `V − x`, with share exponents from the per-combination LP (11):
//!
//!   ```text
//!   minimize λ
//!   s.t. ∀j: λ + Σ_{i ∈ vars(S_j) − x_j} e_i >= µ_j − β_j
//!        Σ_{i ∈ V − x} e_i <= 1 − α
//!        e, λ >= 0
//!   ```
//!
//! A tuple of atom `j` participates in `(B, h)` iff its projection on
//! `x_j` equals `h_j` (atoms with `x_j = ∅` participate in every
//! assignment, exactly like a residual-query input relation). Theorem 4.6:
//! the maximum load is `polylog(p) · max_B p^{λ(B)}`.
//!
//! **Deviation from the paper, documented:** the paper selects `C'(B)` by a
//! non-adaptive overweight recursion (Lemma 4.2) so that only approximate
//! frequencies are needed; this implementation selects assignments directly
//! from the exact statistics it already holds and enforces the same
//! `|C'(B)| <= p` cap. When the cap drops an assignment, the affected
//! tuples fall back to the `B_∅` run (correctness is preserved
//! unconditionally; the load guarantee then degrades gracefully —
//! [`GeneralSkewAlgorithm::dropped_assignments`] reports the count).

use mpc_data::catalog::Database;
use mpc_data::fastmap::{with_projected_key, FastMap, FastSet};
use mpc_lp::{Cmp, LinearProgram, Sense};
use mpc_query::{Query, VarSet};
use mpc_sim::backend::Backend;
use mpc_sim::cluster::{Cluster, Router};
use mpc_sim::hashing::HashFamily;
use mpc_sim::load::LoadReport;
use mpc_sim::topology::{round_shares, Grid, SubcubeScratch};
use mpc_stats::cardinality::SimpleStatistics;
use mpc_stats::combination::{
    enumerate_combinations_with, BinChoice, BinCombination, ExactSource, FrequencySource,
};
use std::cell::RefCell;

/// One prepared bin combination: its LP solution, grid shape, and block
/// layout.
#[derive(Clone, Debug)]
struct PreparedCombo {
    combo: BinCombination,
    /// LP (11) optimum (load exponent).
    lambda: f64,
    /// Full k-dimensional grid; dimensions of `x` variables have size 1.
    grid: Grid,
    /// Virtual-server offset of each assignment's block.
    offsets: Vec<usize>,
    /// Per atom: map from `x_j`-projection to the assignment indices
    /// carrying it (`None` when `x_j = ∅`: all assignments). Probed per
    /// routed tuple, hence `mix64`-keyed.
    lookups: Vec<Option<FastMap<Vec<u64>, Vec<usize>>>>,
    /// Per atom: attribute positions of `x_j`.
    proj_cols: Vec<Vec<usize>>,
}

/// The Section 4.2 algorithm, planned against exact statistics.
pub struct GeneralSkewAlgorithm {
    query: Query,
    p: usize,
    family: HashFamily,
    combos: Vec<PreparedCombo>,
    /// Index (into `combos`) of `B_∅`.
    base: usize,
    /// Per atom: heavy `(cols, key)` projections covered by some kept
    /// assignment of a combination where that atom chose a heavy bin.
    covered_heavy: Vec<FastMap<Vec<usize>, FastSet<Vec<u64>>>>,
    /// Per atom: all heavy `(cols, key)` projections (for the `B_∅`
    /// exclusion test).
    all_heavy: Vec<FastMap<Vec<usize>, FastSet<Vec<u64>>>>,
    virtual_servers: usize,
    dropped: usize,
}

impl GeneralSkewAlgorithm {
    /// Plan from the data's exact statistics.
    pub fn plan(db: &Database, p: usize, seed: u64) -> GeneralSkewAlgorithm {
        let simple = SimpleStatistics::of(db);
        let source = ExactSource { db, p };
        GeneralSkewAlgorithm::plan_with_source(db, p, seed, &simple, &source)
    }

    /// Plan from any [`FrequencySource`] — the entry point for sketch- and
    /// sample-backed statistics. One source feeds both the §4.2 bin
    /// combinations and the residual-base exclusion tables, so tuples a
    /// given source classifies as heavy are either covered by a heavy
    /// combination or stay in `B_∅` — completeness holds under any
    /// (including overcounted) classification; estimate error only shifts
    /// load. Exact statistics through [`ExactSource`] reproduce
    /// [`GeneralSkewAlgorithm::plan`] bit for bit.
    #[allow(clippy::needless_range_loop)]
    pub fn plan_with_source(
        db: &Database,
        p: usize,
        seed: u64,
        simple: &SimpleStatistics,
        source: &dyn FrequencySource,
    ) -> GeneralSkewAlgorithm {
        let q = db.query().clone();
        let logp = (p.max(2) as f64).ln();
        let mu: Vec<f64> = simple
            .bit_sizes_f64()
            .iter()
            .map(|&m| m.max(1.0).ln() / logp)
            .collect();

        let raw = enumerate_combinations_with(&q, p, source);
        // Count assignments dropped by the |C'(B)| <= p cap: re-derive how
        // many candidates each combination could have had. The enumerator
        // already caps, so recompute potential counts cheaply from the
        // per-atom heavy-hitter sets it kept.
        let mut combos: Vec<PreparedCombo> = Vec::with_capacity(raw.len());
        let mut base = usize::MAX;
        let mut offset = 0usize;
        for combo in raw {
            let x = combo.x;
            let alpha = combo.alpha(p);
            // LP (11).
            let mut lp = LinearProgram::new(Sense::Minimize);
            let lambda = lp.add_var("lambda", 1.0);
            let evars: Vec<Option<usize>> = (0..q.num_vars())
                .map(|i| {
                    if x.contains(i) {
                        None
                    } else {
                        Some(lp.add_var(format!("e{i}"), 0.0))
                    }
                })
                .collect();
            let budget: Vec<(usize, f64)> = evars.iter().flatten().map(|&v| (v, 1.0)).collect();
            lp.add_constraint(&budget, Cmp::Le, (1.0 - alpha).max(0.0));
            for j in 0..q.num_atoms() {
                let mut terms: Vec<(usize, f64)> = q
                    .atom(j)
                    .var_set()
                    .iter()
                    .filter_map(|i| evars[i].map(|v| (v, 1.0)))
                    .collect();
                terms.push((lambda, 1.0));
                lp.add_constraint(&terms, Cmp::Ge, mu[j] - combo.beta[j]);
            }
            let sol = lp.solve().expect("LP (11) is always feasible");
            let lam = sol.objective;

            // Integer shares for one assignment's block.
            let ph = (p / combo.assignments.len().max(1)).max(1);
            let budget_exp = (1.0 - alpha).max(0.0);
            let residual_exponents: Vec<f64> = (0..q.num_vars())
                .map(|i| match evars[i] {
                    Some(v) if budget_exp > 1e-9 => sol.x[v].max(0.0) / budget_exp,
                    _ => 0.0,
                })
                .collect();
            let mut dims = round_shares(ph, &residual_exponents);
            for i in 0..q.num_vars() {
                if x.contains(i) {
                    dims[i] = 1;
                }
            }
            let grid = Grid::new(dims);

            // Block layout + per-atom lookups.
            let block = grid.num_cells();
            let offsets: Vec<usize> = (0..combo.assignments.len())
                .map(|a| offset + a * block)
                .collect();
            offset += block * combo.assignments.len();

            let xvars: Vec<usize> = x.iter().collect();
            let mut lookups: Vec<Option<FastMap<Vec<u64>, Vec<usize>>>> = Vec::new();
            let mut proj_cols: Vec<Vec<usize>> = Vec::new();
            for j in 0..q.num_atoms() {
                let xj = x.intersect(q.atom(j).var_set());
                let cols = mpc_stats::heavy::columns_for(&q, j, xj);
                if xj.is_empty() {
                    lookups.push(None);
                    proj_cols.push(cols);
                    continue;
                }
                // Slot positions of x_j's variables within x.
                let slots: Vec<usize> = xj
                    .iter()
                    .map(|v| xvars.iter().position(|&w| w == v).expect("x_j ⊆ x"))
                    .collect();
                let mut map: FastMap<Vec<u64>, Vec<usize>> = FastMap::default();
                for (a, assignment) in combo.assignments.iter().enumerate() {
                    let key: Vec<u64> = slots.iter().map(|&s| assignment.values[s]).collect();
                    map.entry(key).or_default().push(a);
                }
                lookups.push(Some(map));
                proj_cols.push(cols);
            }

            if x.is_empty() {
                base = combos.len();
            }
            combos.push(PreparedCombo {
                combo,
                lambda: lam,
                grid,
                offsets,
                lookups,
                proj_cols,
            });
        }
        assert!(base != usize::MAX, "B_∅ always enumerated");

        // Heavy-projection tables for the B_∅ exclusion rule — from the
        // SAME source as the combinations above, so the heavy/light split
        // stays internally consistent whatever the estimate error.
        let mut all_heavy: Vec<FastMap<Vec<usize>, FastSet<Vec<u64>>>> =
            vec![FastMap::default(); q.num_atoms()];
        for j in 0..q.num_atoms() {
            for subset in q.atom(j).var_set().subsets() {
                if subset.is_empty() {
                    continue;
                }
                let hh = source.heavy(j, subset);
                if hh.entries.is_empty() {
                    continue;
                }
                all_heavy[hh.atom]
                    .entry(hh.cols.clone())
                    .or_default()
                    .extend(hh.entries.keys().cloned());
            }
        }
        let mut covered_heavy: Vec<FastMap<Vec<usize>, FastSet<Vec<u64>>>> =
            vec![FastMap::default(); q.num_atoms()];
        let mut dropped = 0usize;
        for pc in &combos {
            for j in 0..q.num_atoms() {
                if !matches!(pc.combo.bins[j], BinChoice::Heavy(_)) {
                    continue;
                }
                let xj_cols = &pc.proj_cols[j];
                let entry = covered_heavy[j].entry(xj_cols.clone()).or_default();
                for assignment in &pc.combo.assignments {
                    // Reconstruct the atom's key from the assignment.
                    if let Some(map) = &pc.lookups[j] {
                        for key in map.keys() {
                            entry.insert(key.clone());
                        }
                    }
                    let _ = assignment;
                }
            }
        }
        // Dropped = heavy projections never covered by a kept assignment of
        // a heavy-choice combination.
        for j in 0..q.num_atoms() {
            for (cols, keys) in &all_heavy[j] {
                let covered = covered_heavy[j].get(cols);
                for key in keys {
                    if covered.is_none_or(|c| !c.contains(key)) {
                        dropped += 1;
                    }
                }
            }
        }

        GeneralSkewAlgorithm {
            query: q.clone(),
            p,
            family: HashFamily::new(q.num_vars(), seed),
            combos,
            base,
            covered_heavy,
            all_heavy,
            virtual_servers: offset,
            dropped,
        }
    }

    /// `max_B p^{λ(B)}` — the Theorem 4.6 load prediction in bits (up to
    /// polylog factors).
    pub fn predicted_load_bits(&self) -> f64 {
        self.combos
            .iter()
            .map(|c| (self.p.max(2) as f64).powf(c.lambda))
            .fold(0.0, f64::max)
    }

    /// Per-combination `(x, λ(B), |C'(B)|)` diagnostics.
    pub fn combination_summary(&self) -> Vec<(VarSet, f64, usize)> {
        self.combos
            .iter()
            .map(|c| (c.combo.x, c.lambda, c.combo.assignments.len()))
            .collect()
    }

    /// Heavy projections not covered by any kept assignment (their tuples
    /// fall back to `B_∅`). Zero in every experiment of this repository.
    pub fn dropped_assignments(&self) -> usize {
        self.dropped
    }

    /// Total virtual servers across all blocks (`polylog(p) · p`).
    pub fn virtual_servers(&self) -> usize {
        self.virtual_servers
    }

    fn fold(&self, v: usize) -> usize {
        v % self.p
    }

    /// True iff every heavy projection of the tuple is covered by a kept
    /// assignment (then the tuple is excluded from `B_∅`; if it has no heavy
    /// projection it belongs to `B_∅`).
    fn tuple_in_base(&self, atom: usize, tuple: &[u64]) -> bool {
        let mut has_heavy = false;
        for (cols, keys) in &self.all_heavy[atom] {
            // `None`: not heavy at this subset; `Some(uncovered)`: heavy,
            // with coverage by a kept assignment. Keys are projected on the
            // stack and probed as slices.
            let heavy_uncovered = with_projected_key(tuple, cols, |key| {
                keys.contains(key).then(|| {
                    self.covered_heavy[atom]
                        .get(cols)
                        .is_none_or(|c| !c.contains(key))
                })
            });
            match heavy_uncovered {
                None => {}
                // Heavy but uncovered: this tuple must stay in B_∅.
                Some(true) => return true,
                Some(false) => has_heavy = true,
            }
        }
        !has_heavy
    }

    /// HyperCube routing of `tuple` (atom `j`) inside one block.
    fn route_block(
        &self,
        pc: &PreparedCombo,
        assignment: usize,
        atom: usize,
        tuple: &[u64],
        out: &mut Vec<usize>,
        scratch: &mut RouteScratch,
    ) {
        let a = self.query.atom(atom);
        scratch.fixed.clear();
        for (pos, &var) in a.vars().iter().enumerate() {
            let dim = pc.grid.dims()[var];
            if pc.combo.x.contains(var) {
                scratch.fixed.push((var, 0));
            } else {
                scratch
                    .fixed
                    .push((var, self.family.hash(var, tuple[pos], dim)));
            }
        }
        pc.grid
            .subcube_into(&scratch.fixed, &mut scratch.sub, &mut scratch.cells);
        let offset = pc.offsets[assignment];
        out.extend(scratch.cells.iter().map(|&cell| self.fold(offset + cell)));
    }

    /// Execute on `db` with the [`Backend::from_env`] backend.
    pub fn run(&self, db: &Database) -> (Cluster, LoadReport) {
        self.run_on(db, Backend::from_env())
    }

    /// [`GeneralSkewAlgorithm::run`] on an explicit execution backend.
    /// Results are bit-identical across backends (`Sequential`,
    /// `Threaded(n)`, and the persistent-pool `Pooled(n)`).
    pub fn run_on(&self, db: &Database, backend: Backend) -> (Cluster, LoadReport) {
        let cluster = Cluster::run_round_on(db, self.p, self, backend);
        let report = cluster.report();
        (cluster, report)
    }
}

/// Reusable per-worker routing buffers for
/// [`GeneralSkewAlgorithm::route`]: subcube cells, the fixed-coordinate
/// list, and the grid's enumeration scratch — cleared per block, never
/// reallocated across tuples/rounds.
#[derive(Default)]
struct RouteScratch {
    cells: Vec<usize>,
    fixed: Vec<(usize, usize)>,
    sub: SubcubeScratch,
}

thread_local! {
    static SUBCUBE_SCRATCH: RefCell<RouteScratch> = RefCell::new(RouteScratch::default());
}

impl Router for GeneralSkewAlgorithm {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        SUBCUBE_SCRATCH.with(|scratch| {
            let scratch = &mut *scratch.borrow_mut();
            for (ci, pc) in self.combos.iter().enumerate() {
                if ci == self.base {
                    if self.tuple_in_base(atom, tuple) {
                        self.route_block(pc, 0, atom, tuple, out, scratch);
                    }
                    continue;
                }
                match &pc.lookups[atom] {
                    None => {
                        // x_j = ∅: participate in every assignment.
                        for a in 0..pc.offsets.len() {
                            self.route_block(pc, a, atom, tuple, out, scratch);
                        }
                    }
                    Some(map) => {
                        let assignments =
                            with_projected_key(tuple, &pc.proj_cols[atom], |key| map.get(key));
                        if let Some(assignments) = assignments {
                            for &a in assignments {
                                self.route_block(pc, a, atom, tuple, out, scratch);
                            }
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::HyperCube;
    use crate::verify::assert_complete;
    use mpc_data::{generators, Rng};
    use mpc_query::named;

    fn zipf_join(m: usize, theta: f64, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 14;
        let mut rng = Rng::seed_from_u64(seed);
        let d1 = generators::zipf_degrees(m, n, theta);
        let d2 = generators::zipf_degrees(m, n, theta);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    #[test]
    fn skew_free_reduces_to_plain_hypercube() {
        let q = named::two_way_join();
        let n = 1u64 << 14;
        let mut rng = Rng::seed_from_u64(1);
        let s1 = generators::matching("S1", 2, 2048, n, &mut rng);
        let s2 = generators::matching("S2", 2, 2048, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let alg = GeneralSkewAlgorithm::plan(&db, 16, 3);
        assert_eq!(alg.combination_summary().len(), 1, "only B_∅ on matchings");
        assert_eq!(alg.dropped_assignments(), 0);
        let (cluster, report) = alg.run(&db);
        assert_complete(&db, &cluster);
        // Equivalent plain HC for comparison: same ballpark load.
        let st = SimpleStatistics::of(&db);
        let hc = HyperCube::with_optimal_shares(db.query(), &st, 16, 3);
        let (_, hc_rep) = hc.run(&db);
        let ratio = report.max_load_bits() as f64 / hc_rep.max_load_bits() as f64;
        assert!(ratio < 3.0, "general algorithm {ratio}x worse than HC");
    }

    #[test]
    fn correct_under_zipf_skew() {
        for theta in [0.8f64, 1.2] {
            let db = zipf_join(3000, theta, 2);
            let alg = GeneralSkewAlgorithm::plan(&db, 16, 5);
            assert_eq!(alg.dropped_assignments(), 0, "theta {theta}");
            let (cluster, _) = alg.run(&db);
            assert_complete(&db, &cluster);
        }
    }

    #[test]
    fn load_tracks_theorem_4_6_prediction() {
        let p = 16usize;
        let db = zipf_join(4000, 1.2, 3);
        let alg = GeneralSkewAlgorithm::plan(&db, p, 7);
        let (cluster, report) = alg.run(&db);
        assert_complete(&db, &cluster);
        let predicted = alg.predicted_load_bits();
        let measured = report.max_load_bits() as f64;
        let polylog = (p as f64).ln().powi(2) * 8.0;
        assert!(
            measured <= predicted * polylog,
            "measured {measured} >> predicted {predicted} (cap {})",
            predicted * polylog
        );
    }

    #[test]
    fn beats_hash_join_on_skew() {
        let p = 16usize;
        let db = zipf_join(4000, 1.5, 4);
        let q = db.query().clone();
        let alg = GeneralSkewAlgorithm::plan(&db, p, 9);
        let (cluster, rep_gen) = alg.run(&db);
        assert_complete(&db, &cluster);
        let z = q.var_index("z").unwrap();
        let hj = crate::baselines::HashJoinRouter::new(&q, VarSet::singleton(z), p, 9);
        let c_hash = Cluster::run_round(&db, p, &hj);
        assert!(
            rep_gen.max_load_tuples() < c_hash.report().max_load_tuples(),
            "general {} vs hash join {}",
            rep_gen.max_load_tuples(),
            c_hash.report().max_load_tuples()
        );
    }

    #[test]
    fn triangle_with_joint_heavy_pair_is_correct() {
        // Plant a heavy (x1,x2) pair in S1 of the triangle: the combination
        // machinery must pick it up via the {x1,x2} attribute subset.
        let q = named::cycle(3);
        let n = 1u64 << 10;
        let mut rng = Rng::seed_from_u64(5);
        let m = 1024usize;
        let p = 8usize;
        let mut degrees: Vec<(Vec<u64>, usize)> = vec![(vec![3, 4], m / 4)];
        degrees.extend((0..(3 * m / 4) as u64).map(|i| (vec![10 + (i % 500), 600 + (i % 300)], 1)));
        let s1 = generators::from_degree_sequence("S1", 2, &[0, 1], &degrees, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        let s3 = generators::uniform("S3", 2, m, n, &mut rng);
        let db = Database::new(q, vec![s1, s2, s3], n).unwrap();
        let alg = GeneralSkewAlgorithm::plan(&db, p, 11);
        // The pair (3,4) is heavy for {x1,x2}; some combination must carry it.
        let has_pair_combo = alg
            .combination_summary()
            .iter()
            .any(|(x, _, cnt)| x.len() == 2 && *cnt >= 1);
        assert!(has_pair_combo, "no pairwise combination found");
        let (cluster, _) = alg.run(&db);
        assert_complete(&db, &cluster);
    }

    #[test]
    fn base_exclusion_keeps_light_tuples() {
        let db = zipf_join(2000, 1.0, 6);
        let alg = GeneralSkewAlgorithm::plan(&db, 16, 13);
        // A tuple with a fresh (never-seen) z value must be in B_∅.
        assert!(alg.tuple_in_base(0, &[1, 16000]));
        // The top zipf value z=0 is heavy and covered, so excluded.
        assert!(!alg.tuple_in_base(0, &[1, 0]));
    }
}
