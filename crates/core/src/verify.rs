//! Distributed-answer verification.
//!
//! A one-round algorithm is *correct* when the union of per-server local
//! join outputs equals the sequential join of the input (the MPC model's
//! requirement that "the servers must find all answers"). This module
//! performs that comparison exactly and reports any discrepancy.
//!
//! Aggregate queries verify the same way through
//! [`verify_aggregate`] / [`crate::aggregate::aggregate_oracle`]: the
//! distributed per-server fold is compared bit for bit against a
//! sequential Fixed-order fold over the full database.

use crate::aggregate::{aggregate_cluster, aggregate_oracle, AggregateResult};
use mpc_data::answers::AnswerSet;
use mpc_data::catalog::Database;
use mpc_query::aggregate::AggregateSpec;
use mpc_sim::cluster::Cluster;
use mpc_sim::oracle;

/// Outcome of verifying a cluster against the sequential ground truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Verification {
    /// Answers the algorithm failed to produce.
    pub missing: AnswerSet,
    /// Answers the algorithm produced that the ground truth lacks (cannot
    /// happen for routers over genuine input tuples; kept for debugging
    /// future algorithms).
    pub unexpected: AnswerSet,
    /// Number of correct distinct answers.
    pub found: usize,
}

impl Verification {
    /// True iff the distributed output is exactly the sequential output.
    pub fn is_complete(&self) -> bool {
        self.missing.is_empty() && self.unexpected.is_empty()
    }
}

/// Compare a cluster's unioned answers against the sequential join of `db`.
///
/// The ground truth runs through [`mpc_sim::oracle::join_database_on`] on
/// the cluster's own backend — hash-partitioned and parallel when the
/// cluster is parallel, and bit-identical to the sequential join either
/// way — so stress verification no longer serializes on the oracle.
pub fn verify(db: &Database, cluster: &Cluster) -> Verification {
    let expected = oracle::join_database_on(db, cluster.backend());
    // The per-server local joins run on the cluster's own backend.
    let got = cluster.all_answers(db.query());
    diff(&expected, &got)
}

/// Compare two sorted, deduplicated answer sets (the engine uses this to
/// verify multi-round results, which carry answers without a cluster).
pub fn diff(expected: &AnswerSet, got: &AnswerSet) -> Verification {
    let mut missing = AnswerSet::new(expected.arity());
    let mut unexpected = AnswerSet::new(got.arity());
    let (mut i, mut j) = (0usize, 0usize);
    while i < expected.len() || j < got.len() {
        let e = (i < expected.len()).then(|| expected.row(i));
        let g = (j < got.len()).then(|| got.row(j));
        match (e, g) {
            (Some(e), Some(g)) => match e.cmp(g) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    missing.push(e);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    unexpected.push(g);
                    j += 1;
                }
            },
            (Some(e), None) => {
                missing.push(e);
                i += 1;
            }
            (None, Some(g)) => {
                unexpected.push(g);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    let found = got.len() - unexpected.len();
    Verification {
        missing,
        unexpected,
        found,
    }
}

/// Outcome of verifying a distributed aggregate against the sequential
/// oracle fold.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateVerification {
    /// The sequential Fixed-order oracle fold.
    pub expected: AggregateResult,
    /// The distributed per-server fold, merged.
    pub got: AggregateResult,
}

impl AggregateVerification {
    /// True iff the distributed fold is bit-identical to the oracle.
    pub fn is_complete(&self) -> bool {
        self.expected == self.got
    }
}

/// Differentially check `spec`'s pushed-down aggregate on a post-shuffle
/// cluster against the sequential oracle fold over `db`.
pub fn verify_aggregate(
    db: &Database,
    cluster: &Cluster,
    spec: &AggregateSpec,
) -> AggregateVerification {
    AggregateVerification {
        expected: aggregate_oracle(db, spec),
        got: aggregate_cluster(cluster, db.query(), spec),
    }
}

/// Panic with a readable report unless the cluster is complete. For tests
/// and experiment harnesses.
pub fn assert_complete(db: &Database, cluster: &Cluster) {
    let v = verify(db, cluster);
    assert!(
        v.is_complete(),
        "algorithm incomplete: {} answers missing (first: {:?}), {} unexpected, {} found",
        v.missing.len(),
        v.missing.first(),
        v.unexpected.len(),
        v.found
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Database, Rng};
    use mpc_query::named;
    use mpc_sim::cluster::{BroadcastRouter, Cluster};

    fn db() -> Database {
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(1);
        let n = 256u64;
        let s1 = generators::uniform("S1", 2, 300, n, &mut rng);
        let s2 = generators::uniform("S2", 2, 300, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    #[test]
    fn broadcast_verifies_complete() {
        let db = db();
        let cluster = Cluster::run_round(&db, 4, &BroadcastRouter { p: 4 });
        let v = verify(&db, &cluster);
        assert!(v.is_complete());
        assert!(v.found > 0);
    }

    #[test]
    fn dropping_detected_as_missing() {
        let db = db();
        // Router that keeps only half of S1.
        let router = |atom: usize, tuple: &[u64], out: &mut Vec<usize>| {
            if atom == 1 || tuple[0].is_multiple_of(2) {
                out.push(0);
            }
        };
        let cluster = Cluster::run_round(&db, 2, &router);
        let v = verify(&db, &cluster);
        assert!(!v.missing.is_empty());
        assert!(v.unexpected.is_empty());
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn assert_complete_panics_on_loss() {
        let db = db();
        let router = |atom: usize, _: &[u64], out: &mut Vec<usize>| {
            if atom == 0 {
                out.push(0);
            }
        };
        let cluster = Cluster::run_round(&db, 2, &router);
        assert_complete(&db, &cluster);
    }
}
