//! The unified engine: one stats-driven plan/execute surface over every
//! algorithm in this crate.
//!
//! The paper's central argument is that the *right* algorithm depends on
//! the data: skew-free databases want HyperCube at the LP-optimal shares
//! (Section 3), skewed ones want the §4.1/§4.2 heavy-hitter
//! decompositions, and the `L(u, M, p)` bounds say what load is
//! achievable. [`Engine`] encodes that choice once, instead of every call
//! site hand-rolling its own dispatch:
//!
//! * [`Engine`] — a builder (`query`, `p`, `seed`, `backend`, `stats`,
//!   `algorithm`) that plans and executes;
//! * [`Algorithm`] — the algorithm menu, including [`Algorithm::Auto`],
//!   which picks from heavy-hitter statistics;
//! * [`Stats`] — the error-bounded statistics surface the planner
//!   consumes ([`ExactStats`] reads the data exactly, [`SketchStats`]
//!   answers from sublinear SpaceSaving/HLL summaries, [`SyntheticStats`]
//!   carries cardinalities only; pick with [`StatsMode`] /
//!   [`Engine::stats_mode`]);
//! * [`Plan`] — a planned algorithm carrying its predicted `L(u, M, p)`
//!   load and plan metadata (shares, heavy hitters, bin combinations,
//!   rounds); it implements [`Router`], so it drops straight into
//!   [`BatchJob`] / [`Cluster::run_batch`];
//! * [`RunOutcome`] — the unified result: answers, measured
//!   [`LoadReport`], predicted-vs-measured load, per-round statistics for
//!   the multi-round baseline.
//!
//! ```
//! use mpc_core::engine::{Algorithm, Engine};
//! use mpc_data::{generators, Database, Rng};
//! use mpc_query::named;
//!
//! // A Zipf(1.2) two-way join: skewed, so `auto` must pick the skew join.
//! let q = named::two_way_join();
//! let n = 1u64 << 12;
//! let mut rng = Rng::seed_from_u64(1);
//! let d1 = generators::zipf_degrees(3000, n, 1.2);
//! let d2 = generators::zipf_degrees(3000, n, 1.2);
//! let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
//! let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
//! let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
//!
//! let engine = Engine::new(&q).p(16).seed(42);
//! let plan = engine.plan(&db);
//! assert_eq!(plan.algorithm(), Algorithm::SkewJoin);
//! assert!(plan.predicted_load_bits() > 0.0);
//!
//! let outcome = engine.run(&db);
//! assert!(outcome.verify(&db).is_complete());
//! assert!(outcome.max_load_bits() > 0);
//! ```

use crate::aggregate::{aggregate_oracle, try_aggregate_cluster, AggregateResult};
use crate::baselines::{FragmentReplicateRouter, HashJoinRouter};
use crate::bounds;
use crate::hypercube::HyperCube;
use crate::multi_round::{try_run_multi_round_on, MultiRoundResult};
use crate::shares::ShareAllocation;
use crate::skew_general::GeneralSkewAlgorithm;
use crate::skew_join::{SkewJoin, SkewJoinConfig};
use crate::verify::{self, Verification};
use mpc_data::answers::AnswerSet;
use mpc_data::budget::{BudgetExceeded, QueryBudget};
use mpc_data::catalog::Database;
use mpc_data::fastmap::FastMap;
use mpc_query::aggregate::AggregateSpec;
use mpc_query::{Query, QueryShape, VarSet};
use mpc_sim::backend::Backend;
use mpc_sim::cluster::{BatchJob, Cluster, Router};
use mpc_sim::load::LoadReport;
use mpc_stats::cardinality::SimpleStatistics;
use mpc_stats::combination::FrequencySource;
use mpc_stats::heavy::HeavyHitters;
use mpc_stats::sketch::{FreqEstimate, RelationSketch};
use std::fmt;
use std::sync::Arc;

/// The algorithm menu. [`Algorithm::Auto`] resolves to a concrete choice
/// at plan time from the statistics (see [`choose`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Pick from the statistics: HyperCube on skew-free data, the §4.1
    /// skew join on skewed two-relation joins, the §4.2 general algorithm
    /// on any other skewed query.
    Auto,
    /// HyperCube at the LP (5)-optimal shares (Section 3.1).
    HyperCube,
    /// HyperCube at equal shares `p^{1/k}` (Corollary 3.2(ii)).
    HyperCubeEqual,
    /// The standard parallel hash join baseline.
    HashJoin,
    /// Footnote 1's broadcast join baseline.
    FragmentReplicate,
    /// The §4.1 two-relation skew join.
    SkewJoin,
    /// The §4.2 general bin-combination algorithm.
    GeneralSkew,
    /// The traditional one-join-per-round baseline.
    MultiRound,
}

impl Algorithm {
    /// Stable CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::Auto => "auto",
            Algorithm::HyperCube => "hc",
            Algorithm::HyperCubeEqual => "hc-equal",
            Algorithm::HashJoin => "hash",
            Algorithm::FragmentReplicate => "fragment-replicate",
            Algorithm::SkewJoin => "skew-join",
            Algorithm::GeneralSkew => "general",
            Algorithm::MultiRound => "multi-round",
        }
    }

    /// Parse a CLI algorithm name (the inverse of [`Algorithm::name`],
    /// plus a few ergonomic aliases).
    pub fn parse(s: &str) -> Result<Algorithm, String> {
        Ok(match s {
            "auto" => Algorithm::Auto,
            "hc" | "hypercube" => Algorithm::HyperCube,
            "hc-equal" => Algorithm::HyperCubeEqual,
            "hash" | "hash-join" => Algorithm::HashJoin,
            "fragment-replicate" | "fr" => Algorithm::FragmentReplicate,
            "skew-join" => Algorithm::SkewJoin,
            "general" => Algorithm::GeneralSkew,
            "multi-round" | "mr" => Algorithm::MultiRound,
            other => return Err(format!("unknown algorithm `{other}`")),
        })
    }

    /// Every concrete (non-auto) algorithm, in menu order.
    pub fn all() -> [Algorithm; 7] {
        [
            Algorithm::HyperCube,
            Algorithm::HyperCubeEqual,
            Algorithm::HashJoin,
            Algorithm::FragmentReplicate,
            Algorithm::SkewJoin,
            Algorithm::GeneralSkew,
            Algorithm::MultiRound,
        ]
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The statistics the planner consumes — the paper's two information
/// regimes behind one interface, redesigned around *error-bounded
/// estimates* so sublinear sources (sketches, samples) are first-class:
///
/// * [`ExactStats`] realizes both regimes exactly from the data (the
///   paper's assumption "every input server knows all heavy hitters");
/// * [`SketchStats`] answers from [`mpc_stats::sketch`] SpaceSaving/HLL
///   summaries — `O(p)` space per projection, never rescanning per query;
/// * [`SyntheticStats`] carries only the simple regime (cardinalities), so
///   the planner sees no skew — useful for what-if planning without data.
///
/// The planner consumes estimates through the **pinned conservative
/// fallback rule** ([`FreqEstimate::may_exceed`]): whenever an estimate's
/// guaranteed error interval straddles the `m_j/p` heaviness threshold the
/// key is treated as heavy. Overclassifying only shifts load (within the
/// paper's constants); answers never change, because every algorithm in
/// this crate is answer-complete under any heavy classification.
pub trait Stats {
    /// Simple database statistics (Section 3): cardinalities, bit sizes.
    fn simple(&self) -> SimpleStatistics;

    /// Error-bounded heavy-hitter estimates of atom `atom`'s projection
    /// onto attribute positions `cols`, at the Section 4 threshold
    /// `m_j/p` (the complex regime).
    ///
    /// Contract: a **conservative superset**, sorted by key — every
    /// assignment whose *true* frequency may exceed `m_j/p` given the
    /// implementation's error bounds must appear (exact sources return
    /// exactly the heavy hitters with zero-width bounds). Extra
    /// sub-threshold keys are allowed but wasteful.
    fn heavy_hitters(&self, atom: usize, cols: &[usize], p: usize) -> Vec<FreqEstimate>;

    /// Estimated number of distinct values in one column of `atom`
    /// (`None` when the source cannot say — the default).
    fn distinct(&self, _atom: usize, _col: usize) -> Option<usize> {
        None
    }

    /// Compatibility shim over the pre-redesign surface: the known
    /// estimates as a plain frequency map at each key's largest consistent
    /// count. Kept so old call sites compile; new code should consume
    /// [`Stats::heavy_hitters`], whose error bounds this projection
    /// discards. Returns `Arc` so memoizing implementations share one map
    /// allocation across calls instead of cloning per call.
    fn frequencies(&self, atom: usize, cols: &[usize]) -> Arc<FastMap<Vec<u64>, usize>> {
        // `p = usize::MAX` drives the threshold to ~0: "everything you
        // can estimate".
        Arc::new(
            self.heavy_hitters(atom, cols, usize::MAX)
                .into_iter()
                .map(|e| (e.key.clone(), e.count_upper()))
                .collect(),
        )
    }

    /// Plan-cache invalidation hook: a hash of everything about these
    /// statistics that planning `q` at `p` servers consults (see
    /// [`planning_projections`]) — heavy-hitter *membership* per consulted
    /// projection plus coarse (power-of-two) cardinalities. A cached
    /// [`Plan`] built under one fingerprint may be reused while the
    /// fingerprint is unchanged: statistics drift within a fingerprint
    /// yields the same algorithm choice up to load shifts, and any plan
    /// stays answer-correct regardless. Sketch-backed sources hash their
    /// summaries' conservative heavy membership, so the plan cache keeps
    /// working under approximate statistics. `None` (the default) means
    /// these statistics cannot cheaply witness their own staleness, so
    /// callers must not cache plans built from them.
    fn fingerprint(&self, _q: &Query, _p: usize) -> Option<u64> {
        None
    }
}

/// The conservative frequency map of a batch of estimates: each key at its
/// largest consistent count, clamped to the relation cardinality `m` (a
/// key cannot occur more often than the relation has tuples). Feeding
/// these to [`SkewJoin::plan_from_parts`] or [`bounds::skew_join_bound`]
/// applies the pinned straddle-is-heavy rule, because a key whose interval
/// crosses the threshold clears it at `count_upper`.
fn conservative_frequency_map(estimates: &[FreqEstimate], m: usize) -> FastMap<Vec<u64>, usize> {
    estimates
        .iter()
        .map(|e| (e.key.clone(), e.count_upper().min(m.max(1))))
        .collect()
}

/// Adapts a [`Stats`] source into the [`FrequencySource`] the §4.2 bin
/// combinations consume, so one statistics view feeds both the
/// combination enumeration and the residual-base exclusion tables —
/// keeping the heavy/light split internally consistent whatever the
/// estimate error. Heavy sets apply the straddle-is-heavy rule via
/// [`HeavyHitters::from_estimates`]; light frequencies fall back to the
/// compat map (they only order the capped assignment choice, so a zero
/// there costs balance, not correctness).
struct StatsSource<'a> {
    q: &'a Query,
    stats: &'a dyn Stats,
    simple: &'a SimpleStatistics,
    p: usize,
}

impl FrequencySource for StatsSource<'_> {
    fn heavy(&self, atom: usize, vars: VarSet) -> HeavyHitters {
        let eff = vars.intersect(self.q.atom(atom).var_set());
        let cols = mpc_stats::heavy::columns_for(self.q, atom, eff);
        let estimates = self.stats.heavy_hitters(atom, &cols, self.p);
        HeavyHitters::from_estimates(
            atom,
            eff,
            cols,
            &estimates,
            self.simple.cardinalities[atom],
            self.p,
        )
    }

    fn light_frequency(&self, atom: usize, cols: &[usize], key: &[u64]) -> usize {
        self.stats
            .frequencies(atom, cols)
            .get(key)
            .copied()
            .unwrap_or(0)
    }
}

/// Exact statistics read from the database (the default). Frequency maps
/// are memoized per `(atom, cols)` behind `Arc`, so the auto planner's
/// skew detection and the subsequent skew-join planning share one relation
/// scan *and* one allocation (cache hits clone the `Arc`, not the map).
pub struct ExactStats<'a> {
    db: &'a Database,
    #[allow(clippy::type_complexity)]
    cache: std::cell::RefCell<FastMap<(usize, Vec<usize>), Arc<FastMap<Vec<u64>, usize>>>>,
}

impl<'a> ExactStats<'a> {
    /// Wrap a database.
    pub fn of(db: &'a Database) -> ExactStats<'a> {
        ExactStats {
            db,
            cache: std::cell::RefCell::new(FastMap::default()),
        }
    }
}

impl Stats for ExactStats<'_> {
    fn simple(&self) -> SimpleStatistics {
        SimpleStatistics::of(self.db)
    }

    fn heavy_hitters(&self, atom: usize, cols: &[usize], p: usize) -> Vec<FreqEstimate> {
        let m = self.db.relation(atom).len();
        let threshold = m as f64 / p as f64;
        let map = self.frequencies(atom, cols);
        let mut out: Vec<FreqEstimate> = map
            .iter()
            .filter(|(_, &c)| c as f64 > threshold)
            .map(|(k, &c)| FreqEstimate::exact(k.clone(), c))
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    fn distinct(&self, atom: usize, col: usize) -> Option<usize> {
        Some(self.frequencies(atom, &[col]).len())
    }

    fn frequencies(&self, atom: usize, cols: &[usize]) -> Arc<FastMap<Vec<u64>, usize>> {
        if let Some(map) = self.cache.borrow().get(&(atom, cols.to_vec())) {
            return Arc::clone(map);
        }
        let map = Arc::new(self.db.relation(atom).frequencies(cols));
        self.cache
            .borrow_mut()
            .insert((atom, cols.to_vec()), Arc::clone(&map));
        map
    }
}

/// Sketch-backed statistics: SpaceSaving heavy-hitter summaries and
/// HLL-style distinct counters ([`mpc_stats::sketch`]) built lazily per
/// relation/projection. Building a summary costs one streaming pass over
/// the relation (the same pass an ingest pipeline gets for free — see the
/// resident service, which maintains these incrementally on append); after
/// that, every planner question is answered from `O(capacity)` state with
/// guaranteed error bounds, never rescanning.
pub struct SketchStats<'a> {
    db: &'a Database,
    capacity: usize,
    cache: std::cell::RefCell<FastMap<usize, RelationSketch>>,
}

/// The per-projection SpaceSaving capacity the engine uses for `p`
/// servers: `2p`, floored at 16. Capacity `>= p` guarantees no true
/// `m/p`-heavy hitter is missed; the extra factor keeps the guarantee
/// under moderate per-query `p` drift and tightens the error bounds.
pub fn sketch_capacity(p: usize) -> usize {
    (2 * p).max(16)
}

impl<'a> SketchStats<'a> {
    /// Sketch `db` at `capacity` tracked keys per projection (see
    /// [`sketch_capacity`]).
    pub fn of(db: &'a Database, capacity: usize) -> SketchStats<'a> {
        SketchStats {
            db,
            capacity,
            cache: std::cell::RefCell::new(FastMap::default()),
        }
    }

    fn with_sketch<T>(
        &self,
        atom: usize,
        cols: &[usize],
        f: impl FnOnce(&RelationSketch) -> T,
    ) -> T {
        let mut cache = self.cache.borrow_mut();
        let rel = self.db.relation(atom);
        let sk = cache
            .entry(atom)
            .or_insert_with(|| RelationSketch::of(rel, self.capacity));
        sk.ensure_projection(rel, cols);
        f(sk)
    }
}

impl Stats for SketchStats<'_> {
    fn simple(&self) -> SimpleStatistics {
        SimpleStatistics::of(self.db)
    }

    fn heavy_hitters(&self, atom: usize, cols: &[usize], p: usize) -> Vec<FreqEstimate> {
        self.with_sketch(atom, cols, |sk| {
            sk.heavy_hitters(cols, p).expect("projection ensured")
        })
    }

    fn distinct(&self, atom: usize, col: usize) -> Option<usize> {
        let mut cache = self.cache.borrow_mut();
        let rel = self.db.relation(atom);
        let sk = cache
            .entry(atom)
            .or_insert_with(|| RelationSketch::of(rel, self.capacity));
        sk.distinct(col)
    }
}

/// Cardinalities-only statistics: the planner sees no heavy hitters, so
/// `auto` resolves to HyperCube whatever the data looks like.
pub struct SyntheticStats(pub SimpleStatistics);

impl Stats for SyntheticStats {
    fn simple(&self) -> SimpleStatistics {
        self.0.clone()
    }

    fn heavy_hitters(&self, _atom: usize, _cols: &[usize], _p: usize) -> Vec<FreqEstimate> {
        Vec::new()
    }
}

/// Which statistics source [`Engine::plan`] builds when none is supplied
/// explicitly via [`Engine::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum StatsMode {
    /// [`ExactStats`]: scan the relations per consulted projection.
    #[default]
    Exact,
    /// [`SketchStats`]: SpaceSaving/HLL summaries, error-bounded and
    /// sublinear to maintain.
    Sketch,
    /// [`SyntheticStats`]: cardinalities only — no skew visible.
    Synthetic,
}

impl StatsMode {
    /// Stable CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            StatsMode::Exact => "exact",
            StatsMode::Sketch => "sketch",
            StatsMode::Synthetic => "synthetic",
        }
    }

    /// Parse a CLI name (inverse of [`StatsMode::name`]).
    pub fn parse(s: &str) -> Result<StatsMode, String> {
        Ok(match s {
            "exact" => StatsMode::Exact,
            "sketch" => StatsMode::Sketch,
            "synthetic" => StatsMode::Synthetic,
            other => return Err(format!("unknown stats mode `{other}`")),
        })
    }
}

impl fmt::Display for StatsMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// True when some atom has a heavy hitter (frequency `> m_j/p`) on a
/// variable it shares with another atom — the condition under which the
/// §4 algorithms beat plain HyperCube.
///
/// Checking single shared variables suffices: any jointly-heavy
/// assignment of a larger subset projects to an at-least-as-frequent
/// assignment of each member variable at the same `m_j/p` threshold.
pub fn detects_join_skew(q: &Query, stats: &dyn Stats, p: usize) -> bool {
    detects_join_skew_with(q, stats, &stats.simple(), p)
}

/// [`detects_join_skew`] with the simple statistics already in hand (the
/// planner computes them once and threads them through).
fn detects_join_skew_with(
    q: &Query,
    stats: &dyn Stats,
    simple: &SimpleStatistics,
    p: usize,
) -> bool {
    for j in 0..q.num_atoms() {
        let own = q.atom(j).var_set();
        let shared = (0..q.num_atoms())
            .filter(|&k| k != j)
            .fold(VarSet::EMPTY, |s, k| {
                s.union(own.intersect(q.atom(k).var_set()))
            });
        let threshold = simple.cardinalities[j] as f64 / p as f64;
        for v in shared.iter() {
            let cols = mpc_stats::heavy::columns_for(q, j, VarSet::singleton(v));
            if stats
                .heavy_hitters(j, &cols, p)
                .iter()
                .any(|e| e.may_exceed(threshold))
            {
                return true;
            }
        }
    }
    false
}

/// Resolve [`Algorithm::Auto`]: HyperCube at the LP-optimal shares when
/// the join variables are skew-free; on skewed data, the §4.1 skew join
/// for two-relation joins and the §4.2 general algorithm otherwise.
pub fn choose(q: &Query, stats: &dyn Stats, p: usize) -> Algorithm {
    choose_with(q, stats, &stats.simple(), p)
}

/// [`choose`] with the simple statistics already in hand.
fn choose_with(q: &Query, stats: &dyn Stats, simple: &SimpleStatistics, p: usize) -> Algorithm {
    if !detects_join_skew_with(q, stats, simple, p) {
        Algorithm::HyperCube
    } else if q.num_atoms() == 2
        && !q
            .atom(0)
            .var_set()
            .intersect(q.atom(1).var_set())
            .is_empty()
    {
        Algorithm::SkewJoin
    } else {
        Algorithm::GeneralSkew
    }
}

/// The `(atom, cols)` frequency projections planning consults for `q`:
/// every single shared variable of every atom (the [`detects_join_skew`]
/// enumeration that resolves [`Algorithm::Auto`]), plus — on two-relation
/// joins — each side's full shared-variable projection (what
/// [`Algorithm::SkewJoin`] routes heavy hitters by). A plan cache must
/// fingerprint heavy-hitter state over exactly these projections: appends
/// that change no heavy set here cannot flip the auto choice.
pub fn planning_projections(q: &Query) -> Vec<(usize, Vec<usize>)> {
    let mut out: Vec<(usize, Vec<usize>)> = Vec::new();
    let mut push = |entry: (usize, Vec<usize>)| {
        if !entry.1.is_empty() && !out.contains(&entry) {
            out.push(entry);
        }
    };
    for j in 0..q.num_atoms() {
        let own = q.atom(j).var_set();
        let shared = (0..q.num_atoms())
            .filter(|&k| k != j)
            .fold(VarSet::EMPTY, |s, k| {
                s.union(own.intersect(q.atom(k).var_set()))
            });
        for v in shared.iter() {
            push((j, mpc_stats::heavy::columns_for(q, j, VarSet::singleton(v))));
        }
    }
    if q.num_atoms() == 2 {
        let shared = q.atom(0).var_set().intersect(q.atom(1).var_set());
        if shared.len() > 1 {
            for j in 0..2 {
                push((j, mpc_stats::heavy::columns_for(q, j, shared)));
            }
        }
    }
    out
}

/// A plan-cache key: the canonicalized query structure plus every planning
/// parameter baked into a [`Plan`] (server count, hash seed, and the
/// *requested* algorithm — `Auto` and a pinned choice must not share an
/// entry even when they resolve identically today). Pair it with a
/// [`Stats::fingerprint`] to know when the cached plan went stale.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// [`Query::shape`] of the (canonicalized) query.
    pub shape: QueryShape,
    /// Number of servers `p`.
    pub p: usize,
    /// Seed keying the plan's hash functions.
    pub seed: u64,
    /// The algorithm as requested (possibly [`Algorithm::Auto`]).
    pub algorithm: Algorithm,
    /// The aggregate head, when the query has one. Variable indices are
    /// canonicalization-stable (renaming keeps indices), so the spec can
    /// be keyed verbatim. An aggregate query and its materializing twin
    /// must not share an entry: their plans collect differently.
    pub aggregate: Option<AggregateSpec>,
}

/// The hash-join partition variable the engine defaults to: the variable
/// occurring in the most atoms (ties: highest index, matching the
/// historical CLI behaviour).
pub fn default_hash_vars(q: &Query) -> VarSet {
    let key = (0..q.num_vars())
        .max_by_key(|&i| q.atoms_with_var(i).count())
        .expect("query has variables");
    VarSet::singleton(key)
}

/// A planned algorithm instance: the configured router (or multi-round
/// schedule) plus the plan's predicted load and metadata. Built by
/// [`Engine::plan`]; executed by [`Plan::execute`]. One-round plans
/// implement [`Router`], so `&plan` drops straight into a [`BatchJob`].
///
/// ```
/// use mpc_core::engine::{Algorithm, Engine};
/// use mpc_data::{generators, Database, Rng};
/// use mpc_query::named;
/// use mpc_sim::backend::Backend;
/// use mpc_sim::cluster::Cluster;
///
/// let q = named::two_way_join();
/// let mut rng = Rng::seed_from_u64(5);
/// let s1 = generators::uniform("S1", 2, 1000, 1 << 12, &mut rng);
/// let s2 = generators::uniform("S2", 2, 1000, 1 << 12, &mut rng);
/// let db = Database::new(q.clone(), vec![s1, s2], 1 << 12).unwrap();
///
/// // Uniform data: `auto` resolves to LP-optimal HyperCube.
/// let plan = Engine::new(&q).p(16).seed(7).plan(&db);
/// assert_eq!(plan.algorithm(), Algorithm::HyperCube);
/// assert!(plan.shares().is_some());
///
/// // A plan is a Router: batch it like any other.
/// let results = Cluster::run_batch(&[plan.batch_job(&db)], Backend::Sequential);
/// let outcome = plan.execute(&db, Backend::Sequential);
/// assert_eq!(results[0].1, *outcome.report().unwrap());
/// ```
pub struct Plan {
    query: Query,
    algorithm: Algorithm,
    p: usize,
    seed: u64,
    predicted_load_bits: f64,
    lower_bound_bits: f64,
    aggregate: Option<AggregateSpec>,
    kind: PlanKind,
}

enum PlanKind {
    HyperCube(HyperCube),
    HashJoin(HashJoinRouter),
    FragmentReplicate(FragmentReplicateRouter),
    SkewJoin(SkewJoin),
    GeneralSkew(Box<GeneralSkewAlgorithm>),
    MultiRound,
}

impl Plan {
    /// The resolved (never `Auto`) algorithm.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// The query this plan evaluates.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Number of physical servers.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The seed keying the plan's hash functions.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The aggregate head this plan evaluates, if any. Routing is
    /// identical to the materializing plan (same algorithm, same
    /// predicted load) — only answer collection differs.
    pub fn aggregate_spec(&self) -> Option<&AggregateSpec> {
        self.aggregate.as_ref()
    }

    /// The plan's predicted per-server load in bits — the algorithm's own
    /// `L(u, M, p)`-style prediction (LP (5) `p^λ` for HyperCube, Eq. (10)
    /// for the skew join, Theorem 4.6's `max_B p^{λ(B)}` for the general
    /// algorithm, scan/broadcast arithmetic for the baselines), valid up
    /// to the paper's constant and polylog factors.
    pub fn predicted_load_bits(&self) -> f64 {
        self.predicted_load_bits
    }

    /// `L_lower = max_{u ∈ pk(q)} L(u, M, p)` in bits (Theorems 3.5/3.6)
    /// for the statistics the plan was built from — what *any* one-round
    /// algorithm must pay.
    pub fn lower_bound_bits(&self) -> f64 {
        self.lower_bound_bits
    }

    /// HyperCube share vector (one dimension per variable), when the plan
    /// is a HyperCube.
    pub fn shares(&self) -> Option<Vec<usize>> {
        match &self.kind {
            PlanKind::HyperCube(hc) => Some(hc.grid().dims().to_vec()),
            _ => None,
        }
    }

    /// Number of heavy shared-variable values handled specially (§4.1
    /// skew join only).
    pub fn num_heavy(&self) -> Option<usize> {
        match &self.kind {
            PlanKind::SkewJoin(sj) => Some(sj.num_heavy()),
            _ => None,
        }
    }

    /// Number of bin combinations packed into the round (§4.2 general
    /// algorithm only).
    pub fn num_bin_combinations(&self) -> Option<usize> {
        match &self.kind {
            PlanKind::GeneralSkew(alg) => Some(alg.combination_summary().len()),
            _ => None,
        }
    }

    /// Heavy projections dropped by the `|C'(B)| <= p` cap, whose tuples
    /// fall back to `B_∅` (§4.2 general algorithm only).
    pub fn dropped_assignments(&self) -> Option<usize> {
        match &self.kind {
            PlanKind::GeneralSkew(alg) => Some(alg.dropped_assignments()),
            _ => None,
        }
    }

    /// Communication rounds the plan will take: 1 for every one-round
    /// algorithm, `ℓ - 1` for the multi-round baseline.
    pub fn planned_rounds(&self) -> usize {
        match &self.kind {
            PlanKind::MultiRound => self.query.num_atoms().saturating_sub(1).max(1),
            _ => 1,
        }
    }

    /// The one-round router behind this plan (`None` for the multi-round
    /// baseline).
    pub fn router(&self) -> Option<&(dyn Router + Sync)> {
        match &self.kind {
            PlanKind::HyperCube(r) => Some(r),
            PlanKind::HashJoin(r) => Some(r),
            PlanKind::FragmentReplicate(r) => Some(r),
            PlanKind::SkewJoin(r) => Some(r),
            PlanKind::GeneralSkew(r) => Some(r.as_ref()),
            PlanKind::MultiRound => None,
        }
    }

    /// A [`BatchJob`] for [`Cluster::run_batch`], routing through this
    /// plan (one-round plans only).
    ///
    /// # Panics
    /// Panics on a multi-round plan (use
    /// [`crate::multi_round::run_multi_round_batch`] or [`execute_batch`]).
    pub fn batch_job<'a>(&'a self, db: &'a Database) -> BatchJob<'a> {
        assert!(
            !matches!(self.kind, PlanKind::MultiRound),
            "multi-round plans cannot be batched as one-round jobs"
        );
        assert_eq!(
            db.query(),
            &self.query,
            "plan was built for a different query"
        );
        BatchJob {
            db,
            p: self.p,
            router: self,
        }
    }

    /// Execute the plan on `db` with an explicit backend. Results are
    /// bit-identical to invoking the planned algorithm directly
    /// (`Sequential`, `Threaded(n)`, and `Pooled(n)` all agree).
    pub fn execute(&self, db: &Database, backend: Backend) -> RunOutcome {
        self.try_execute(db, backend, &QueryBudget::unlimited())
            .expect("an unlimited budget cannot be exceeded")
    }

    /// [`Plan::execute`] under a cooperative [`QueryBudget`]: the shuffle
    /// polls at chunk boundaries, the pushed-down aggregate fold polls
    /// inside every server's local join and charges groups against the
    /// group cap, and the multi-round baseline polls at round boundaries.
    /// For a plain (non-aggregate) plan the answers stay lazy — budget
    /// them at materialization time with [`RunOutcome::try_answers`].
    pub fn try_execute(
        &self,
        db: &Database,
        backend: Backend,
        budget: &QueryBudget,
    ) -> Result<RunOutcome, BudgetExceeded> {
        assert_eq!(
            db.query(),
            &self.query,
            "plan was built for a different query"
        );
        let (detail, aggregate) = match &self.kind {
            PlanKind::MultiRound => (
                OutcomeDetail::MultiRound(try_run_multi_round_on(
                    db, self.p, self.seed, backend, budget,
                )?),
                None,
            ),
            _ => {
                let cluster = Cluster::try_run_round_on(db, self.p, self, backend, budget)?;
                let report = cluster.report();
                // Aggregate pushdown: fold each server's local join into
                // a per-group accumulator and merge — answers are never
                // materialized into an `AnswerSet`.
                let aggregate = match &self.aggregate {
                    Some(spec) => Some(try_aggregate_cluster(&cluster, &self.query, spec, budget)?),
                    None => None,
                };
                (OutcomeDetail::OneRound { cluster, report }, aggregate)
            }
        };
        Ok(RunOutcome {
            algorithm: self.algorithm,
            p: self.p,
            predicted_load_bits: self.predicted_load_bits,
            lower_bound_bits: self.lower_bound_bits,
            query: self.query.clone(),
            aggregate_spec: self.aggregate.clone(),
            aggregate,
            detail,
        })
    }
}

impl Router for Plan {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        self.router()
            .expect("multi-round plans have no one-round router")
            .route(atom, tuple, out)
    }
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (p={}, predicted L={:.0} bits, L_lower={:.0} bits",
            self.algorithm, self.p, self.predicted_load_bits, self.lower_bound_bits
        )?;
        if let Some(shares) = self.shares() {
            write!(f, ", shares={shares:?}")?;
        }
        if let Some(h) = self.num_heavy() {
            write!(f, ", heavy={h}")?;
        }
        if let Some(c) = self.num_bin_combinations() {
            write!(f, ", combos={c}")?;
        }
        if self.planned_rounds() > 1 {
            write!(f, ", rounds={}", self.planned_rounds())?;
        }
        write!(f, ")")
    }
}

/// The unified execution result: what every algorithm returns through the
/// engine, whether it ran one round (`Cluster` + [`LoadReport`]) or the
/// multi-round baseline ([`MultiRoundResult`]).
pub struct RunOutcome {
    algorithm: Algorithm,
    p: usize,
    predicted_load_bits: f64,
    lower_bound_bits: f64,
    query: Query,
    aggregate_spec: Option<AggregateSpec>,
    aggregate: Option<AggregateResult>,
    detail: OutcomeDetail,
}

enum OutcomeDetail {
    OneRound {
        cluster: Cluster,
        report: LoadReport,
    },
    MultiRound(MultiRoundResult),
}

impl RunOutcome {
    /// The algorithm that ran.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm
    }

    /// Number of physical servers.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The plan's predicted per-server load in bits (see
    /// [`Plan::predicted_load_bits`]).
    pub fn predicted_load_bits(&self) -> f64 {
        self.predicted_load_bits
    }

    /// `L_lower` in bits for the planning statistics (see
    /// [`Plan::lower_bound_bits`]).
    pub fn lower_bound_bits(&self) -> f64 {
        self.lower_bound_bits
    }

    /// The post-shuffle cluster (one-round algorithms only).
    pub fn cluster(&self) -> Option<&Cluster> {
        match &self.detail {
            OutcomeDetail::OneRound { cluster, .. } => Some(cluster),
            OutcomeDetail::MultiRound(_) => None,
        }
    }

    /// The measured one-round [`LoadReport`] (one-round algorithms only).
    pub fn report(&self) -> Option<&LoadReport> {
        match &self.detail {
            OutcomeDetail::OneRound { report, .. } => Some(report),
            OutcomeDetail::MultiRound(_) => None,
        }
    }

    /// The multi-round result (multi-round baseline only).
    pub fn multi_round(&self) -> Option<&MultiRoundResult> {
        match &self.detail {
            OutcomeDetail::OneRound { .. } => None,
            OutcomeDetail::MultiRound(mr) => Some(mr),
        }
    }

    /// Maximum bits received by any server in any round — the MPC cost
    /// both kinds of result are measured by.
    pub fn max_load_bits(&self) -> u64 {
        match &self.detail {
            OutcomeDetail::OneRound { report, .. } => report.max_load_bits(),
            OutcomeDetail::MultiRound(mr) => mr.max_round_load_bits(),
        }
    }

    /// Communication rounds actually executed.
    pub fn num_rounds(&self) -> usize {
        match &self.detail {
            OutcomeDetail::OneRound { .. } => 1,
            OutcomeDetail::MultiRound(mr) => mr.num_rounds(),
        }
    }

    /// The distinct answers, sorted, in query-variable order (flat
    /// [`AnswerSet`] storage; `.to_nested()` is the nested escape hatch).
    pub fn answers(&self) -> AnswerSet {
        match &self.detail {
            OutcomeDetail::OneRound { cluster, .. } => cluster.all_answers(&self.query),
            OutcomeDetail::MultiRound(mr) => mr.answers.clone(),
        }
    }

    /// [`RunOutcome::answers`] under a cooperative [`QueryBudget`]: the
    /// per-server local joins poll the deadline and charge every emitted
    /// row against the row cap, so an oversized output trips cleanly
    /// instead of materializing. (A multi-round outcome already holds its
    /// answers — they were charged during execution.)
    pub fn try_answers(&self, budget: &QueryBudget) -> Result<AnswerSet, BudgetExceeded> {
        match &self.detail {
            OutcomeDetail::OneRound { cluster, .. } => cluster.try_all_answers(&self.query, budget),
            OutcomeDetail::MultiRound(mr) => {
                budget.poll()?;
                Ok(mr.answers.clone())
            }
        }
    }

    /// The pushed-down aggregate result, when the plan carried an
    /// [`AggregateSpec`] (one-round plans only — the multi-round baseline
    /// deduplicates intermediates, losing the derivation multiplicities
    /// bag-semantics aggregates need).
    pub fn aggregate(&self) -> Option<&AggregateResult> {
        self.aggregate.as_ref()
    }

    /// The aggregate spec the plan evaluated, if any.
    pub fn aggregate_spec(&self) -> Option<&AggregateSpec> {
        self.aggregate_spec.as_ref()
    }

    /// Differentially check the pushed-down aggregate against the
    /// sequential Fixed-order oracle fold over `db`. `None` when this
    /// outcome carries no aggregate.
    pub fn verify_aggregate(&self, db: &Database) -> Option<bool> {
        match (&self.aggregate_spec, &self.aggregate) {
            (Some(spec), Some(result)) => Some(*result == aggregate_oracle(db, spec)),
            _ => None,
        }
    }

    /// Verify the answers against the sequential ground truth of `db`.
    pub fn verify(&self, db: &Database) -> Verification {
        match &self.detail {
            OutcomeDetail::OneRound { cluster, .. } => verify::verify(db, cluster),
            OutcomeDetail::MultiRound(mr) => {
                let expected = mpc_sim::oracle::join_database_on(db, Backend::from_env());
                verify::diff(&expected, &mr.answers)
            }
        }
    }
}

/// Execute a batch of `(plan, db)` jobs, parallel **across** jobs on one
/// backend (each job sequential inside, results in job order) — the same
/// shape as [`Cluster::run_batch`], but returning [`RunOutcome`]s and
/// accepting multi-round plans too. Every outcome is bit-identical to
/// `plan.execute(db, Backend::Sequential)`.
pub fn execute_batch(jobs: &[(&Plan, &Database)], backend: Backend) -> Vec<RunOutcome> {
    backend.run_items(jobs.len(), |i| {
        let (plan, db) = jobs[i];
        plan.execute(db, Backend::Sequential)
    })
}

/// The engine builder: configure once, then [`Engine::plan`] /
/// [`Engine::run`] any database for the query.
///
/// ```
/// use mpc_core::engine::{Algorithm, Engine};
/// use mpc_data::{generators, Database, Rng};
/// use mpc_query::named;
/// use mpc_sim::backend::Backend;
///
/// let q = named::cycle(3);
/// let mut rng = Rng::seed_from_u64(3);
/// let rels = q.atoms().iter()
///     .map(|a| generators::uniform(a.name(), a.arity(), 800, 128, &mut rng))
///     .collect();
/// let db = Database::new(q.clone(), rels, 128).unwrap();
///
/// let outcome = Engine::new(&q)
///     .p(16)
///     .seed(9)
///     .backend(Backend::Sequential)
///     .algorithm(Algorithm::Auto)
///     .run(&db);
/// assert_eq!(outcome.algorithm(), Algorithm::HyperCube); // uniform data
/// assert!(outcome.verify(&db).is_complete());
/// ```
#[derive(Clone)]
pub struct Engine<'s> {
    query: Query,
    p: usize,
    seed: u64,
    backend: Backend,
    algorithm: Algorithm,
    hash_vars: Option<VarSet>,
    broadcast_atom: Option<usize>,
    skew_config: SkewJoinConfig,
    stats: Option<&'s dyn Stats>,
    stats_mode: StatsMode,
    aggregate: Option<AggregateSpec>,
}

impl Engine<'static> {
    /// A new engine for `query` with the defaults: `p = 64`, `seed = 1`,
    /// [`Backend::from_env`], [`Algorithm::Auto`], exact statistics read
    /// from the database at plan time ([`StatsMode::Exact`]).
    pub fn new(query: &Query) -> Engine<'static> {
        Engine {
            query: query.clone(),
            p: 64,
            seed: 1,
            backend: Backend::from_env(),
            algorithm: Algorithm::Auto,
            hash_vars: None,
            broadcast_atom: None,
            skew_config: SkewJoinConfig::default(),
            stats: None,
            stats_mode: StatsMode::Exact,
            aggregate: None,
        }
    }
}

impl<'s> Engine<'s> {
    /// Set the number of servers.
    pub fn p(mut self, p: usize) -> Self {
        assert!(p >= 1, "engine needs at least one server");
        self.p = p;
        self
    }

    /// Set the seed keying every hash function drawn by the plan.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the execution backend used by [`Engine::run`].
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Pin the algorithm (default: [`Algorithm::Auto`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Partition variables for [`Algorithm::HashJoin`] (default:
    /// [`default_hash_vars`]).
    pub fn hash_vars(mut self, vars: VarSet) -> Self {
        assert!(!vars.is_empty(), "hash join needs at least one variable");
        self.hash_vars = Some(vars);
        self
    }

    /// Atom to broadcast for [`Algorithm::FragmentReplicate`] (default:
    /// the smallest relation).
    pub fn broadcast_atom(mut self, atom: usize) -> Self {
        self.broadcast_atom = Some(atom);
        self
    }

    /// Ablation knobs for [`Algorithm::SkewJoin`].
    pub fn skew_config(mut self, config: SkewJoinConfig) -> Self {
        self.skew_config = config;
        self
    }

    /// Evaluate an aggregate head instead of materializing answers: every
    /// plan folds its local joins through [`crate::aggregate`] and the
    /// outcome carries an [`AggregateResult`]. Routing and predicted load
    /// are those of the underlying algorithm; the auto choice is the same
    /// except that [`Algorithm::GeneralSkew`] (whose bin-combination
    /// sub-instances replicate derivations) falls back to the
    /// skew-resilient [`Algorithm::HyperCubeEqual`].
    ///
    /// # Panics
    /// [`Engine::plan`] panics when the spec references variables the
    /// query does not have, or when explicitly combined with
    /// [`Algorithm::MultiRound`] (deduplicates intermediates) or
    /// [`Algorithm::GeneralSkew`] — neither materializes each join
    /// derivation exactly once, which bag-semantics aggregates need.
    pub fn aggregate(mut self, spec: AggregateSpec) -> Self {
        self.aggregate = Some(spec);
        self
    }

    /// Which statistics source [`Engine::plan`] builds when none is
    /// supplied via [`Engine::stats`] (default: [`StatsMode::Exact`]).
    /// [`StatsMode::Sketch`] plans from SpaceSaving/HLL summaries at
    /// [`sketch_capacity`]`(p)` — sublinear state, error-bounded, and
    /// conservatively safe: estimate error can only shift load, never
    /// change answers.
    pub fn stats_mode(mut self, mode: StatsMode) -> Self {
        self.stats_mode = mode;
        self
    }

    /// Plan (and pick, in auto mode) from these statistics instead of
    /// exact statistics read from the database. Estimated or synthetic
    /// statistics yield correct plans — error only shifts load. Takes
    /// precedence over [`Engine::stats_mode`].
    pub fn stats<'t>(self, stats: &'t dyn Stats) -> Engine<'t> {
        Engine {
            query: self.query,
            p: self.p,
            seed: self.seed,
            backend: self.backend,
            algorithm: self.algorithm,
            hash_vars: self.hash_vars,
            broadcast_atom: self.broadcast_atom,
            skew_config: self.skew_config,
            stats: Some(stats),
            stats_mode: self.stats_mode,
            aggregate: self.aggregate,
        }
    }

    /// Build the plan for `db`: resolve [`Algorithm::Auto`] from the
    /// statistics, configure the algorithm, and attach the predicted
    /// `L(u, M, p)` load.
    ///
    /// Every planner question — skew detection, skew-join routing, and
    /// the §4.2 bin combinations — goes through the [`Stats`] source's
    /// error-bounded estimates with the conservative straddle-is-heavy
    /// rule; `db` itself is only consulted for tuple routing at run time.
    pub fn plan(&self, db: &Database) -> Plan {
        assert_eq!(
            db.query(),
            &self.query,
            "engine was built for a different query"
        );
        match self.stats {
            Some(stats) => self.plan_with(db, stats),
            None => match self.stats_mode {
                StatsMode::Exact => self.plan_with(db, &ExactStats::of(db)),
                StatsMode::Sketch => {
                    self.plan_with(db, &SketchStats::of(db, sketch_capacity(self.p)))
                }
                StatsMode::Synthetic => {
                    self.plan_with(db, &SyntheticStats(SimpleStatistics::of(db)))
                }
            },
        }
    }

    /// Plan and execute on the engine's backend.
    pub fn run(&self, db: &Database) -> RunOutcome {
        self.plan(db).execute(db, self.backend)
    }

    fn plan_with(&self, db: &Database, stats: &dyn Stats) -> Plan {
        let q = &self.query;
        let p = self.p;
        if let Some(spec) = &self.aggregate {
            spec.validate_for(q)
                .expect("aggregate spec references variables the query does not have");
        }
        let simple = stats.simple();
        let resolved = match self.algorithm {
            Algorithm::Auto => {
                let chosen = choose_with(q, stats, &simple, p);
                // Aggregates fold over join derivations, so the plan must
                // produce each derivation on exactly one server. The §4.2
                // bin-combination algorithm replicates derivations across
                // overlapping sub-instances; equal shares (Corollary
                // 3.2(ii)) is the skew-resilient exact fallback.
                if self.aggregate.is_some() && chosen == Algorithm::GeneralSkew {
                    Algorithm::HyperCubeEqual
                } else {
                    chosen
                }
            }
            other => other,
        };
        assert!(
            !(self.aggregate.is_some()
                && matches!(resolved, Algorithm::MultiRound | Algorithm::GeneralSkew)),
            "aggregate heads need a plan that materializes every join derivation exactly \
             once: the multi-round baseline deduplicates intermediates and the general \
             bin-combination algorithm replicates derivations across sub-instances"
        );
        let (lower_bound_bits, _) = bounds::l_lower(q, &simple, p);
        let (kind, predicted) = match resolved {
            Algorithm::Auto => unreachable!("auto resolved above"),
            Algorithm::HyperCube => {
                let alloc =
                    ShareAllocation::optimize(q, &simple, p).expect("share LP is always feasible");
                let predicted = alloc.predicted_load_bits();
                (
                    PlanKind::HyperCube(HyperCube::new(q, &alloc, self.seed)),
                    predicted,
                )
            }
            Algorithm::HyperCubeEqual => {
                let hc = HyperCube::with_equal_shares(q, p, self.seed);
                // Corollary 3.2(ii): the unconditional skew-resilient cap.
                let predicted = hc.worst_case_load_bits(&simple);
                (PlanKind::HyperCube(hc), predicted)
            }
            Algorithm::HashJoin => {
                let vars = self.hash_vars.unwrap_or_else(|| default_hash_vars(q));
                let m = simple.bit_sizes_f64();
                // Partitioned atoms pay M_j/p, broadcast atoms pay M_j.
                let predicted: f64 = (0..q.num_atoms())
                    .map(|j| {
                        if vars.is_subset(q.atom(j).var_set()) {
                            m[j] / p as f64
                        } else {
                            m[j]
                        }
                    })
                    .sum();
                (
                    PlanKind::HashJoin(HashJoinRouter::new(q, vars, p, self.seed)),
                    predicted,
                )
            }
            Algorithm::FragmentReplicate => {
                let b = self.broadcast_atom.unwrap_or_else(|| {
                    (0..q.num_atoms())
                        .min_by_key(|&j| simple.bit_sizes[j])
                        .expect("query has atoms")
                });
                let m = simple.bit_sizes_f64();
                let predicted: f64 = (0..q.num_atoms())
                    .map(|j| if j == b { m[j] } else { m[j] / p as f64 })
                    .sum();
                (
                    PlanKind::FragmentReplicate(FragmentReplicateRouter::new(p, b, self.seed)),
                    predicted,
                )
            }
            Algorithm::SkewJoin => {
                assert_eq!(q.num_atoms(), 2, "skew join handles exactly two relations");
                let shared = q.atom(0).var_set().intersect(q.atom(1).var_set());
                let cols = [
                    mpc_stats::heavy::columns_for(q, 0, shared),
                    mpc_stats::heavy::columns_for(q, 1, shared),
                ];
                let (m1, m2) = (simple.cardinalities[0], simple.cardinalities[1]);
                // Heavy-hitter estimates at their largest consistent
                // counts: the straddle-is-heavy rule. The skew join and
                // its load bound consult frequencies only through the
                // above-threshold classification, so under exact
                // statistics these pruned maps reproduce the full-map
                // plan bit for bit.
                let f1 = conservative_frequency_map(&stats.heavy_hitters(0, &cols[0], p), m1);
                let f2 = conservative_frequency_map(&stats.heavy_hitters(1, &cols[1], p), m2);
                let bound = bounds::skew_join_bound(m1, m2, &f1, &f2, p);
                // Eq. (10) is stated in tuples; convert with the widest
                // tuple so the prediction stays an upper shape.
                let width = q.max_arity() as f64 * simple.value_bits as f64;
                let sj =
                    SkewJoin::plan_from_parts(q, m1, m2, p, self.seed, self.skew_config, &f1, &f2);
                (PlanKind::SkewJoin(sj), bound.max_tuples() * width)
            }
            Algorithm::GeneralSkew => {
                let source = StatsSource {
                    q,
                    stats,
                    simple: &simple,
                    p,
                };
                let alg =
                    GeneralSkewAlgorithm::plan_with_source(db, p, self.seed, &simple, &source);
                let predicted = alg.predicted_load_bits();
                (PlanKind::GeneralSkew(Box::new(alg)), predicted)
            }
            Algorithm::MultiRound => {
                // Best case: every round a perfectly balanced scan of the
                // inputs (intermediates can only add to this).
                let predicted = simple.total_bits() as f64 / p as f64;
                (PlanKind::MultiRound, predicted)
            }
        };
        Plan {
            query: q.clone(),
            algorithm: resolved,
            p,
            seed: self.seed,
            predicted_load_bits: predicted,
            lower_bound_bits,
            aggregate: self.aggregate.clone(),
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Rng};
    use mpc_query::named;

    fn uniform_join(m: usize, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(seed);
        let s1 = generators::uniform("S1", 2, m, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    fn zipf_join(m: usize, theta: f64, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(seed);
        let d1 = generators::zipf_degrees(m, n, theta);
        let d2 = generators::zipf_degrees(m, n, theta);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    #[test]
    fn auto_picks_hypercube_on_uniform_data() {
        let db = uniform_join(2000, 1);
        let plan = Engine::new(db.query()).p(16).seed(3).plan(&db);
        assert_eq!(plan.algorithm(), Algorithm::HyperCube);
        assert!(plan.shares().is_some());
        assert!(plan.predicted_load_bits() > 0.0);
        assert!(plan.lower_bound_bits() > 0.0);
    }

    #[test]
    fn auto_picks_skew_join_on_zipf_join() {
        let db = zipf_join(3000, 1.2, 2);
        let plan = Engine::new(db.query()).p(16).seed(3).plan(&db);
        assert_eq!(plan.algorithm(), Algorithm::SkewJoin);
        assert!(plan.num_heavy().unwrap() > 0);
    }

    #[test]
    fn auto_picks_general_skew_beyond_two_atoms() {
        // Triangle with a planted heavy x1.
        let q = named::cycle(3);
        let n = 1u64 << 10;
        let m = 1200usize;
        let mut rng = Rng::seed_from_u64(4);
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![5u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![20 + (i % 900)], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[0], &degrees, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        let s3 = generators::uniform("S3", 2, m, n, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2, s3], n).unwrap();
        let plan = Engine::new(&q).p(16).seed(5).plan(&db);
        assert_eq!(plan.algorithm(), Algorithm::GeneralSkew);
        assert!(plan.num_bin_combinations().unwrap() > 1);
        let outcome = plan.execute(&db, Backend::Sequential);
        assert!(outcome.verify(&db).is_complete());
    }

    #[test]
    fn synthetic_stats_hide_skew_from_the_planner() {
        // Same skewed data, but cardinalities-only statistics: auto must
        // fall back to HyperCube (and still be correct).
        let db = zipf_join(2000, 1.2, 6);
        let st = SyntheticStats(SimpleStatistics::of(&db));
        let engine = Engine::new(db.query()).p(16).seed(7).stats(&st);
        let plan = engine.plan(&db);
        assert_eq!(plan.algorithm(), Algorithm::HyperCube);
        let outcome = plan.execute(&db, Backend::Sequential);
        assert!(outcome.verify(&db).is_complete());
    }

    #[test]
    fn every_algorithm_runs_and_verifies_through_the_engine() {
        let db = zipf_join(1500, 1.0, 8);
        for algo in Algorithm::all() {
            let outcome = Engine::new(db.query())
                .p(8)
                .seed(9)
                .backend(Backend::Sequential)
                .algorithm(algo)
                .run(&db);
            assert_eq!(outcome.algorithm(), algo);
            assert!(outcome.verify(&db).is_complete(), "{algo} lost answers");
            assert!(outcome.max_load_bits() > 0, "{algo} reported zero load");
            assert!(outcome.num_rounds() >= 1);
            assert!(
                outcome.predicted_load_bits() > 0.0,
                "{algo} predicted zero load"
            );
        }
    }

    #[test]
    fn engine_plan_matches_explicit_skew_join_bit_for_bit() {
        let db = zipf_join(2500, 1.2, 10);
        let p = 16usize;
        let seed = 11u64;
        let plan = Engine::new(db.query()).p(p).seed(seed).plan(&db);
        assert_eq!(plan.algorithm(), Algorithm::SkewJoin);
        let explicit = SkewJoin::plan(&db, p, seed);
        let (c_exp, r_exp) = explicit.run_on(&db, Backend::Sequential);
        let outcome = plan.execute(&db, Backend::Sequential);
        assert_eq!(outcome.report(), Some(&r_exp));
        assert_eq!(outcome.answers(), c_exp.all_answers(db.query()));
    }

    #[test]
    fn multi_round_outcome_carries_round_stats() {
        let q = named::cycle(3);
        let n = 128u64;
        let mut rng = Rng::seed_from_u64(12);
        let rels = q
            .atoms()
            .iter()
            .map(|a| generators::uniform(a.name(), a.arity(), 600, n, &mut rng))
            .collect();
        let db = Database::new(q.clone(), rels, n).unwrap();
        let outcome = Engine::new(&q)
            .p(8)
            .seed(13)
            .backend(Backend::Sequential)
            .algorithm(Algorithm::MultiRound)
            .run(&db);
        assert_eq!(outcome.num_rounds(), 2);
        assert!(outcome.report().is_none());
        assert!(outcome.multi_round().is_some());
        assert!(outcome.verify(&db).is_complete());
    }

    #[test]
    fn execute_batch_matches_individual_execution() {
        let dbs: Vec<Database> = (0..4).map(|s| zipf_join(1200, 1.0, 20 + s)).collect();
        let engine = Engine::new(dbs[0].query()).p(8).seed(21);
        let plans: Vec<Plan> = dbs.iter().map(|db| engine.plan(db)).collect();
        let jobs: Vec<(&Plan, &Database)> = plans.iter().zip(&dbs).collect();
        let expected: Vec<RunOutcome> = jobs
            .iter()
            .map(|(plan, db)| plan.execute(db, Backend::Sequential))
            .collect();
        for backend in [
            Backend::Sequential,
            Backend::Threaded(3),
            Backend::Pooled(4),
        ] {
            let results = execute_batch(&jobs, backend);
            assert_eq!(results.len(), jobs.len());
            for (i, (r, e)) in results.iter().zip(&expected).enumerate() {
                assert_eq!(r.report(), e.report(), "job {i} [{backend}]");
                assert_eq!(r.answers(), e.answers(), "job {i} [{backend}]");
            }
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algo in Algorithm::all() {
            assert_eq!(Algorithm::parse(algo.name()), Ok(algo));
        }
        assert_eq!(Algorithm::parse("auto"), Ok(Algorithm::Auto));
        assert!(Algorithm::parse("quantum").is_err());
    }

    #[test]
    fn plan_display_names_the_choice() {
        let db = zipf_join(2000, 1.2, 30);
        let plan = Engine::new(db.query()).p(16).seed(31).plan(&db);
        let text = plan.to_string();
        assert!(text.contains("skew-join"), "{text}");
        assert!(text.contains("heavy="), "{text}");
    }

    #[test]
    #[should_panic(expected = "different query")]
    fn plan_rejects_foreign_database() {
        let db = uniform_join(100, 40);
        let other = named::cycle(3);
        let _ = Engine::new(&other).p(4).plan(&db);
    }

    #[test]
    #[should_panic(expected = "different query")]
    fn batch_job_rejects_foreign_database() {
        let db = uniform_join(100, 41);
        let plan = Engine::new(db.query()).p(4).plan(&db);
        let mut rng = Rng::seed_from_u64(1);
        let q2 = named::cycle(3);
        let rels = q2
            .atoms()
            .iter()
            .map(|a| generators::uniform(a.name(), a.arity(), 50, 64, &mut rng))
            .collect();
        let other = Database::new(q2, rels, 64).unwrap();
        let _ = plan.batch_job(&other);
    }

    #[test]
    fn exact_stats_memoize_frequency_maps() {
        let db = zipf_join(1500, 1.0, 50);
        let stats = ExactStats::of(&db);
        let a = stats.frequencies(0, &[1]);
        let b = stats.frequencies(0, &[1]);
        // One shared allocation: the cache hit clones the Arc, not the map.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(stats.cache.borrow().len(), 1, "second call hit the cache");
    }

    #[test]
    fn exact_stats_heavy_hitters_are_exact_and_sorted() {
        let db = zipf_join(2000, 1.2, 51);
        let stats = ExactStats::of(&db);
        let p = 16usize;
        let m = db.relation(0).len();
        let threshold = m as f64 / p as f64;
        let hh = stats.heavy_hitters(0, &[1], p);
        assert!(!hh.is_empty(), "zipf 1.2 plants heavy hitters");
        assert!(hh.windows(2).all(|w| w[0].key < w[1].key), "sorted by key");
        let freq = stats.frequencies(0, &[1]);
        for e in &hh {
            assert_eq!(e.error_bound, 0);
            assert_eq!(e.direction, mpc_stats::sketch::ErrorDirection::Exact);
            assert_eq!(e.estimate, freq[&e.key]);
            assert!(e.estimate as f64 > threshold);
        }
        // Exactly the above-threshold keys appear.
        let expect = freq.values().filter(|&&c| c as f64 > threshold).count();
        assert_eq!(hh.len(), expect);
        // The compat shim over the default impl would also be conservative;
        // distinct() agrees with the map.
        assert_eq!(stats.distinct(0, 1), Some(freq.len()));
    }

    #[test]
    fn sketch_mode_matches_exact_picks_and_answers() {
        // Uniform → HyperCube, Zipf 1.2 → SkewJoin: the sketch-backed
        // planner must resolve auto identically, and every answer set is
        // bit-identical (answers never depend on statistics).
        for (db, expect) in [
            (uniform_join(2000, 60), Algorithm::HyperCube),
            (zipf_join(3000, 1.2, 61), Algorithm::SkewJoin),
        ] {
            let exact = Engine::new(db.query()).p(16).seed(3).plan(&db);
            let sketch = Engine::new(db.query())
                .p(16)
                .seed(3)
                .stats_mode(StatsMode::Sketch)
                .plan(&db);
            assert_eq!(exact.algorithm(), expect);
            assert_eq!(sketch.algorithm(), expect, "sketch pick diverged");
            let a = exact.execute(&db, Backend::Sequential);
            let b = sketch.execute(&db, Backend::Sequential);
            assert_eq!(a.answers(), b.answers());
        }
    }

    #[test]
    fn sketch_stats_are_conservative_supersets() {
        // Every exact heavy hitter appears in the sketch's estimate list
        // with an interval containing its true count (capacity >= p).
        let db = zipf_join(3000, 1.2, 62);
        let p = 16usize;
        let exact = ExactStats::of(&db);
        let sketch = SketchStats::of(&db, sketch_capacity(p));
        for atom in 0..2 {
            let truth = exact.heavy_hitters(atom, &[1], p);
            let est = sketch.heavy_hitters(atom, &[1], p);
            for t in &truth {
                let e = est
                    .iter()
                    .find(|e| e.key == t.key)
                    .unwrap_or_else(|| panic!("sketch missed heavy hitter {:?}", t.key));
                assert!(
                    e.count_lower() <= t.estimate && t.estimate <= e.count_upper(),
                    "true count {} outside [{}, {}]",
                    t.estimate,
                    e.count_lower(),
                    e.count_upper()
                );
            }
        }
        // HLL distinct lands within its ~3% relative error at this scale
        // (generous 15% assertion for one fixed seed).
        let truth = exact.distinct(0, 1).unwrap() as f64;
        let est = sketch.distinct(0, 1).unwrap() as f64;
        assert!(
            (est - truth).abs() / truth < 0.15,
            "distinct {est} vs {truth}"
        );
    }

    #[test]
    fn stats_mode_names_round_trip() {
        for mode in [StatsMode::Exact, StatsMode::Sketch, StatsMode::Synthetic] {
            assert_eq!(StatsMode::parse(mode.name()), Ok(mode));
        }
        assert!(StatsMode::parse("psychic").is_err());
    }
}
