//! The MapReduce-style model of Section 5.
//!
//! Afrati et al. \[1\] parameterize computation by the *reducer size* `q`
//! (here `reducer_bits`: the maximum input a reducer may receive) instead
//! of the server count `p`. Section 5 shows the MPC results transfer: the
//! replication rate of any algorithm is bounded below in terms of
//! fractional edge packings (Theorem 5.1, implemented in
//! [`crate::bounds::replication_rate_bound`]), and the HyperCube algorithm
//! with appropriate shares matches the bound.
//!
//! This module provides the scheduling direction the model implies: given a
//! reducer budget `L`, find the number of servers and the share allocation
//! under which HyperCube's predicted load fits in `L`, and quantify the
//! resulting replication.

use crate::bounds;
use crate::shares::ShareAllocation;
use mpc_query::Query;
use mpc_stats::cardinality::SimpleStatistics;

/// A reducer-budgeted schedule: the server count and share allocation
/// chosen for a reducer size.
#[derive(Clone, Debug)]
pub struct ReducerSchedule {
    /// Number of (virtual) reducers/servers to deploy.
    pub p: usize,
    /// The share allocation at that `p`.
    pub alloc: ShareAllocation,
    /// The predicted per-reducer load `p^λ` in bits.
    pub predicted_load_bits: f64,
    /// The Theorem 5.1 lower bound on replication at this reducer size.
    pub replication_lower_bound: f64,
}

/// The smallest power-of-two `p` whose LP (5) load prediction fits within
/// `reducer_bits` (binary search over the exponent; `L_upper` is
/// non-increasing in `p`). Returns `None` when even `max_p` cannot fit the
/// budget (a reducer smaller than the scan floor `max_j M_j / p`).
pub fn servers_for_reducer_cap(
    q: &Query,
    stats: &SimpleStatistics,
    reducer_bits: f64,
    max_p: usize,
) -> Option<ReducerSchedule> {
    assert!(reducer_bits > 0.0);
    let mut chosen: Option<(usize, ShareAllocation)> = None;
    let mut p = 1usize;
    while p <= max_p {
        let alloc = ShareAllocation::optimize(q, stats, p).ok()?;
        if alloc.predicted_load_bits() <= reducer_bits {
            chosen = Some((p, alloc));
            break;
        }
        p *= 2;
    }
    let (p, alloc) = chosen?;
    let predicted = alloc.predicted_load_bits();
    Some(ReducerSchedule {
        p,
        alloc,
        predicted_load_bits: predicted,
        replication_lower_bound: bounds::replication_rate_bound(q, stats, reducer_bits),
    })
}

/// Total communication implied by a schedule: `p · predicted_load` bits —
/// the quantity whose ratio to the input size is the replication rate `r`.
pub fn predicted_total_bits(schedule: &ReducerSchedule) -> f64 {
    schedule.p as f64 * schedule.predicted_load_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_query::named;

    fn stats(q: &Query, m: usize) -> SimpleStatistics {
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        SimpleStatistics::synthetic(&arities, vec![m; q.num_atoms()], 1 << 20)
    }

    #[test]
    fn smaller_reducers_need_more_servers() {
        let q = named::cycle(3);
        let st = stats(&q, 1 << 16);
        let m_bits = st.bit_sizes_f64()[0];
        let mut last_p = 0usize;
        for frac in [2.0f64, 8.0, 32.0] {
            let s = servers_for_reducer_cap(&q, &st, m_bits / frac, 1 << 20)
                .expect("budget is feasible");
            assert!(s.p >= last_p, "p should not shrink as reducers shrink");
            assert!(s.predicted_load_bits <= m_bits / frac + 1.0);
            last_p = s.p;
        }
        assert!(last_p >= 8, "tight budgets should need many servers");
    }

    #[test]
    fn triangle_reducer_count_tracks_example_5_2() {
        // For C3 with equal sizes, p ~ (M/L)^{3/2} (Example 5.2); our
        // power-of-two search should land within a factor ~2-4 of it.
        let q = named::cycle(3);
        let st = stats(&q, 1 << 16);
        let m_bits = st.bit_sizes_f64()[0];
        let l = m_bits / 16.0;
        let s = servers_for_reducer_cap(&q, &st, l, 1 << 24).unwrap();
        let ideal = (m_bits / l).powf(1.5);
        assert!(
            (s.p as f64) >= ideal / 2.0 && (s.p as f64) <= ideal * 4.0,
            "p = {} vs ideal (M/L)^1.5 = {ideal}",
            s.p
        );
    }

    #[test]
    fn infeasible_budget_returns_none() {
        // A reducer smaller than m/p for any p <= max_p is infeasible when
        // max_p is small.
        let q = named::two_way_join();
        let st = stats(&q, 1 << 16);
        let tiny = 16.0; // 16 bits can never hold a fragment at p <= 4
        assert!(servers_for_reducer_cap(&q, &st, tiny, 4).is_none());
    }

    #[test]
    fn replication_grows_as_reducers_shrink() {
        let q = named::cycle(3);
        let st = stats(&q, 1 << 16);
        let m_bits = st.bit_sizes_f64()[0];
        let r_big = servers_for_reducer_cap(&q, &st, m_bits, 1 << 20)
            .unwrap()
            .replication_lower_bound;
        let r_small = servers_for_reducer_cap(&q, &st, m_bits / 64.0, 1 << 20)
            .unwrap()
            .replication_lower_bound;
        assert!(
            r_small > r_big,
            "replication bound should grow: {r_small} vs {r_big}"
        );
    }

    #[test]
    fn total_bits_consistent() {
        let q = named::two_way_join();
        let st = stats(&q, 1 << 14);
        let s = servers_for_reducer_cap(&q, &st, st.bit_sizes_f64()[0], 1 << 16).unwrap();
        let total = predicted_total_bits(&s);
        assert!(
            total >= st.total_bits() as f64 * 0.4,
            "total {total} too small"
        );
    }
}
