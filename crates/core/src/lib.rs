//! # mpc-core
//!
//! One-round MPC query evaluation with provably optimal skew handling — the
//! algorithms and bounds of Beame, Koutris & Suciu, *Skew in Parallel Query
//! Processing* (PODS 2014):
//!
//! * [`shares`] — the share-exponent LP (5) and its closed form over
//!   `pk(q)` (Theorem 3.6);
//! * [`hypercube`] — the HyperCube algorithm (Section 3.1);
//! * [`baselines`] — standard parallel hash join and broadcast join;
//! * [`multi_round`] — the traditional one-join-per-round baseline the
//!   introduction contrasts against;
//! * [`skew_join`] — the two-relation skew join of Section 4.1
//!   (light / H1 / H2 / H12 decomposition);
//! * [`skew_general`] — the general bin-combination algorithm of
//!   Section 4.2 (Theorem 4.6);
//! * [`mapreduce`] — the Section 5 reducer-size model: scheduling servers
//!   for a reducer budget;
//! * [`bounds`] — every lower bound in the paper: `L(u, M, p)` and
//!   `L_lower` (Theorems 3.5/3.6), residual bounds `L_x(u, M, p)`
//!   (Theorem 4.7), Eq. (10), the replication-rate bound (Theorem 5.1) and
//!   the space exponent;
//! * [`verify`](mod@crate::verify) — exact distributed-vs-sequential answer verification;
//! * [`aggregate`](mod@crate::aggregate) — streaming aggregate pushdown:
//!   COUNT/SUM/MIN/MAX/COUNT DISTINCT folded inside the local join,
//!   merged across servers, memory proportional to groups not output;
//! * [`engine`] — the unified plan/execute surface over all of the above:
//!   [`Engine`] builds a stats-driven [`engine::Plan`] (auto mode picks the
//!   algorithm from heavy-hitter statistics and the load bounds) and every
//!   run returns one [`engine::RunOutcome`] shape.

pub mod aggregate;
pub mod baselines;
pub mod bounds;
pub mod engine;
pub mod hypercube;
pub mod mapreduce;
pub mod multi_round;
pub mod service;
pub mod shares;
pub mod skew_general;
pub mod skew_join;
pub mod verify;
pub mod wire;

pub use aggregate::{
    aggregate_cluster, aggregate_oracle, AggregateAccumulator, AggregateResult, Mergeable,
};
pub use baselines::{FragmentReplicateRouter, HashJoinRouter};
pub use engine::{
    sketch_capacity, Algorithm, Engine, ExactStats, Plan, PlanKey, RunOutcome, SketchStats, Stats,
    StatsMode, SyntheticStats,
};
pub use hypercube::HyperCube;
pub use service::{
    CacheCounters, CacheStatus, QuerySpec, Service, ServiceError, ServiceOutcome, SketchTelemetry,
    DEFAULT_PLAN_CACHE_CAPACITY,
};
pub use shares::ShareAllocation;
pub use skew_general::GeneralSkewAlgorithm;
pub use skew_join::{SkewJoin, SkewJoinConfig};
pub use verify::{assert_complete, verify, verify_aggregate, AggregateVerification, Verification};
pub use wire::Session;
