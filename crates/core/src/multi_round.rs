//! The traditional multi-round baseline: one hash join per round.
//!
//! The paper's introduction motivates one-round evaluation by contrast with
//! the classical plan: "the traditional approach is to compute one join at
//! a time leading to a number of communication rounds at least as large as
//! the depth of the query plan". This module implements that baseline —
//! a left-deep sequence of distributed hash joins — with the same exact
//! load accounting as the one-round algorithms, so experiments can show the
//! real trade-off:
//!
//! * per-round load can be as low as `~(|input| + |intermediate|)/p`, which
//!   beats one-round HyperCube when intermediates are small;
//! * but intermediates can *blow up* (e.g. length-2 paths while computing
//!   triangles), making later rounds pay `Ω(|intermediate|/p)` — the regime
//!   where one round wins;
//! * and each extra round is a global synchronization the MPC model counts
//!   separately.
//!
//! The join order is greedy: start from the smallest relation, repeatedly
//! fold in the atom sharing variables with the bound set (smallest first);
//! disconnected atoms trigger a broadcast (fragment-replicate) round.

use mpc_data::answers::AnswerSet;
use mpc_data::budget::{BudgetExceeded, QueryBudget};
use mpc_data::catalog::Database;
use mpc_data::mix64;
use mpc_query::{Query, VarSet};
use mpc_sim::backend::Backend;
use std::collections::HashMap;

/// Load accounting for one round of the multi-round plan.
#[derive(Clone, Debug)]
pub struct RoundStats {
    /// 0-based round number.
    pub round: usize,
    /// The atom folded in this round.
    pub atom: String,
    /// Maximum bits received by any server this round.
    pub max_load_bits: u64,
    /// Total tuples of the intermediate result after the round.
    pub intermediate_tuples: u64,
    /// True when the round had to broadcast (no shared variables).
    pub broadcast: bool,
}

/// Result of running the multi-round baseline.
#[derive(Clone, Debug)]
pub struct MultiRoundResult {
    /// Per-round statistics, in execution order (`ℓ - 1` rounds).
    pub rounds: Vec<RoundStats>,
    /// The final answers (sorted, deduplicated, in query-variable order,
    /// flat [`AnswerSet`] storage).
    pub answers: AnswerSet,
    /// The bound variables after completion (always all query variables).
    pub bound_vars: VarSet,
}

impl MultiRoundResult {
    /// The maximum per-round load (the MPC model's per-round cost).
    pub fn max_round_load_bits(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.max_load_bits)
            .max()
            .unwrap_or(0)
    }

    /// Number of communication rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// The largest intermediate result produced.
    pub fn max_intermediate_tuples(&self) -> u64 {
        self.rounds
            .iter()
            .map(|r| r.intermediate_tuples)
            .max()
            .unwrap_or(0)
    }
}

/// A distributed intermediate result: fragments per server, rows over
/// `vars` (in `vars.iter()` order).
struct Intermediate {
    vars: Vec<usize>,
    fragments: Vec<Vec<Vec<u64>>>,
}

impl Intermediate {
    fn total_tuples(&self) -> u64 {
        self.fragments.iter().map(|f| f.len() as u64).sum()
    }
}

/// Greedy left-deep atom order: smallest relation first, then the connected
/// atom with the smallest relation (disconnected atoms last).
fn plan_order(q: &Query, db: &Database) -> Vec<usize> {
    let l = q.num_atoms();
    let mut remaining: Vec<usize> = (0..l).collect();
    remaining.sort_by_key(|&j| db.relation(j).len());
    let mut order = vec![remaining.remove(0)];
    let mut bound = q.atom(order[0]).var_set();
    while !remaining.is_empty() {
        let pos = remaining
            .iter()
            .position(|&j| !q.atom(j).var_set().intersect(bound).is_empty())
            .unwrap_or(0);
        let j = remaining.remove(pos);
        bound = bound.union(q.atom(j).var_set());
        order.push(j);
    }
    order
}

/// Execute the multi-round baseline on `p` servers with the
/// [`Backend::from_env`] backend. Loads are measured in bits with the
/// database's value width, exactly like the one-round algorithms.
pub fn run_multi_round(db: &Database, p: usize, seed: u64) -> MultiRoundResult {
    run_multi_round_on(db, p, seed, Backend::from_env())
}

/// [`run_multi_round`] on an explicit execution backend: each round's
/// per-server local joins (servers are independent) run in parallel and
/// their fragments are collected in server-index order, so results and
/// round statistics are identical across backends.
pub fn run_multi_round_on(
    db: &Database,
    p: usize,
    seed: u64,
    backend: Backend,
) -> MultiRoundResult {
    try_run_multi_round_on(db, p, seed, backend, &QueryBudget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// [`run_multi_round_on`] under a cooperative [`QueryBudget`]. Budget
/// granularity is **per round**: the deadline is polled before every
/// round and before the final answer collection (a round in flight runs
/// to completion), and the final materialized answers are charged against
/// the row cap. Finer-grained than that the baseline does not need to be
/// — it exists as a reference, not a production path.
pub fn try_run_multi_round_on(
    db: &Database,
    p: usize,
    seed: u64,
    backend: Backend,
    budget: &QueryBudget,
) -> Result<MultiRoundResult, BudgetExceeded> {
    assert!(p >= 1);
    let q = db.query();
    let bits = db.value_bits() as u64;
    let order = plan_order(q, db);

    // Seed intermediate: the first relation, partitioned by full-tuple hash
    // (its initial distribution; this placement is free — the input is
    // already spread across servers in the MPC model).
    let first = order[0];
    let first_vars: Vec<usize> = {
        let mut vs: Vec<usize> = q.atom(first).var_set().iter().collect();
        vs.sort_unstable();
        vs
    };
    let key0 = mix64(seed, 0x8f0c_21d1_72f3_aa01);
    let mut inter = Intermediate {
        vars: first_vars.clone(),
        fragments: vec![Vec::new(); p],
    };
    for row in db.relation(first).rows() {
        // Project to var order (repeated variables must agree).
        let Some(projected) = project_atom_row(q, first, row, &first_vars) else {
            continue;
        };
        let mut h = key0;
        for &v in &projected {
            h = mix64(v, h);
        }
        inter.fragments[(h % p as u64) as usize].push(projected);
    }

    let mut rounds = Vec::new();
    let mut bound = q.atom(first).var_set();

    for (round, &j) in order.iter().skip(1).enumerate() {
        budget.poll()?;
        let atom = q.atom(j);
        let shared = atom.var_set().intersect(bound);
        let round_key = mix64(seed ^ round as u64, 0x1b87_3595_21b6_3e05);

        // New variable list after the round.
        let new_bound = bound.union(atom.var_set());
        let mut out_vars: Vec<usize> = new_bound.iter().collect();
        out_vars.sort_unstable();

        let mut received_bits = vec![0u64; p];
        let mut next = Intermediate {
            vars: out_vars.clone(),
            fragments: vec![Vec::new(); p],
        };

        // Positions of the shared variables.
        let inter_key_pos: Vec<usize> = shared
            .iter()
            .map(|v| inter.vars.iter().position(|&w| w == v).expect("bound var"))
            .collect();
        let broadcast = shared.is_empty();

        // --- Route the intermediate (repartition by join key). ---
        let mut i_parts: Vec<Vec<Vec<u64>>> = vec![Vec::new(); p];
        for frag in &inter.fragments {
            for row in frag {
                let dest = if broadcast {
                    // Keep in place conceptually: route by full row hash.
                    let mut h = round_key;
                    for &v in row.iter() {
                        h = mix64(v, h);
                    }
                    (h % p as u64) as usize
                } else {
                    let mut h = round_key;
                    for &pos in &inter_key_pos {
                        h = mix64(row[pos], h);
                    }
                    (h % p as u64) as usize
                };
                received_bits[dest] += row.len() as u64 * bits;
                i_parts[dest].push(row.clone());
            }
        }

        // --- Route the new atom's relation. ---
        let mut s_parts: Vec<Vec<Vec<u64>>> = vec![Vec::new(); p];
        for row in db.relation(j).rows() {
            let Some(projected) = project_atom_row(q, j, row, &atom_var_order(q, j)) else {
                continue;
            };
            if broadcast {
                for (dest, part) in s_parts.iter_mut().enumerate() {
                    received_bits[dest] += projected.len() as u64 * bits;
                    part.push(projected.clone());
                }
            } else {
                let mut h = round_key;
                for v in shared.iter() {
                    let pos = atom_var_order(q, j)
                        .iter()
                        .position(|&w| w == v)
                        .expect("shared var in atom");
                    h = mix64(projected[pos], h);
                }
                let dest = (h % p as u64) as usize;
                received_bits[dest] += projected.len() as u64 * bits;
                s_parts[dest].push(projected);
            }
        }

        // --- Local join on every server (independent; parallel on the
        // threaded backend, fragments collected in server-index order). ---
        let s_vars = atom_var_order(q, j);
        next.fragments = backend
            .run_chunks(p, 1, |lo, hi| {
                let mut frags = Vec::with_capacity(hi - lo);
                for server in lo..hi {
                    let mut out = Vec::new();
                    local_hash_join(
                        &inter.vars,
                        &i_parts[server],
                        &s_vars,
                        &s_parts[server],
                        &shared,
                        &out_vars,
                        &mut out,
                    );
                    frags.push(out);
                }
                frags
            })
            .into_iter()
            .flatten()
            .collect();

        rounds.push(RoundStats {
            round,
            atom: atom.name().to_string(),
            max_load_bits: received_bits.iter().copied().max().unwrap_or(0),
            intermediate_tuples: next.total_tuples(),
            broadcast,
        });
        inter = next;
        bound = new_bound;
    }

    // Collect final answers flat, in query-variable order.
    budget.poll()?;
    budget.charge_rows(inter.total_tuples())?;
    let perm: Vec<usize> = (0..q.num_vars())
        .map(|v| inter.vars.iter().position(|&w| w == v).expect("full query"))
        .collect();
    let mut answers = AnswerSet::with_capacity(q.num_vars(), inter.total_tuples() as usize);
    let mut row_buf = vec![0u64; q.num_vars()];
    for row in inter.fragments.iter().flatten() {
        for (slot, &i) in row_buf.iter_mut().zip(&perm) {
            *slot = row[i];
        }
        answers.push(&row_buf);
    }
    answers.sort_dedup();

    Ok(MultiRoundResult {
        rounds,
        answers,
        bound_vars: bound,
    })
}

/// The distinct variables of atom `j` in ascending index order.
fn atom_var_order(q: &Query, j: usize) -> Vec<usize> {
    let mut vs: Vec<usize> = q.atom(j).var_set().iter().collect();
    vs.sort_unstable();
    vs
}

/// Project an atom's stored row onto the given distinct-variable order,
/// returning `None` when repeated variables carry unequal values (such
/// tuples cannot satisfy the atom).
fn project_atom_row(q: &Query, j: usize, row: &[u64], var_order: &[usize]) -> Option<Vec<u64>> {
    let atom = q.atom(j);
    // Consistency check for repeated variables.
    for (pos, &v) in atom.vars().iter().enumerate() {
        let first = atom.position_of_var(v).expect("var present");
        if row[pos] != row[first] {
            return None;
        }
    }
    Some(
        var_order
            .iter()
            .map(|&v| row[atom.position_of_var(v).expect("var present")])
            .collect(),
    )
}

/// Hash join of two local fragments on `shared`, emitting rows over
/// `out_vars`.
#[allow(clippy::too_many_arguments)]
fn local_hash_join(
    left_vars: &[usize],
    left_rows: &[Vec<u64>],
    right_vars: &[usize],
    right_rows: &[Vec<u64>],
    shared: &VarSet,
    out_vars: &[usize],
    out: &mut Vec<Vec<u64>>,
) {
    let l_key: Vec<usize> = shared
        .iter()
        .map(|v| left_vars.iter().position(|&w| w == v).expect("in left"))
        .collect();
    let r_key: Vec<usize> = shared
        .iter()
        .map(|v| right_vars.iter().position(|&w| w == v).expect("in right"))
        .collect();
    // Output assembly: source of each output variable.
    enum Src {
        Left(usize),
        Right(usize),
    }
    let srcs: Vec<Src> = out_vars
        .iter()
        .map(|&v| {
            if let Some(i) = left_vars.iter().position(|&w| w == v) {
                Src::Left(i)
            } else {
                let i = right_vars
                    .iter()
                    .position(|&w| w == v)
                    .expect("var comes from one side");
                Src::Right(i)
            }
        })
        .collect();

    let mut index: HashMap<Vec<u64>, Vec<&Vec<u64>>> = HashMap::new();
    for row in right_rows {
        let key: Vec<u64> = r_key.iter().map(|&i| row[i]).collect();
        index.entry(key).or_default().push(row);
    }
    for lrow in left_rows {
        let key: Vec<u64> = l_key.iter().map(|&i| lrow[i]).collect();
        let Some(matches) = index.get(&key) else {
            continue;
        };
        for rrow in matches {
            out.push(
                srcs.iter()
                    .map(|s| match s {
                        Src::Left(i) => lrow[*i],
                        Src::Right(i) => rrow[*i],
                    })
                    .collect(),
            );
        }
    }
}

/// Execute a batch of independent multi-round queries, parallelizing
/// **across** queries on one backend instead of inside each round — with
/// [`Backend::Pooled`] the whole batch reuses one persistent worker set
/// and schedules queries dynamically from the shared queue (the
/// multi-query-throughput shape). Each job `(db, p, seed)` runs its rounds
/// sequentially, so every result is bit-identical to
/// `run_multi_round_on(db, p, seed, Backend::Sequential)`; results come
/// back in job order.
pub fn run_multi_round_batch(
    jobs: &[(&Database, usize, u64)],
    backend: Backend,
) -> Vec<MultiRoundResult> {
    backend.run_items(jobs.len(), |i| {
        let (db, p, seed) = jobs[i];
        run_multi_round_on(db, p, seed, Backend::Sequential)
    })
}

/// Convenience: compare the multi-round answers with the ground-truth join
/// (computed on the [`Backend::from_env`] backend; the answer set is the
/// same whichever executor runs it).
pub fn verify_multi_round(db: &Database, result: &MultiRoundResult) -> bool {
    let expected = mpc_sim::oracle::join_database_on(db, Backend::from_env());
    expected == result.answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Rng};
    use mpc_query::named;

    fn uniform_db(q: &Query, m: usize, n: u64, seed: u64) -> Database {
        let mut rng = Rng::seed_from_u64(seed);
        let rels = q
            .atoms()
            .iter()
            .map(|a| generators::uniform(a.name(), a.arity(), m, n, &mut rng))
            .collect();
        Database::new(q.clone(), rels, n).unwrap()
    }

    #[test]
    fn two_way_join_single_round() {
        let q = named::two_way_join();
        let db = uniform_db(&q, 1500, 1 << 10, 1);
        let result = run_multi_round(&db, 8, 42);
        assert_eq!(result.num_rounds(), 1);
        assert!(!result.rounds[0].broadcast);
        assert!(verify_multi_round(&db, &result));
    }

    #[test]
    fn triangle_takes_two_rounds() {
        let q = named::cycle(3);
        let db = uniform_db(&q, 800, 128, 2);
        let result = run_multi_round(&db, 8, 7);
        assert_eq!(result.num_rounds(), 2);
        assert!(verify_multi_round(&db, &result));
        // The intermediate (length-2 paths) is bigger than the input —
        // the blow-up the paper's one-round approach avoids storing.
        assert!(result.max_intermediate_tuples() > 800);
    }

    #[test]
    fn chain_4_takes_three_rounds() {
        let q = named::chain(4);
        let db = uniform_db(&q, 800, 256, 3);
        let result = run_multi_round(&db, 8, 9);
        assert_eq!(result.num_rounds(), 3);
        assert!(verify_multi_round(&db, &result));
    }

    #[test]
    fn cartesian_uses_broadcast_rounds() {
        let q = named::cartesian(2);
        let n = 1u64 << 10;
        let mut rng = Rng::seed_from_u64(4);
        let s1 = generators::uniform_set("S1", 1, 200, n, &mut rng);
        let s2 = generators::uniform_set("S2", 1, 150, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let result = run_multi_round(&db, 4, 11);
        assert_eq!(result.num_rounds(), 1);
        assert!(result.rounds[0].broadcast);
        assert!(verify_multi_round(&db, &result));
        assert_eq!(result.answers.len() as u64, 200 * 150);
    }

    #[test]
    fn star_join_correct() {
        let q = named::star(3);
        let db = uniform_db(&q, 600, 64, 5);
        let result = run_multi_round(&db, 8, 13);
        assert_eq!(result.num_rounds(), 2);
        assert!(verify_multi_round(&db, &result));
    }

    #[test]
    fn loads_are_positive_and_bounded() {
        let q = named::cycle(3);
        let db = uniform_db(&q, 500, 64, 6);
        let p = 8usize;
        let result = run_multi_round(&db, p, 15);
        for r in &result.rounds {
            assert!(r.max_load_bits > 0);
        }
        // Round loads can exceed the input (intermediate blow-up) but are
        // bounded by intermediate + relation sizes.
        let bits = db.value_bits() as u64;
        let cap: u64 = result.max_intermediate_tuples() * 3 * bits + db.total_bits();
        assert!(result.max_round_load_bits() <= cap);
    }

    #[test]
    fn batch_matches_individual_runs_in_job_order() {
        let q = named::cycle(3);
        let dbs: Vec<Database> = (0..5).map(|s| uniform_db(&q, 400, 64, 20 + s)).collect();
        let jobs: Vec<(&Database, usize, u64)> = dbs
            .iter()
            .enumerate()
            .map(|(i, db)| (db, 4 + i, 30 + i as u64))
            .collect();
        let expected: Vec<MultiRoundResult> = jobs
            .iter()
            .map(|&(db, p, seed)| run_multi_round_on(db, p, seed, Backend::Sequential))
            .collect();
        for backend in [
            Backend::Sequential,
            Backend::Threaded(3),
            Backend::Pooled(4),
        ] {
            let results = run_multi_round_batch(&jobs, backend);
            assert_eq!(results.len(), jobs.len(), "{backend}");
            for (i, (r, e)) in results.iter().zip(&expected).enumerate() {
                assert_eq!(r.answers, e.answers, "job {i} [{backend}]");
                assert_eq!(r.num_rounds(), e.num_rounds(), "job {i} [{backend}]");
                for (a, b) in r.rounds.iter().zip(&e.rounds) {
                    assert_eq!(a.max_load_bits, b.max_load_bits, "job {i} [{backend}]");
                    assert_eq!(
                        a.intermediate_tuples, b.intermediate_tuples,
                        "job {i} [{backend}]"
                    );
                }
            }
        }
    }

    #[test]
    fn skewed_join_collapses_like_hash_join() {
        // The multi-round baseline inherits the hash join's skew collapse:
        // all z equal -> one server receives everything in round 0.
        let q = named::two_way_join();
        let n = 1u64 << 10;
        let m = 1024usize;
        let mut rng = Rng::seed_from_u64(7);
        let s1 = generators::single_value_column("S1", 2, m, n, 1, 5, &mut rng);
        let s2 = generators::single_value_column("S2", 2, m, n, 1, 5, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let result = run_multi_round(&db, 16, 17);
        assert!(verify_multi_round(&db, &result));
        let bits = db.value_bits() as u64;
        // Everything (both relations) funnels into one server.
        assert_eq!(result.rounds[0].max_load_bits, 2 * m as u64 * 2 * bits);
    }
}
