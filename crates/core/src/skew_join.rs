//! The two-relation skew join of Section 4.1.
//!
//! For `q(x, y, z) = S1(x, z), S2(y, z)` (more generally: two atoms sharing
//! a non-empty variable set `z`), the algorithm classifies every `z`-value
//! by which side finds it heavy (`m_j(h) > m_j/p`) and handles each class
//! with its own server block, all within one communication round:
//!
//! 1. light values — plain hash join on `z` over all `p` servers;
//! 2. `h ∈ H12` (heavy on both sides) — a `p1(h) × p2(h)` cartesian grid
//!    with `p_h ∝ p · m1(h)m2(h) / Σ K12`, `p1 = √(p_h m1(h)/m2(h))`;
//! 3. `h ∈ H1` (heavy in S1 only) — hash-partition `S1(x, h)` on `x` over
//!    `p_h ∝ p · m1(h) / Σ K1` servers and broadcast the light `S2(y, h)`;
//! 4. `h ∈ H2` — symmetric.
//!
//! The resulting load matches the lower bound
//! `L = max(m1/p, m2/p, L1, L2, L12)` (Eq. 10) up to `O(log p)`.
//! Virtual server blocks are laid out sequentially and folded onto the `p`
//! physical servers round-robin; the total block volume is `Θ(p)`, so the
//! folding adds only a constant factor. Every block is at most `p` virtual
//! servers long, so the fold is injective *within* a block: each grid cell
//! owns a distinct physical server and every join derivation materializes
//! on exactly one server — the invariant aggregate pushdown
//! ([`crate::aggregate`]) relies on for exact multiplicities.

use mpc_data::catalog::Database;
use mpc_data::fastmap::{with_projected_key, FastMap};
use mpc_data::mix64;
use mpc_query::VarSet;
use mpc_sim::backend::Backend;
use mpc_sim::cluster::{Cluster, Router};
use mpc_sim::load::LoadReport;

/// How a heavy `z`-value is handled.
#[derive(Clone, Debug, PartialEq, Eq)]
enum HeavyRoute {
    /// Heavy on both sides: `p1 × p2` grid at `offset`.
    Both { offset: usize, p1: usize, p2: usize },
    /// Heavy in S1 only: partition S1 on its private attributes over `ph`
    /// servers at `offset`, broadcast S2's matching tuples.
    Only1 { offset: usize, ph: usize },
    /// Heavy in S2 only (symmetric).
    Only2 { offset: usize, ph: usize },
}

/// Configuration knobs for [`SkewJoin`] (ablations).
#[derive(Clone, Copy, Debug)]
pub struct SkewJoinConfig {
    /// Handle H12 (heavy-both-sides) values with a `p1 × p2` cartesian grid
    /// (the paper's step 2). When false they fall back to the H1 treatment,
    /// whose broadcast side costs `Θ(m2(h))` per server instead of
    /// `Θ(sqrt(m1(h) m2(h) / p_h))`.
    pub use_grids: bool,
}

impl Default for SkewJoinConfig {
    fn default() -> Self {
        SkewJoinConfig { use_grids: true }
    }
}

/// A planned skew join (Section 4.1).
///
/// ```
/// use mpc_core::skew_join::SkewJoin;
/// use mpc_core::verify;
/// use mpc_data::{generators, Database, Rng};
/// use mpc_query::named;
///
/// // A join with one hot z-value carrying half of S1.
/// let q = named::two_way_join();
/// let mut rng = Rng::seed_from_u64(7);
/// let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![9u64], 512))
///     .chain((0..512u64).map(|i| (vec![100 + i], 1)))
///     .collect();
/// let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, 4096, &mut rng);
/// let s2 = generators::matching("S2", 2, 1024, 4096, &mut rng);
/// let db = Database::new(q, vec![s1, s2], 4096).unwrap();
///
/// let sj = SkewJoin::plan(&db, 16, 3);
/// assert!(sj.num_heavy() >= 1);           // the hot value was classified
/// let (cluster, report) = sj.run(&db);
/// assert!(verify::verify(&db, &cluster).is_complete());
/// // The hot value's tuples were split, not dumped on one server:
/// assert!(report.max_load_tuples() < 512);
/// ```
#[derive(Clone, Debug)]
pub struct SkewJoin {
    p: usize,
    /// Shared-variable attribute positions per atom.
    shared_cols: [Vec<usize>; 2],
    /// Private (non-shared) attribute positions per atom.
    private_cols: [Vec<usize>; 2],
    /// Heavy-hitter route table, probed once per routed tuple with a
    /// stack-projected key (no per-tuple allocation).
    routes: FastMap<Vec<u64>, HeavyRoute>,
    /// Total virtual servers (diagnostics; `Θ(p)`).
    virtual_servers: usize,
    key_light: u64,
    key_private: [u64; 2],
}

impl SkewJoin {
    /// Plan the algorithm from exact statistics of `db` (two-atom query with
    /// a non-empty shared variable set).
    pub fn plan(db: &Database, p: usize, seed: u64) -> SkewJoin {
        SkewJoin::plan_with(db, p, seed, SkewJoinConfig::default())
    }

    /// Plan with an explicit [`SkewJoinConfig`] (ablation hooks), computing
    /// exact shared-variable frequencies from the data.
    pub fn plan_with(db: &Database, p: usize, seed: u64, config: SkewJoinConfig) -> SkewJoin {
        let q = db.query();
        let shared: VarSet = q.atom(0).var_set().intersect(q.atom(1).var_set());
        let shared_cols = [
            mpc_stats::heavy::columns_for(q, 0, shared),
            mpc_stats::heavy::columns_for(q, 1, shared),
        ];
        let f1 = db.relation(0).frequencies(&shared_cols[0]);
        let f2 = db.relation(1).frequencies(&shared_cols[1]);
        SkewJoin::plan_with_frequencies(db, p, seed, config, &f1, &f2)
    }

    /// Plan from externally supplied shared-variable frequency maps — e.g.
    /// the sampling-based estimates of
    /// [`mpc_stats::sampling::sampled_frequencies`]. Classification is
    /// driven entirely by these maps, and because both relations consult the
    /// same per-value route table, *any* maps yield a correct (complete)
    /// algorithm: estimation error only shifts load, exactly the robustness
    /// the paper's approximate-frequency assumption relies on.
    pub fn plan_with_frequencies(
        db: &Database,
        p: usize,
        seed: u64,
        config: SkewJoinConfig,
        f1: &FastMap<Vec<u64>, usize>,
        f2: &FastMap<Vec<u64>, usize>,
    ) -> SkewJoin {
        SkewJoin::plan_from_parts(
            db.query(),
            db.relation(0).len(),
            db.relation(1).len(),
            p,
            seed,
            config,
            f1,
            f2,
        )
    }

    /// Plan without touching any data at all: query shape, cardinalities,
    /// and shared-variable frequency maps are everything the §4.1
    /// algorithm needs — the statistics surface `mpc_core::engine`'s
    /// planner feeds it.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_from_parts(
        q: &mpc_query::Query,
        m1: usize,
        m2: usize,
        p: usize,
        seed: u64,
        config: SkewJoinConfig,
        f1: &FastMap<Vec<u64>, usize>,
        f2: &FastMap<Vec<u64>, usize>,
    ) -> SkewJoin {
        assert_eq!(q.num_atoms(), 2, "skew join handles exactly two relations");
        let shared: VarSet = q.atom(0).var_set().intersect(q.atom(1).var_set());
        assert!(!shared.is_empty(), "the two atoms must share variables");

        let shared_cols = [
            mpc_stats::heavy::columns_for(q, 0, shared),
            mpc_stats::heavy::columns_for(q, 1, shared),
        ];
        let private_cols = [
            (0..q.atom(0).arity())
                .filter(|c| !shared_cols[0].contains(c))
                .collect::<Vec<_>>(),
            (0..q.atom(1).arity())
                .filter(|c| !shared_cols[1].contains(c))
                .collect::<Vec<_>>(),
        ];

        let t1 = m1 as f64 / p as f64;
        let t2 = m2 as f64 / p as f64;

        // Classify heavy hitters.
        let mut h12: Vec<(Vec<u64>, f64, f64)> = Vec::new();
        let mut h1: Vec<(Vec<u64>, f64)> = Vec::new();
        let mut h2: Vec<(Vec<u64>, f64)> = Vec::new();
        for (h, &c1) in f1 {
            let c1 = c1 as f64;
            let c2 = f2.get(h).copied().unwrap_or(0) as f64;
            if c1 > t1 && c2 > t2 {
                h12.push((h.clone(), c1, c2));
            } else if c1 > t1 {
                h1.push((h.clone(), c1));
            }
        }
        for (h, &c2) in f2 {
            let c2f = c2 as f64;
            if c2f > t2 && f1.get(h).copied().unwrap_or(0) as f64 <= t1 {
                h2.push((h.clone(), c2f));
            }
        }
        // Ablation: without grids, H12 hitters degrade to the H1 treatment
        // (partition S1, broadcast S2's heavy tuples) — the configuration
        // exp_ablation_skew measures to show why the grid exists.
        if !config.use_grids {
            for (h, c1, _c2) in h12.drain(..) {
                h1.push((h, c1));
            }
        }
        // Deterministic ordering for reproducible offsets.
        h12.sort_by(|a, b| a.0.cmp(&b.0));
        h1.sort_by(|a, b| a.0.cmp(&b.0));
        h2.sort_by(|a, b| a.0.cmp(&b.0));

        let k12_total: f64 = h12.iter().map(|(_, a, b)| a * b).sum();
        let k1_total: f64 = h1.iter().map(|(_, a)| a).sum();
        let k2_total: f64 = h2.iter().map(|(_, a)| a).sum();

        let mut routes = FastMap::default();
        let mut offset = p; // virtual block 0 = the light hash join
        for (h, c1, c2) in h12 {
            let ph = ((p as f64 * c1 * c2 / k12_total).ceil() as usize).max(1);
            let p1 = (((ph as f64 * c1 / c2).sqrt().ceil()) as usize).clamp(1, ph);
            // `p1 * p2 <= ph <= p` keeps every block no longer than `p`, so
            // the round-robin fold stays injective within a block and each
            // grid cell owns a distinct physical server — the invariant that
            // makes join *derivations* partition across servers (aggregate
            // pushdown counts every derivation exactly once). Rounding the
            // grid down instead of up costs at most a factor 2 in per-cell
            // load.
            let p2 = (ph / p1).max(1);
            routes.insert(h, HeavyRoute::Both { offset, p1, p2 });
            offset += p1 * p2;
        }
        for (h, c1) in h1 {
            let ph = ((p as f64 * c1 / k1_total).ceil() as usize).max(1);
            routes.insert(h, HeavyRoute::Only1 { offset, ph });
            offset += ph;
        }
        for (h, c2) in h2 {
            let ph = ((p as f64 * c2 / k2_total).ceil() as usize).max(1);
            routes.insert(h, HeavyRoute::Only2 { offset, ph });
            offset += ph;
        }

        SkewJoin {
            p,
            shared_cols,
            private_cols,
            routes,
            virtual_servers: offset,
            key_light: mix64(seed, 0x2722_0A95_FE4D_BA1B),
            key_private: [
                mix64(seed, 0x5851_F42D_4C95_7F2D),
                mix64(seed, 0x1405_7B7E_F767_814F),
            ],
        }
    }

    /// Total virtual servers laid out (`Θ(p)`; diagnostics).
    pub fn virtual_servers(&self) -> usize {
        self.virtual_servers
    }

    /// Number of heavy `z` values handled specially.
    pub fn num_heavy(&self) -> usize {
        self.routes.len()
    }

    fn fold(&self, virtual_id: usize) -> usize {
        virtual_id % self.p
    }

    fn hash_private(&self, atom: usize, tuple: &[u64], buckets: usize) -> usize {
        let mut h = self.key_private[atom];
        for &c in &self.private_cols[atom] {
            h = mix64(tuple[c], h);
        }
        (h % buckets as u64) as usize
    }

    /// Execute on `db` with the [`Backend::from_env`] backend.
    pub fn run(&self, db: &Database) -> (Cluster, LoadReport) {
        self.run_on(db, Backend::from_env())
    }

    /// [`SkewJoin::run`] on an explicit execution backend. Results are
    /// bit-identical across backends (`Sequential`, `Threaded(n)`, and the
    /// persistent-pool `Pooled(n)`).
    pub fn run_on(&self, db: &Database, backend: Backend) -> (Cluster, LoadReport) {
        let cluster = Cluster::run_round_on(db, self.p, self, backend);
        let report = cluster.report();
        (cluster, report)
    }
}

impl Router for SkewJoin {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        // The shared-variable key lives on the stack; the route table is
        // probed with the borrowed slice (`Vec<u64>: Borrow<[u64]>`).
        with_projected_key(tuple, &self.shared_cols[atom], |z| {
            match self.routes.get(z) {
                None => {
                    // Light: hash join on z over the first block.
                    let mut h = self.key_light;
                    for &v in z {
                        h = mix64(v, h);
                    }
                    out.push((h % self.p as u64) as usize);
                }
                Some(HeavyRoute::Both { offset, p1, p2 }) => {
                    if atom == 0 {
                        let row = self.hash_private(0, tuple, *p1);
                        for col in 0..*p2 {
                            out.push(self.fold(offset + row * p2 + col));
                        }
                    } else {
                        let col = self.hash_private(1, tuple, *p2);
                        for row in 0..*p1 {
                            out.push(self.fold(offset + row * p2 + col));
                        }
                    }
                }
                Some(HeavyRoute::Only1 { offset, ph }) => {
                    if atom == 0 {
                        let slot = self.hash_private(0, tuple, *ph);
                        out.push(self.fold(offset + slot));
                    } else {
                        for s in 0..*ph {
                            out.push(self.fold(offset + s));
                        }
                    }
                }
                Some(HeavyRoute::Only2 { offset, ph }) => {
                    if atom == 1 {
                        let slot = self.hash_private(1, tuple, *ph);
                        out.push(self.fold(offset + slot));
                    } else {
                        for s in 0..*ph {
                            out.push(self.fold(offset + s));
                        }
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::HashJoinRouter;
    use crate::bounds::skew_join_bound;
    use crate::verify::assert_complete;
    use mpc_data::{generators, Rng};
    use mpc_query::named;

    fn zipf_db(m: usize, theta: f64, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 14;
        let mut rng = Rng::seed_from_u64(seed);
        let d1 = generators::zipf_degrees(m, n, theta);
        let d2 = generators::zipf_degrees(m, n, theta);
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d1, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d2, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    #[test]
    fn correct_on_skew_free_data() {
        let db = zipf_db(2000, 0.0, 1);
        let sj = SkewJoin::plan(&db, 16, 7);
        assert_eq!(sj.num_heavy(), 0, "uniform data should have no heavy z");
        let (cluster, report) = sj.run(&db);
        assert_complete(&db, &cluster);
        assert!((report.replication_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correct_on_heavily_skewed_data() {
        for theta in [1.0f64, 1.5] {
            let db = zipf_db(4000, theta, 2);
            let sj = SkewJoin::plan(&db, 16, 8);
            assert!(
                sj.num_heavy() > 0,
                "theta={theta} should plant heavy hitters"
            );
            let (cluster, _) = sj.run(&db);
            assert_complete(&db, &cluster);
        }
    }

    #[test]
    fn one_sided_heavy_hitter_uses_only1_block() {
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(3);
        let m = 2048usize;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![5u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + i], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
        let s2 = generators::matching("S2", 2, m, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let sj = SkewJoin::plan(&db, 16, 9);
        assert!(matches!(
            sj.routes.get(&vec![5u64]),
            Some(HeavyRoute::Only1 { .. })
        ));
        let (cluster, report) = sj.run(&db);
        assert_complete(&db, &cluster);
        // The heavy S1 side is partitioned: no server sees all m/2 heavy
        // tuples.
        assert!(
            report.max_load_tuples_for_atom(0) < (m / 2) as u64,
            "heavy side not partitioned: {}",
            report.max_load_tuples_for_atom(0)
        );
    }

    #[test]
    fn both_sided_heavy_uses_grid() {
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(4);
        let m = 2048usize;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![5u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + i], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &degrees, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let p = 16usize;
        let sj = SkewJoin::plan(&db, p, 10);
        let Some(HeavyRoute::Both { p1, p2, .. }) = sj.routes.get(&vec![5u64]) else {
            panic!("expected H12 grid for the shared heavy hitter");
        };
        // Symmetric frequencies: a roughly square grid.
        assert!((*p1 as i64 - *p2 as i64).abs() <= 2, "grid {p1}x{p2}");
        let (cluster, report) = sj.run(&db);
        assert_complete(&db, &cluster);
        // Load should be near the bound: L12 = sqrt(m/2 * m/2 / p).
        let bound = ((m / 2) as f64 * (m / 2) as f64 / p as f64).sqrt();
        let measured = report.max_load_tuples() as f64;
        assert!(
            measured <= bound * (p as f64).ln() * 3.0,
            "measured {measured} far above grid bound {bound}"
        );
    }

    #[test]
    fn beats_hash_join_under_skew_and_tracks_eq_10() {
        let p = 16usize;
        let db = zipf_db(6000, 1.2, 5);
        let q = db.query().clone();
        let sj = SkewJoin::plan(&db, p, 11);
        let (c_skew, rep_skew) = sj.run(&db);
        assert_complete(&db, &c_skew);

        let z = q.var_index("z").unwrap();
        let hj = HashJoinRouter::new(&q, VarSet::singleton(z), p, 11);
        let c_hash = Cluster::run_round(&db, p, &hj);
        let rep_hash = c_hash.report();

        assert!(
            rep_skew.max_load_tuples() < rep_hash.max_load_tuples(),
            "skew join {} should beat hash join {}",
            rep_skew.max_load_tuples(),
            rep_hash.max_load_tuples()
        );

        // Eq. (10): measured within polylog of the bound.
        let f1 = db.relation(0).frequencies(&[1]);
        let f2 = db.relation(1).frequencies(&[1]);
        let bound = skew_join_bound(db.relation(0).len(), db.relation(1).len(), &f1, &f2, p);
        let measured = rep_skew.max_load_tuples() as f64;
        let cap = bound.max_tuples() * (p as f64).ln() * 4.0;
        assert!(
            measured <= cap,
            "measured {measured} above Eq.(10) polylog cap {cap} (bound {})",
            bound.max_tuples()
        );
    }

    #[test]
    fn sampled_statistics_plan_is_complete_and_near_exact() {
        // Plan from Bernoulli-sampled frequency estimates instead of exact
        // counts: completeness is unconditional, and the load stays close to
        // the exactly-planned load.
        let db = zipf_db(6000, 1.2, 21);
        let p = 16usize;
        let mut rng = mpc_data::Rng::seed_from_u64(77);
        let sf1 = mpc_stats::sampling::sample_heavy_hitters(db.relation(0), &[1], p, &mut rng);
        let sf2 = mpc_stats::sampling::sample_heavy_hitters(db.relation(1), &[1], p, &mut rng);
        let sampled = SkewJoin::plan_with_frequencies(
            &db,
            p,
            5,
            SkewJoinConfig::default(),
            &sf1.estimates,
            &sf2.estimates,
        );
        let (c_s, r_s) = sampled.run(&db);
        assert_complete(&db, &c_s);

        let exact = SkewJoin::plan(&db, p, 5);
        let (_, r_e) = exact.run(&db);
        let ratio = r_s.max_load_tuples() as f64 / r_e.max_load_tuples() as f64;
        assert!(
            ratio < 3.0,
            "sampled plan {}x worse than exact ({} vs {})",
            ratio,
            r_s.max_load_tuples(),
            r_e.max_load_tuples()
        );
    }

    #[test]
    fn grid_ablation_is_correct_but_slower() {
        // Without H12 grids the algorithm stays correct but the broadcast
        // side of the H12 value inflates the load.
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(13);
        let m = 2048usize;
        let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![5u64], m / 2))
            .chain((0..(m / 2) as u64).map(|i| (vec![100 + i], 1)))
            .collect();
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &degrees, n, &mut rng);
        let db = Database::new(q, vec![s1, s2], n).unwrap();
        let p = 16usize;

        let with_grid = SkewJoin::plan(&db, p, 9);
        let (c1, r1) = with_grid.run(&db);
        assert_complete(&db, &c1);

        let without = SkewJoin::plan_with(&db, p, 9, SkewJoinConfig { use_grids: false });
        let (c2, r2) = without.run(&db);
        assert_complete(&db, &c2);

        assert!(
            r1.max_load_tuples() < r2.max_load_tuples(),
            "grid {} should beat broadcast fallback {}",
            r1.max_load_tuples(),
            r2.max_load_tuples()
        );
    }

    #[test]
    fn derivations_partition_for_exact_aggregates() {
        // Multiplicity exactness, not just answer completeness: per-server
        // folds summed across the cluster must equal the sequential fold.
        // Small p with an H12 grid is where a wrapped (p1*p2 > p) block
        // would double-count derivations.
        use crate::aggregate::{aggregate_cluster, aggregate_oracle};
        use mpc_query::{AggregateOp, AggregateSpec};
        let check = |db: &Database, p: usize, label: &str| {
            let z = db.query().var_index("z").unwrap();
            let x = db.query().var_index("x").unwrap();
            let spec =
                AggregateSpec::new(vec![z], vec![AggregateOp::Count, AggregateOp::Sum(x)]).unwrap();
            let sj = SkewJoin::plan(db, p, 11);
            assert!(sj.num_heavy() > 0, "{label}: no heavy hitters planned");
            let (cluster, _) = sj.run(db);
            assert_eq!(
                aggregate_cluster(&cluster, db.query(), &spec),
                aggregate_oracle(db, &spec),
                "{label}"
            );
        };
        // Planted H12 value at small p: the grid is forced and the old
        // wrapped (div_ceil) layout would fold two of its cells together.
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let m = 2048usize;
        for p in [4usize, 7] {
            let mut rng = Rng::seed_from_u64(4);
            let degrees: Vec<(Vec<u64>, usize)> = std::iter::once((vec![5u64], m / 2))
                .chain((0..(m / 2) as u64).map(|i| (vec![100 + i], 1)))
                .collect();
            let s1 = generators::from_degree_sequence("S1", 2, &[1], &degrees, n, &mut rng);
            let s2 = generators::from_degree_sequence("S2", 2, &[1], &degrees, n, &mut rng);
            let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
            check(&db, p, &format!("planted H12, p={p}"));
        }
        for theta in [1.2f64, 1.5] {
            check(&zipf_db(3000, theta, 9), 16, &format!("zipf theta={theta}"));
        }
    }

    #[test]
    fn virtual_block_volume_is_linear_in_p() {
        for theta in [0.8f64, 1.2, 1.8] {
            let db = zipf_db(4000, theta, 6);
            for p in [8usize, 32, 128] {
                let sj = SkewJoin::plan(&db, p, 12);
                assert!(
                    sj.virtual_servers() <= 6 * p + sj.num_heavy(),
                    "theta={theta} p={p}: {} virtual servers",
                    sj.virtual_servers()
                );
            }
        }
    }
}
