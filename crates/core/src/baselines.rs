//! Baseline one-round algorithms the paper compares against.
//!
//! * [`HashJoinRouter`] — the standard parallel hash join: partition every
//!   relation by a hash of a chosen variable set. Atoms missing some of the
//!   partition variables are broadcast (otherwise answers would be lost).
//!   On skew-free data this is optimal for `τ* = 1` queries; on skewed data
//!   its load degrades to `Ω(m)` (Example 3.3), which is the paper's
//!   motivating failure.
//! * [`FragmentReplicateRouter`] — footnote 1's broadcast join: replicate
//!   one (small) relation everywhere, split every other relation evenly.

use mpc_data::catalog::Database;
use mpc_data::mix64;
use mpc_query::{Query, VarSet};
use mpc_sim::backend::Backend;
use mpc_sim::cluster::{Cluster, Router};
use mpc_sim::load::LoadReport;

/// Partition by hash of the values of `vars`; broadcast atoms that do not
/// contain all of `vars`.
pub struct HashJoinRouter {
    /// Number of servers.
    pub p: usize,
    /// Per-atom attribute positions of the partition variables (`None` =
    /// broadcast this atom).
    plan: Vec<Option<Vec<usize>>>,
    key: u64,
}

impl HashJoinRouter {
    /// Build for `query`, partitioning on `vars` (usually the shared join
    /// variables). `seed` keys the hash function.
    pub fn new(query: &Query, vars: VarSet, p: usize, seed: u64) -> HashJoinRouter {
        assert!(!vars.is_empty(), "hash join needs at least one variable");
        let plan = query
            .atoms()
            .iter()
            .map(|a| {
                if vars.is_subset(a.var_set()) {
                    Some(
                        vars.iter()
                            .map(|v| a.position_of_var(v).expect("subset checked"))
                            .collect(),
                    )
                } else {
                    None
                }
            })
            .collect();
        HashJoinRouter {
            p,
            plan,
            key: mix64(seed, 0x9E3779B97F4A7C15),
        }
    }

    /// Execute the round on `db` with an explicit execution backend
    /// (mirrors [`crate::hypercube::HyperCube::run_on`]; results are
    /// bit-identical across `Sequential`, `Threaded(n)`, and `Pooled(n)`).
    pub fn run_on(&self, db: &Database, backend: Backend) -> (Cluster, LoadReport) {
        let cluster = Cluster::run_round_on(db, self.p, self, backend);
        let report = cluster.report();
        (cluster, report)
    }
}

impl Router for HashJoinRouter {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        match &self.plan[atom] {
            Some(cols) => {
                let mut h = self.key;
                for &c in cols {
                    h = mix64(tuple[c], h);
                }
                out.push((h % self.p as u64) as usize);
            }
            None => out.extend(0..self.p),
        }
    }
}

/// Broadcast one atom's relation to every server; split all other atoms
/// evenly by a hash of the whole tuple.
pub struct FragmentReplicateRouter {
    /// Number of servers.
    pub p: usize,
    /// The atom to broadcast.
    pub broadcast_atom: usize,
    key: u64,
}

impl FragmentReplicateRouter {
    /// Build, broadcasting `broadcast_atom`.
    pub fn new(p: usize, broadcast_atom: usize, seed: u64) -> FragmentReplicateRouter {
        FragmentReplicateRouter {
            p,
            broadcast_atom,
            key: mix64(seed, 0xD6E8_FEB8_6659_FD93),
        }
    }

    /// Execute the round on `db` with an explicit execution backend.
    pub fn run_on(&self, db: &Database, backend: Backend) -> (Cluster, LoadReport) {
        let cluster = Cluster::run_round_on(db, self.p, self, backend);
        let report = cluster.report();
        (cluster, report)
    }
}

impl Router for FragmentReplicateRouter {
    fn route(&self, atom: usize, tuple: &[u64], out: &mut Vec<usize>) {
        if atom == self.broadcast_atom {
            out.extend(0..self.p);
        } else {
            let mut h = self.key;
            for &v in tuple {
                h = mix64(v, h);
            }
            out.push((h % self.p as u64) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Database, Rng};
    use mpc_query::named;
    use mpc_sim::cluster::Cluster;

    fn join_db(m: usize, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let mut rng = Rng::seed_from_u64(seed);
        let s1 = generators::uniform("S1", 2, m, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    fn expect_answers(db: &Database) -> mpc_data::AnswerSet {
        let mut ans = mpc_data::join_database(db);
        ans.sort_dedup();
        ans
    }

    #[test]
    fn hash_join_on_z_is_correct_with_no_replication() {
        let db = join_db(1000, 1);
        let q = db.query().clone();
        let z = q.var_index("z").unwrap();
        let router = HashJoinRouter::new(&q, VarSet::singleton(z), 8, 99);
        let cluster = Cluster::run_round(&db, 8, &router);
        assert_eq!(cluster.all_answers(&q), expect_answers(&db));
        assert!((cluster.report().replication_rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hash_join_on_private_var_broadcasts_other_side() {
        // Partitioning on x forces S2 (no x) to broadcast.
        let db = join_db(300, 2);
        let q = db.query().clone();
        let x = q.var_index("x").unwrap();
        let p = 4usize;
        let router = HashJoinRouter::new(&q, VarSet::singleton(x), p, 5);
        let cluster = Cluster::run_round(&db, p, &router);
        assert_eq!(cluster.all_answers(&q), expect_answers(&db));
        let rep = cluster.report();
        // S1 split (300 tuples total), S2 broadcast (300 p times).
        assert_eq!(rep.total_tuples(), 300 + 300 * p as u64);
    }

    #[test]
    fn hash_join_collapses_under_skew() {
        // All z equal: everything lands on one server.
        let q = named::two_way_join();
        let n = 1u64 << 12;
        let m = 1024usize;
        let mut rng = Rng::seed_from_u64(3);
        let s1 = generators::single_value_column("S1", 2, m, n, 1, 7, &mut rng);
        let s2 = generators::single_value_column("S2", 2, m, n, 1, 7, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        let z = q.var_index("z").unwrap();
        let router = HashJoinRouter::new(&q, VarSet::singleton(z), 16, 4);
        let cluster = Cluster::run_round(&db, 16, &router);
        let rep = cluster.report();
        assert_eq!(rep.max_load_tuples(), 2 * m as u64);
        // Still correct, just catastrophically unbalanced.
        assert_eq!(cluster.all_answers(&q), expect_answers(&db));
    }

    #[test]
    fn fragment_replicate_is_correct() {
        let db = join_db(400, 5);
        let q = db.query().clone();
        let p = 8usize;
        let router = FragmentReplicateRouter::new(p, 1, 11);
        let cluster = Cluster::run_round(&db, p, &router);
        assert_eq!(cluster.all_answers(&q), expect_answers(&db));
        let rep = cluster.report();
        // S1 split once, S2 replicated p times.
        assert_eq!(rep.total_tuples(), 400 + 400 * p as u64);
        // S1 shards are balanced within a generous factor.
        let max0 = rep.max_load_tuples_for_atom(0);
        assert!(max0 < 3 * (400 / p as u64 + 1), "S1 imbalance: {max0}");
    }
}
