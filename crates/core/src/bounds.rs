//! Every bound the paper states, as executable formulas.
//!
//! * `K(u, M)` and `L(u, M, p)` — Eqs. (6)–(7);
//! * `L_lower = max_{u ∈ pk(q)} L(u, M, p)` — Theorems 3.5/3.6;
//! * `L_x(u, M, p)` over saturating packings of residual queries —
//!   Theorem 4.7 (Eq. 12);
//! * the two-relation skew-join bound — Eq. (10);
//! * the MapReduce replication-rate bound — Theorem 5.1;
//! * the space exponent for given statistics — Section 3.3.
//!
//! All bounds are "up to a constant `c` < 1 and polylog(p) factors"; the
//! functions below return the clean algebraic expression (constant 1), which
//! is the quantity the experiments compare measured loads against.

use mpc_query::packing::pk;
use mpc_query::residual::saturating_packing_vertices;
use mpc_query::{Packing, Query, VarSet};
use mpc_stats::cardinality::SimpleStatistics;
use mpc_stats::degree::{sum_over_assignments, DegreeStatistics};

/// `K(u, M) = Π_j M_j^{u_j}` (Eq. 6), computed in log space.
pub fn k_value(u: &[f64], m_bits: &[f64]) -> f64 {
    assert_eq!(u.len(), m_bits.len());
    let log_k: f64 = u
        .iter()
        .zip(m_bits)
        .map(|(&uj, &mj)| {
            if uj == 0.0 {
                0.0
            } else {
                uj * mj.max(f64::MIN_POSITIVE).ln()
            }
        })
        .sum();
    log_k.exp()
}

/// `L(u, M, p) = (K(u, M) / p)^{1/u}` with `u = Σ_j u_j` (Eq. 7).
/// Returns 0 for the degenerate `u = 0`.
pub fn l_value(u: &[f64], m_bits: &[f64], p: usize) -> f64 {
    let total: f64 = u.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let log_l = (k_value(u, m_bits).ln() - (p as f64).ln()) / total;
    log_l.exp()
}

/// The lower bound `L_lower = max_u L(u, M, p)` over packing-polytope
/// vertices (Theorem 3.5 via Theorem 3.6), together with the maximizing
/// packing.
///
/// Note on `pk(q)`: Theorem 3.6 states the maximum over the *non-dominated*
/// vertices `pk(q)`, which is valid after the paper's broadcast
/// preprocessing (every `M_j > max_j M_j / p`). For arbitrary statistics a
/// dominated vertex can win — e.g. the cartesian product `S1 × S2 × S3`
/// with `M_1 <= M_3/p` has its optimum at `(0,1,1)`, dominated by
/// `(1,1,1)`, because adding a broadcastable relation to the packing
/// *lowers* `L`. Maximizing over all vertices is always correct (every
/// packing gives a valid lower bound) and always equals the LP (5) optimum.
pub fn l_lower(q: &Query, stats: &SimpleStatistics, p: usize) -> (f64, Packing) {
    let m_bits = stats.bit_sizes_f64();
    let vertices = mpc_query::packing::packing_vertices(q);
    let mut best_val = f64::NEG_INFINITY;
    let mut best = None;
    for v in vertices {
        let val = l_value(&v.to_f64(), &m_bits, p);
        if val > best_val {
            best_val = val;
            best = Some(v);
        }
    }
    (
        best_val,
        best.expect("pk(q) is never empty for a valid query"),
    )
}

/// The per-vertex table of Example 3.7: every `u ∈ pk(q)` with its
/// `L(u, M, p)`, sorted descending by load.
pub fn packing_load_table(q: &Query, stats: &SimpleStatistics, p: usize) -> Vec<(Packing, f64)> {
    let m_bits = stats.bit_sizes_f64();
    let mut rows: Vec<(Packing, f64)> = pk(q)
        .into_iter()
        .map(|v| {
            let val = l_value(&v.to_f64(), &m_bits, p);
            (v, val)
        })
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite loads"));
    rows
}

/// `L_x(u, M, p) = (Σ_h K(u, M(h)) / p)^{1/u}` (Eq. 12) for one saturating
/// packing `u` of the residual query `q_x`, evaluated from exact
/// x-statistics. `M_j(h_j) = a_j · m_j(h_j) · log n` per the paper's bit
/// accounting. Returns 0 for `Σ u_j = 0`.
pub fn l_x_value(
    q: &Query,
    deg: &DegreeStatistics,
    u: &[f64],
    p: usize,
    value_bits: u32,
    domain: u64,
) -> f64 {
    let total: f64 = u.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let active: Vec<usize> = (0..q.num_atoms()).filter(|&j| u[j] > 0.0).collect();
    let sum = sum_over_assignments(deg, &active, domain, |j, freq| {
        let bits = q.atom(j).arity() as f64 * freq as f64 * value_bits as f64;
        if freq == 0 {
            0.0
        } else {
            bits.powf(u[j])
        }
    });
    ((sum / p as f64).ln() / total).exp()
}

/// The Theorem 4.7 lower bound for one variable set `x`: the maximum of
/// `L_x(u, M, p)` over the vertices of the saturated residual polytope.
/// Returns `None` when no packing of `q_x` saturates `x`.
pub fn residual_lower_bound(
    q: &Query,
    deg: &DegreeStatistics,
    p: usize,
    value_bits: u32,
    domain: u64,
) -> Option<(f64, Packing)> {
    let vertices = saturating_packing_vertices(q, deg.x);
    let mut best: Option<(f64, Packing)> = None;
    for v in vertices {
        let val = l_x_value(q, deg, &v.to_f64(), p, value_bits, domain);
        if val.is_finite() && best.as_ref().is_none_or(|(bv, _)| val > *bv) {
            best = Some((val, v));
        }
    }
    best
}

/// The overall skewed-data lower bound: `max_x` of [`residual_lower_bound`]
/// over all variable subsets `x` (including `x = ∅`, which recovers
/// Theorem 3.5). The caller supplies a function that materializes the
/// x-statistics for each `x` (typically `|x| <= max_vars` for tractability).
pub fn max_residual_lower_bound(
    q: &Query,
    p: usize,
    value_bits: u32,
    domain: u64,
    max_vars: usize,
    mut stats_for: impl FnMut(VarSet) -> DegreeStatistics,
) -> (f64, VarSet, Packing) {
    let mut best_val = f64::NEG_INFINITY;
    let mut best_x = VarSet::EMPTY;
    let mut best_u: Option<Packing> = None;
    for x in q.all_vars().subsets() {
        if x.len() > max_vars {
            continue;
        }
        let deg = stats_for(x);
        if let Some((val, u)) = residual_lower_bound(q, &deg, p, value_bits, domain) {
            if val > best_val {
                best_val = val;
                best_x = x;
                best_u = Some(u);
            }
        }
    }
    (
        best_val,
        best_x,
        best_u.expect("x = ∅ always yields a bound"),
    )
}

/// The Section 4.1 skew-join bound (Eq. 10):
/// `L = max(M1/p, M2/p, L1, L2, L12)` in bits, where
/// `L12 = sqrt(Σ_{h∈H12} M1(h)M2(h) / p)`, `Lj = sqrt(Σ_{h∈Hj} Mj(h) / p)`
/// ... the paper states these in tuples; we keep tuple units for `L1`,`L2`
/// (they come from cartesian products against broadcast sides) and convert
/// to bits uniformly at the end using each side's tuple width.
///
/// `h1`, `h2` are the heavy-hitter frequency maps of the shared variables in
/// S1 and S2 respectively; `m1`, `m2` the cardinalities.
#[derive(Clone, Debug)]
pub struct SkewJoinBound {
    /// `m1/p` in tuples.
    pub scan1: f64,
    /// `m2/p` in tuples.
    pub scan2: f64,
    /// `sqrt(Σ_{h ∈ H12} m1(h) m2(h) / p)` in tuples.
    pub l12: f64,
    /// `sqrt(Σ_{h ∈ H1} m1(h) / p)` in tuples.
    pub l1: f64,
    /// `sqrt(Σ_{h ∈ H2} m2(h) / p)` in tuples.
    pub l2: f64,
}

impl SkewJoinBound {
    /// The combined bound `max(...)` in tuples.
    pub fn max_tuples(&self) -> f64 {
        self.scan1
            .max(self.scan2)
            .max(self.l12)
            .max(self.l1)
            .max(self.l2)
    }
}

/// Compute Eq. (10) from the two shared-variable frequency maps.
pub fn skew_join_bound(
    m1: usize,
    m2: usize,
    freqs1: &mpc_data::FastMap<Vec<u64>, usize>,
    freqs2: &mpc_data::FastMap<Vec<u64>, usize>,
    p: usize,
) -> SkewJoinBound {
    let t1 = m1 as f64 / p as f64;
    let t2 = m2 as f64 / p as f64;
    let heavy1 = |h: &Vec<u64>| freqs1.get(h).map_or(0.0, |&f| f as f64) > t1;
    let heavy2 = |h: &Vec<u64>| freqs2.get(h).map_or(0.0, |&f| f as f64) > t2;
    let mut k12 = 0.0f64;
    let mut k1 = 0.0f64;
    let mut k2 = 0.0f64;
    for (h, &f1) in freqs1 {
        let h1 = heavy1(h);
        let h2 = heavy2(h);
        if h1 && h2 {
            k12 += f1 as f64 * freqs2[h] as f64;
        } else if h1 {
            k1 += f1 as f64;
        }
    }
    for (h, &f2) in freqs2 {
        if heavy2(h) && !heavy1(h) {
            k2 += f2 as f64;
        }
    }
    SkewJoinBound {
        scan1: t1,
        scan2: t2,
        l12: (k12 / p as f64).sqrt(),
        l1: (k1 / p as f64).sqrt(),
        l2: (k2 / p as f64).sqrt(),
    }
}

/// Theorem 5.1: lower bound on the replication rate of any MapReduce-style
/// algorithm with reducer size `L` bits:
/// `r >= (L / Σ_j M_j) · max_u Π_j (M_j / L)^{u_j}`
/// over packings with total weight `u >= 1` (the theorem's proof uses
/// `u >= 1` for the optimal packing; sub-unit packings only yield the
/// trivial `r >= L/ΣM`). The paper's constant `c^u` is omitted — shapes,
/// not constants.
pub fn replication_rate_bound(q: &Query, stats: &SimpleStatistics, reducer_bits: f64) -> f64 {
    let m_bits = stats.bit_sizes_f64();
    let total: f64 = m_bits.iter().sum();
    let best = mpc_query::packing::packing_vertices(q)
        .into_iter()
        .filter(|u| u.value() >= mpc_lp::Rat::ONE)
        .map(|u| {
            let uf = u.to_f64();
            let log_prod: f64 = uf
                .iter()
                .zip(&m_bits)
                .map(|(&uj, &mj)| uj * (mj / reducer_bits).max(f64::MIN_POSITIVE).ln())
                .sum();
            log_prod.exp()
        })
        .fold(0.0f64, f64::max);
    reducer_bits / total * best
}

/// Minimum number of reducers implied by Theorem 5.1:
/// `p >= r · |I| / L` (Section 5; for equal-size triangles this is
/// `(M/L)^{3/2}` as in Example 5.2).
pub fn min_reducers(q: &Query, stats: &SimpleStatistics, reducer_bits: f64) -> f64 {
    let r = replication_rate_bound(q, stats, reducer_bits);
    r * stats.total_bits() as f64 / reducer_bits
}

/// Lemma A.1: the expected number of answers over the uniform probability
/// space of the lower bounds (each `S_j` a uniform random subset of
/// `[n]^{a_j}` of size `m_j`):
///
/// ```text
/// E[|q(I)|] = n^{k-a} · Π_j m_j
/// ```
///
/// Computed in log space; returns `f64::INFINITY` only on absurd inputs.
pub fn expected_answers(q: &Query, cardinalities: &[usize], n: u64) -> f64 {
    assert_eq!(cardinalities.len(), q.num_atoms());
    let k = q.num_vars() as f64;
    let a = q.total_arity() as f64;
    let log = (k - a) * (n as f64).ln()
        + cardinalities
            .iter()
            .map(|&m| (m.max(1) as f64).ln())
            .sum::<f64>();
    log.exp()
}

/// The exact number of bits needed to represent a uniformly chosen
/// `m`-subset of `[n]^a`: `log2 C(n^a, m)` (the representation size the
/// lower-bound proofs charge — Appendix A: "the number of bits necessary to
/// represent the relation is log (n^{a_j} choose m_j)"). Computed as
/// `Σ_{i<m} log2((N - i)/(i + 1))` in f64.
pub fn exact_bit_size(n: u64, arity: usize, m: usize) -> f64 {
    let log2_n_a = arity as f64 * (n as f64).log2();
    // For the regimes we care about (m << n^a) use the exact telescoping
    // sum; it is O(m) and stable.
    let n_a = (n as f64).powi(arity as i32);
    let mut bits = 0.0f64;
    for i in 0..m {
        bits += (n_a - i as f64).log2() - ((i + 1) as f64).log2();
    }
    debug_assert!(bits <= m as f64 * log2_n_a + 1.0);
    bits
}

/// The space exponent for given statistics (Section 3.3): writing
/// `M = max_j M_j` and `M_j = M / p^{ν_j}`, the optimal load is `M / p^{v*}`
/// with `v* = min_{u ∈ pk(q)} (Σ_j ν_j u_j + 1) / Σ_j u_j`, and the space
/// exponent is `1 - v*`.
pub fn space_exponent(q: &Query, stats: &SimpleStatistics, p: usize) -> f64 {
    let m_bits = stats.bit_sizes_f64();
    let m_max = m_bits.iter().fold(0.0f64, |a, &b| a.max(b));
    let logp = (p as f64).ln();
    let nu: Vec<f64> = m_bits
        .iter()
        .map(|&mj| ((m_max / mj.max(f64::MIN_POSITIVE)).ln() / logp).min(1.0))
        .collect();
    let v_star = mpc_query::packing::packing_vertices(q)
        .into_iter()
        .filter_map(|u| {
            let uf = u.to_f64();
            let total: f64 = uf.iter().sum();
            if total <= 0.0 {
                return None;
            }
            let weighted: f64 = uf.iter().zip(&nu).map(|(&uj, &nuj)| uj * nuj).sum();
            Some((weighted + 1.0) / total)
        })
        .fold(f64::INFINITY, f64::min);
    1.0 - v_star
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Database, Rng};
    use mpc_query::named;
    use mpc_stats::degree::degree_statistics;

    fn stats(arities: &[usize], cards: &[usize]) -> SimpleStatistics {
        SimpleStatistics::synthetic(arities, cards.to_vec(), 1 << 20)
    }

    #[test]
    fn k_and_l_values() {
        // Equal sizes M: L((1/2,1/2,1/2), M, p) = M / p^{2/3}.
        let m = 1 << 20;
        let m_bits = vec![m as f64; 3];
        let u = vec![0.5; 3];
        let p = 64usize;
        let expected = m as f64 / (p as f64).powf(2.0 / 3.0);
        let got = l_value(&u, &m_bits, p);
        assert!((got - expected).abs() / expected < 1e-12);
        // Singleton packing: L = M/p.
        let got1 = l_value(&[1.0, 0.0, 0.0], &m_bits, p);
        assert!((got1 - m as f64 / 64.0).abs() < 1e-6);
    }

    #[test]
    fn example_3_7_table_for_triangle() {
        // Example 3.7's four rows: (1/2,1/2,1/2) -> (M1M2M3)^{1/3}/p^{2/3},
        // unit vectors -> M_j/p.
        let q = named::cycle(3);
        let st = stats(&[2, 2, 2], &[1 << 16, 1 << 18, 1 << 14]);
        let p = 64usize;
        let table = packing_load_table(&q, &st, p);
        assert_eq!(table.len(), 4);
        let m: Vec<f64> = st.bit_sizes_f64();
        let expect_half = (m[0] * m[1] * m[2]).powf(1.0 / 3.0) / (p as f64).powf(2.0 / 3.0);
        let found_half = table
            .iter()
            .find(|(u, _)| u.to_f64() == vec![0.5, 0.5, 0.5])
            .expect("fractional vertex present");
        assert!((found_half.1 - expect_half).abs() / expect_half < 1e-9);
        for j in 0..3 {
            let mut unit = vec![0.0; 3];
            unit[j] = 1.0;
            let found = table
                .iter()
                .find(|(u, _)| u.to_f64() == unit)
                .expect("unit vertex present");
            let expect = m[j] / p as f64;
            assert!((found.1 - expect).abs() / expect < 1e-9);
        }
        // l_lower is the table's max.
        let (lv, _) = l_lower(&q, &st, p);
        assert!((lv - table[0].1).abs() < 1e-9);
    }

    #[test]
    fn equal_cardinality_lower_bound_is_m_over_p_tau() {
        // When all M_j = M: L_lower = M / p^{1/τ*} (Section 3.2 discussion).
        for (q, tau) in [
            (named::cycle(3), 1.5),
            (named::chain(3), 2.0),
            (named::cartesian(2), 2.0),
            (named::two_way_join(), 1.0),
        ] {
            let st = stats(
                &vec![q.atom(0).arity(); q.num_atoms()],
                &vec![1 << 16; q.num_atoms()],
            );
            let p = 64usize;
            let (lv, _) = l_lower(&q, &st, p);
            let m = st.bit_sizes_f64()[0];
            let expected = m / (p as f64).powf(1.0 / tau);
            assert!(
                (lv - expected).abs() / expected < 1e-9,
                "{}: got {lv}, expected {expected}",
                q.name()
            );
        }
    }

    #[test]
    fn cartesian_bound_is_geometric_mean() {
        // Section 1: L = (m1 m2 / p)^{1/2} for the 2-way product.
        let q = named::cartesian(2);
        let st = stats(&[1, 1], &[1 << 12, 1 << 14]);
        let p = 16usize;
        let (lv, u) = l_lower(&q, &st, p);
        let m = st.bit_sizes_f64();
        let expected = (m[0] * m[1] / p as f64).sqrt();
        assert!((lv - expected).abs() / expected < 1e-9);
        assert_eq!(u.to_f64(), vec![1.0, 1.0]);
    }

    #[test]
    fn residual_bound_example_4_8_join() {
        // q = S1(x,z), S2(y,z), x = {z}: bound = sqrt(Σ_h M1(h)M2(h)/p).
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(1);
        let n = 1u64 << 12;
        let d: Vec<(Vec<u64>, usize)> = vec![(vec![1], 100), (vec![2], 50), (vec![3], 10)];
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d, n, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        let z = q.var_index("z").unwrap();
        let deg = degree_statistics(&db, VarSet::singleton(z));
        let p = 16usize;
        let bits = db.value_bits();
        let (val, u) = residual_lower_bound(&q, &deg, p, bits, n).unwrap();
        // Manual: Σ_h M1(h)M2(h) with M_j(h) = 2 * m_j(h) * bits.
        let term = |f: f64| 2.0 * f * bits as f64;
        let sum = term(100.0) * term(100.0) + term(50.0) * term(50.0) + term(10.0) * term(10.0);
        let expected = (sum / p as f64).sqrt();
        assert!(
            (val - expected).abs() / expected < 1e-9,
            "got {val} vs {expected}"
        );
        assert_eq!(u.to_f64(), vec![1.0, 1.0]);
    }

    #[test]
    fn residual_bound_dominates_cardinality_bound_under_skew() {
        // With a massive heavy hitter, the x={z} bound must exceed the
        // cardinality-only bound (x = ∅).
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(2);
        let n = 1u64 << 12;
        let m = 4096usize;
        let d: Vec<(Vec<u64>, usize)> = vec![(vec![1], m)];
        let s1 = generators::from_degree_sequence("S1", 2, &[1], &d, n, &mut rng);
        let s2 = generators::from_degree_sequence("S2", 2, &[1], &d, n, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        let p = 64usize;
        let bits = db.value_bits();
        let st = SimpleStatistics::of(&db);
        let (flat, _) = l_lower(&q, &st, p);
        let z = q.var_index("z").unwrap();
        let deg = degree_statistics(&db, VarSet::singleton(z));
        let (skewed, _) = residual_lower_bound(&q, &deg, p, bits, n).unwrap();
        assert!(
            skewed > 2.0 * flat,
            "skewed bound {skewed} should dominate flat {flat}"
        );
    }

    #[test]
    fn max_residual_bound_includes_empty_x() {
        let q = named::two_way_join();
        let mut rng = Rng::seed_from_u64(3);
        let n = 1u64 << 12;
        let s1 = generators::matching("S1", 2, 1024, n, &mut rng);
        let s2 = generators::matching("S2", 2, 1024, n, &mut rng);
        let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
        let p = 16usize;
        let bits = db.value_bits();
        let (val, x, _) =
            max_residual_lower_bound(&q, p, bits, n, 2, |x| degree_statistics(&db, x));
        // Skew-free: the flat bound (x = ∅ or an equivalent) should win or
        // tie; the value must match M/p up to the residual refinement.
        let st = SimpleStatistics::of(&db);
        let (flat, _) = l_lower(&q, &st, p);
        assert!(
            val >= flat - 1e-9,
            "max residual {val} below flat {flat} (x={x})"
        );
    }

    #[test]
    fn skew_join_bound_matches_section_4_1_manual() {
        use mpc_data::FastMap;
        let p = 4usize;
        let (m1, m2) = (100usize, 100usize);
        // threshold = 25. h=1: heavy both (50, 40). h=2: heavy in S1 only
        // (30, 5). h=3: heavy in S2 only (10, 55). h=4: light (10, 0).
        let f1: FastMap<Vec<u64>, usize> = [
            (vec![1u64], 50usize),
            (vec![2], 30),
            (vec![3], 10),
            (vec![4], 10),
        ]
        .into_iter()
        .collect();
        let f2: FastMap<Vec<u64>, usize> = [(vec![1u64], 40usize), (vec![2], 5), (vec![3], 55)]
            .into_iter()
            .collect();
        let b = skew_join_bound(m1, m2, &f1, &f2, p);
        assert!((b.scan1 - 25.0).abs() < 1e-12);
        assert!((b.l12 - (50.0f64 * 40.0 / 4.0).sqrt()).abs() < 1e-9);
        assert!((b.l1 - (30.0f64 / 4.0).sqrt()).abs() < 1e-9);
        assert!((b.l2 - (55.0f64 / 4.0).sqrt()).abs() < 1e-9);
        assert!((b.max_tuples() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn replication_rate_example_5_2() {
        // Triangles with equal sizes M: r >= sqrt(M/L) and reducers >=
        // (M/L)^{3/2} (Example 5.2). Our constant-free versions give exactly
        // those with the (1/2,1/2,1/2) packing: r = L/3M * (M/L)^{3/2}
        // = sqrt(M/L)/3.
        let q = named::cycle(3);
        let m = (1u64 << 24) as f64;
        let st = SimpleStatistics {
            cardinalities: vec![1 << 20; 3],
            bit_sizes: vec![m as u64; 3],
            value_bits: 8,
            domain: 1 << 8,
        };
        let l = m / 64.0;
        let r = replication_rate_bound(&q, &st, l);
        let expected = (m / l).sqrt() / 3.0;
        assert!(
            (r - expected).abs() / expected < 1e-9,
            "r {r} vs {expected}"
        );
        let reducers = min_reducers(&q, &st, l);
        let expected_p = expected * 3.0 * m / l;
        assert!((reducers - expected_p).abs() / expected_p < 1e-9);
        // Shape: (M/L)^{3/2} up to the constant 3.
        assert!((reducers - (m / l).powf(1.5)).abs() / reducers < 1e-9);
    }

    #[test]
    fn expected_answers_matches_lemma_a1_empirically() {
        // Average |q(I)| over seeds vs n^{k-a} Π m_j for the two-way join.
        let q = named::two_way_join();
        let n = 64u64;
        let (m1, m2) = (600usize, 500usize);
        let formula = expected_answers(&q, &[m1, m2], n);
        assert!((formula - m1 as f64 * m2 as f64 / n as f64).abs() < 1e-6);
        let mut total = 0u64;
        let seeds = 30u64;
        for seed in 0..seeds {
            let mut rng = Rng::seed_from_u64(seed);
            let s1 = generators::uniform("S1", 2, m1, n, &mut rng);
            let s2 = generators::uniform("S2", 2, m2, n, &mut rng);
            let db = Database::new(q.clone(), vec![s1, s2], n).unwrap();
            total += mpc_data::join_database_count(&db);
        }
        let avg = total as f64 / seeds as f64;
        assert!(
            (avg - formula).abs() < formula * 0.1,
            "avg {avg} vs Lemma A.1 {formula}"
        );
    }

    #[test]
    fn expected_answers_triangle() {
        // C3: k=3, a=6 => E = m^3 / n^3.
        let q = named::cycle(3);
        let n = 128u64;
        let m = 1000usize;
        let e = expected_answers(&q, &[m; 3], n);
        let manual = (m as f64 / n as f64).powi(3);
        assert!((e - manual).abs() / manual < 1e-9);
    }

    #[test]
    fn exact_bit_size_bounds() {
        // m (a - δ) log n <= log C(n^a, m) <= m a log n for m <= n^δ
        // (the inequality the constant c in Theorem 3.5 rests on).
        let n = 1u64 << 10;
        let a = 2usize;
        let m = 1usize << 10; // m = n => δ = 1/2 (m = n^{δ·a} with δa = 1)
        let exact = exact_bit_size(n, a, m);
        let upper = m as f64 * a as f64 * (n as f64).log2();
        assert!(exact <= upper);
        // log C(N, m) >= m log(N/m) = m (a log n - log m) = m log n here.
        let lower = m as f64 * (n as f64).log2();
        assert!(exact >= lower, "exact {exact} below {lower}");
        // And much bigger than trivial.
        assert!(exact > 0.0);
    }

    #[test]
    fn space_exponent_equal_sizes() {
        // Equal sizes: v* = 1/τ*, ε = 1 - 1/τ*. For C3: 1 - 2/3 = 1/3.
        let q = named::cycle(3);
        let st = stats(&[2, 2, 2], &[1 << 16; 3]);
        let eps = space_exponent(&q, &st, 64);
        assert!((eps - (1.0 - 2.0 / 3.0)).abs() < 1e-9, "eps {eps}");
        // Two-way join: τ* = 1, ε = 0 (perfectly parallelizable).
        let j = named::two_way_join();
        let stj = stats(&[2, 2], &[1 << 16; 2]);
        assert!(space_exponent(&j, &stj, 64).abs() < 1e-9);
    }

    #[test]
    fn space_exponent_skewed_cardinalities_shrinks() {
        // If two of the triangle's relations are tiny, broadcasting them is
        // nearly free and the third is just scanned: exponent goes to ~0.
        let q = named::cycle(3);
        let p = 1usize << 12;
        let st = stats(&[2, 2, 2], &[1 << 24, 1 << 6, 1 << 6]);
        let eps = space_exponent(&q, &st, p);
        let st_eq = stats(&[2, 2, 2], &[1 << 24; 3]);
        let eps_eq = space_exponent(&q, &st_eq, p);
        assert!(eps < eps_eq, "skewed {eps} should be below equal {eps_eq}");
    }
}
