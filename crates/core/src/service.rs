//! The resident query service: a long-lived catalog with memoized
//! statistics, a fingerprinted plan cache, and an incremental ingest path.
//!
//! A [`Service`] owns named relations behind [`Arc`] handles and keeps
//! [`IncrementalStats`] per relation, so the per-query pipeline becomes:
//!
//! 1. canonicalize the query ([`Query::canonical`]) and look its
//!    [`PlanKey`] up in the plan cache;
//! 2. compare the entry's stored [`Stats::fingerprint`] with the current
//!    one (heavy-hitter membership over [`planning_projections`] plus
//!    power-of-two cardinality buckets — `O(heavy hitters)`, no scan);
//! 3. on a hit, skip `Engine` planning entirely and execute the cached
//!    [`Plan`] against a `Database` assembled from `Arc` clones (no tuple
//!    copies, no validation rescans);
//! 4. on a miss, plan once from the memoized statistics and cache the
//!    result.
//!
//! [`Service::append`] folds new tuples into the relation and its
//! statistics in place (`O(appended × tracked projections)`) and
//! re-fingerprints only the cached plans whose query references the
//! appended relation, dropping exactly the stale ones.
//!
//! Why a stale-but-membership-equal plan is safe: every algorithm in the
//! menu computes the same answer set on any database (that is what
//! `Plan::execute`'s verification contract says), so caching can only ever
//! shift *load*, never change *answers*. The fingerprint is designed to
//! catch precisely the drift that would change the planner's mind — a
//! heavy hitter appearing on a shared variable (flips
//! [`Algorithm::Auto`] between HyperCube
//! and the §4 algorithms) or a cardinality changing by more than 2×.
//!
//! ```
//! use mpc_core::service::{CacheStatus, Service};
//! use mpc_data::relation::Relation;
//! use mpc_query::parse_query;
//!
//! let mut svc = Service::new(1 << 16).with_defaults(16, 7);
//! svc.load(Relation::from_rows("S1", 2, &[&[1, 10], &[2, 10], &[3, 20]]))
//!     .unwrap();
//! svc.load(Relation::from_rows("S2", 2, &[&[8, 10], &[9, 30]]))
//!     .unwrap();
//!
//! let q = parse_query("S1(x,z), S2(y,z)").unwrap();
//! let first = svc.query(&q).unwrap();
//! assert_eq!(first.cache_status(), CacheStatus::Miss);
//! assert_eq!(first.answers().len(), 2); // (1,10,8), (2,10,8)
//!
//! // Same query again: planning is skipped.
//! let again = svc.query(&q).unwrap();
//! assert_eq!(again.cache_status(), CacheStatus::Hit);
//! assert_eq!(again.answers(), first.answers());
//!
//! // Ingest without rebuilding; answers stay exact.
//! svc.append("S2", &[7, 20]).unwrap();
//! assert_eq!(svc.query(&q).unwrap().answers().len(), 3);
//! assert_eq!(svc.counters().hits, 1);
//! ```

use crate::engine::{
    planning_projections, sketch_capacity, Algorithm, Engine, Plan, PlanKey, RunOutcome, Stats,
    StatsMode,
};
use mpc_data::answers::AnswerSet;
use mpc_data::budget::{BudgetExceeded, BudgetKind, QueryBudget};
use mpc_data::catalog::Database;
use mpc_data::fastmap::FastMap;
use mpc_data::relation::Relation;
use mpc_data::rng::mix64;
use mpc_query::aggregate::AggregateSpec;
use mpc_query::Query;
use mpc_sim::backend::Backend;
use mpc_stats::cardinality::SimpleStatistics;
use mpc_stats::incremental::IncrementalStats;
use mpc_stats::sketch::{FreqEstimate, RelationSketch};
use std::fmt;
use std::sync::Arc;

/// Errors raised by the service surface — the one typed vocabulary the
/// wire protocol renders (`err {Display}`), replacing the ad-hoc strings
/// that used to thread through engine/service/wire. The fault-containment
/// boundary in [`Service::query_spec`] guarantees every query resolves to
/// `Ok` or one of these: worker panics become [`ServiceError::Internal`]
/// (or [`ServiceError::Unsupported`] for known capability limits), budget
/// trips become [`ServiceError::Timeout`] / [`ServiceError::LimitExceeded`],
/// and the service stays usable for the next query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServiceError {
    /// The query (or its options) failed to parse at the wire layer.
    Parse(String),
    /// A query references a relation that was never loaded.
    NotLoaded(String),
    /// An atom's arity (or an appended tuple batch) disagrees with the
    /// registered relation.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Registered arity.
        expected: usize,
        /// Offending arity.
        got: usize,
    },
    /// A tuple value falls outside the service domain.
    ValueOutOfDomain {
        /// Relation name.
        relation: String,
        /// Offending value.
        value: u64,
        /// The service domain `n`.
        domain: u64,
    },
    /// The query asks for something the engine recognizably cannot do:
    /// an invalid aggregate head (bad variable indices, or pinned to an
    /// algorithm that does not materialize each join derivation exactly
    /// once), or a relation past the u32 row-id space of the join index.
    Unsupported(String),
    /// A worker panicked mid-query. The panic was contained at the
    /// service boundary; the catalog, plan cache, and backend are intact
    /// and the next query runs normally.
    Internal(String),
    /// The query's deadline ([`QueryBudget`]) expired before it finished.
    Timeout,
    /// The query exceeded its row or group cap. The payload names the
    /// tripped cap (`max_rows` / `max_groups`).
    LimitExceeded(String),
    /// The server is at its concurrent-client cap and shed this request.
    Overloaded {
        /// Sessions currently being served.
        active: usize,
        /// The configured cap.
        max: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse(msg) => f.write_str(msg),
            ServiceError::NotLoaded(name) => {
                write!(f, "relation `{name}` is not loaded")
            }
            ServiceError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation `{relation}` has arity {expected} but {got} was supplied"
            ),
            ServiceError::ValueOutOfDomain {
                relation,
                value,
                domain,
            } => write!(
                f,
                "value {value} for `{relation}` outside domain [0,{domain})"
            ),
            ServiceError::Unsupported(msg) => write!(f, "unsupported {msg}"),
            ServiceError::Internal(msg) => write!(f, "internal {msg}"),
            ServiceError::Timeout => f.write_str("timeout query deadline exceeded"),
            ServiceError::LimitExceeded(cap) => write!(f, "limit {cap} exceeded"),
            ServiceError::Overloaded { active, max } => {
                write!(f, "overloaded {active} active clients (max {max})")
            }
        }
    }
}

impl std::error::Error for ServiceError {}

/// Map a cooperative budget trip to its service error.
fn budget_error(e: BudgetExceeded) -> ServiceError {
    match e.kind {
        BudgetKind::Deadline => ServiceError::Timeout,
        BudgetKind::Rows => ServiceError::LimitExceeded("max_rows".to_string()),
        BudgetKind::Groups => ServiceError::LimitExceeded("max_groups".to_string()),
    }
}

/// Classify a caught panic payload into a [`ServiceError`]. Known
/// capability limits (the join index's u32 row-id space) become
/// [`ServiceError::Unsupported`]; stray [`BudgetExceeded`] payloads map to
/// their budget error; everything else is [`ServiceError::Internal`].
fn classify_panic(payload: Box<dyn std::any::Any + Send>) -> ServiceError {
    let payload = match payload.downcast::<BudgetExceeded>() {
        Ok(e) => return budget_error(*e),
        Err(p) => p,
    };
    let msg = match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(p) => match p.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "worker panicked with a non-string payload".to_string(),
        },
    };
    if msg.contains("u32 row-id space") {
        ServiceError::Unsupported(msg)
    } else {
        ServiceError::Internal(msg)
    }
}

/// Run `f` inside the service's fault-containment boundary: any panic —
/// including pool-re-raised worker panics and injected failpoints — is
/// caught and classified instead of tearing down the caller, and budget
/// trips surface as their typed errors.
fn run_contained<T>(f: impl FnOnce() -> Result<T, BudgetExceeded>) -> Result<T, ServiceError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(Ok(v)) => Ok(v),
        Ok(Err(e)) => Err(budget_error(e)),
        Err(payload) => Err(classify_panic(payload)),
    }
}

/// Execute one plan under `budget`, materializing the answer set for
/// plain queries (aggregate heads already folded their result during
/// execution and never materialize rows).
fn execute_budgeted(
    plan: &Plan,
    db: &Database,
    backend: Backend,
    budget: &QueryBudget,
) -> Result<(RunOutcome, Option<AnswerSet>), BudgetExceeded> {
    let outcome = plan.try_execute(db, backend, budget)?;
    // A limited budget must charge every materialized answer row against
    // its cap, so the set is built here, inside the contained region.
    // Unlimited budgets keep the pre-budget laziness: answers are only
    // joined when someone asks ([`ServiceOutcome::try_answers`] re-enters
    // containment for that), so callers that never read answers — the
    // batch throughput path — never pay for them.
    let answers = if outcome.aggregate().is_none() && !budget.is_unlimited() {
        Some(outcome.try_answers(budget)?)
    } else {
        None
    };
    Ok((outcome, answers))
}

/// The containment-aware sibling of
/// [`execute_batch`](crate::engine::execute_batch): same multiplexing
/// shape (parallel across jobs, each job sequential inside, results in
/// job order), but each job runs under its own budget and containment
/// boundary, so one job's injected panic or expired deadline errors that
/// job without touching its neighbors.
fn execute_batch_contained(
    jobs: &[(&Plan, &Database, &QueryBudget)],
    backend: Backend,
) -> Vec<Result<(RunOutcome, Option<AnswerSet>), ServiceError>> {
    backend.run_items(jobs.len(), |i| {
        let (plan, db, budget) = jobs[i];
        run_contained(|| execute_budgeted(plan, db, Backend::Sequential, budget))
    })
}

/// How the plan cache served one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheStatus {
    /// Cached plan reused; `Engine` planning was skipped entirely.
    Hit,
    /// No entry for this key yet; planned and cached.
    Miss,
    /// An entry existed but its statistics fingerprint was stale;
    /// replanned and recached.
    Invalidated,
}

impl CacheStatus {
    /// Stable wire/display name.
    pub fn name(self) -> &'static str {
        match self {
            CacheStatus::Hit => "hit",
            CacheStatus::Miss => "miss",
            CacheStatus::Invalidated => "invalidated",
        }
    }
}

impl fmt::Display for CacheStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One query against the service: the parsed query plus per-query
/// overrides of the service defaults.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The query (any head/variable names; plans are shared per
    /// [`Query::shape`]).
    pub query: Query,
    /// Server count override.
    pub p: Option<usize>,
    /// Hash-seed override.
    pub seed: Option<u64>,
    /// Algorithm override (default [`Algorithm::Auto`]).
    pub algorithm: Algorithm,
    /// Aggregate head: group-by + ops evaluated by pushdown instead of
    /// materializing answers. Variable indices refer to `query`'s
    /// variables (stable under canonicalization).
    pub aggregate: Option<AggregateSpec>,
    /// Deadline override in milliseconds (`Some(0)` = explicitly
    /// unlimited, `None` = service default).
    pub timeout_ms: Option<u64>,
    /// Output-cap override: answer rows for plain queries, groups for
    /// aggregate heads (`Some(0)` = explicitly unlimited, `None` =
    /// service default).
    pub limit: Option<u64>,
}

impl QuerySpec {
    /// A spec running `query` with the service defaults.
    pub fn new(query: Query) -> QuerySpec {
        QuerySpec {
            query,
            p: None,
            seed: None,
            algorithm: Algorithm::Auto,
            aggregate: None,
            timeout_ms: None,
            limit: None,
        }
    }

    /// Override the server count.
    pub fn p(mut self, p: usize) -> Self {
        assert!(p >= 1, "need at least one server");
        self.p = Some(p);
        self
    }

    /// Override the hash seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Pin the algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Attach an aggregate head (see [`crate::aggregate`]).
    pub fn aggregate(mut self, spec: AggregateSpec) -> Self {
        self.aggregate = Some(spec);
        self
    }

    /// Override the deadline (milliseconds; 0 = unlimited).
    pub fn timeout_ms(mut self, ms: u64) -> Self {
        self.timeout_ms = Some(ms);
        self
    }

    /// Override the output cap (rows, or groups for an aggregate head;
    /// 0 = unlimited).
    pub fn limit(mut self, limit: u64) -> Self {
        self.limit = Some(limit);
        self
    }
}

/// The result of one service query: the engine's [`RunOutcome`] plus how
/// the plan cache served it. For plain (non-aggregate) queries the answer
/// set is materialized *inside* the service's containment boundary — so a
/// panic or budget trip during answer collection surfaces as the query's
/// error, never the caller's — and cached here.
pub struct ServiceOutcome {
    outcome: RunOutcome,
    cache: CacheStatus,
    answers: Option<AnswerSet>,
}

impl ServiceOutcome {
    /// How the plan cache served this query.
    pub fn cache_status(&self) -> CacheStatus {
        self.cache
    }

    /// The resolved algorithm that ran.
    pub fn algorithm(&self) -> Algorithm {
        self.outcome.algorithm()
    }

    /// The distinct answers, sorted, in query-variable order (the set
    /// materialized under the query's budget when the service ran it,
    /// joined lazily here otherwise).
    pub fn answers(&self) -> AnswerSet {
        match &self.answers {
            Some(a) => a.clone(),
            None => self.outcome.answers(),
        }
    }

    /// [`ServiceOutcome::answers`] behind the service's containment
    /// boundary: when the answers were not already materialized under a
    /// budget, the lazy join runs under `catch_unwind` so a worker panic
    /// during materialization (not just during execution) surfaces as a
    /// typed [`ServiceError`]. The wire layer renders rows through this.
    pub fn try_answers(&self) -> Result<AnswerSet, ServiceError> {
        match &self.answers {
            Some(a) => Ok(a.clone()),
            None => run_contained(|| Ok(self.outcome.answers())),
        }
    }

    /// The pushed-down aggregate result, when the spec carried an
    /// aggregate head.
    pub fn aggregate(&self) -> Option<&crate::aggregate::AggregateResult> {
        self.outcome.aggregate()
    }

    /// Maximum bits received by any server in any round.
    pub fn max_load_bits(&self) -> u64 {
        self.outcome.max_load_bits()
    }

    /// Rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.outcome.num_rounds()
    }

    /// The full engine outcome.
    pub fn run_outcome(&self) -> &RunOutcome {
        &self.outcome
    }
}

impl fmt::Debug for ServiceOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServiceOutcome")
            .field("algorithm", &self.algorithm())
            .field("cache", &self.cache)
            .field("rounds", &self.num_rounds())
            .finish_non_exhaustive()
    }
}

/// Plan-cache traffic counters (see [`Service::counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Queries served by a cached plan without replanning.
    pub hits: u64,
    /// Queries planned because no entry existed.
    pub misses: u64,
    /// Cache entries dropped because an ingest changed their statistics
    /// fingerprint.
    pub invalidations: u64,
    /// Least-recently-used entries dropped to keep the cache within its
    /// configured capacity ([`Service::with_plan_cache_capacity`]).
    pub evictions: u64,
}

/// Catalog information for one relation (see [`Service::relation_infos`]).
#[derive(Clone, Debug)]
pub struct RelationInfo {
    /// Relation name.
    pub name: String,
    /// Arity.
    pub arity: usize,
    /// Current cardinality.
    pub tuples: usize,
    /// Memoized frequency-map projections.
    pub tracked_projections: usize,
}

struct CatalogEntry {
    rel: Arc<Relation>,
    stats: IncrementalStats,
    /// SpaceSaving/HLL summaries ([`StatsMode::Sketch`] only): built by
    /// one streaming pass at load, folded forward on every append —
    /// planning and fingerprinting then read `O(capacity)` state instead
    /// of exact frequency maps.
    sketch: Option<RelationSketch>,
}

struct CacheEntry {
    plan: Arc<Plan>,
    /// The canonical query the plan was built for (also stored in the
    /// plan; kept here to recompute fingerprints without dereferencing).
    query: Query,
    fingerprint: u64,
    /// Monotonic recency stamp ([`Service::tick`] at the last hit or
    /// insert); the LRU eviction victim is the minimum.
    last_used: u64,
}

/// Default bound on the number of cached plans (see
/// [`Service::with_plan_cache_capacity`]).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// One batch entry after plan resolution: the (possibly cached) plan, the
/// per-query database view, and how the cache served it.
type Resolved = Result<(Arc<Plan>, Database, CacheStatus), ServiceError>;

/// The resident query service. See the [module docs](self) for the
/// architecture and an end-to-end example.
pub struct Service {
    domain: u64,
    backend: Backend,
    default_p: usize,
    default_seed: u64,
    entries: Vec<CatalogEntry>,
    names: FastMap<String, usize>,
    plans: FastMap<PlanKey, CacheEntry>,
    plan_cache_capacity: usize,
    stats_mode: StatsMode,
    /// Monotonic recency counter; advances on every cache touch, so
    /// `last_used` stamps are unique and LRU ties cannot occur.
    tick: u64,
    counters: CacheCounters,
    /// Default query deadline (ms); `None` = unlimited.
    default_timeout_ms: Option<u64>,
    /// Default cap on materialized answer rows; `None` = unlimited.
    default_max_rows: Option<u64>,
    /// Default cap on aggregate groups; `None` = unlimited.
    default_max_groups: Option<u64>,
}

/// Aggregate sketch telemetry over the catalog (the serve `STATS` line's
/// `sketch` record; see [`Service::sketch_telemetry`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SketchTelemetry {
    /// Total bytes resident across all relation sketches.
    pub bytes: usize,
    /// Per-projection SpaceSaving capacity (tracked keys).
    pub capacity: usize,
    /// Largest guaranteed error bound across every tracked projection —
    /// the worst-case overcount any planner-visible estimate carries.
    pub max_error: u64,
}

impl Service {
    /// An empty service over domain `[0, domain)` with defaults `p = 64`,
    /// `seed = 1`, and the environment-selected backend.
    pub fn new(domain: u64) -> Service {
        assert!(domain >= 1, "domain must be non-empty");
        Service {
            domain,
            backend: Backend::from_env(),
            default_p: 64,
            default_seed: 1,
            entries: Vec::new(),
            names: FastMap::default(),
            plans: FastMap::default(),
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            stats_mode: StatsMode::Exact,
            tick: 0,
            counters: CacheCounters::default(),
            default_timeout_ms: None,
            default_max_rows: None,
            default_max_groups: None,
        }
    }

    /// Set the execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Set the statistics mode for relations loaded *after* this call
    /// (configure before loading; `mpcskew serve` defaults to
    /// [`StatsMode::Sketch`]). In sketch mode each relation carries
    /// SpaceSaving/HLL summaries sized with headroom over the default `p`
    /// ([`Service::sketch_capacity_for_p`]): planning and plan-cache
    /// fingerprints read `O(capacity)` sketch state, and appends fold into
    /// the summaries without ever rescanning the relation. Queries that
    /// override `p` far above the default erode the no-missed-heavy-hitter
    /// guarantee gradually (capacity headroom absorbs moderate drift);
    /// answers stay exact regardless — estimate error only shifts load.
    pub fn with_stats_mode(mut self, mode: StatsMode) -> Self {
        self.stats_mode = mode;
        self
    }

    /// Set the default `p` and seed for queries that do not override them.
    pub fn with_defaults(mut self, p: usize, seed: u64) -> Self {
        assert!(p >= 1, "need at least one server");
        self.default_p = p;
        self.default_seed = seed;
        self
    }

    /// Bound the plan cache to `capacity` entries: an insert past the bound
    /// evicts the least-recently-used plan (and advances
    /// [`CacheCounters::evictions`]). Without a bound, an unbounded stream
    /// of distinct query shapes would grow the cache without limit.
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity >= 1, "plan cache needs room for at least one plan");
        self.plan_cache_capacity = capacity;
        self
    }

    /// The configured plan-cache capacity.
    pub fn plan_cache_capacity(&self) -> usize {
        self.plan_cache_capacity
    }

    /// The service domain `n`.
    pub fn domain(&self) -> u64 {
        self.domain
    }

    /// The execution backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Default server count.
    pub fn default_p(&self) -> usize {
        self.default_p
    }

    /// Default hash seed.
    pub fn default_seed(&self) -> u64 {
        self.default_seed
    }

    /// The configured statistics mode.
    pub fn stats_mode(&self) -> StatsMode {
        self.stats_mode
    }

    /// The SpaceSaving capacity sketches are built at: the engine's
    /// [`sketch_capacity`] for the default `p`, doubled again and floored
    /// at 64 — headroom so per-query `p` above the default keeps the
    /// no-missed-heavy-hitter guarantee.
    pub fn sketch_capacity_for_p(&self) -> usize {
        (2 * sketch_capacity(self.default_p)).max(64)
    }

    /// Aggregate sketch telemetry, or `None` outside
    /// [`StatsMode::Sketch`] (or before any relation is loaded).
    pub fn sketch_telemetry(&self) -> Option<SketchTelemetry> {
        let mut out: Option<SketchTelemetry> = None;
        for e in &self.entries {
            let sk = e.sketch.as_ref()?;
            let t = out.get_or_insert_with(SketchTelemetry::default);
            t.bytes += sk.bytes();
            t.capacity = sk.capacity();
            t.max_error = t.max_error.max(sk.max_error_bound());
        }
        out
    }

    /// Plan-cache traffic counters.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Number of cached plans.
    pub fn cached_plans(&self) -> usize {
        self.plans.len()
    }

    /// Catalog summary, in load order.
    pub fn relation_infos(&self) -> Vec<RelationInfo> {
        self.entries
            .iter()
            .map(|e| RelationInfo {
                name: e.rel.name().to_string(),
                arity: e.rel.arity(),
                tuples: e.rel.len(),
                tracked_projections: e.stats.tracked_projections(),
            })
            .collect()
    }

    /// The loaded relation `name`, if any.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.names.get(name).map(|&i| self.entries[i].rel.as_ref())
    }

    /// Register (or replace) a relation under its own name, validating
    /// every value against the service domain — the one full scan a
    /// relation ever pays. Replacing drops all cached plans that reference
    /// the name (counted as invalidations) and resets its statistics.
    /// Returns the relation's cardinality.
    pub fn load(&mut self, rel: Relation) -> Result<usize, ServiceError> {
        if let Some(&v) = rel.rows().flatten().find(|&&v| v >= self.domain) {
            return Err(ServiceError::ValueOutOfDomain {
                relation: rel.name().to_string(),
                value: v,
                domain: self.domain,
            });
        }
        let len = rel.len();
        let name = rel.name().to_string();
        let stats = IncrementalStats::of(&rel);
        let sketch = match self.stats_mode {
            StatsMode::Sketch => Some(RelationSketch::of(&rel, self.sketch_capacity_for_p())),
            StatsMode::Exact | StatsMode::Synthetic => None,
        };
        match self.names.get(&name).copied() {
            Some(i) => {
                self.entries[i] = CatalogEntry {
                    rel: Arc::new(rel),
                    stats,
                    sketch,
                };
                self.drop_plans_referencing(&name);
            }
            None => {
                self.entries.push(CatalogEntry {
                    rel: Arc::new(rel),
                    stats,
                    sketch,
                });
                self.names.insert(name, self.entries.len() - 1);
            }
        }
        Ok(len)
    }

    /// Append tuples (row-major flat, length a multiple of the arity) to a
    /// loaded relation, updating its frequency maps, heavy trackers, and
    /// cardinality in place — no rescan. Cached plans whose query
    /// references `name` are re-fingerprinted; exactly the stale ones are
    /// dropped (counted as invalidations). Returns the new cardinality.
    pub fn append(&mut self, name: &str, tuples: &[u64]) -> Result<usize, ServiceError> {
        let i = *self
            .names
            .get(name)
            .ok_or_else(|| ServiceError::NotLoaded(name.to_string()))?;
        let arity = self.entries[i].rel.arity();
        if !tuples.len().is_multiple_of(arity) {
            return Err(ServiceError::ArityMismatch {
                relation: name.to_string(),
                expected: arity,
                got: tuples.len() % arity,
            });
        }
        if let Some(&v) = tuples.iter().find(|&&v| v >= self.domain) {
            return Err(ServiceError::ValueOutOfDomain {
                relation: name.to_string(),
                value: v,
                domain: self.domain,
            });
        }
        let entry = &mut self.entries[i];
        entry.stats.append(tuples);
        if let Some(sk) = entry.sketch.as_mut() {
            // Fold into the summaries: O(appended × tracked projections),
            // never a rescan of the relation.
            sk.append_rows(tuples);
        }
        // In the steady state the service holds the only strong reference
        // (per-query Databases are dropped with their outcomes), so this
        // appends in place; a concurrent holder forces one copy, never a
        // correctness problem.
        Arc::make_mut(&mut entry.rel).push_rows(tuples);
        let len = entry.rel.len();
        self.revalidate_plans_referencing(name);
        Ok(len)
    }

    /// Set the default deadline for queries that do not override it
    /// (`None` = unlimited). The wire's `SET timeout_ms=` lands here.
    pub fn set_default_timeout_ms(&mut self, ms: Option<u64>) {
        self.default_timeout_ms = ms;
    }

    /// Set the default cap on materialized answer rows (`None` =
    /// unlimited).
    pub fn set_default_max_rows(&mut self, rows: Option<u64>) {
        self.default_max_rows = rows;
    }

    /// Set the default cap on aggregate groups (`None` = unlimited).
    pub fn set_default_max_groups(&mut self, groups: Option<u64>) {
        self.default_max_groups = groups;
    }

    /// The effective budget for one spec: per-query overrides (0 =
    /// explicitly unlimited) over the service defaults. The deadline
    /// clock starts here — at query admission, not at parse time.
    fn budget_for(&self, spec: &QuerySpec) -> QueryBudget {
        let unzero = |v: Option<u64>, default: Option<u64>| match v {
            Some(0) => None,
            Some(n) => Some(n),
            None => default,
        };
        let timeout =
            unzero(spec.timeout_ms, self.default_timeout_ms).map(std::time::Duration::from_millis);
        let (max_rows, max_groups) = if spec.aggregate.is_some() {
            (None, unzero(spec.limit, self.default_max_groups))
        } else {
            (unzero(spec.limit, self.default_max_rows), None)
        };
        QueryBudget::new(timeout, max_rows, max_groups)
    }

    /// Run `query` with the service defaults.
    pub fn query(&mut self, query: &Query) -> Result<ServiceOutcome, ServiceError> {
        self.query_spec(&QuerySpec::new(query.clone()))
    }

    /// Run one fully-specified query inside the fault-containment
    /// boundary: execution *and* answer materialization happen under the
    /// spec's budget and a `catch_unwind`, so a mid-query worker panic or
    /// a tripped budget returns a typed [`ServiceError`] — the catalog,
    /// plan cache, and backend stay intact for the next query.
    pub fn query_spec(&mut self, spec: &QuerySpec) -> Result<ServiceOutcome, ServiceError> {
        let (plan, db, cache) = self.resolve_plan(spec)?;
        let budget = self.budget_for(spec);
        let backend = self.backend;
        let (outcome, answers) = run_contained(|| execute_budgeted(&plan, &db, backend, &budget))?;
        Ok(ServiceOutcome {
            outcome,
            cache,
            answers,
        })
    }

    /// Run a batch of queries, multiplexing their shuffles **across** jobs
    /// on the service backend (the
    /// [`execute_batch`](crate::engine::execute_batch) /
    /// [`Cluster::run_batch`](mpc_sim::cluster::Cluster::run_batch) shape:
    /// on a pooled backend, concurrent clients share the persistent
    /// worker pool). Results come back in spec order, each bit-identical
    /// to running the spec alone, and each contained independently: one
    /// job's panic or budget trip errors that job only.
    pub fn query_batch(
        &mut self,
        specs: &[QuerySpec],
    ) -> Vec<Result<ServiceOutcome, ServiceError>> {
        let resolved: Vec<Resolved> = specs.iter().map(|spec| self.resolve_plan(spec)).collect();
        let budgets: Vec<QueryBudget> = specs.iter().map(|spec| self.budget_for(spec)).collect();
        let jobs: Vec<(&Plan, &Database, &QueryBudget)> = resolved
            .iter()
            .zip(&budgets)
            .filter_map(|(r, budget)| {
                r.as_ref()
                    .ok()
                    .map(|(plan, db, _)| (plan.as_ref(), db, budget))
            })
            .collect();
        let mut outcomes = execute_batch_contained(&jobs, self.backend).into_iter();
        resolved
            .into_iter()
            .map(|r| {
                r.and_then(|(_, _, cache)| {
                    let (outcome, answers) =
                        outcomes.next().expect("one outcome per resolved job")?;
                    Ok(ServiceOutcome {
                        outcome,
                        cache,
                        answers,
                    })
                })
            })
            .collect()
    }

    /// Canonicalize, fingerprint, and serve a plan from the cache —
    /// planning through the [`Engine`] only on miss/stale — plus the
    /// zero-copy `Database` to run it on.
    fn resolve_plan(
        &mut self,
        spec: &QuerySpec,
    ) -> Result<(Arc<Plan>, Database, CacheStatus), ServiceError> {
        let p = spec.p.unwrap_or(self.default_p);
        let seed = spec.seed.unwrap_or(self.default_seed);
        if let Some(agg) = &spec.aggregate {
            agg.validate_for(&spec.query)
                .map_err(|e| ServiceError::Unsupported(format!("invalid aggregate: {e}")))?;
            if matches!(
                spec.algorithm,
                Algorithm::MultiRound | Algorithm::GeneralSkew
            ) {
                return Err(ServiceError::Unsupported(format!(
                    "invalid aggregate: `{}` does not materialize each join derivation \
                     exactly once; aggregates need a derivation-partitioning plan",
                    spec.algorithm
                )));
            }
        }
        // Canonicalization renames variables but keeps their indices, so
        // the aggregate spec applies to the canonical query unchanged.
        let canonical = spec.query.canonical();
        let atom_entries = self.resolve_atoms(&canonical)?;
        let fingerprint = self.fingerprint_for(&canonical, &atom_entries, p);
        let key = PlanKey {
            shape: canonical.shape(),
            p,
            seed,
            algorithm: spec.algorithm,
            aggregate: spec.aggregate.clone(),
        };
        let rels: Vec<Arc<Relation>> = atom_entries
            .iter()
            .map(|&i| self.entries[i].rel.clone())
            .collect();
        let db = Database::from_shared(canonical.clone(), rels, self.domain)
            .expect("atoms resolved against the catalog");
        let cache = match self.plans.get(&key) {
            Some(entry) if entry.fingerprint == fingerprint => CacheStatus::Hit,
            Some(_) => CacheStatus::Invalidated,
            None => CacheStatus::Miss,
        };
        let plan = match cache {
            CacheStatus::Hit => {
                self.counters.hits += 1;
                self.tick += 1;
                let entry = self.plans.get_mut(&key).expect("hit entry exists");
                entry.last_used = self.tick;
                entry.plan.clone()
            }
            CacheStatus::Miss | CacheStatus::Invalidated => {
                if cache == CacheStatus::Invalidated {
                    self.counters.invalidations += 1;
                } else {
                    self.counters.misses += 1;
                }
                let view = self.stats_view(&canonical, &atom_entries, p, fingerprint);
                let mut engine = Engine::new(&canonical)
                    .p(p)
                    .seed(seed)
                    .algorithm(spec.algorithm);
                if let Some(agg) = &spec.aggregate {
                    engine = engine.aggregate(agg.clone());
                }
                let plan = Arc::new(engine.stats(&view).plan(&db));
                self.tick += 1;
                self.plans.insert(
                    key,
                    CacheEntry {
                        plan: plan.clone(),
                        query: canonical,
                        fingerprint,
                        last_used: self.tick,
                    },
                );
                self.evict_lru_overflow();
                plan
            }
        };
        Ok((plan, db, cache))
    }

    /// Map each atom of `q` to its catalog entry, validating presence and
    /// arity.
    fn resolve_atoms(&self, q: &Query) -> Result<Vec<usize>, ServiceError> {
        q.atoms()
            .iter()
            .map(|atom| {
                let &i = self
                    .names
                    .get(atom.name())
                    .ok_or_else(|| ServiceError::NotLoaded(atom.name().to_string()))?;
                let rel = &self.entries[i].rel;
                if rel.arity() != atom.arity() {
                    return Err(ServiceError::ArityMismatch {
                        relation: atom.name().to_string(),
                        expected: rel.arity(),
                        got: atom.arity(),
                    });
                }
                Ok(i)
            })
            .collect()
    }

    /// The current statistics fingerprint for `q` at `p`: fold the
    /// power-of-two cardinality bucket of every atom's relation and the
    /// heavy-membership hash of every [`planning_projections`] tracker
    /// (building trackers on first need — one scan each, amortized away).
    fn fingerprint_for(&mut self, q: &Query, atom_entries: &[usize], p: usize) -> u64 {
        let mut h = mix64(p as u64, 0x5e);
        for (j, &i) in atom_entries.iter().enumerate() {
            let entry = &self.entries[i];
            h = mix64(h, j as u64);
            h = mix64(h, entry.stats.cardinality_bucket());
        }
        for (j, cols) in planning_projections(q) {
            let i = atom_entries[j];
            let entry = &mut self.entries[i];
            let rel = entry.rel.clone();
            let hash = match entry.sketch.as_mut() {
                // Sketch mode: hash the *conservative* heavy membership the
                // planner will actually see — O(capacity), no tracker, no
                // exact frequency map.
                Some(sk) => {
                    sk.ensure_projection(&rel, &cols);
                    let estimates = sk.heavy_hitters(&cols, p).expect("projection ensured");
                    heavy_membership_hash(&estimates)
                }
                None => entry.stats.ensure_tracker(&rel, &cols, p),
            };
            h = mix64(h, j as u64 ^ hash);
        }
        h
    }

    /// Read-only [`Stats`] view over the catalog for planning `q`.
    fn stats_view<'a>(
        &'a self,
        q: &Query,
        atom_entries: &'a [usize],
        p: usize,
        fingerprint: u64,
    ) -> CatalogStats<'a> {
        let cardinalities: Vec<usize> = atom_entries
            .iter()
            .map(|&i| self.entries[i].stats.cardinality())
            .collect();
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        CatalogStats {
            service: self,
            atom_entries,
            simple: SimpleStatistics::synthetic(&arities, cardinalities, self.domain),
            p,
            fingerprint,
        }
    }

    /// Drop every cached plan whose query references `name`, counting
    /// invalidations (the LOAD-replace path: the old statistics are gone).
    fn drop_plans_referencing(&mut self, name: &str) {
        let before = self.plans.len();
        self.plans.retain(|key, _| !key.shape.references(name));
        self.counters.invalidations += (before - self.plans.len()) as u64;
    }

    /// Re-fingerprint cached plans whose query references `name` and drop
    /// exactly the stale ones (the APPEND path). Plans over other
    /// relations are untouched.
    fn revalidate_plans_referencing(&mut self, name: &str) {
        let affected: Vec<PlanKey> = self
            .plans
            .keys()
            .filter(|key| key.shape.references(name))
            .cloned()
            .collect();
        for key in affected {
            let query = self.plans[&key].query.clone();
            let atom_entries = self
                .resolve_atoms(&query)
                .expect("cached plan references loaded relations");
            let current = self.fingerprint_for(&query, &atom_entries, key.p);
            if self.plans[&key].fingerprint != current {
                self.plans.remove(&key);
                self.counters.invalidations += 1;
            }
        }
    }

    /// Evict least-recently-used plans until the cache fits its capacity.
    /// Recency ticks are unique, so the victim is unambiguous; the O(n)
    /// scan is bounded by the capacity itself.
    fn evict_lru_overflow(&mut self) {
        while self.plans.len() > self.plan_cache_capacity {
            let victim = self
                .plans
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key.clone())
                .expect("an over-capacity cache is non-empty");
            self.plans.remove(&victim);
            self.counters.evictions += 1;
        }
    }
}

/// Order-independent XOR hash of the heavy membership of a batch of
/// estimates — the sketch-mode analogue of
/// [`HeavyTracker::membership_hash`](mpc_stats::incremental::HeavyTracker::membership_hash):
/// counts are deliberately excluded, so estimate drift within an unchanged
/// conservative heavy set keeps cached plans warm.
fn heavy_membership_hash(estimates: &[FreqEstimate]) -> u64 {
    estimates
        .iter()
        .map(|e| {
            e.key
                .iter()
                .fold(0x9e37_79b9_7f4a_7c15, |acc, &v| mix64(acc, v))
        })
        .fold(0u64, |acc, kh| acc ^ kh)
}

/// Planner-facing view of the catalog's memoized statistics: `simple()`
/// comes from maintained cardinalities (no scan); heavy hitters come from
/// the relation's sketch in [`StatsMode::Sketch`] and from the memoized
/// incremental maps otherwise, falling back to one relation scan for a
/// projection planning has never asked about (e.g. a pinned §4.2 run
/// asking for a joint variable subset outside [`planning_projections`]).
struct CatalogStats<'a> {
    service: &'a Service,
    atom_entries: &'a [usize],
    simple: SimpleStatistics,
    p: usize,
    fingerprint: u64,
}

impl CatalogStats<'_> {
    fn entry(&self, atom: usize) -> &CatalogEntry {
        &self.service.entries[self.atom_entries[atom]]
    }

    /// The exact frequency map: memoized `Arc` when incremental stats
    /// have it, one relation scan otherwise.
    fn frequencies_exact(&self, atom: usize, cols: &[usize]) -> Arc<FastMap<Vec<u64>, usize>> {
        let entry = self.entry(atom);
        match entry.stats.frequencies_cached(cols) {
            Some(map) => Arc::clone(map),
            None => Arc::new(entry.rel.frequencies(cols)),
        }
    }
}

impl Stats for CatalogStats<'_> {
    fn simple(&self) -> SimpleStatistics {
        self.simple.clone()
    }

    fn heavy_hitters(&self, atom: usize, cols: &[usize], p: usize) -> Vec<FreqEstimate> {
        let entry = self.entry(atom);
        if let Some(sk) = &entry.sketch {
            if let Some(estimates) = sk.heavy_hitters(cols, p) {
                return estimates;
            }
            // Projection never registered with the sketch; fall through to
            // one exact scan rather than mutate through a shared view.
        }
        let m = entry.stats.cardinality();
        let threshold = m as f64 / p as f64;
        let map = self.frequencies_exact(atom, cols);
        let mut out: Vec<FreqEstimate> = map
            .iter()
            .filter(|(_, &c)| c as f64 > threshold)
            .map(|(k, &c)| FreqEstimate::exact(k.clone(), c))
            .collect();
        out.sort_by(|a, b| a.key.cmp(&b.key));
        out
    }

    fn distinct(&self, atom: usize, col: usize) -> Option<usize> {
        let entry = self.entry(atom);
        match &entry.sketch {
            Some(sk) => sk.distinct(col),
            None => entry.stats.frequencies_cached(&[col]).map(|m| m.len()),
        }
    }

    fn frequencies(&self, atom: usize, cols: &[usize]) -> Arc<FastMap<Vec<u64>, usize>> {
        let entry = self.entry(atom);
        if let Some(sk) = &entry.sketch {
            if let Some(ss) = sk.projection(cols) {
                return Arc::new(
                    ss.estimates()
                        .into_iter()
                        .map(|e| {
                            let c = e.count_upper();
                            (e.key, c)
                        })
                        .collect(),
                );
            }
        }
        self.frequencies_exact(atom, cols)
    }

    fn fingerprint(&self, _q: &Query, p: usize) -> Option<u64> {
        (p == self.p).then_some(self.fingerprint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::generators;
    use mpc_data::rng::Rng;
    use mpc_query::parse_query;

    fn loaded_service() -> Service {
        let mut rng = Rng::seed_from_u64(11);
        let n = 1u64 << 12;
        let mut svc = Service::new(n)
            .with_backend(Backend::Sequential)
            .with_defaults(16, 3);
        svc.load(generators::uniform("S1", 2, 500, n, &mut rng))
            .unwrap();
        svc.load(generators::uniform("S2", 2, 500, n, &mut rng))
            .unwrap();
        svc.load(generators::uniform("S3", 2, 400, n, &mut rng))
            .unwrap();
        svc
    }

    #[test]
    fn warm_cache_skips_planning_and_counts() {
        let mut svc = loaded_service();
        let q = parse_query("S1(x,z), S2(y,z)").unwrap();
        let first = svc.query(&q).unwrap();
        assert_eq!(first.cache_status(), CacheStatus::Miss);
        let second = svc.query(&q).unwrap();
        assert_eq!(second.cache_status(), CacheStatus::Hit);
        assert_eq!(second.answers(), first.answers());
        // A shape-equal query with different spellings shares the plan.
        let renamed = parse_query("S1(a,c), S2(b,c)").unwrap();
        assert_eq!(
            svc.query(&renamed).unwrap().cache_status(),
            CacheStatus::Hit
        );
        assert_eq!(
            svc.counters(),
            CacheCounters {
                hits: 2,
                misses: 1,
                invalidations: 0,
                evictions: 0
            }
        );
        assert_eq!(svc.cached_plans(), 1);
        // Different p / seed / pinned algorithm are distinct entries.
        let spec = QuerySpec::new(q.clone()).p(8);
        assert_eq!(
            svc.query_spec(&spec).unwrap().cache_status(),
            CacheStatus::Miss
        );
        let pinned = QuerySpec::new(q).algorithm(Algorithm::HashJoin);
        assert_eq!(
            svc.query_spec(&pinned).unwrap().cache_status(),
            CacheStatus::Miss
        );
        assert_eq!(svc.cached_plans(), 3);
    }

    #[test]
    fn plan_cache_evicts_least_recently_used() {
        let mut svc = loaded_service().with_plan_cache_capacity(2);
        let qa = parse_query("S1(x,z), S2(y,z)").unwrap();
        let qb = parse_query("S1(x,y), S3(y,z)").unwrap();
        let qc = parse_query("S2(x,y), S3(y,z)").unwrap();
        // Fill to capacity, then touch A so B is the LRU entry.
        svc.query(&qa).unwrap();
        svc.query(&qb).unwrap();
        assert_eq!(svc.query(&qa).unwrap().cache_status(), CacheStatus::Hit);
        assert_eq!(svc.counters().evictions, 0);
        // Inserting C overflows the capacity and evicts B.
        assert_eq!(svc.query(&qc).unwrap().cache_status(), CacheStatus::Miss);
        assert_eq!(svc.cached_plans(), 2);
        assert_eq!(svc.counters().evictions, 1);
        // A survived (recently used); B replans correctly: miss, then hit.
        assert_eq!(svc.query(&qa).unwrap().cache_status(), CacheStatus::Hit);
        let replanned = svc.query(&qb).unwrap();
        assert_eq!(replanned.cache_status(), CacheStatus::Miss);
        assert_eq!(svc.query(&qb).unwrap().cache_status(), CacheStatus::Hit);
        // The B reinsert displaced C in turn.
        assert_eq!(svc.counters().evictions, 2);
        assert_eq!(svc.cached_plans(), 2);
    }

    #[test]
    fn append_within_bucket_keeps_plans_warm() {
        let mut svc = loaded_service();
        let q = parse_query("S1(x,z), S2(y,z)").unwrap();
        svc.query(&q).unwrap();
        // A handful of light tuples: same power-of-two bucket, no heavy
        // membership change.
        svc.append("S2", &[1, 2, 3, 4]).unwrap();
        let after = svc.query(&q).unwrap();
        assert_eq!(after.cache_status(), CacheStatus::Hit);
        assert_eq!(svc.counters().invalidations, 0);
        // Appending to an unrelated relation never touches this plan.
        svc.append("S3", &[5, 6]).unwrap();
        assert_eq!(svc.query(&q).unwrap().cache_status(), CacheStatus::Hit);
    }

    #[test]
    fn load_replace_invalidates() {
        let mut svc = loaded_service();
        let q = parse_query("S1(x,z), S2(y,z)").unwrap();
        svc.query(&q).unwrap();
        let mut rng = Rng::seed_from_u64(99);
        svc.load(generators::uniform("S2", 2, 300, 1 << 12, &mut rng))
            .unwrap();
        assert_eq!(svc.counters().invalidations, 1);
        assert_eq!(svc.cached_plans(), 0);
        assert_eq!(svc.query(&q).unwrap().cache_status(), CacheStatus::Miss);
    }

    #[test]
    fn errors_are_reported() {
        let mut svc = loaded_service();
        let q = parse_query("S1(x,z), Nope(y,z)").unwrap();
        assert_eq!(
            svc.query(&q).unwrap_err(),
            ServiceError::NotLoaded("Nope".into())
        );
        let q = parse_query("S1(x,y,z), S2(u,v)").unwrap();
        assert!(matches!(
            svc.query(&q),
            Err(ServiceError::ArityMismatch { .. })
        ));
        assert!(matches!(
            svc.append("S1", &[1, 1 << 20]),
            Err(ServiceError::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            svc.append("S1", &[1, 2, 3]),
            Err(ServiceError::ArityMismatch { .. })
        ));
        // Failed ingest mutated nothing.
        assert_eq!(svc.relation("S1").unwrap().len(), 500);
    }

    #[test]
    fn batch_matches_serial_and_shares_the_cache() {
        let mut svc = loaded_service();
        let specs = vec![
            QuerySpec::new(parse_query("S1(x,z), S2(y,z)").unwrap()),
            QuerySpec::new(parse_query("S1(x,y), S3(y,z)").unwrap()),
            QuerySpec::new(parse_query("S1(a,c), S2(b,c)").unwrap()),
        ];
        let results = svc.query_batch(&specs);
        assert_eq!(results.len(), 3);
        let batch_answers: Vec<AnswerSet> =
            results.into_iter().map(|r| r.unwrap().answers()).collect();
        // Spec 2 is shape-equal to spec 0: served from the cache.
        assert_eq!(svc.counters().hits, 1);
        assert_eq!(svc.counters().misses, 2);
        let mut fresh = loaded_service();
        for (spec, batch) in specs.iter().zip(&batch_answers) {
            assert_eq!(&fresh.query_spec(spec).unwrap().answers(), batch);
        }
        assert_eq!(batch_answers[0], batch_answers[2]);
    }

    #[test]
    fn panic_classification_pins_the_wire_vocabulary() {
        // The `JoinIndex` u32 row-id guard panics with this message; the
        // containment boundary must map it to `unsupported`, not
        // `internal`, since it is a stated engine limit, not a bug.
        let overflow =
            "relation \"R\" has 5000000000 rows, which exceeds the u32 row-id space of JoinIndex"
                .to_string();
        let e = classify_panic(Box::new(overflow.clone()));
        assert_eq!(e, ServiceError::Unsupported(overflow.clone()));
        assert_eq!(format!("err {e}"), format!("err unsupported {overflow}"));

        // Everything else stringly-typed is an internal fault...
        assert_eq!(
            classify_panic(Box::new("index out of bounds".to_string())),
            ServiceError::Internal("index out of bounds".to_string())
        );
        assert_eq!(
            classify_panic(Box::new("static payload")),
            ServiceError::Internal("static payload".to_string())
        );
        // ... including payloads that are not strings at all.
        assert_eq!(
            classify_panic(Box::new(17u64)),
            ServiceError::Internal("worker panicked with a non-string payload".to_string())
        );
        // Budget trips re-raised as panics keep their typed identity.
        assert_eq!(
            classify_panic(Box::new(BudgetExceeded {
                kind: BudgetKind::Deadline
            })),
            ServiceError::Timeout
        );

        // The remaining wire error classes, byte-for-byte.
        assert_eq!(
            format!("{}", ServiceError::Timeout),
            "timeout query deadline exceeded"
        );
        assert_eq!(
            format!("{}", ServiceError::LimitExceeded("max_rows".to_string())),
            "limit max_rows exceeded"
        );
        assert_eq!(
            format!(
                "{}",
                ServiceError::Overloaded {
                    active: 64,
                    max: 64
                }
            ),
            "overloaded 64 active clients (max 64)"
        );
    }
}
