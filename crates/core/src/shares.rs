//! Share-exponent optimization — LP (5) and Theorem 3.6.
//!
//! Given statistics `M` and `p` servers, the HyperCube algorithm needs one
//! share `p_i = p^{e_i}` per variable. The paper computes the exponents by
//! the LP
//!
//! ```text
//! minimize λ
//! s.t.  Σ_i e_i <= 1
//!       ∀j: Σ_{i ∈ S_j} e_i + λ >= µ_j      (µ_j = log_p M_j)
//!       e_i, λ >= 0
//! ```
//!
//! whose optimum `p^λ` equals the closed form
//! `max_{u ∈ pk(q)} L(u, M, p)` (Theorem 3.6) — an identity
//! [`ShareAllocation::verify_against_closed_form`] checks numerically.

use crate::bounds;
use mpc_lp::{Cmp, LinearProgram, LpError, Sense};
use mpc_query::Query;
use mpc_sim::topology::round_shares;
use mpc_stats::cardinality::SimpleStatistics;

/// An optimized share allocation for a query.
#[derive(Clone, Debug)]
pub struct ShareAllocation {
    /// Share exponents `e_i`, one per query variable.
    pub exponents: Vec<f64>,
    /// The LP optimum `λ` (so the expected load is `p^λ` bits).
    pub lambda: f64,
    /// Integer shares (`Π shares <= p`), from [`round_shares`].
    pub shares: Vec<usize>,
    /// Server budget `p`.
    pub p: usize,
}

impl ShareAllocation {
    /// Solve LP (5) for `q`, `stats`, `p` and round to integer shares.
    pub fn optimize(
        q: &Query,
        stats: &SimpleStatistics,
        p: usize,
    ) -> Result<ShareAllocation, LpError> {
        assert!(p >= 1);
        assert_eq!(stats.num_relations(), q.num_atoms());
        if p == 1 {
            // Exponent space is degenerate at p = 1: the only allocation is
            // all-ones shares, and the load is the largest relation.
            let m_max = stats.bit_sizes_f64().iter().fold(1.0f64, |a, &b| a.max(b));
            return Ok(ShareAllocation {
                exponents: vec![0.0; q.num_vars()],
                lambda: m_max.log2(), // predicted_load_bits uses base p.max(2)
                shares: vec![1; q.num_vars()],
                p,
            });
        }
        let logp = (p.max(2) as f64).ln();
        let mu: Vec<f64> = stats
            .bit_sizes_f64()
            .iter()
            .map(|&m| m.max(1.0).ln() / logp)
            .collect();

        let mut lp = LinearProgram::new(Sense::Minimize);
        let lambda = lp.add_var("lambda", 1.0);
        let evars: Vec<usize> = (0..q.num_vars())
            .map(|i| lp.add_var(format!("e_{}", q.var_name(i)), 0.0))
            .collect();
        // Σ e_i <= 1.
        let budget: Vec<(usize, f64)> = evars.iter().map(|&v| (v, 1.0)).collect();
        lp.add_constraint(&budget, Cmp::Le, 1.0);
        // Per atom: Σ_{i∈S_j} e_i + λ >= µ_j.
        for (j, &muj) in mu.iter().enumerate() {
            let mut terms: Vec<(usize, f64)> = q
                .atom(j)
                .var_set()
                .iter()
                .map(|i| (evars[i], 1.0))
                .collect();
            terms.push((lambda, 1.0));
            lp.add_constraint(&terms, Cmp::Ge, muj);
        }
        let sol = lp.solve()?;
        let exponents: Vec<f64> = evars.iter().map(|&v| sol.x[v].max(0.0)).collect();
        let shares = round_shares(p, &exponents);
        Ok(ShareAllocation {
            exponents,
            lambda: sol.objective,
            shares,
            p,
        })
    }

    /// Equal shares `p_i = floor(p^{1/k})`: the skew-resilient allocation of
    /// Corollary 3.2(ii) / Example 3.3.
    pub fn equal(q: &Query, p: usize) -> ShareAllocation {
        let k = q.num_vars();
        let e = 1.0 / k as f64;
        let exponents = vec![e; k];
        let shares = round_shares(p, &exponents);
        ShareAllocation {
            exponents,
            lambda: f64::NAN,
            shares,
            p,
        }
    }

    /// The Afrati–Ullman share optimizer \[2\], for ablation: minimize the
    /// *total* (equivalently average) load `Σ_j M_j / Π_{i ∈ S_j} p^{e_i}`
    /// over the simplex `Σ e_i <= 1, e >= 0`, instead of LP (5)'s *maximum*
    /// load. The objective is convex in `e` (a sum of exponentials of
    /// affine functions), so projected gradient descent converges; on
    /// symmetric inputs both optimizers agree, on skewed cardinalities the
    /// AU solution can have a strictly worse maximum load — the reason the
    /// paper replaces the Lagrange-multiplier formulation with LP (5).
    pub fn afrati_ullman(q: &Query, stats: &SimpleStatistics, p: usize) -> ShareAllocation {
        let k = q.num_vars();
        let logp = (p.max(2) as f64).ln();
        let log_m: Vec<f64> = stats
            .bit_sizes_f64()
            .iter()
            .map(|&m| m.max(1.0).ln())
            .collect();
        let atoms_vars: Vec<Vec<usize>> = (0..q.num_atoms())
            .map(|j| q.atom(j).var_set().iter().collect())
            .collect();

        // Total load and gradient at exponent vector e.
        let eval = |e: &[f64]| -> (f64, Vec<f64>) {
            let mut total = 0.0;
            let mut grad = vec![0.0; k];
            for (j, vars) in atoms_vars.iter().enumerate() {
                let exponent = log_m[j] - logp * vars.iter().map(|&i| e[i]).sum::<f64>();
                let term = exponent.exp();
                total += term;
                for &i in vars {
                    grad[i] -= logp * term;
                }
            }
            (total, grad)
        };
        // Euclidean projection onto {e >= 0, Σ e <= 1}.
        let project = |e: &mut [f64]| {
            for v in e.iter_mut() {
                *v = v.max(0.0);
            }
            let s: f64 = e.iter().sum();
            if s <= 1.0 {
                return;
            }
            // Project onto the simplex Σ = 1 (sorting-based).
            let mut sorted: Vec<f64> = e.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite"));
            let mut cum = 0.0;
            let mut theta = 0.0;
            for (r, &v) in sorted.iter().enumerate() {
                cum += v;
                let t = (cum - 1.0) / (r as f64 + 1.0);
                if v - t > 0.0 {
                    theta = t;
                }
            }
            for v in e.iter_mut() {
                *v = (*v - theta).max(0.0);
            }
        };

        let mut e = vec![1.0 / k as f64; k];
        let mut step = 0.5 / logp;
        let (mut best_val, _) = eval(&e);
        for _ in 0..500 {
            let (_, grad) = eval(&e);
            let norm = grad.iter().map(|g| g * g).sum::<f64>().sqrt().max(1e-12);
            let mut cand = e.clone();
            for (c, g) in cand.iter_mut().zip(&grad) {
                *c -= step * g / norm;
            }
            project(&mut cand);
            let (val, _) = eval(&cand);
            if val < best_val {
                best_val = val;
                e = cand;
            } else {
                step *= 0.7;
                if step < 1e-10 {
                    break;
                }
            }
        }
        // Report lambda as the resulting *maximum* per-relation exponent so
        // it is comparable with LP (5)'s objective.
        let lambda = (0..q.num_atoms())
            .map(|j| log_m[j] / logp - q.atom(j).var_set().iter().map(|i| e[i]).sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0);
        let shares = round_shares(p, &e);
        ShareAllocation {
            exponents: e,
            lambda,
            shares,
            p,
        }
    }

    /// Explicit shares (testing / baselines).
    pub fn explicit(shares: Vec<usize>, p: usize) -> ShareAllocation {
        let logp = (p.max(2) as f64).ln();
        let exponents = shares.iter().map(|&s| (s as f64).ln() / logp).collect();
        ShareAllocation {
            exponents,
            lambda: f64::NAN,
            shares,
            p,
        }
    }

    /// The LP's predicted load `L_upper = p^λ` in bits.
    pub fn predicted_load_bits(&self) -> f64 {
        (self.p.max(2) as f64).powf(self.lambda)
    }

    /// The expected per-server load in bits for the *integer* shares:
    /// `max_j M_j / Π_{i ∈ S_j} p_i` (the expectation of Lemma 3.1(1)
    /// summed... maxed over relations).
    pub fn expected_load_bits(&self, q: &Query, stats: &SimpleStatistics) -> f64 {
        let m = stats.bit_sizes_f64();
        (0..q.num_atoms())
            .map(|j| {
                let denom: f64 = q
                    .atom(j)
                    .var_set()
                    .iter()
                    .map(|i| self.shares[i] as f64)
                    .product();
                m[j] / denom
            })
            .fold(0.0, f64::max)
    }

    /// Numerically verify Theorem 3.6: `p^λ == max_{u ∈ pk(q)} L(u, M, p)`
    /// within relative tolerance `tol`. Returns the pair (LP value, closed
    /// form) for diagnostics.
    pub fn verify_against_closed_form(
        &self,
        q: &Query,
        stats: &SimpleStatistics,
        tol: f64,
    ) -> (f64, f64) {
        let lp_val = self.predicted_load_bits();
        let (closed, _) = bounds::l_lower(q, stats, self.p);
        debug_assert!(
            (lp_val - closed).abs() / closed.max(1.0) < tol,
            "Theorem 3.6 violated: LP {lp_val} vs closed form {closed}"
        );
        (lp_val, closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_query::named;

    fn stats(q: &Query, cards: &[usize]) -> SimpleStatistics {
        let arities: Vec<usize> = q.atoms().iter().map(|a| a.arity()).collect();
        SimpleStatistics::synthetic(&arities, cards.to_vec(), 1 << 20)
    }

    #[test]
    fn triangle_equal_sizes_gives_thirds() {
        let q = named::cycle(3);
        let st = stats(&q, &[1 << 16; 3]);
        let p = 64usize;
        let alloc = ShareAllocation::optimize(&q, &st, p).unwrap();
        for &e in &alloc.exponents {
            assert!(
                (e - 1.0 / 3.0).abs() < 1e-6,
                "exponents {:?}",
                alloc.exponents
            );
        }
        assert_eq!(alloc.shares, vec![4, 4, 4]);
        let (lp_val, closed) = alloc.verify_against_closed_form(&q, &st, 1e-6);
        assert!((lp_val - closed).abs() / closed < 1e-6);
    }

    #[test]
    fn theorem_3_6_holds_across_queries_and_cardinalities() {
        let cases: Vec<(Query, Vec<usize>)> = vec![
            (named::cycle(3), vec![1 << 16, 1 << 16, 1 << 16]),
            (named::cycle(3), vec![1 << 20, 1 << 12, 1 << 12]),
            (named::cycle(3), vec![1 << 18, 1 << 16, 1 << 10]),
            (named::chain(3), vec![1 << 14, 1 << 18, 1 << 14]),
            (named::star(3), vec![1 << 16, 1 << 14, 1 << 12]),
            (named::two_way_join(), vec![1 << 18, 1 << 12]),
            (named::cartesian(3), vec![1 << 12, 1 << 14, 1 << 16]),
        ];
        for (q, cards) in cases {
            let st = stats(&q, &cards);
            for p in [8usize, 64, 512] {
                let alloc = ShareAllocation::optimize(&q, &st, p).unwrap();
                let lp_val = alloc.predicted_load_bits();
                let (closed, _) = crate::bounds::l_lower(&q, &st, p);
                assert!(
                    (lp_val - closed).abs() / closed < 1e-5,
                    "{} p={p}: LP {lp_val} vs closed {closed}",
                    q.name()
                );
            }
        }
    }

    #[test]
    fn unequal_join_shares_follow_cartesian_split() {
        // Cartesian product S1(x) × S2(y) with m1 = m2: shares ~ sqrt(p)
        // each (Section 1's warm-up).
        let q = named::cartesian(2);
        let st = SimpleStatistics::synthetic(&[1, 1], vec![1 << 16, 1 << 16], 1 << 20);
        let alloc = ShareAllocation::optimize(&q, &st, 64).unwrap();
        assert_eq!(alloc.shares, vec![8, 8]);
    }

    #[test]
    fn two_way_join_puts_all_shares_on_z() {
        // Skew-free join optimum: hash on z with all p (Example 3.3's second
        // allocation).
        let q = named::two_way_join();
        let st = stats(&q, &[1 << 16, 1 << 16]);
        let alloc = ShareAllocation::optimize(&q, &st, 64).unwrap();
        let z = q.var_index("z").unwrap();
        assert!(alloc.exponents[z] > 0.99, "exponents {:?}", alloc.exponents);
        assert_eq!(alloc.shares[z], 64);
        let x = q.var_index("x").unwrap();
        assert_eq!(alloc.shares[x], 1);
    }

    #[test]
    fn tiny_relation_gets_broadcast_shares() {
        // If M2 << M1/p the optimum gives S2's private variable y no share
        // (so S2 is replicated — footnote 1's broadcast join) and spends the
        // whole budget on S1's variables. The LP is degenerate between x and
        // z (any split achieves the same λ), so assert the product, not the
        // split.
        let q = named::two_way_join();
        let st = stats(&q, &[1 << 20, 1 << 4]);
        let p = 64usize;
        let alloc = ShareAllocation::optimize(&q, &st, p).unwrap();
        let x = q.var_index("x").unwrap();
        let z = q.var_index("z").unwrap();
        let y = q.var_index("y").unwrap();
        assert_eq!(alloc.shares[y], 1, "shares {:?}", alloc.shares);
        assert!(
            alloc.shares[x] * alloc.shares[z] >= p / 2,
            "S1's variables should absorb the budget: {:?}",
            alloc.shares
        );
        // The predicted load matches the closed form (Theorem 3.6).
        let lp_val = alloc.predicted_load_bits();
        let (closed, _) = crate::bounds::l_lower(&q, &st, p);
        assert!((lp_val - closed).abs() / closed < 1e-5);
    }

    #[test]
    fn afrati_ullman_agrees_on_symmetric_triangle() {
        // Equal sizes: minimizing total load and minimizing max load give
        // the same symmetric solution e = (1/3, 1/3, 1/3).
        let q = named::cycle(3);
        let st = stats(&q, &[1 << 16; 3]);
        let au = ShareAllocation::afrati_ullman(&q, &st, 64);
        for &e in &au.exponents {
            assert!(
                (e - 1.0 / 3.0).abs() < 0.02,
                "AU exponents {:?}",
                au.exponents
            );
        }
        let lp = ShareAllocation::optimize(&q, &st, 64).unwrap();
        assert!(
            (au.lambda - lp.lambda).abs() < 0.02,
            "AU λ {} vs LP λ {}",
            au.lambda,
            lp.lambda
        );
    }

    #[test]
    fn afrati_ullman_never_beats_lp_max_load() {
        // The LP minimizes the max; AU minimizes the total. AU's max-load
        // exponent can only be >= the LP optimum (up to solver tolerance).
        for cards in [
            vec![1usize << 16, 1 << 16, 1 << 16],
            vec![1 << 20, 1 << 12, 1 << 12],
            vec![1 << 18, 1 << 16, 1 << 10],
        ] {
            let q = named::cycle(3);
            let st = stats(&q, &cards);
            let au = ShareAllocation::afrati_ullman(&q, &st, 64);
            let lp = ShareAllocation::optimize(&q, &st, 64).unwrap();
            assert!(
                au.lambda >= lp.lambda - 0.02,
                "cards {cards:?}: AU λ {} below LP λ {}",
                au.lambda,
                lp.lambda
            );
        }
    }

    #[test]
    fn equal_shares_allocation() {
        let q = named::cycle(3);
        let alloc = ShareAllocation::equal(&q, 27);
        assert_eq!(alloc.shares, vec![3, 3, 3]);
        let alloc64 = ShareAllocation::equal(&q, 64);
        assert_eq!(alloc64.shares, vec![4, 4, 4]);
    }

    #[test]
    fn expected_load_uses_integer_shares() {
        let q = named::two_way_join();
        let st = stats(&q, &[1 << 16, 1 << 16]);
        let mut shares = vec![1usize; 3];
        shares[q.var_index("z").unwrap()] = 64;
        let alloc = ShareAllocation::explicit(shares, 64);
        // Load = max_j M_j / p_z = M / 64.
        let expected = st.bit_sizes_f64()[0] / 64.0;
        let got = alloc.expected_load_bits(&q, &st);
        assert!((got - expected).abs() / expected < 1e-12);
    }
}
