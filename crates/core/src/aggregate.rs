//! Streaming aggregate pushdown: COUNT / SUM / MIN / MAX / COUNT DISTINCT
//! evaluated *inside* each server's local join, never materializing the
//! answers.
//!
//! The paper's cost model charges communication, and for an aggregate
//! query the answer rows never need to cross the wire at all: routing is
//! identical to the materializing path (same algorithm, same load), only
//! collection differs. Each server folds its local join's bindings — via
//! the multiplicity-aware emit of
//! [`mpc_data::join_foreach_mult`] — into a per-group
//! [`AggregateAccumulator`], and the per-server accumulators are merged
//! ([`Mergeable`]) into one [`AggregateResult`]. Memory is proportional
//! to the number of *groups*, not output rows — the entire point on
//! join-product-skew workloads where `|output| ≫ |inputs|`.
//!
//! **Exactness.** Semantics are bag (SQL) semantics over join
//! *derivations* (combinations of body tuples). The aggregate path is
//! restricted to plans that partition the derivation multiset across
//! servers — each derivation's tuples meet at exactly one server — so
//! summing per-server folds of a derivation-additive aggregate is exact,
//! even when one binding's derivations split across servers (e.g. a heavy
//! hitter's rows spread over a skew-join row block). HyperCube (a
//! derivation is one grid cell), hash join, fragment-replicate, and the
//! §4.1 skew join (every virtual block is at most `p` long, so the
//! round-robin fold is injective within it) all qualify. Two do not and
//! are excluded: the multi-round baseline deduplicates intermediates,
//! and the §4.2 general algorithm replicates a derivation across
//! overlapping bin-combination sub-instances — auto planning falls back
//! to skew-resilient equal shares for aggregates instead.
//!
//! ```
//! use mpc_core::aggregate::aggregate_oracle;
//! use mpc_core::engine::Engine;
//! use mpc_data::{generators, Database, Rng};
//! use mpc_query::parse_aggregate_query;
//!
//! let (q, spec) = parse_aggregate_query("Q(x; count) :- S1(x,z), S2(y,z)").unwrap();
//! let spec = spec.unwrap();
//! let mut rng = Rng::seed_from_u64(1);
//! let s1 = generators::uniform("S1", 2, 300, 64, &mut rng);
//! let s2 = generators::uniform("S2", 2, 300, 64, &mut rng);
//! let db = Database::new(q.clone(), vec![s1, s2], 64).unwrap();
//!
//! let outcome = Engine::new(&q).p(8).aggregate(spec.clone()).run(&db);
//! assert_eq!(outcome.aggregate(), Some(&aggregate_oracle(&db, &spec)));
//! ```

use mpc_data::budget::{BudgetExceeded, QueryBudget};
use mpc_data::catalog::Database;
use mpc_data::fastmap::{with_projected_key, FastMap, FastSet};
use mpc_data::join::{self, JoinOrder};
use mpc_data::relation::Relation;
use mpc_query::aggregate::{AggregateOp, AggregateSpec};
use mpc_query::Query;
use mpc_sim::cluster::Cluster;
use std::fmt;

/// Anything that can absorb a peer built under the same spec — the merge
/// half of per-server aggregate folding. Merging must be commutative and
/// associative so the result is independent of server chunking (the
/// cluster still delivers chunks in server order).
pub trait Mergeable {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// One op's running state inside a group. The operand variable is baked
/// in so the hot fold never consults the spec.
#[derive(Clone, Debug)]
enum OpState {
    Count(u64),
    Sum(usize, u128),
    Min(usize, u64),
    Max(usize, u64),
    Distinct(usize, FastSet<u64>),
}

impl OpState {
    fn new(op: AggregateOp) -> OpState {
        match op {
            AggregateOp::Count => OpState::Count(0),
            AggregateOp::Sum(v) => OpState::Sum(v, 0),
            // A group only exists once a derivation arrives, so the
            // identities are never observed.
            AggregateOp::Min(v) => OpState::Min(v, u64::MAX),
            AggregateOp::Max(v) => OpState::Max(v, 0),
            AggregateOp::CountDistinct(v) => OpState::Distinct(v, FastSet::default()),
        }
    }

    #[inline]
    fn update(&mut self, binding: &[u64], mult: u64) {
        match self {
            OpState::Count(c) => *c += mult,
            OpState::Sum(v, s) => *s += mult as u128 * binding[*v] as u128,
            OpState::Min(v, m) => *m = (*m).min(binding[*v]),
            OpState::Max(v, m) => *m = (*m).max(binding[*v]),
            OpState::Distinct(v, set) => {
                set.insert(binding[*v]);
            }
        }
    }

    fn merge(&mut self, other: OpState) {
        match (self, other) {
            (OpState::Count(a), OpState::Count(b)) => *a += b,
            (OpState::Sum(_, a), OpState::Sum(_, b)) => *a += b,
            (OpState::Min(_, a), OpState::Min(_, b)) => *a = (*a).min(b),
            (OpState::Max(_, a), OpState::Max(_, b)) => *a = (*a).max(b),
            (OpState::Distinct(_, a), OpState::Distinct(_, b)) => a.extend(b),
            _ => unreachable!("merged accumulators share one spec"),
        }
    }

    fn value(&self) -> u128 {
        match self {
            OpState::Count(c) => *c as u128,
            OpState::Sum(_, s) => *s,
            OpState::Min(_, m) => *m as u128,
            OpState::Max(_, m) => *m as u128,
            OpState::Distinct(_, set) => set.len() as u128,
        }
    }
}

/// A per-server (or sequential) streaming accumulator: one
/// [`FastMap`] entry per observed group, each holding one op state per
/// op. Feed it bindings via [`AggregateAccumulator::fold`], merge peers
/// via [`Mergeable::merge`], then [`AggregateAccumulator::finish`].
pub struct AggregateAccumulator {
    group_by: Vec<usize>,
    ops: Vec<AggregateOp>,
    groups: FastMap<Vec<u64>, Vec<OpState>>,
}

impl AggregateAccumulator {
    /// A fresh accumulator for `spec`.
    pub fn new(spec: &AggregateSpec) -> AggregateAccumulator {
        AggregateAccumulator {
            group_by: spec.group_by().to_vec(),
            ops: spec.ops().to_vec(),
            groups: FastMap::default(),
        }
    }

    /// Absorb one distinct binding with its derivation multiplicity (the
    /// `join_foreach_mult` emit signature). The hot path probes with a
    /// stack-projected key and heap-allocates only when a new group
    /// appears, so folding stays `Θ(groups)` allocations even when the
    /// derivation count is enormous.
    #[inline]
    pub fn fold(&mut self, binding: &[u64], mult: u64) {
        if mult == 0 {
            return;
        }
        let groups = &mut self.groups;
        let ops = &self.ops;
        with_projected_key(binding, &self.group_by, |key| {
            if let Some(states) = groups.get_mut(key) {
                for st in states {
                    st.update(binding, mult);
                }
            } else {
                let mut states: Vec<OpState> = ops.iter().map(|&op| OpState::new(op)).collect();
                for st in &mut states {
                    st.update(binding, mult);
                }
                groups.insert(key.to_vec(), states);
            }
        });
    }

    /// Number of groups observed so far.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Finalize into a sorted, comparable [`AggregateResult`].
    pub fn finish(self) -> AggregateResult {
        let mut rows: Vec<(Vec<u64>, Vec<u128>)> = self
            .groups
            .into_iter()
            .map(|(key, states)| (key, states.iter().map(OpState::value).collect()))
            .collect();
        rows.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        AggregateResult {
            group_arity: self.group_by.len(),
            ops: self.ops,
            rows,
        }
    }
}

impl Mergeable for AggregateAccumulator {
    fn merge(&mut self, other: AggregateAccumulator) {
        for (key, states) in other.groups {
            match self.groups.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (mine, theirs) in e.get_mut().iter_mut().zip(states) {
                        mine.merge(theirs);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(states);
                }
            }
        }
    }
}

/// A finalized aggregate answer: one row per group, sorted by group key,
/// each row carrying one value per op (in spec order; COUNT DISTINCT
/// reports the distinct count). Values are `u128` so SUM over a huge
/// output cannot overflow. `Eq` so differential checks compare whole
/// results bit for bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggregateResult {
    group_arity: usize,
    ops: Vec<AggregateOp>,
    rows: Vec<(Vec<u64>, Vec<u128>)>,
}

impl AggregateResult {
    /// Number of groups (rows).
    pub fn num_groups(&self) -> usize {
        self.rows.len()
    }

    /// Width of the group key (0 for a global aggregate).
    pub fn group_arity(&self) -> usize {
        self.group_arity
    }

    /// The ops each row's values correspond to, in order.
    pub fn ops(&self) -> &[AggregateOp] {
        &self.ops
    }

    /// The `(group key, values)` rows, sorted by group key.
    pub fn rows(&self) -> &[(Vec<u64>, Vec<u128>)] {
        &self.rows
    }

    /// The values for one group key, if present.
    pub fn get(&self, key: &[u64]) -> Option<&[u128]> {
        self.rows
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| self.rows[i].1.as_slice())
    }
}

/// One space-separated line per group: the key values, then `|`, then the
/// aggregate values — the shape the wire protocol echoes.
impl fmt::Display for AggregateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (key, values)) in self.rows.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            for k in key {
                write!(f, "{k} ")?;
            }
            write!(f, "|")?;
            for v in values {
                write!(f, " {v}")?;
            }
        }
        Ok(())
    }
}

/// Fold `query`'s distributed answers on a post-shuffle cluster: each
/// server's local join streams into its own accumulator (in parallel on
/// the cluster's backend), and the per-server states merge in server
/// order. Bit-identical across `Sequential`/`Threaded`/`Pooled` because
/// every merge op is commutative and exact.
pub fn aggregate_cluster(
    cluster: &Cluster,
    query: &Query,
    spec: &AggregateSpec,
) -> AggregateResult {
    try_aggregate_cluster(cluster, query, spec, &QueryBudget::unlimited())
        .expect("an unlimited budget cannot be exceeded")
}

/// [`aggregate_cluster`] under a cooperative [`QueryBudget`]: each
/// per-server fold charges its group count against the budget's group cap
/// as groups appear (per-worker counts undercount the global union, but
/// the merge re-checks the union, so the cap is enforced exactly before
/// any result is returned), and the underlying joins poll the deadline.
pub fn try_aggregate_cluster(
    cluster: &Cluster,
    query: &Query,
    spec: &AggregateSpec,
    budget: &QueryBudget,
) -> Result<AggregateResult, BudgetExceeded> {
    let parts = cluster.try_fold_answers(
        query,
        budget,
        || AggregateAccumulator::new(spec),
        |acc, binding, mult| {
            acc.fold(binding, mult);
            budget.check_groups(acc.num_groups() as u64)
        },
    )?;
    let mut merged = AggregateAccumulator::new(spec);
    for part in parts {
        merged.merge(part);
        budget.check_groups(merged.num_groups() as u64)?;
    }
    Ok(merged.finish())
}

/// The sequential ground truth: fold the Fixed-order join of the full
/// database through one accumulator. Every distributed aggregate is
/// differentially checked against this oracle.
pub fn aggregate_oracle(db: &Database, spec: &AggregateSpec) -> AggregateResult {
    let rels: Vec<&Relation> = (0..db.query().num_atoms())
        .map(|j| db.relation(j))
        .collect();
    let mut acc = AggregateAccumulator::new(spec);
    join::join_foreach_mult(db.query(), &rels, JoinOrder::Fixed, |binding, mult| {
        acc.fold(binding, mult);
    });
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpc_data::{generators, Rng};
    use mpc_query::aggregate::AggregateOp;
    use mpc_query::named;

    fn manual_fold(db: &Database, spec: &AggregateSpec) -> AggregateResult {
        // Reference fold over the *materialized* multiset of answers —
        // slow, obviously correct.
        let rels: Vec<&Relation> = (0..db.query().num_atoms())
            .map(|j| db.relation(j))
            .collect();
        let mut acc = AggregateAccumulator::new(spec);
        join::join_foreach_mult(db.query(), &rels, JoinOrder::Dynamic, |binding, mult| {
            // Expand multiplicities one by one: same result, different path.
            for _ in 0..mult {
                acc.fold(binding, 1);
            }
        });
        acc.finish()
    }

    fn join_db(m: usize, seed: u64) -> Database {
        let q = named::two_way_join();
        let n = 1u64 << 10;
        let mut rng = Rng::seed_from_u64(seed);
        let s1 = generators::uniform("S1", 2, m, n, &mut rng);
        let s2 = generators::uniform("S2", 2, m, n, &mut rng);
        Database::new(q, vec![s1, s2], n).unwrap()
    }

    fn full_spec(db: &Database) -> AggregateSpec {
        let q = db.query();
        AggregateSpec::new(
            vec![0],
            vec![
                AggregateOp::Count,
                AggregateOp::Sum(q.num_vars() - 1),
                AggregateOp::Min(q.num_vars() - 1),
                AggregateOp::Max(q.num_vars() - 1),
                AggregateOp::CountDistinct(q.num_vars() - 1),
            ],
        )
        .unwrap()
    }

    #[test]
    fn oracle_matches_multiplicity_expanded_fold() {
        let db = join_db(600, 1);
        let spec = full_spec(&db);
        assert_eq!(aggregate_oracle(&db, &spec), manual_fold(&db, &spec));
    }

    #[test]
    fn count_star_equals_answer_multiset_size() {
        let db = join_db(500, 2);
        let spec = AggregateSpec::new(vec![], vec![AggregateOp::Count]).unwrap();
        let result = aggregate_oracle(&db, &spec);
        let rels: Vec<&Relation> = (0..2).map(|j| db.relation(j)).collect();
        let mut total = 0u128;
        join::join_foreach_mult(db.query(), &rels, JoinOrder::Fixed, |_, mult| {
            total += mult as u128;
        });
        assert_eq!(result.num_groups(), 1);
        assert_eq!(result.get(&[]), Some(&[total][..]));
    }

    #[test]
    fn merge_partitions_arbitrarily() {
        // Folding a stream split across k accumulators and merging must
        // equal the one-accumulator fold, for every split point.
        let spec = AggregateSpec::new(
            vec![0],
            vec![
                AggregateOp::Count,
                AggregateOp::Sum(1),
                AggregateOp::Min(1),
                AggregateOp::Max(1),
                AggregateOp::CountDistinct(1),
            ],
        )
        .unwrap();
        let stream: Vec<(Vec<u64>, u64)> = (0..100u64)
            .map(|i| (vec![i % 7, i * 31 % 13], 1 + i % 3))
            .collect();
        let mut whole = AggregateAccumulator::new(&spec);
        for (b, m) in &stream {
            whole.fold(b, *m);
        }
        let expected = whole.finish();
        for split in [0usize, 1, 50, 99, 100] {
            let mut a = AggregateAccumulator::new(&spec);
            let mut b = AggregateAccumulator::new(&spec);
            for (i, (row, m)) in stream.iter().enumerate() {
                if i < split {
                    a.fold(row, *m);
                } else {
                    b.fold(row, *m);
                }
            }
            a.merge(b);
            assert_eq!(a.finish(), expected, "split at {split}");
        }
    }

    #[test]
    fn zero_multiplicity_creates_no_group() {
        let spec = AggregateSpec::new(vec![0], vec![AggregateOp::Count]).unwrap();
        let mut acc = AggregateAccumulator::new(&spec);
        acc.fold(&[1, 2], 0);
        assert_eq!(acc.num_groups(), 0);
        assert_eq!(acc.finish().num_groups(), 0);
    }

    #[test]
    fn sum_accumulates_in_u128() {
        let spec = AggregateSpec::new(vec![], vec![AggregateOp::Sum(0)]).unwrap();
        let mut acc = AggregateAccumulator::new(&spec);
        // u64::MAX × 4 overflows u64 but not u128.
        acc.fold(&[u64::MAX], 4);
        let result = acc.finish();
        assert_eq!(result.get(&[]), Some(&[u64::MAX as u128 * 4][..]));
    }

    #[test]
    fn result_rows_are_sorted_and_displayed() {
        let spec = AggregateSpec::new(vec![0], vec![AggregateOp::Count]).unwrap();
        let mut acc = AggregateAccumulator::new(&spec);
        for key in [9u64, 3, 7, 3] {
            acc.fold(&[key, 0], 2);
        }
        let result = acc.finish();
        let keys: Vec<u64> = result.rows().iter().map(|(k, _)| k[0]).collect();
        assert_eq!(keys, vec![3, 7, 9]);
        assert_eq!(result.get(&[3]), Some(&[4u128][..]));
        assert_eq!(result.get(&[4]), None);
        assert_eq!(result.to_string(), "3 | 4\n7 | 2\n9 | 2");
    }

    #[test]
    fn empty_join_yields_empty_result() {
        let q = named::two_way_join();
        let s1 = Relation::from_rows("S1", 2, &[&[1, 2]]);
        let s2 = Relation::from_rows("S2", 2, &[&[3, 4]]); // no shared z
        let db = Database::new(q, vec![s1, s2], 16).unwrap();
        let spec = AggregateSpec::new(vec![], vec![AggregateOp::Count]).unwrap();
        let result = aggregate_oracle(&db, &spec);
        // Under bag semantics an empty join has no groups — even the
        // global COUNT reports no row (the service layer renders 0 rows).
        assert_eq!(result.num_groups(), 0);
        assert_eq!(result.to_string(), "");
    }
}
