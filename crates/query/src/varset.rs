//! Compact sets of query variables.
//!
//! Queries in this workspace have at most 64 variables (far beyond anything
//! the paper's polytopes can handle anyway), so a variable set is a `u64`
//! bitmask. The set of variables `x` that parameterizes residual queries
//! `q_x` and bin combinations (Sections 4.2–4.3) is always a `VarSet`.

use std::fmt;

/// A set of variable indices `0..64`, stored as a bitmask.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct VarSet(u64);

impl VarSet {
    /// The empty set.
    pub const EMPTY: VarSet = VarSet(0);

    /// Singleton set `{i}`.
    pub fn singleton(i: usize) -> VarSet {
        assert!(i < 64, "variable index out of range");
        VarSet(1 << i)
    }

    /// Build from an iterator of indices.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter(iter: impl IntoIterator<Item = usize>) -> VarSet {
        iter.into_iter()
            .fold(VarSet::EMPTY, |s, i| s.union(VarSet::singleton(i)))
    }

    /// Raw bitmask.
    pub fn bits(self) -> u64 {
        self.0
    }

    /// Build directly from a bitmask.
    pub fn from_bits(bits: u64) -> VarSet {
        VarSet(bits)
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True iff empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Membership test.
    pub fn contains(self, i: usize) -> bool {
        i < 64 && self.0 & (1 << i) != 0
    }

    /// Set union.
    pub fn union(self, other: VarSet) -> VarSet {
        VarSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: VarSet) -> VarSet {
        VarSet(self.0 & other.0)
    }

    /// Set difference `self \ other`.
    pub fn minus(self, other: VarSet) -> VarSet {
        VarSet(self.0 & !other.0)
    }

    /// Insert an element.
    pub fn insert(self, i: usize) -> VarSet {
        self.union(VarSet::singleton(i))
    }

    /// True iff `self ⊆ other`.
    pub fn is_subset(self, other: VarSet) -> bool {
        self.0 & !other.0 == 0
    }

    /// True iff `self ⊂ other` (strict).
    pub fn is_strict_subset(self, other: VarSet) -> bool {
        self.is_subset(other) && self != other
    }

    /// Iterate the elements in increasing order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(i)
            }
        })
    }

    /// Iterate over all subsets of `self` (including the empty set and
    /// `self` itself), in an order where a subset always precedes any of its
    /// strict supersets... (specifically: increasing bitmask order restricted
    /// to subsets of `self`).
    pub fn subsets(self) -> impl Iterator<Item = VarSet> {
        let full = self.0;
        let mut cur: Option<u64> = Some(0);
        std::iter::from_fn(move || {
            let v = cur?;
            cur = if v == full {
                None
            } else {
                Some(((v | !full).wrapping_add(1)) & full)
            };
            Some(VarSet(v))
        })
    }
}

impl fmt::Display for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ",")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = VarSet::from_iter([0, 2, 5]);
        let b = VarSet::from_iter([2, 3]);
        assert_eq!(a.len(), 3);
        assert!(a.contains(2));
        assert!(!a.contains(3));
        assert_eq!(a.union(b), VarSet::from_iter([0, 2, 3, 5]));
        assert_eq!(a.intersect(b), VarSet::singleton(2));
        assert_eq!(a.minus(b), VarSet::from_iter([0, 5]));
        assert!(VarSet::singleton(2).is_subset(a));
        assert!(!a.is_subset(b));
        assert!(VarSet::EMPTY.is_empty());
    }

    #[test]
    fn iteration_order() {
        let s = VarSet::from_iter([7, 1, 4]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 4, 7]);
    }

    #[test]
    fn subsets_enumeration() {
        let s = VarSet::from_iter([1, 3]);
        let subs: Vec<VarSet> = s.subsets().collect();
        assert_eq!(subs.len(), 4);
        assert!(subs.contains(&VarSet::EMPTY));
        assert!(subs.contains(&VarSet::singleton(1)));
        assert!(subs.contains(&VarSet::singleton(3)));
        assert!(subs.contains(&s));
    }

    #[test]
    fn subsets_of_empty() {
        assert_eq!(VarSet::EMPTY.subsets().count(), 1);
    }

    #[test]
    fn display() {
        assert_eq!(VarSet::from_iter([0, 3]).to_string(), "{0,3}");
        assert_eq!(VarSet::EMPTY.to_string(), "{}");
    }
}
