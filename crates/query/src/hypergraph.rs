//! The hypergraph view of a conjunctive query (Section 2.2).
//!
//! Nodes are variables, hyperedges are atoms. This module provides the
//! structural predicates the paper's arguments lean on: integral edge
//! matchings (subsets of pairwise variable-disjoint atoms, which drive the
//! intuition behind Theorem 1.1's cartesian-product lower bounds), variable
//! degrees, and connected components (used to decompose a query into
//! independent sub-problems whose loads combine by `max`).

use crate::query::Query;
use crate::varset::VarSet;

/// True iff the atom subset `atoms` is an (integral) *edge matching*: no two
/// chosen atoms share a variable. The paper: "the subset is called an edge
/// packing, or an edge matching, if no two relations share a common
/// variable" (Section 1).
pub fn is_edge_matching(q: &Query, atoms: &[usize]) -> bool {
    let mut seen = VarSet::EMPTY;
    for &j in atoms {
        let vs = q.atom(j).var_set();
        if !seen.intersect(vs).is_empty() {
            return false;
        }
        seen = seen.union(vs);
    }
    true
}

/// All maximal integral edge matchings (as atom index sets, each sorted).
/// Exponential in ℓ, fine for paper-sized queries.
pub fn maximal_matchings(q: &Query) -> Vec<Vec<usize>> {
    let l = q.num_atoms();
    let mut all: Vec<Vec<usize>> = Vec::new();
    for mask in 0u64..(1 << l) {
        let subset: Vec<usize> = (0..l).filter(|&j| mask & (1 << j) != 0).collect();
        if is_edge_matching(q, &subset) {
            all.push(subset);
        }
    }
    // Keep only subset-maximal ones.
    let maximal: Vec<Vec<usize>> = all
        .iter()
        .filter(|s| {
            !all.iter()
                .any(|t| t.len() > s.len() && s.iter().all(|j| t.contains(j)))
        })
        .cloned()
        .collect();
    maximal
}

/// Degree of a variable: the number of atoms containing it.
pub fn var_degree(q: &Query, i: usize) -> usize {
    q.atoms_with_var(i).count()
}

/// Connected components of the hypergraph, as (variable set, atom indices)
/// pairs in discovery order. Two atoms are connected when they share a
/// variable.
#[allow(clippy::needless_range_loop)]
pub fn connected_components(q: &Query) -> Vec<(VarSet, Vec<usize>)> {
    let l = q.num_atoms();
    let mut assigned = vec![false; l];
    let mut components = Vec::new();
    for start in 0..l {
        if assigned[start] {
            continue;
        }
        let mut frontier = vec![start];
        let mut comp_atoms = Vec::new();
        let mut comp_vars = VarSet::EMPTY;
        assigned[start] = true;
        while let Some(j) = frontier.pop() {
            comp_atoms.push(j);
            comp_vars = comp_vars.union(q.atom(j).var_set());
            for j2 in 0..l {
                if !assigned[j2] && !q.atom(j2).var_set().intersect(comp_vars).is_empty() {
                    assigned[j2] = true;
                    frontier.push(j2);
                }
            }
        }
        comp_atoms.sort_unstable();
        components.push((comp_vars, comp_atoms));
    }
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn matchings_in_chain() {
        // L3: {S1,S3} is a matching, {S1,S2} is not (share x2).
        let q = named::chain(3);
        assert!(is_edge_matching(&q, &[0, 2]));
        assert!(!is_edge_matching(&q, &[0, 1]));
        let max = maximal_matchings(&q);
        assert!(max.contains(&vec![0, 2]));
        assert!(max.contains(&vec![1]));
        assert!(!max.contains(&vec![0]));
    }

    #[test]
    fn triangle_has_only_singleton_matchings() {
        let q = named::cycle(3);
        let max = maximal_matchings(&q);
        assert_eq!(max, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn cartesian_is_one_big_matching() {
        let q = named::cartesian(4);
        assert!(is_edge_matching(&q, &[0, 1, 2, 3]));
        assert_eq!(maximal_matchings(&q), vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn degrees() {
        let q = named::star(3);
        let z = q.var_index("z").unwrap();
        assert_eq!(var_degree(&q, z), 3);
        assert_eq!(var_degree(&q, 0), 1);
    }

    #[test]
    fn components_of_connected_query() {
        let q = named::cycle(4);
        let comps = connected_components(&q);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].1, vec![0, 1, 2, 3]);
        assert_eq!(comps[0].0.len(), 4);
    }

    #[test]
    fn components_of_cartesian() {
        let q = named::cartesian(3);
        let comps = connected_components(&q);
        assert_eq!(comps.len(), 3);
        for (vars, atoms) in comps {
            assert_eq!(vars.len(), 1);
            assert_eq!(atoms.len(), 1);
        }
    }
}
