//! Fractional edge covers, the AGM bound, and LP-duality cross-checks.
//!
//! A fractional edge cover flips the `<=` of the packing constraints to `>=`
//! (Section 2.2). Covers bound the *output size* of a query (Friedgut's
//! inequality / AGM, Section 2.3: `|q| <= Π_j |S_j|^{u_j}`), and the minimum
//! cover value `ρ*` captures sequential complexity, while the maximum
//! packing value `τ*` captures one-round parallel complexity — the contrast
//! the paper's introduction draws.

use crate::packing::{max_packing_value, Packing};
use crate::query::Query;
use mpc_lp::{Cmp, LinearProgram, LpError, Sense};

/// True iff `u` is a feasible fractional edge cover of `q`: every variable
/// is covered with total weight at least 1.
pub fn is_cover(q: &Query, u: &Packing) -> bool {
    if u.len() != q.num_atoms() || u.0.iter().any(|w| w.is_negative()) {
        return false;
    }
    (0..q.num_vars()).all(|i| {
        let total: mpc_lp::Rat = q.atoms_with_var(i).map(|j| u.0[j]).sum();
        total >= mpc_lp::Rat::ONE
    })
}

/// Minimum fractional edge cover weights (argmin of `Σ u_j`), via LP.
pub fn min_edge_cover(q: &Query) -> Result<Vec<f64>, LpError> {
    let mut lp = LinearProgram::new(Sense::Minimize);
    let vars: Vec<usize> = (0..q.num_atoms())
        .map(|j| lp.add_var(format!("u{j}"), 1.0))
        .collect();
    for i in 0..q.num_vars() {
        let terms: Vec<(usize, f64)> = q.atoms_with_var(i).map(|j| (vars[j], 1.0)).collect();
        lp.add_constraint(&terms, Cmp::Ge, 1.0);
    }
    lp.solve().map(|s| s.x)
}

/// The fractional edge covering number `ρ*` of `q`.
pub fn edge_cover_number(q: &Query) -> Result<f64, LpError> {
    Ok(min_edge_cover(q)?.iter().sum())
}

/// The fractional vertex covering number `τ*` of `q`, computed by LP
/// (minimize `Σ_i v_i` s.t. `Σ_{i ∈ S_j} v_i >= 1` per atom). By LP duality
/// this equals the maximum fractional edge packing value — the identity the
/// paper uses after Theorem 1.1; [`duality_check`] asserts it.
pub fn vertex_cover_number(q: &Query) -> Result<f64, LpError> {
    let mut lp = LinearProgram::new(Sense::Minimize);
    let vars: Vec<usize> = (0..q.num_vars())
        .map(|i| lp.add_var(format!("v{i}"), 1.0))
        .collect();
    for j in 0..q.num_atoms() {
        let terms: Vec<(usize, f64)> = q.atom(j).var_set().iter().map(|i| (vars[i], 1.0)).collect();
        lp.add_constraint(&terms, Cmp::Ge, 1.0);
    }
    lp.solve().map(|s| s.objective)
}

/// Assert (numerically) that `τ* = max packing value`; returns the common
/// value. Used by tests and diagnostics.
pub fn duality_check(q: &Query) -> f64 {
    let packing = max_packing_value(q).to_f64();
    let cover = vertex_cover_number(q).expect("vertex cover LP is always feasible");
    debug_assert!(
        (packing - cover).abs() < 1e-6,
        "LP duality violated: max packing {packing} != vertex cover {cover}"
    );
    packing
}

/// The AGM output-size bound `Π_j m_j^{u_j}` for the *minimum-value*
/// fractional edge cover weighted by `log m_j` (i.e. the tightest AGM bound
/// for the given cardinalities): `min Σ_j u_j log m_j` over covers `u`.
///
/// `cardinalities[j]` is `m_j = |S_j|`. Returns the bound on `|q|`.
pub fn agm_bound(q: &Query, cardinalities: &[usize]) -> Result<f64, LpError> {
    assert_eq!(cardinalities.len(), q.num_atoms());
    let mut lp = LinearProgram::new(Sense::Minimize);
    let vars: Vec<usize> = (0..q.num_atoms())
        .map(|j| lp.add_var(format!("u{j}"), (cardinalities[j].max(1) as f64).ln()))
        .collect();
    for i in 0..q.num_vars() {
        let terms: Vec<(usize, f64)> = q.atoms_with_var(i).map(|j| (vars[j], 1.0)).collect();
        lp.add_constraint(&terms, Cmp::Ge, 1.0);
    }
    lp.solve().map(|s| s.objective.exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;
    use mpc_lp::Rat;

    #[test]
    fn triangle_cover_number_is_three_halves() {
        let q = named::cycle(3);
        let rho = edge_cover_number(&q).unwrap();
        assert!((rho - 1.5).abs() < 1e-7, "rho* = {rho}");
    }

    #[test]
    fn triangle_agm_bound_is_sqrt_product() {
        // |C3| <= sqrt(m1 m2 m3) (Section 2.3).
        let q = named::cycle(3);
        let bound = agm_bound(&q, &[100, 400, 900]).unwrap();
        let expected = (100.0f64 * 400.0 * 900.0).sqrt();
        assert!(
            (bound - expected).abs() / expected < 1e-6,
            "bound {bound} vs {expected}"
        );
    }

    #[test]
    fn agm_bound_unequal_sizes_uses_small_relations() {
        // Join S1(x,z), S2(y,z): only cover is u1=u2=1 (x needs S1, y needs
        // S2), so AGM = m1*m2.
        let q = named::two_way_join();
        let bound = agm_bound(&q, &[10, 1000]).unwrap();
        assert!((bound - 10_000.0).abs() < 1.0, "bound {bound}");
    }

    #[test]
    fn duality_holds_on_standard_queries() {
        for q in [
            named::cycle(3),
            named::cycle(4),
            named::cycle(5),
            named::chain(2),
            named::chain(3),
            named::chain(4),
            named::star(2),
            named::star(3),
            named::star(4),
            named::two_way_join(),
            named::cartesian(2),
            named::cartesian(4),
        ] {
            let v = duality_check(&q);
            let tau = vertex_cover_number(&q).unwrap();
            assert!((v - tau).abs() < 1e-6, "{}: {v} vs {tau}", q.name());
        }
    }

    #[test]
    fn cover_predicate() {
        let q = named::cycle(3);
        let half = Packing(vec![Rat::new(1, 2); 3]);
        assert!(is_cover(&q, &half));
        let unit = Packing(vec![Rat::ONE, Rat::ZERO, Rat::ZERO]);
        assert!(!is_cover(&q, &unit)); // variable x3 uncovered
        let big = Packing(vec![Rat::ONE; 3]);
        assert!(is_cover(&q, &big));
    }

    #[test]
    fn tight_packing_is_tight_cover() {
        // Section 2.2: tight packings and tight covers coincide.
        let q = named::cycle(3);
        let u = Packing(vec![Rat::new(1, 2); 3]);
        assert!(crate::packing::is_tight_packing(&q, &u));
        assert!(is_cover(&q, &u));
    }

    #[test]
    fn star_cover_number() {
        // Star with 3 rays: every ray's leaf must be covered by its own atom,
        // so u_i = 1 for all: rho* = 3.
        let rho = edge_cover_number(&named::star(3)).unwrap();
        assert!((rho - 3.0).abs() < 1e-7);
    }
}
