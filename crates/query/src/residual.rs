//! Residual queries `q_x` and saturating packings (Section 4.3).
//!
//! For a set of variables `x`, the residual query `q_x` is obtained from `q`
//! by deleting the variables of `x` from every atom (the arity of `S_j`
//! drops by `|x ∩ vars(S_j)|`). A packing `u` of `q_x` *saturates* a
//! variable `x_i ∈ x` if the atoms that contained `x_i` in the *original*
//! query carry total weight at least 1. The skewed-data lower bound
//! (Theorem 4.7) ranges over packings of `q_x` that saturate all of `x`.
//!
//! Residual queries here keep the original variable index space (deleted
//! variables simply occur in no atom); this keeps atom indices and variable
//! indices stable across `q` and all of its residuals, which every consumer
//! of these types relies on.

use crate::packing::{packing_system, Packing};
use crate::query::Query;
use crate::varset::VarSet;
use mpc_lp::{enumerate_vertices, non_dominated_max, Rat, RatMatrix};

/// The residual query `q_x`: drop the variables of `x` from every atom.
///
/// Atom order, atom names and variable indices are preserved; atoms whose
/// variables are all in `x` become zero-arity placeholders (they still
/// constrain the bound through their residual cardinality `m_j(h_j)`).
pub fn residual_query(q: &Query, x: VarSet) -> Query {
    let atoms = q
        .atoms()
        .iter()
        .map(|a| {
            let vars: Vec<usize> = a
                .vars()
                .iter()
                .copied()
                .filter(|&v| !x.contains(v))
                .collect();
            Query::make_atom(a.name().to_string(), vars)
        })
        .collect();
    let name = format!("{}_res{}", q.name(), x);
    let var_names = (0..q.num_vars())
        .map(|i| q.var_name(i).to_string())
        .collect();
    Query::from_parts(name, var_names, atoms)
}

/// True iff packing `u` (over `q_x`'s atoms = `q`'s atoms) saturates every
/// variable of `x`: for each `x_i ∈ x`, `Σ_{j : x_i ∈ vars(S_j)} u_j >= 1`,
/// with atom incidence taken in the *original* query.
pub fn saturates(q: &Query, u: &Packing, x: VarSet) -> bool {
    x.iter().all(|i| {
        let total: Rat = q.atoms_with_var(i).map(|j| u.weight(j)).sum();
        total >= Rat::ONE
    })
}

/// The constraint system of the *saturated residual polytope*: packings of
/// `q_x` (with per-atom caps, see [`packing_system`]) intersected with the
/// saturation half-spaces `Σ_{j: x_i ∈ S_j} u_j >= 1` for each `x_i ∈ x`.
pub fn saturated_system(q: &Query, x: VarSet) -> (RatMatrix, Vec<Rat>) {
    let qx = residual_query(q, x);
    let (a, mut b) = packing_system(&qx);
    let l = q.num_atoms();
    let extra = x.len();
    let base_rows = a.rows();
    let full = RatMatrix::from_fn(base_rows + extra, l, |row, j| {
        if row < base_rows {
            a[(row, j)]
        } else {
            // -Σ u_j <= -1 for the (row - base_rows)-th variable of x.
            let var = x.iter().nth(row - base_rows).expect("row in range");
            if q.atom(j).vars().contains(&var) {
                -Rat::ONE
            } else {
                Rat::ZERO
            }
        }
    });
    b.extend(std::iter::repeat_n(-Rat::ONE, extra));
    (full, b)
}

/// All vertices of the saturated residual polytope. Empty iff no packing of
/// `q_x` saturates `x` (then `x` yields no Theorem 4.7 bound).
pub fn saturating_packing_vertices(q: &Query, x: VarSet) -> Vec<Packing> {
    let (a, b) = saturated_system(q, x);
    let mut vs: Vec<Packing> = enumerate_vertices(&a, &b)
        .into_iter()
        .map(Packing)
        .collect();
    vs.sort();
    vs
}

/// Non-dominated vertices of the saturated residual polytope — the
/// candidates for the maximizer of `L_x(u, M, p)`.
pub fn saturating_pk(q: &Query, x: VarSet) -> Vec<Packing> {
    let (a, b) = saturated_system(q, x);
    let raw = enumerate_vertices(&a, &b);
    let mut nd: Vec<Packing> = non_dominated_max(&raw).into_iter().map(Packing).collect();
    nd.sort();
    nd
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn residual_of_join_on_z() {
        // Example 4.8: q(x,y,z) = S1(x,z), S2(y,z); x = {z} gives
        // q_x = S1(x), S2(y) whose sole maximal packing (1,1) saturates z.
        let q = named::two_way_join();
        let z = q.var_index("z").unwrap();
        let x = VarSet::singleton(z);
        let qx = residual_query(&q, x);
        assert_eq!(qx.atom(0).vars(), &[q.var_index("x").unwrap()]);
        assert_eq!(qx.atom(1).vars(), &[q.var_index("y").unwrap()]);
        let u11 = Packing(vec![Rat::ONE, Rat::ONE]);
        assert!(crate::packing::is_packing(&qx, &u11));
        assert!(saturates(&q, &u11, x));
        assert!(saturating_packing_vertices(&q, x).contains(&u11));
        // (1,1) dominates everything else.
        assert_eq!(saturating_pk(&q, x), vec![u11]);
    }

    #[test]
    fn residual_of_triangle_on_x1() {
        // Example 4.8: C3, x = {x1}: residual S1(x2), S2(x2,x3), S3(x3);
        // (1,0,1) saturates x1 but (0,1,0) does not.
        let q = named::cycle(3);
        let x = VarSet::singleton(0);
        let u101 = Packing(vec![Rat::ONE, Rat::ZERO, Rat::ONE]);
        let u010 = Packing(vec![Rat::ZERO, Rat::ONE, Rat::ZERO]);
        let qx = residual_query(&q, x);
        assert!(crate::packing::is_packing(&qx, &u101));
        assert!(saturates(&q, &u101, x));
        assert!(!saturates(&q, &u010, x));
        assert!(saturating_packing_vertices(&q, x).contains(&u101));
        assert!(!saturating_packing_vertices(&q, x).contains(&u010));
    }

    #[test]
    fn zero_arity_atoms_survive() {
        // Remove both variables of S1 in the chain: S1 becomes zero-arity
        // but stays in the query with its index.
        let q = named::chain(2); // S1(x1,x2), S2(x2,x3)
        let x = VarSet::from_iter([0, 1]);
        let qx = residual_query(&q, x);
        assert_eq!(qx.num_atoms(), 2);
        assert_eq!(qx.atom(0).arity(), 0);
        assert_eq!(qx.atom(1).arity(), 1);
    }

    #[test]
    fn saturation_infeasible_when_variable_uncoverable() {
        // Star(2): S1(x1,z), S2(x2,z); x = {z, x1, x2}: saturating all three
        // requires u1 >= 1 (x1), u2 >= 1 (x2), fine since residual atoms are
        // empty; caps allow u = (1,1); z needs u1+u2 >= 1: satisfied. So
        // this IS feasible; check a genuinely infeasible case instead:
        // a single unary atom S(x) and x = {x} with... saturation needs
        // u1 >= 1, cap allows it. Construct infeasibility via conflicting
        // residual constraint: q = S1(x,y), S2(y); x = {x}. Saturating x
        // needs u1 >= 1, but residual S1(y), S2(y) forces u1 + u2 <= 1, so
        // vertices exist with u1 = 1, u2 = 0 — still feasible. True
        // infeasibility cannot arise from these systems when caps permit
        // u_j = 1 unless a residual variable constraint conflicts:
        // q = S1(x,y), S2(x,y): self-join is banned, so use
        // q = S1(x,y), S2(y,x2), x = {x}: saturation u1 >= 1; residual
        // S1(y), S2(y,x2): y-row forces u1+u2 <= 1 => u2 = 0. Feasible.
        // Conclusion: feasibility is the norm; assert non-emptiness here.
        let q = named::star(2);
        let x = q.all_vars();
        assert!(!saturating_packing_vertices(&q, x).is_empty());
    }

    #[test]
    fn empty_x_reduces_to_plain_packing_polytope() {
        let q = named::cycle(3);
        let with_empty = saturating_packing_vertices(&q, VarSet::EMPTY);
        let plain = crate::packing::packing_vertices(&q);
        assert_eq!(with_empty, plain);
    }

    #[test]
    fn residual_preserves_names_and_indices() {
        let q = named::cycle(3);
        let x = VarSet::singleton(1);
        let qx = residual_query(&q, x);
        assert_eq!(qx.atom(0).name(), "S1");
        assert_eq!(qx.num_vars(), q.num_vars());
        assert_eq!(qx.var_name(2), q.var_name(2));
    }
}
