//! Aggregate heads over full conjunctive queries.
//!
//! A conjunctive query's answers are bindings of its variables; an
//! *aggregate head* asks for a summary of those bindings instead of the
//! bindings themselves: `Q(x; count) :- R(x,y), S(y,z)` groups the join by
//! `x` and counts the derivations per group. [`AggregateSpec`] carries the
//! group-by variables and the aggregate ops as *variable indices* into the
//! body query, so a spec survives [`crate::query::Query::canonical`]
//! renaming unchanged — plan caches can key on it directly.
//!
//! Semantics are bag (SQL) semantics over join *derivations*: every
//! combination of body tuples deriving a binding contributes once. COUNT
//! is the number of derivations in the group, SUM adds the bound value
//! once per derivation, MIN/MAX are multiplicity-independent, and COUNT
//! DISTINCT counts distinct bound values. Derivations — unlike distinct
//! bindings — partition cleanly across the servers of every one-round
//! algorithm, which is what makes per-server folding exact.
//!
//! ```
//! use mpc_query::parse_aggregate_query;
//!
//! let (q, spec) = parse_aggregate_query("Q(x; count, sum(z)) :- S1(x,y), S2(y,z)").unwrap();
//! let spec = spec.expect("aggregate head");
//! assert_eq!(spec.group_by(), &[q.var_index("x").unwrap()]);
//! assert_eq!(spec.ops().len(), 2);
//! assert_eq!(spec.display_with(&q), "x; count, sum(z)");
//! ```

use crate::query::{Query, QueryError};
use std::fmt::Write as _;

/// One aggregate operation over the join's bindings. Variable operands are
/// indices into the body query's variables (see [`Query::var_index`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggregateOp {
    /// Number of derivations in the group (`COUNT(*)` under bag
    /// semantics).
    Count,
    /// Sum of the variable over all derivations (accumulated in `u128`, so
    /// `|output| × domain` cannot overflow).
    Sum(usize),
    /// Smallest value the variable takes in the group.
    Min(usize),
    /// Largest value the variable takes in the group.
    Max(usize),
    /// Number of distinct values the variable takes in the group.
    CountDistinct(usize),
}

impl AggregateOp {
    /// The operand variable, when the op has one.
    pub fn var(self) -> Option<usize> {
        match self {
            AggregateOp::Count => None,
            AggregateOp::Sum(v)
            | AggregateOp::Min(v)
            | AggregateOp::Max(v)
            | AggregateOp::CountDistinct(v) => Some(v),
        }
    }

    /// The op's keyword as it appears in query text.
    pub fn keyword(self) -> &'static str {
        match self {
            AggregateOp::Count => "count",
            AggregateOp::Sum(_) => "sum",
            AggregateOp::Min(_) => "min",
            AggregateOp::Max(_) => "max",
            AggregateOp::CountDistinct(_) => "count_distinct",
        }
    }

    /// Render with the operand variable named through `q`.
    pub fn display_with(self, q: &Query) -> String {
        match self.var() {
            None => self.keyword().to_string(),
            Some(v) => format!("{}({})", self.keyword(), q.var_name(v)),
        }
    }
}

/// An aggregate head: group-by variables plus one or more ops, all as
/// variable indices into the body query. Hash/Eq so plan-cache keys can
/// include the spec verbatim.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AggregateSpec {
    group_by: Vec<usize>,
    ops: Vec<AggregateOp>,
}

impl AggregateSpec {
    /// Build a spec. `group_by` may be empty (one global group); `ops`
    /// must not be.
    pub fn new(group_by: Vec<usize>, ops: Vec<AggregateOp>) -> Result<AggregateSpec, QueryError> {
        if ops.is_empty() {
            return Err(QueryError::Parse(
                "aggregate head needs at least one op".to_string(),
            ));
        }
        let mut seen = group_by.clone();
        seen.sort_unstable();
        seen.dedup();
        if seen.len() != group_by.len() {
            return Err(QueryError::Parse(
                "aggregate head repeats a group-by variable".to_string(),
            ));
        }
        Ok(AggregateSpec { group_by, ops })
    }

    /// Check every variable index against `q`.
    pub fn validate_for(&self, q: &Query) -> Result<(), QueryError> {
        let check = |v: usize| {
            if v < q.num_vars() {
                Ok(())
            } else {
                Err(QueryError::Parse(format!(
                    "aggregate spec references variable index {v}, but the query has {}",
                    q.num_vars()
                )))
            }
        };
        for &v in &self.group_by {
            check(v)?;
        }
        for op in &self.ops {
            if let Some(v) = op.var() {
                check(v)?;
            }
        }
        Ok(())
    }

    /// The group-by variable indices, in head order.
    pub fn group_by(&self) -> &[usize] {
        &self.group_by
    }

    /// The aggregate ops, in head order.
    pub fn ops(&self) -> &[AggregateOp] {
        &self.ops
    }

    /// Render the head's inside as query text, variables named through
    /// `q`: `"x; count, sum(z)"`.
    pub fn display_with(&self, q: &Query) -> String {
        let mut out = String::new();
        for (i, &v) in self.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(q.var_name(v));
        }
        out.push_str("; ");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}", op.display_with(q));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    #[test]
    fn spec_accessors_and_display() {
        let q = named::two_way_join(); // S1(x,z), S2(y,z)
        let spec = AggregateSpec::new(
            vec![0],
            vec![AggregateOp::Count, AggregateOp::Sum(1), AggregateOp::Max(2)],
        )
        .unwrap();
        spec.validate_for(&q).unwrap();
        assert_eq!(spec.group_by(), &[0]);
        assert_eq!(spec.ops().len(), 3);
        assert_eq!(
            spec.display_with(&q),
            format!(
                "{}; count, sum({}), max({})",
                q.var_name(0),
                q.var_name(1),
                q.var_name(2)
            )
        );
    }

    #[test]
    fn global_group_displays_bare_ops() {
        let q = named::two_way_join();
        let spec = AggregateSpec::new(vec![], vec![AggregateOp::Count]).unwrap();
        assert_eq!(spec.display_with(&q), "; count");
    }

    #[test]
    fn rejects_empty_ops_and_duplicate_groups() {
        assert!(AggregateSpec::new(vec![0], vec![]).is_err());
        assert!(AggregateSpec::new(vec![0, 0], vec![AggregateOp::Count]).is_err());
    }

    #[test]
    fn validate_rejects_out_of_range_vars() {
        let q = named::two_way_join(); // 3 variables
        let spec = AggregateSpec::new(vec![3], vec![AggregateOp::Count]).unwrap();
        assert!(spec.validate_for(&q).is_err());
        let spec = AggregateSpec::new(vec![], vec![AggregateOp::Sum(9)]).unwrap();
        assert!(spec.validate_for(&q).is_err());
    }

    #[test]
    fn op_metadata() {
        assert_eq!(AggregateOp::Count.var(), None);
        assert_eq!(AggregateOp::CountDistinct(4).var(), Some(4));
        assert_eq!(AggregateOp::Sum(1).keyword(), "sum");
    }
}
