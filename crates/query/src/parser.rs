//! A small text parser for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    :=  [ head sep ] atomlist
//! head     :=  ident "(" headlist ")"
//! headlist :=  varlist | [varlist] ";" agglist
//! agglist  :=  agg ("," agg)*
//! agg      :=  "count" | ("sum"|"min"|"max"|"count_distinct") "(" ident ")"
//! sep      :=  "=" | ":-"
//! atomlist :=  atom ("," atom)*
//! atom     :=  ident "(" varlist ")"
//! varlist  :=  ident ("," ident)*
//! ident    :=  [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! A plain head must list exactly the body variables (the paper only
//! considers *full* queries). An aggregate head replaces that fullness
//! requirement with a projection: the variables before `;` group the
//! answers, the ops after it summarize each group (see
//! [`crate::aggregate`]). Examples:
//!
//! ```
//! use mpc_query::parser::{parse_aggregate_query, parse_query};
//! let q = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)").unwrap();
//! assert_eq!(q.num_atoms(), 3);
//! let j = parse_query("S1(x,z), S2(y,z)").unwrap(); // head omitted
//! assert_eq!(j.num_vars(), 3);
//! let (_, spec) = parse_aggregate_query("Q(x; count) :- R(x,y), S(y,z)").unwrap();
//! assert!(spec.is_some());
//! ```

use crate::aggregate::{AggregateOp, AggregateSpec};
use crate::query::{Query, QueryError};

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, PartialEq, Eq, Clone)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Equals,
    End,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, pos: 0 }
    }

    fn next_tok(&mut self) -> Result<Tok, QueryError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Tok::End);
        }
        let c = bytes[self.pos];
        self.pos += 1;
        match c {
            b'(' => Ok(Tok::LParen),
            b')' => Ok(Tok::RParen),
            b',' => Ok(Tok::Comma),
            b';' => Ok(Tok::Semi),
            b'=' => Ok(Tok::Equals),
            // Datalog-style `:-` is an alias for `=`.
            b':' if bytes.get(self.pos) == Some(&b'-') => {
                self.pos += 1;
                Ok(Tok::Equals)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos - 1;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(self.src[start..self.pos].to_string()))
            }
            other => Err(QueryError::Parse(format!(
                "unexpected character `{}` at byte {}",
                other as char,
                self.pos - 1
            ))),
        }
    }

    fn peek(&mut self) -> Result<Tok, QueryError> {
        let save = self.pos;
        let t = self.next_tok();
        self.pos = save;
        t
    }
}

fn expect(lex: &mut Lexer, want: Tok) -> Result<(), QueryError> {
    let got = lex.next_tok()?;
    if got == want {
        Ok(())
    } else {
        Err(QueryError::Parse(format!("expected {want:?}, got {got:?}")))
    }
}

fn parse_varlist(lex: &mut Lexer) -> Result<Vec<String>, QueryError> {
    expect(lex, Tok::LParen)?;
    let mut vars = Vec::new();
    loop {
        match lex.next_tok()? {
            Tok::Ident(v) => vars.push(v),
            t => return Err(QueryError::Parse(format!("expected variable, got {t:?}"))),
        }
        match lex.next_tok()? {
            Tok::Comma => continue,
            Tok::RParen => break,
            t => return Err(QueryError::Parse(format!("expected `,` or `)`, got {t:?}"))),
        }
    }
    Ok(vars)
}

/// The inside of a head's parentheses: either a plain variable list or a
/// group-by list plus aggregate ops (keyword, optional operand).
enum HeadList {
    Plain(Vec<String>),
    Aggregate(Vec<String>, Vec<(String, Option<String>)>),
}

fn parse_head_list(lex: &mut Lexer) -> Result<HeadList, QueryError> {
    expect(lex, Tok::LParen)?;
    let mut vars: Vec<String> = Vec::new();
    loop {
        match lex.next_tok()? {
            Tok::Ident(v) => {
                vars.push(v);
                match lex.next_tok()? {
                    Tok::Comma => continue,
                    Tok::RParen => return Ok(HeadList::Plain(vars)),
                    Tok::Semi => break,
                    t => {
                        return Err(QueryError::Parse(format!(
                            "expected `,`, `;` or `)` in head, got {t:?}"
                        )))
                    }
                }
            }
            // `Q(; count)`: empty group-by, straight to the ops.
            Tok::Semi if vars.is_empty() => break,
            t => return Err(QueryError::Parse(format!("expected variable, got {t:?}"))),
        }
    }
    let mut ops: Vec<(String, Option<String>)> = Vec::new();
    loop {
        let keyword = match lex.next_tok()? {
            Tok::Ident(k) => k,
            t => {
                return Err(QueryError::Parse(format!(
                    "expected aggregate op, got {t:?}"
                )))
            }
        };
        let operand = if lex.peek()? == Tok::LParen {
            let _ = lex.next_tok()?;
            let v = match lex.next_tok()? {
                Tok::Ident(v) => v,
                t => {
                    return Err(QueryError::Parse(format!(
                        "expected aggregate operand variable, got {t:?}"
                    )))
                }
            };
            expect(lex, Tok::RParen)?;
            Some(v)
        } else {
            None
        };
        ops.push((keyword, operand));
        match lex.next_tok()? {
            Tok::Comma => continue,
            Tok::RParen => break,
            t => return Err(QueryError::Parse(format!("expected `,` or `)`, got {t:?}"))),
        }
    }
    Ok(HeadList::Aggregate(vars, ops))
}

/// Resolve a raw `(keyword, operand)` pair against the body query.
fn resolve_op(q: &Query, keyword: &str, operand: Option<&str>) -> Result<AggregateOp, QueryError> {
    let var = |name: Option<&str>| -> Result<usize, QueryError> {
        let name = name.ok_or_else(|| {
            QueryError::Parse(format!("aggregate `{keyword}` needs an operand variable"))
        })?;
        q.var_index(name).ok_or_else(|| {
            QueryError::Parse(format!(
                "aggregate operand `{name}` does not appear in the body"
            ))
        })
    };
    match keyword.to_ascii_lowercase().as_str() {
        "count" => match operand {
            None => Ok(AggregateOp::Count),
            Some(_) => Err(QueryError::Parse(
                "`count` takes no operand (use `count_distinct(v)` for distinct values)"
                    .to_string(),
            )),
        },
        "sum" => Ok(AggregateOp::Sum(var(operand)?)),
        "min" => Ok(AggregateOp::Min(var(operand)?)),
        "max" => Ok(AggregateOp::Max(var(operand)?)),
        "count_distinct" => Ok(AggregateOp::CountDistinct(var(operand)?)),
        other => Err(QueryError::Parse(format!("unknown aggregate op `{other}`"))),
    }
}

fn parse_internal(src: &str) -> Result<(Query, Option<AggregateSpec>), QueryError> {
    let mut lex = Lexer::new(src);

    // Optionally consume `name(headlist) =` (or `:-`) as a head.
    let mut head: Option<(String, HeadList)> = None;
    let save = lex.pos;
    if let Tok::Ident(name) = lex.peek()? {
        let _ = lex.next_tok()?;
        if lex.peek()? == Tok::LParen {
            match parse_head_list(&mut lex) {
                Ok(hl) => {
                    if lex.peek()? == Tok::Equals {
                        let _ = lex.next_tok()?;
                        head = Some((name, hl));
                    } else if matches!(hl, HeadList::Aggregate(..)) {
                        // `;` cannot occur in an atom: this was a head.
                        return Err(QueryError::Parse(
                            "aggregate head must be followed by `=` or `:-`".to_string(),
                        ));
                    } else {
                        // That was the first atom, not a head; rewind.
                        lex.pos = save;
                    }
                }
                // Malformed as a head — rewind and let body parsing
                // report (or succeed, for a well-formed first atom).
                Err(_) => lex.pos = save,
            }
        } else {
            lex.pos = save;
        }
    }

    // Body.
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    loop {
        let rel = match lex.next_tok()? {
            Tok::Ident(r) => r,
            t => {
                return Err(QueryError::Parse(format!(
                    "expected relation name, got {t:?}"
                )))
            }
        };
        let vars = parse_varlist(&mut lex)?;
        atoms.push((rel, vars));
        match lex.next_tok()? {
            Tok::Comma => continue,
            Tok::End => break,
            t => return Err(QueryError::Parse(format!("expected `,` or end, got {t:?}"))),
        }
    }

    let name = head
        .as_ref()
        .map(|(n, _)| n.clone())
        .unwrap_or_else(|| "q".to_string());
    let atom_refs: Vec<(&str, Vec<&str>)> = atoms
        .iter()
        .map(|(r, vs)| (r.as_str(), vs.iter().map(String::as_str).collect()))
        .collect();
    let borrowed: Vec<(&str, &[&str])> = atom_refs
        .iter()
        .map(|(r, vs)| (*r, vs.as_slice()))
        .collect();
    let q = Query::build(name, &borrowed)?;

    match head {
        None => Ok((q, None)),
        // Fullness check against an explicit plain head.
        Some((_, HeadList::Plain(head_vars))) => {
            let mut body_vars: Vec<&str> = (0..q.num_vars()).map(|i| q.var_name(i)).collect();
            let mut head_sorted: Vec<&str> = head_vars.iter().map(String::as_str).collect();
            body_vars.sort_unstable();
            head_sorted.sort_unstable();
            head_sorted.dedup();
            if body_vars != head_sorted {
                return Err(QueryError::Parse(format!(
                    "query is not full: head variables {head_sorted:?} != body variables {body_vars:?}"
                )));
            }
            Ok((q, None))
        }
        // An aggregate head is a projection: group-by variables need only
        // *appear* in the body.
        Some((_, HeadList::Aggregate(group_names, raw_ops))) => {
            let mut group_by = Vec::with_capacity(group_names.len());
            for name in &group_names {
                group_by.push(q.var_index(name).ok_or_else(|| {
                    QueryError::Parse(format!(
                        "group-by variable `{name}` does not appear in the body"
                    ))
                })?);
            }
            let mut ops = Vec::with_capacity(raw_ops.len());
            for (kw, operand) in &raw_ops {
                ops.push(resolve_op(&q, kw, operand.as_deref())?);
            }
            let spec = AggregateSpec::new(group_by, ops)?;
            Ok((q, Some(spec)))
        }
    }
}

/// Parse a conjunctive query; see the module docs for the grammar.
/// Aggregate heads are rejected here — use [`parse_aggregate_query`] at
/// surfaces that can evaluate them.
pub fn parse_query(src: &str) -> Result<Query, QueryError> {
    match parse_internal(src)? {
        (q, None) => Ok(q),
        (_, Some(_)) => Err(QueryError::Parse(
            "aggregate head not supported here (this surface materializes answers)".to_string(),
        )),
    }
}

/// Parse a conjunctive query that may carry an aggregate head, e.g.
/// `Q(x; count, sum(z)) :- S1(x,y), S2(y,z)`. Returns the body query plus
/// the spec (`None` for plain queries, which parse exactly as in
/// [`parse_query`]).
pub fn parse_aggregate_query(src: &str) -> Result<(Query, Option<AggregateSpec>), QueryError> {
    parse_internal(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_triangle_with_head() {
        let q = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)").unwrap();
        assert_eq!(q.name(), "C3");
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.atom(2).vars(), &[2, 0]);
    }

    #[test]
    fn parses_headless_body() {
        let q = parse_query("S1(x, z), S2(y, z)").unwrap();
        assert_eq!(q.name(), "q");
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.atom(0).name(), "S1");
    }

    #[test]
    fn whitespace_insensitive() {
        let q = parse_query("  R (  a ,b ) ,T( b,c )  ").unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.var_index("c"), Some(2));
    }

    #[test]
    fn rejects_non_full_head() {
        let err = parse_query("q(x) = S(x,y)").unwrap_err();
        assert!(matches!(err, QueryError::Parse(_)), "got {err:?}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("S1(x,").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("S1(x) %").is_err());
        assert!(parse_query("S1()").is_err());
    }

    #[test]
    fn rejects_self_join() {
        let err = parse_query("S(x,y), S(y,z)").unwrap_err();
        assert!(matches!(err, QueryError::SelfJoin(_)));
    }

    #[test]
    fn head_permutation_accepted() {
        // Head lists the same variable set in a different order: still full.
        let q = parse_query("q(z,x,y) = S1(x,y), S2(y,z)").unwrap();
        assert_eq!(q.num_vars(), 3);
    }

    #[test]
    fn datalog_separator_is_an_alias() {
        let a = parse_query("C3(x,y,z) :- S1(x,y), S2(y,z), S3(z,x)").unwrap();
        let b = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parses_aggregate_head() {
        let (q, spec) = parse_aggregate_query("Q(x; count, sum(z)) :- S1(x,y), S2(y,z)").unwrap();
        let spec = spec.unwrap();
        assert_eq!(q.name(), "Q");
        assert_eq!(q.num_vars(), 3);
        assert_eq!(spec.group_by(), &[q.var_index("x").unwrap()]);
        assert_eq!(
            spec.ops(),
            &[
                AggregateOp::Count,
                AggregateOp::Sum(q.var_index("z").unwrap())
            ]
        );
    }

    #[test]
    fn parses_global_aggregate_and_all_ops() {
        let (q, spec) = parse_aggregate_query(
            "Q(; count, sum(y), min(y), max(z), count_distinct(x)) = S1(x,y), S2(y,z)",
        )
        .unwrap();
        let spec = spec.unwrap();
        assert!(spec.group_by().is_empty());
        let y = q.var_index("y").unwrap();
        let z = q.var_index("z").unwrap();
        let x = q.var_index("x").unwrap();
        assert_eq!(
            spec.ops(),
            &[
                AggregateOp::Count,
                AggregateOp::Sum(y),
                AggregateOp::Min(y),
                AggregateOp::Max(z),
                AggregateOp::CountDistinct(x)
            ]
        );
    }

    #[test]
    fn aggregate_parse_of_plain_query_matches_parse_query() {
        for src in ["S1(x,z), S2(y,z)", "C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)"] {
            let (q, spec) = parse_aggregate_query(src).unwrap();
            assert!(spec.is_none());
            assert_eq!(q, parse_query(src).unwrap());
        }
    }

    #[test]
    fn aggregate_head_keywords_are_case_insensitive() {
        let (_, spec) = parse_aggregate_query("Q(x; COUNT, Sum(y)) :- S(x,y)").unwrap();
        let spec = spec.unwrap();
        assert_eq!(spec.ops()[0], AggregateOp::Count);
        assert!(matches!(spec.ops()[1], AggregateOp::Sum(_)));
    }

    #[test]
    fn plain_surface_rejects_aggregate_heads() {
        let err = parse_query("Q(x; count) :- S(x,y)").unwrap_err();
        assert!(
            matches!(&err, QueryError::Parse(m) if m.contains("aggregate")),
            "got {err:?}"
        );
    }

    #[test]
    fn rejects_malformed_aggregate_heads() {
        // Missing separator after an aggregate head.
        assert!(parse_aggregate_query("Q(x; count), S(x,y)").is_err());
        // Unknown op.
        assert!(parse_aggregate_query("Q(x; median(y)) = S(x,y)").is_err());
        // count with an operand.
        assert!(parse_aggregate_query("Q(x; count(y)) = S(x,y)").is_err());
        // sum without an operand.
        assert!(parse_aggregate_query("Q(x; sum) = S(x,y)").is_err());
        // Operand not in the body.
        assert!(parse_aggregate_query("Q(x; sum(w)) = S(x,y)").is_err());
        // Group-by variable not in the body.
        assert!(parse_aggregate_query("Q(w; count) = S(x,y)").is_err());
        // Empty head.
        assert!(parse_aggregate_query("Q(;) = S(x,y)").is_err());
    }

    #[test]
    fn aggregate_group_by_is_a_projection_not_a_fullness_violation() {
        // `x` alone would be rejected as a plain head; with `;` it's a
        // group-by projection.
        let (q, spec) = parse_aggregate_query("Q(x; count) = S(x,y)").unwrap();
        assert_eq!(q.num_vars(), 2);
        assert_eq!(spec.unwrap().group_by(), &[0]);
    }
}
