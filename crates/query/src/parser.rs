//! A small text parser for conjunctive queries.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! query    :=  [ ident "(" varlist ")" "=" ] atomlist
//! atomlist :=  atom ("," atom)*
//! atom     :=  ident "(" varlist ")"
//! varlist  :=  ident ("," ident)*
//! ident    :=  [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! The optional head must list exactly the body variables (the paper only
//! considers *full* queries). Examples:
//!
//! ```
//! use mpc_query::parser::parse_query;
//! let q = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)").unwrap();
//! assert_eq!(q.num_atoms(), 3);
//! let j = parse_query("S1(x,z), S2(y,z)").unwrap(); // head omitted
//! assert_eq!(j.num_vars(), 3);
//! ```

use crate::query::{Query, QueryError};

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

#[derive(Debug, PartialEq, Eq, Clone)]
enum Tok {
    Ident(String),
    LParen,
    RParen,
    Comma,
    Equals,
    End,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, pos: 0 }
    }

    fn next_tok(&mut self) -> Result<Tok, QueryError> {
        let bytes = self.src.as_bytes();
        while self.pos < bytes.len() && bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if self.pos >= bytes.len() {
            return Ok(Tok::End);
        }
        let c = bytes[self.pos];
        self.pos += 1;
        match c {
            b'(' => Ok(Tok::LParen),
            b')' => Ok(Tok::RParen),
            b',' => Ok(Tok::Comma),
            b'=' => Ok(Tok::Equals),
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos - 1;
                while self.pos < bytes.len()
                    && (bytes[self.pos].is_ascii_alphanumeric() || bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Ok(Tok::Ident(self.src[start..self.pos].to_string()))
            }
            other => Err(QueryError::Parse(format!(
                "unexpected character `{}` at byte {}",
                other as char,
                self.pos - 1
            ))),
        }
    }

    fn peek(&mut self) -> Result<Tok, QueryError> {
        let save = self.pos;
        let t = self.next_tok();
        self.pos = save;
        t
    }
}

fn expect(lex: &mut Lexer, want: Tok) -> Result<(), QueryError> {
    let got = lex.next_tok()?;
    if got == want {
        Ok(())
    } else {
        Err(QueryError::Parse(format!("expected {want:?}, got {got:?}")))
    }
}

fn parse_varlist(lex: &mut Lexer) -> Result<Vec<String>, QueryError> {
    expect(lex, Tok::LParen)?;
    let mut vars = Vec::new();
    loop {
        match lex.next_tok()? {
            Tok::Ident(v) => vars.push(v),
            t => return Err(QueryError::Parse(format!("expected variable, got {t:?}"))),
        }
        match lex.next_tok()? {
            Tok::Comma => continue,
            Tok::RParen => break,
            t => return Err(QueryError::Parse(format!("expected `,` or `)`, got {t:?}"))),
        }
    }
    Ok(vars)
}

/// Parse a conjunctive query; see the module docs for the grammar.
pub fn parse_query(src: &str) -> Result<Query, QueryError> {
    let mut lex = Lexer::new(src);

    // Optionally consume `name(vars) =` as a head.
    let mut head: Option<(String, Vec<String>)> = None;
    let save = lex.pos;
    if let Tok::Ident(name) = lex.peek()? {
        let _ = lex.next_tok()?;
        if lex.peek()? == Tok::LParen {
            let vars = parse_varlist(&mut lex)?;
            if lex.peek()? == Tok::Equals {
                let _ = lex.next_tok()?;
                head = Some((name, vars));
            } else {
                // That was the first atom, not a head; rewind.
                lex.pos = save;
            }
        } else {
            lex.pos = save;
        }
    }

    // Body.
    let mut atoms: Vec<(String, Vec<String>)> = Vec::new();
    loop {
        let rel = match lex.next_tok()? {
            Tok::Ident(r) => r,
            t => {
                return Err(QueryError::Parse(format!(
                    "expected relation name, got {t:?}"
                )))
            }
        };
        let vars = parse_varlist(&mut lex)?;
        atoms.push((rel, vars));
        match lex.next_tok()? {
            Tok::Comma => continue,
            Tok::End => break,
            t => return Err(QueryError::Parse(format!("expected `,` or end, got {t:?}"))),
        }
    }

    let name = head
        .as_ref()
        .map(|(n, _)| n.clone())
        .unwrap_or_else(|| "q".to_string());
    let atom_refs: Vec<(&str, Vec<&str>)> = atoms
        .iter()
        .map(|(r, vs)| (r.as_str(), vs.iter().map(String::as_str).collect()))
        .collect();
    let borrowed: Vec<(&str, &[&str])> = atom_refs
        .iter()
        .map(|(r, vs)| (*r, vs.as_slice()))
        .collect();
    let q = Query::build(name, &borrowed)?;

    // Fullness check against an explicit head.
    if let Some((_, head_vars)) = head {
        let mut body_vars: Vec<&str> = (0..q.num_vars()).map(|i| q.var_name(i)).collect();
        let mut head_sorted: Vec<&str> = head_vars.iter().map(String::as_str).collect();
        body_vars.sort_unstable();
        head_sorted.sort_unstable();
        head_sorted.dedup();
        if body_vars != head_sorted {
            return Err(QueryError::Parse(format!(
                "query is not full: head variables {head_sorted:?} != body variables {body_vars:?}"
            )));
        }
    }
    Ok(q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_triangle_with_head() {
        let q = parse_query("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)").unwrap();
        assert_eq!(q.name(), "C3");
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.atom(2).vars(), &[2, 0]);
    }

    #[test]
    fn parses_headless_body() {
        let q = parse_query("S1(x, z), S2(y, z)").unwrap();
        assert_eq!(q.name(), "q");
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.atom(0).name(), "S1");
    }

    #[test]
    fn whitespace_insensitive() {
        let q = parse_query("  R (  a ,b ) ,T( b,c )  ").unwrap();
        assert_eq!(q.num_atoms(), 2);
        assert_eq!(q.var_index("c"), Some(2));
    }

    #[test]
    fn rejects_non_full_head() {
        let err = parse_query("q(x) = S(x,y)").unwrap_err();
        assert!(matches!(err, QueryError::Parse(_)), "got {err:?}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("S1(x,").is_err());
        assert!(parse_query("").is_err());
        assert!(parse_query("S1(x) %").is_err());
        assert!(parse_query("S1()").is_err());
    }

    #[test]
    fn rejects_self_join() {
        let err = parse_query("S(x,y), S(y,z)").unwrap_err();
        assert!(matches!(err, QueryError::SelfJoin(_)));
    }

    #[test]
    fn head_permutation_accepted() {
        // Head lists the same variable set in a different order: still full.
        let q = parse_query("q(z,x,y) = S1(x,y), S2(y,z)").unwrap();
        assert_eq!(q.num_vars(), 3);
    }
}
