//! Fractional edge packings and the vertex set `pk(q)` (Sections 2.2, 3.3).
//!
//! A fractional edge packing of `q` assigns a weight `u_j >= 0` to every
//! atom such that for every variable `x_i`, the atoms containing `x_i` have
//! total weight at most 1 (Eq. 2 of the paper). The communication cost of
//! one-round evaluation is governed by the *non-dominated vertices* of this
//! polytope, which Theorem 3.6 calls `pk(q)`; this module enumerates them
//! exactly over the rationals.

use crate::query::Query;
use mpc_lp::{enumerate_vertices, non_dominated_max, Rat, RatMatrix};

/// A fractional edge packing: one rational weight per atom, in atom order.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Packing(pub Vec<Rat>);

impl Packing {
    /// The packing's total weight `u = Σ_j u_j`.
    pub fn value(&self) -> Rat {
        self.0.iter().copied().sum()
    }

    /// Weight of atom `j`.
    pub fn weight(&self, j: usize) -> Rat {
        self.0[j]
    }

    /// Weights as `f64`s.
    pub fn to_f64(&self) -> Vec<f64> {
        self.0.iter().map(Rat::to_f64).collect()
    }

    /// Number of atoms.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True iff no atoms (degenerate).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The constraint system `A u <= b` of the packing polytope of `q`:
/// one row per variable (`Σ_{j: i∈S_j} u_j <= 1`) plus one explicit cap
/// `u_j <= 1` per atom.
///
/// The caps are redundant for atoms with at least one variable (implied by
/// any variable row through the atom) but make the polytope bounded even for
/// zero-arity atoms, which arise in residual queries `q_x` when `x` swallows
/// an entire atom. Redundant rows do not change the vertex set.
pub fn packing_system(q: &Query) -> (RatMatrix, Vec<Rat>) {
    let k = q.num_vars();
    let l = q.num_atoms();
    let a = RatMatrix::from_fn(k + l, l, |row, j| {
        if row < k {
            // Count multiplicity 0/1: an atom either contains the variable
            // or not (repeated occurrences within an atom count once, per
            // the definition `i ∈ S_j`).
            if q.atom(j).vars().contains(&row) {
                Rat::ONE
            } else {
                Rat::ZERO
            }
        } else if row - k == j {
            Rat::ONE
        } else {
            Rat::ZERO
        }
    });
    let b = vec![Rat::ONE; k + l];
    (a, b)
}

/// True iff `u` is a feasible fractional edge packing of `q`.
pub fn is_packing(q: &Query, u: &Packing) -> bool {
    if u.len() != q.num_atoms() {
        return false;
    }
    if u.0.iter().any(Rat::is_negative) {
        return false;
    }
    (0..q.num_vars()).all(|i| {
        let total: Rat = q.atoms_with_var(i).map(|j| u.0[j]).sum();
        total <= Rat::ONE
    })
}

/// True iff `u` is a *tight* packing: every variable constraint holds with
/// equality. (Every tight fractional edge packing is a tight fractional edge
/// cover and vice versa — Section 2.2.)
pub fn is_tight_packing(q: &Query, u: &Packing) -> bool {
    if !is_packing(q, u) {
        return false;
    }
    (0..q.num_vars()).all(|i| {
        let total: Rat = q.atoms_with_var(i).map(|j| u.0[j]).sum();
        total == Rat::ONE
    })
}

/// All vertices of the packing polytope of `q` (including dominated ones and
/// the origin).
pub fn packing_vertices(q: &Query) -> Vec<Packing> {
    let (a, b) = packing_system(q);
    let mut vs: Vec<Packing> = enumerate_vertices(&a, &b)
        .into_iter()
        .map(Packing)
        .collect();
    vs.sort();
    vs
}

/// `pk(q)`: the non-dominated vertices of the packing polytope
/// (Section 3.3). These are the only candidates for the maximizer of
/// `L(u, M, p)`.
pub fn pk(q: &Query) -> Vec<Packing> {
    let (a, b) = packing_system(q);
    let raw = enumerate_vertices(&a, &b);
    let mut nd: Vec<Packing> = non_dominated_max(&raw).into_iter().map(Packing).collect();
    nd.sort();
    nd
}

/// The maximum total weight `τ*` over all fractional edge packings, equal by
/// LP duality to the fractional vertex covering number of `q` (Section 1,
/// discussion after Theorem 1.1).
pub fn max_packing_value(q: &Query) -> Rat {
    packing_vertices(q)
        .iter()
        .map(Packing::value)
        .max()
        .unwrap_or(Rat::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::named;

    fn r(n: i64, d: i64) -> Rat {
        Rat::new(n as i128, d as i128)
    }

    #[test]
    fn triangle_pk_matches_example_3_7() {
        // Example 3.7: pk(C3) has exactly four vertices:
        // (1/2,1/2,1/2), (1,0,0), (0,1,0), (0,0,1).
        let q = named::cycle(3);
        let mut got = pk(&q);
        got.sort();
        let mut expected = vec![
            Packing(vec![r(1, 2), r(1, 2), r(1, 2)]),
            Packing(vec![Rat::ONE, Rat::ZERO, Rat::ZERO]),
            Packing(vec![Rat::ZERO, Rat::ONE, Rat::ZERO]),
            Packing(vec![Rat::ZERO, Rat::ZERO, Rat::ONE]),
        ];
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn chain_l3_contains_101() {
        // Section 2.2: for L3 = S1(x1,x2),S2(x2,x3),S3(x3,x4) the solution
        // (1,0,1) is a tight feasible packing and appears in pk.
        let q = named::chain(3);
        let u = Packing(vec![Rat::ONE, Rat::ZERO, Rat::ONE]);
        assert!(is_packing(&q, &u));
        assert!(is_tight_packing(&q, &u));
        assert!(pk(&q).contains(&u));
    }

    #[test]
    fn chain_packing_violations_detected() {
        let q = named::chain(3);
        // u1 + u2 = 3/2 > 1 at variable x2.
        let bad = Packing(vec![Rat::ONE, r(1, 2), Rat::ZERO]);
        assert!(!is_packing(&q, &bad));
        let neg = Packing(vec![-r(1, 2), Rat::ZERO, Rat::ZERO]);
        assert!(!is_packing(&q, &neg));
        let wrong_len = Packing(vec![Rat::ONE]);
        assert!(!is_packing(&q, &wrong_len));
    }

    #[test]
    fn cartesian_product_packing_is_all_ones() {
        // Atoms share no variables: u = (1,...,1) is the unique non-dominated
        // vertex and τ* = ℓ.
        let q = named::cartesian(3);
        let vs = pk(&q);
        assert_eq!(vs, vec![Packing(vec![Rat::ONE; 3])]);
        assert_eq!(max_packing_value(&q), Rat::int(3));
    }

    #[test]
    fn star_query_tau_star() {
        // Star with center z and 3 rays S_i(x_i, z): packings give weight <=1
        // total on z, plus nothing else binds; τ* = 1 + 0? No: each ray
        // contains its own leaf variable, so u_i <= 1 individually but the
        // center constraint forces Σ u_i <= 1. τ* = 1.
        let q = named::star(3);
        assert_eq!(max_packing_value(&q), Rat::ONE);
        // Non-dominated vertices are the three unit vectors.
        let vs = pk(&q);
        assert_eq!(vs.len(), 3);
        for v in &vs {
            assert_eq!(v.value(), Rat::ONE);
        }
    }

    #[test]
    fn two_way_join_tau_star_is_one() {
        // q(x,y,z) = S1(x,z), S2(y,z): the shared z caps u1+u2 <= 1.
        let q = named::two_way_join();
        assert_eq!(max_packing_value(&q), Rat::ONE);
        let vs = pk(&q);
        let mut expected = vec![
            Packing(vec![Rat::ONE, Rat::ZERO]),
            Packing(vec![Rat::ZERO, Rat::ONE]),
        ];
        expected.sort();
        assert_eq!(vs, expected);
    }

    #[test]
    fn tightness_examples() {
        let q = named::cycle(3);
        assert!(is_tight_packing(&q, &Packing(vec![r(1, 2); 3])));
        assert!(!is_tight_packing(
            &q,
            &Packing(vec![Rat::ONE, Rat::ZERO, Rat::ZERO])
        ));
    }

    #[test]
    fn pk_excludes_origin_and_dominated() {
        let q = named::cycle(3);
        let all = packing_vertices(&q);
        // The raw polytope has the origin; pk must not.
        assert!(all.contains(&Packing(vec![Rat::ZERO; 3])));
        assert!(!pk(&q).contains(&Packing(vec![Rat::ZERO; 3])));
        assert!(all.len() > pk(&q).len());
    }

    #[test]
    fn longer_cycles_and_chains_have_sane_tau() {
        // C4: maximum matching of a 4-cycle = 2; C5: τ* = 5/2 fractional.
        assert_eq!(max_packing_value(&named::cycle(4)), Rat::int(2));
        assert_eq!(max_packing_value(&named::cycle(5)), r(5, 2));
        // Chain Lw: ceil(w/2)... L4 = S1..S4 over x1..x5: max packing 2
        // ({S1,S3} or {S1,S4} or {S2,S4}).
        assert_eq!(max_packing_value(&named::chain(4)), Rat::int(2));
        assert_eq!(max_packing_value(&named::chain(5)), Rat::int(3));
    }
}
