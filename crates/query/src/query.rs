//! Full conjunctive queries without self-joins (Section 2.2 of the paper).
//!
//! A query
//!
//! ```text
//! q(x1, ..., xk) = S1(x̄1), ..., Sℓ(x̄ℓ)
//! ```
//!
//! is *full* (every body variable appears in the head — the head is therefore
//! implicit here) and *without self-joins* (each relation symbol occurs
//! once). Variables are interned to indices `0..k` in first-occurrence
//! order; atoms keep their textual order, which fixes the index `j ∈ [ℓ]`
//! used everywhere else (packings, statistics, share vectors).

use crate::varset::VarSet;
use std::fmt;

/// One atom `S_j(x̄_j)` of a conjunctive query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// Relation symbol, unique within the query.
    name: String,
    /// Variable indices, in the atom's attribute order. Length = arity `a_j`.
    vars: Vec<usize>,
}

impl Atom {
    /// Relation symbol.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Variable indices in attribute order.
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Arity `a_j` (number of attributes).
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The set of variables appearing in this atom.
    pub fn var_set(&self) -> VarSet {
        VarSet::from_iter(self.vars.iter().copied())
    }

    /// Attribute positions (within this atom) holding variables from `x`.
    pub fn positions_of(&self, x: VarSet) -> Vec<usize> {
        (0..self.vars.len())
            .filter(|&pos| x.contains(self.vars[pos]))
            .collect()
    }

    /// Position of variable `v` within this atom, if present. When a
    /// variable repeats, the first position is returned.
    pub fn position_of_var(&self, v: usize) -> Option<usize> {
        self.vars.iter().position(|&w| w == v)
    }
}

/// Errors raised when assembling an ill-formed query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The same relation symbol appears in two atoms (a self-join).
    SelfJoin(String),
    /// An atom has arity zero at construction time.
    EmptyAtom(String),
    /// The query has no atoms.
    NoAtoms,
    /// More than 64 distinct variables.
    TooManyVariables,
    /// Parse error with a human-readable message.
    Parse(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::SelfJoin(s) => write!(f, "relation `{s}` appears twice (self-join)"),
            QueryError::EmptyAtom(s) => write!(f, "atom `{s}` has no variables"),
            QueryError::NoAtoms => write!(f, "query has no atoms"),
            QueryError::TooManyVariables => write!(f, "more than 64 distinct variables"),
            QueryError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A full conjunctive query without self-joins.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Query {
    name: String,
    var_names: Vec<String>,
    atoms: Vec<Atom>,
}

impl Query {
    /// Build a query from `(relation name, variable names)` pairs. Variables
    /// are interned by name in first-occurrence order.
    pub fn build(name: impl Into<String>, atoms: &[(&str, &[&str])]) -> Result<Query, QueryError> {
        if atoms.is_empty() {
            return Err(QueryError::NoAtoms);
        }
        let mut var_names: Vec<String> = Vec::new();
        let mut out_atoms: Vec<Atom> = Vec::with_capacity(atoms.len());
        for &(rel, vars) in atoms {
            if vars.is_empty() {
                return Err(QueryError::EmptyAtom(rel.to_string()));
            }
            if out_atoms.iter().any(|a| a.name == rel) {
                return Err(QueryError::SelfJoin(rel.to_string()));
            }
            let mut idxs = Vec::with_capacity(vars.len());
            for &v in vars {
                let idx = match var_names.iter().position(|n| n == v) {
                    Some(i) => i,
                    None => {
                        var_names.push(v.to_string());
                        var_names.len() - 1
                    }
                };
                idxs.push(idx);
            }
            out_atoms.push(Atom {
                name: rel.to_string(),
                vars: idxs,
            });
        }
        if var_names.len() > 64 {
            return Err(QueryError::TooManyVariables);
        }
        Ok(Query {
            name: name.into(),
            var_names,
            atoms: out_atoms,
        })
    }

    /// Internal constructor from already-interned parts (used by
    /// [`crate::residual`]). Atoms may have arity zero here: residual queries
    /// legitimately erase all attributes of an atom.
    pub(crate) fn from_parts(name: String, var_names: Vec<String>, atoms: Vec<Atom>) -> Query {
        Query {
            name,
            var_names,
            atoms,
        }
    }

    pub(crate) fn make_atom(name: String, vars: Vec<usize>) -> Atom {
        Atom { name, vars }
    }

    /// Query name (head symbol).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables `k`.
    pub fn num_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Number of atoms `ℓ`.
    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Variable name for index `i`.
    pub fn var_name(&self, i: usize) -> &str {
        &self.var_names[i]
    }

    /// Look up a variable index by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.var_names.iter().position(|n| n == name)
    }

    /// All atoms in body order.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Atom `j`.
    pub fn atom(&self, j: usize) -> &Atom {
        &self.atoms[j]
    }

    /// Atom index by relation name.
    pub fn atom_index(&self, rel: &str) -> Option<usize> {
        self.atoms.iter().position(|a| a.name == rel)
    }

    /// The set of all variables (always `{0..k}`).
    pub fn all_vars(&self) -> VarSet {
        VarSet::from_iter(0..self.num_vars())
    }

    /// Total arity `a = Σ_j a_j`.
    pub fn total_arity(&self) -> usize {
        self.atoms.iter().map(Atom::arity).sum()
    }

    /// Maximum arity over atoms.
    pub fn max_arity(&self) -> usize {
        self.atoms.iter().map(Atom::arity).max().unwrap_or(0)
    }

    /// Indices of atoms containing variable `i` (the hyperedges incident to
    /// node `i`).
    pub fn atoms_with_var(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.atoms
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.vars.contains(&i))
            .map(|(j, _)| j)
    }

    /// `J(x)`: indices of atoms sharing at least one variable with `x`
    /// (Section 4.3).
    pub fn atoms_meeting(&self, x: VarSet) -> Vec<usize> {
        self.atoms
            .iter()
            .enumerate()
            .filter(|(_, a)| !a.var_set().intersect(x).is_empty())
            .map(|(j, _)| j)
            .collect()
    }

    /// Structural identity of this query: relation symbols in body order
    /// with their interned variable patterns. The query's own name and the
    /// spelling of its variables are erased — two queries with equal shapes
    /// join the same relations on the same attribute positions and produce
    /// identical answer sets (answers are tuples indexed by variable
    /// position, and interning is first-occurrence order, so equal shapes
    /// force equal position assignments). Plan caches key on this.
    pub fn shape(&self) -> QueryShape {
        QueryShape {
            atoms: self
                .atoms
                .iter()
                .map(|a| (a.name.clone(), a.vars.clone()))
                .collect(),
        }
    }

    /// The canonical representative of this query's [`shape`](Self::shape):
    /// same atoms and variable structure, with the head renamed to `q` and
    /// variables renamed to `v0..v{k-1}` in interning order. Shape-equal
    /// queries have *equal* canonical forms (`==` holds), which lets a plan
    /// built for one run against databases assembled for the other.
    pub fn canonical(&self) -> Query {
        Query {
            name: "q".to_string(),
            var_names: (0..self.var_names.len()).map(|i| format!("v{i}")).collect(),
            atoms: self.atoms.clone(),
        }
    }
}

/// The name-erased structure of a [`Query`]: `(relation symbol, interned
/// variable pattern)` per atom, in body order. `Eq + Hash`, so usable as a
/// cache key; produced by [`Query::shape`].
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryShape {
    atoms: Vec<(String, Vec<usize>)>,
}

impl QueryShape {
    /// Relation symbols in body order.
    pub fn relation_names(&self) -> impl Iterator<Item = &str> {
        self.atoms.iter().map(|(n, _)| n.as_str())
    }

    /// True if any atom references relation `rel`.
    pub fn references(&self, rel: &str) -> bool {
        self.atoms.iter().any(|(n, _)| n == rel)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, v) in self.var_names.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") = ")?;
        for (j, a) in self.atoms.iter().enumerate() {
            if j > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}(", a.name)?;
            for (i, &v) in a.vars.iter().enumerate() {
                if i > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", self.var_names[v])?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Query {
        Query::build(
            "C3",
            &[
                ("S1", &["x1", "x2"]),
                ("S2", &["x2", "x3"]),
                ("S3", &["x3", "x1"]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn interning_and_shape() {
        let q = triangle();
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.total_arity(), 6);
        assert_eq!(q.max_arity(), 2);
        assert_eq!(q.var_name(0), "x1");
        assert_eq!(q.var_index("x3"), Some(2));
        assert_eq!(q.atom(1).vars(), &[1, 2]);
        assert_eq!(q.atom_index("S3"), Some(2));
    }

    #[test]
    fn display_roundtrips_shape() {
        let q = triangle();
        assert_eq!(
            q.to_string(),
            "C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1)"
        );
    }

    #[test]
    fn self_join_rejected() {
        let err = Query::build("q", &[("S", &["x"]), ("S", &["y"])]).unwrap_err();
        assert_eq!(err, QueryError::SelfJoin("S".into()));
    }

    #[test]
    fn empty_atom_rejected() {
        let err = Query::build("q", &[("S", &[])]).unwrap_err();
        assert_eq!(err, QueryError::EmptyAtom("S".into()));
    }

    #[test]
    fn no_atoms_rejected() {
        let err = Query::build("q", &[]).unwrap_err();
        assert_eq!(err, QueryError::NoAtoms);
    }

    #[test]
    fn incidence_queries() {
        let q = triangle();
        assert_eq!(q.atoms_with_var(0).collect::<Vec<_>>(), vec![0, 2]);
        let x = VarSet::singleton(1); // x2 appears in S1, S2
        assert_eq!(q.atoms_meeting(x), vec![0, 1]);
        assert_eq!(q.atoms_meeting(VarSet::EMPTY), Vec::<usize>::new());
    }

    #[test]
    fn shape_erases_names_and_canonical_is_shared() {
        let a = Query::build("Q", &[("S1", &["x", "z"]), ("S2", &["y", "z"])]).unwrap();
        let b = Query::build("P", &[("S1", &["a", "c"]), ("S2", &["b", "c"])]).unwrap();
        assert_eq!(a.shape(), b.shape());
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(
            a.canonical().to_string(),
            "q(v0,v1,v2) = S1(v0,v1), S2(v2,v1)"
        );
        // Different join structure, same symbols: shapes differ.
        let c = Query::build("Q", &[("S1", &["x", "z"]), ("S2", &["z", "y"])]).unwrap();
        assert_ne!(a.shape(), c.shape());
        assert!(a.shape().references("S2"));
        assert!(!a.shape().references("S3"));
        assert_eq!(a.shape().relation_names().collect::<Vec<_>>(), ["S1", "S2"]);
        // Canonicalization is idempotent.
        assert_eq!(a.canonical().canonical(), a.canonical());
    }

    #[test]
    fn atom_helpers() {
        let q = Query::build("q", &[("R", &["a", "b", "a"])]).unwrap();
        let atom = q.atom(0);
        assert_eq!(atom.arity(), 3);
        assert_eq!(atom.var_set().len(), 2);
        assert_eq!(atom.position_of_var(0), Some(0));
        assert_eq!(atom.positions_of(VarSet::singleton(0)), vec![0, 2]);
    }
}
