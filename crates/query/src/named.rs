//! A library of the standard queries used throughout the paper.
//!
//! All constructors produce atoms named `S1, S2, ...` so statistics and
//! relation bindings line up by atom index everywhere in the workspace.

use crate::query::Query;

/// The `u`-way cartesian product `q(x1..xu) = S1(x1), ..., Su(xu)`
/// (Section 1's warm-up example).
pub fn cartesian(u: usize) -> Query {
    assert!(u >= 1);
    let names: Vec<String> = (1..=u).map(|i| format!("S{i}")).collect();
    let vars: Vec<String> = (1..=u).map(|i| format!("x{i}")).collect();
    let atoms: Vec<(&str, Vec<&str>)> = (0..u)
        .map(|i| (names[i].as_str(), vec![vars[i].as_str()]))
        .collect();
    let borrowed: Vec<(&str, &[&str])> = atoms.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    Query::build(format!("X{u}"), &borrowed).expect("cartesian query is well-formed")
}

/// The chain (path) query
/// `Lw = S1(x1,x2), S2(x2,x3), ..., Sw(xw, x(w+1))` (Section 2.2).
pub fn chain(w: usize) -> Query {
    assert!(w >= 1);
    let names: Vec<String> = (1..=w).map(|i| format!("S{i}")).collect();
    let vars: Vec<String> = (1..=w + 1).map(|i| format!("x{i}")).collect();
    let atoms: Vec<(&str, Vec<&str>)> = (0..w)
        .map(|i| {
            (
                names[i].as_str(),
                vec![vars[i].as_str(), vars[i + 1].as_str()],
            )
        })
        .collect();
    let borrowed: Vec<(&str, &[&str])> = atoms.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    Query::build(format!("L{w}"), &borrowed).expect("chain query is well-formed")
}

/// The cycle query
/// `Cw = S1(x1,x2), ..., Sw(xw,x1)`; `cycle(3)` is the triangle query `C3`
/// of Eq. (4).
pub fn cycle(w: usize) -> Query {
    assert!(w >= 3, "cycles need at least 3 atoms to avoid a self-join");
    let names: Vec<String> = (1..=w).map(|i| format!("S{i}")).collect();
    let vars: Vec<String> = (1..=w).map(|i| format!("x{i}")).collect();
    let atoms: Vec<(&str, Vec<&str>)> = (0..w)
        .map(|i| {
            (
                names[i].as_str(),
                vec![vars[i].as_str(), vars[(i + 1) % w].as_str()],
            )
        })
        .collect();
    let borrowed: Vec<(&str, &[&str])> = atoms.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    Query::build(format!("C{w}"), &borrowed).expect("cycle query is well-formed")
}

/// The star query with `w` rays sharing a center:
/// `q = S1(x1, z), ..., Sw(xw, z)`.
pub fn star(w: usize) -> Query {
    assert!(w >= 1);
    let names: Vec<String> = (1..=w).map(|i| format!("S{i}")).collect();
    let vars: Vec<String> = (1..=w).map(|i| format!("x{i}")).collect();
    let atoms: Vec<(&str, Vec<&str>)> = (0..w)
        .map(|i| (names[i].as_str(), vec![vars[i].as_str(), "z"]))
        .collect();
    let borrowed: Vec<(&str, &[&str])> = atoms.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    Query::build(format!("Star{w}"), &borrowed).expect("star query is well-formed")
}

/// The two-relation join `q(x,y,z) = S1(x,z), S2(y,z)` of Example 3.3 and
/// Section 4.1.
pub fn two_way_join() -> Query {
    Query::build("Join", &[("S1", &["x", "z"]), ("S2", &["y", "z"])])
        .expect("join query is well-formed")
}

/// The Loomis–Whitney query `LW(k)`: `k` atoms of arity `k-1`, atom `j`
/// containing every variable except `x_j`. `LW(3)` is the triangle `C3`
/// (up to attribute order). These queries maximize the gap between
/// sequential (`ρ* = k/(k-1)`) and one-round parallel (`τ* = k/(k-1)` too —
/// their packing polytope is the uniform simplex slice) complexity and are
/// the standard stress test in this literature.
pub fn loomis_whitney(k: usize) -> Query {
    assert!(k >= 3, "LW needs k >= 3 (LW(2) would be a self-join pair)");
    let names: Vec<String> = (1..=k).map(|i| format!("S{i}")).collect();
    let vars: Vec<String> = (1..=k).map(|i| format!("x{i}")).collect();
    let atoms: Vec<(&str, Vec<&str>)> = (0..k)
        .map(|j| {
            (
                names[j].as_str(),
                (0..k)
                    .filter(|&i| i != j)
                    .map(|i| vars[i].as_str())
                    .collect(),
            )
        })
        .collect();
    let borrowed: Vec<(&str, &[&str])> = atoms.iter().map(|(n, v)| (*n, v.as_slice())).collect();
    Query::build(format!("LW{k}"), &borrowed).expect("LW query is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(cartesian(3).num_vars(), 3);
        assert_eq!(cartesian(3).num_atoms(), 3);
        assert_eq!(chain(3).num_vars(), 4);
        assert_eq!(chain(3).num_atoms(), 3);
        assert_eq!(cycle(3).num_vars(), 3);
        assert_eq!(cycle(5).num_atoms(), 5);
        assert_eq!(star(4).num_vars(), 5);
        assert_eq!(two_way_join().num_vars(), 3);
    }

    #[test]
    fn chain_matches_section_2_2() {
        let q = chain(3);
        assert_eq!(
            q.to_string(),
            "L3(x1,x2,x3,x4) = S1(x1,x2), S2(x2,x3), S3(x3,x4)"
        );
    }

    #[test]
    fn triangle_matches_eq_4() {
        let q = cycle(3);
        assert_eq!(
            q.to_string(),
            "C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1)"
        );
    }

    #[test]
    #[should_panic(expected = "self-join")]
    fn tiny_cycle_panics() {
        let _ = cycle(2);
    }

    #[test]
    fn loomis_whitney_shape() {
        let q = loomis_whitney(3);
        assert_eq!(q.num_vars(), 3);
        assert_eq!(q.num_atoms(), 3);
        assert_eq!(q.atom(0).arity(), 2);
        // Atom j omits exactly the variable named x_{j+1} (variable
        // *indices* follow interning order, not name order).
        for j in 0..3 {
            let omitted = q.var_index(&format!("x{}", j + 1)).unwrap();
            assert!(!q.atom(j).var_set().contains(omitted));
        }
        let q4 = loomis_whitney(4);
        assert_eq!(q4.num_vars(), 4);
        assert_eq!(q4.atom(2).arity(), 3);
    }

    #[test]
    fn loomis_whitney_tau_star() {
        // Every variable appears in k-1 atoms: the uniform packing
        // u_j = 1/(k-1) is tight, so τ* = k/(k-1).
        use crate::packing::max_packing_value;
        use mpc_lp::Rat;
        assert_eq!(max_packing_value(&loomis_whitney(3)), Rat::new(3, 2));
        assert_eq!(max_packing_value(&loomis_whitney(4)), Rat::new(4, 3));
        assert_eq!(max_packing_value(&loomis_whitney(5)), Rat::new(5, 4));
    }
}
