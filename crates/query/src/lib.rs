//! # mpc-query
//!
//! Conjunctive-query structures for the `mpc-skew` workspace, following
//! Sections 2.2, 3.3 and 4.3 of Beame–Koutris–Suciu (PODS 2014):
//!
//! * [`query::Query`] — full conjunctive queries without self-joins, with a
//!   text [`parser`];
//! * [`aggregate::AggregateSpec`] — optional aggregate heads (group-by +
//!   COUNT/SUM/MIN/MAX/COUNT DISTINCT) over a query's bindings;
//! * [`varset::VarSet`] — compact variable sets (`x` in `q_x`);
//! * [`hypergraph`] — matchings, degrees, connected components;
//! * [`packing`] — fractional edge packings and the exact vertex set
//!   `pk(q)` of the packing polytope;
//! * [`cover`] — fractional edge covers, `ρ*`, `τ*`, the AGM bound, and LP
//!   duality cross-checks;
//! * [`residual`] — residual queries `q_x` and saturating packings for the
//!   skewed lower bound (Theorem 4.7);
//! * [`named`] — the standard example queries (`C3`, chains, stars,
//!   cartesian products, the two-way join).

pub mod aggregate;
pub mod cover;
pub mod hypergraph;
pub mod named;
pub mod packing;
pub mod parser;
pub mod query;
pub mod residual;
pub mod varset;

pub use aggregate::{AggregateOp, AggregateSpec};
pub use packing::{max_packing_value, pk, Packing};
pub use parser::{parse_aggregate_query, parse_query};
pub use query::{Atom, Query, QueryError, QueryShape};
pub use residual::{residual_query, saturates, saturating_packing_vertices, saturating_pk};
pub use varset::VarSet;
