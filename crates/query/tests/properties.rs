//! Property-based tests for packing polytopes and residual queries.

use mpc_lp::Rat;
use mpc_query::packing::{is_packing, max_packing_value, packing_vertices, pk};
use mpc_query::residual::{residual_query, saturates, saturating_packing_vertices};
use mpc_query::{named, Packing, VarSet};
use mpc_testkit::prelude::*;

/// Generate a random small query: a random hypergraph over <= 5 variables
/// with 2..=4 atoms of arity 1..=3 (distinct variables per atom, distinct
/// relation names).
fn arb_query() -> impl Strategy<Value = mpc_query::Query> {
    let atom = mpc_testkit::collection::btree_set(0usize..5, 1..=3);
    mpc_testkit::collection::vec(atom, 2..=4).prop_map(|atoms| {
        let names: Vec<String> = (0..atoms.len()).map(|j| format!("S{}", j + 1)).collect();
        let var_names: Vec<String> = (0..5).map(|i| format!("x{}", i + 1)).collect();
        let spec: Vec<(&str, Vec<&str>)> = atoms
            .iter()
            .enumerate()
            .map(|(j, vs)| {
                (
                    names[j].as_str(),
                    vs.iter().map(|&v| var_names[v].as_str()).collect(),
                )
            })
            .collect();
        let borrowed: Vec<(&str, &[&str])> = spec.iter().map(|(n, v)| (*n, v.as_slice())).collect();
        mpc_query::Query::build("rq", &borrowed).expect("generated query is valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every enumerated vertex is a feasible packing; every pk element is a
    /// vertex; and pk contains a maximizer of the total weight.
    #[test]
    fn vertices_are_packings_and_pk_attains_tau(q in arb_query()) {
        let all = packing_vertices(&q);
        prop_assert!(!all.is_empty());
        for v in &all {
            prop_assert!(is_packing(&q, v), "vertex {:?} infeasible for {}", v, q);
        }
        let nd = pk(&q);
        for v in &nd {
            prop_assert!(all.contains(v));
        }
        let tau = max_packing_value(&q);
        prop_assert!(nd.iter().any(|v| v.value() == tau),
            "no pk vertex attains tau* = {tau}");
    }

    /// Scaling any vertex down stays feasible (the polytope is down-closed).
    #[test]
    fn polytope_is_down_closed(q in arb_query(), num in 0i64..=4) {
        let scale = Rat::new(num as i128, 4);
        for v in packing_vertices(&q) {
            let scaled = Packing(v.0.iter().map(|w| *w * scale).collect());
            prop_assert!(is_packing(&q, &scaled));
        }
    }

    /// τ* is monotone under removing atoms... (removing an atom cannot
    /// increase the packing value of the remaining atoms beyond the original
    /// polytope's projection — here we check the weaker sound property that
    /// τ* of a sub-query with one atom dropped is <= τ* + 1 and >= τ* - 1.)
    #[test]
    fn tau_star_is_stable_under_atom_removal(q in arb_query()) {
        let tau = max_packing_value(&q).to_f64();
        prop_assume!(q.num_atoms() > 2);
        // Rebuild without the last atom.
        let spec: Vec<(String, Vec<String>)> = q.atoms()[..q.num_atoms() - 1]
            .iter()
            .map(|a| (
                a.name().to_string(),
                a.vars().iter().map(|&v| q.var_name(v).to_string()).collect(),
            ))
            .collect();
        let refs: Vec<(&str, Vec<&str>)> = spec.iter()
            .map(|(n, vs)| (n.as_str(), vs.iter().map(String::as_str).collect()))
            .collect();
        let borrowed: Vec<(&str, &[&str])> = refs.iter().map(|(n, v)| (*n, v.as_slice())).collect();
        let q2 = mpc_query::Query::build("rq2", &borrowed).unwrap();
        let tau2 = max_packing_value(&q2).to_f64();
        prop_assert!(tau2 <= tau + 1e-9, "dropping an atom increased tau*");
        prop_assert!(tau2 >= tau - 1.0 - 1e-9, "dropping one atom lost more than 1");
    }

    /// LP duality: τ* (max packing, exact) equals the fractional vertex
    /// cover number (f64 LP) on random queries.
    #[test]
    fn duality_on_random_queries(q in arb_query()) {
        let tau = max_packing_value(&q).to_f64();
        let vc = mpc_query::cover::vertex_cover_number(&q).unwrap();
        prop_assert!((tau - vc).abs() < 1e-6, "tau*={tau} vc={vc} for {q}");
    }

    /// Saturating vertices: every returned vertex is a packing of q_x and
    /// saturates x.
    #[test]
    fn saturating_vertices_are_sound(q in arb_query(), xbits in 0u64..32) {
        let x = VarSet::from_bits(xbits & ((1u64 << q.num_vars()) - 1));
        let qx = residual_query(&q, x);
        for v in saturating_packing_vertices(&q, x) {
            prop_assert!(is_packing(&qx, &v),
                "vertex {:?} not a packing of residual {}", v, qx);
            prop_assert!(saturates(&q, &v, x),
                "vertex {:?} does not saturate {}", v, x);
        }
    }

    /// Residual query structure: variables of x occur in no residual atom,
    /// and arities only shrink.
    #[test]
    fn residual_erases_x(q in arb_query(), xbits in 0u64..32) {
        let x = VarSet::from_bits(xbits & ((1u64 << q.num_vars()) - 1));
        let qx = residual_query(&q, x);
        for (a, ra) in q.atoms().iter().zip(qx.atoms()) {
            prop_assert!(ra.arity() <= a.arity());
            for &v in ra.vars() {
                prop_assert!(!x.contains(v));
            }
        }
    }
}

/// Round-trip: Display output of any named query re-parses to an equal query.
#[test]
fn display_parse_roundtrip() {
    for q in [
        named::cycle(3),
        named::cycle(4),
        named::chain(3),
        named::star(3),
        named::two_way_join(),
        named::cartesian(3),
    ] {
        let text = q.to_string();
        let q2 = mpc_query::parse_query(&text).expect("display output parses");
        assert_eq!(q, q2, "round-trip failed for {text}");
    }
}
