//! Regenerates the cartesian experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e1_cartesian::run();
}
