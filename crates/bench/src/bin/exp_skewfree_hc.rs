//! Regenerates the skewfree_hc experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e4_skewfree_hc::run();
}
