//! Regenerates the e11_ablation_skew ablation table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e11_ablation_skew::run();
}
