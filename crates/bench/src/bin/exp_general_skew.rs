//! Regenerates the general_skew experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e8_general_skew::run();
}
