//! Compare two `BENCH_<label>.json` trajectory files.
//!
//! ```text
//! bench_compare OLD.json NEW.json [--fail-on-regression]
//! ```
//!
//! Prints per-benchmark median deltas (plus allocs/iter, join
//! bindings/iter, and rows-materialized/iter deltas when the files carry
//! them) and flags every wall-clock regression above 10% —
//! except µs-scale benches (baseline median under 100µs), whose deltas are
//! mostly scheduler noise and are flagged only past 100% (the exact
//! per-iteration counters are the trustworthy signal at that scale).
//! `ci.sh --bench-compare <old> <new>` wraps this binary, and the full
//! gate runs it against the newest two recorded baselines so trajectory
//! regressions are visible in every CI log. Exit status is 0 unless
//! `--fail-on-regression` is given and a flagged regression exists.

use std::process::ExitCode;

/// Wall-clock regressions above this fraction are flagged.
const REGRESSION_THRESHOLD: f64 = 0.10;

/// Medians below this are µs-scale measurements where scheduler and cache
/// noise swamps a 10% delta even with the harness's boosted sample budget;
/// such benches are flagged only past [`NOISE_THRESHOLD`].
const NOISE_FLOOR_NS: f64 = 100_000.0;

/// The relaxed flagging threshold for sub-[`NOISE_FLOOR_NS`] benchmarks:
/// only a >2x slowdown is worth a human look at µs scale (CI containers
/// routinely show spurious 50–80% swings there); real efficiency
/// regressions surface through the exact counters instead.
const NOISE_THRESHOLD: f64 = 1.0;

/// The threshold that applies to a comparison whose baseline median is
/// `old_ns`.
fn threshold_for(old_ns: f64) -> f64 {
    if old_ns < NOISE_FLOOR_NS {
        NOISE_THRESHOLD
    } else {
        REGRESSION_THRESHOLD
    }
}

/// One benchmark record parsed from a trajectory file.
#[derive(Clone, Debug, PartialEq)]
struct Record {
    label: String,
    median_ns: f64,
    allocs_per_iter: Option<u64>,
    bindings_per_iter: Option<u64>,
    rows_materialized_per_iter: Option<u64>,
}

/// Extract the JSON string value of `field` from a one-record line.
fn string_field(line: &str, field: &str) -> Option<String> {
    let pat = format!("\"{field}\":\"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extract the JSON numeric value of `field` from a one-record line.
fn number_field(line: &str, field: &str) -> Option<f64> {
    let pat = format!("\"{field}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse every benchmark record out of a `BENCH_*.json` file. The records
/// are the one-object-per-line entries of the `"results"` array (the shape
/// `ci.sh --bench` writes); anything without a `median_ns` is skipped.
fn parse_records(text: &str) -> Vec<Record> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(median_ns) = number_field(line, "median_ns") else {
            continue;
        };
        let group = string_field(line, "group").unwrap_or_default();
        let Some(bench) = string_field(line, "bench") else {
            continue;
        };
        let label = if group.is_empty() {
            bench
        } else {
            format!("{group}/{bench}")
        };
        out.push(Record {
            label,
            median_ns,
            allocs_per_iter: number_field(line, "allocs_per_iter").map(|v| v as u64),
            bindings_per_iter: number_field(line, "bindings_per_iter").map(|v| v as u64),
            rows_materialized_per_iter: number_field(line, "rows_materialized_per_iter")
                .map(|v| v as u64),
        });
    }
    out
}

/// `new` relative to `old` as a signed fraction (`+0.25` = 25% slower).
fn delta(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        0.0
    } else {
        (new - old) / old
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.1}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

/// Format an `old -> new` transition of one exact per-iteration counter
/// (allocations, join bindings visited): "500 -> 50 (10.0x fewer)",
/// "500 (unchanged)", "- -> 50", or empty when neither side has it.
fn counter_delta(old: Option<u64>, new: Option<u64>) -> String {
    match (old, new) {
        (Some(a), Some(b)) => {
            let ratio = if b > 0 { a as f64 / b as f64 } else { f64::NAN };
            if a == b {
                format!("{a} (unchanged)")
            } else if ratio.is_finite() && ratio >= 1.0 {
                format!("{a} -> {b} ({ratio:.1}x fewer)")
            } else {
                format!("{a} -> {b}")
            }
        }
        (None, Some(b)) => format!("- -> {b}"),
        _ => String::new(),
    }
}

/// Render the comparison; returns the flagged-regression labels.
fn compare(old: &[Record], new: &[Record], out: &mut impl std::io::Write) -> Vec<String> {
    let mut flagged = Vec::new();
    let header = (
        "benchmark",
        "old",
        "new",
        "delta",
        "allocs/iter old->new",
        "bindings/iter old->new",
        "rows-mat/iter old->new",
    );
    writeln!(
        out,
        "{:<44} {:>10} {:>10} {:>8}  {:<24} {:<24} {}",
        header.0, header.1, header.2, header.3, header.4, header.5, header.6
    )
    .unwrap();
    for n in new {
        let Some(o) = old.iter().find(|o| o.label == n.label) else {
            writeln!(
                out,
                "{:<44} {:>10} {:>10} {:>8}",
                n.label,
                "-",
                fmt_ns(n.median_ns),
                "new"
            )
            .unwrap();
            continue;
        };
        let d = delta(o.median_ns, n.median_ns);
        let allocs = counter_delta(o.allocs_per_iter, n.allocs_per_iter);
        let bindings = counter_delta(o.bindings_per_iter, n.bindings_per_iter);
        let rows = counter_delta(o.rows_materialized_per_iter, n.rows_materialized_per_iter);
        let flag = if d > threshold_for(o.median_ns) {
            flagged.push(n.label.clone());
            "  <-- REGRESSION"
        } else if d > REGRESSION_THRESHOLD {
            // Sub-floor benches past the strict threshold but inside the
            // relaxed one: visible, not flagged.
            "  (noisy: below floor)"
        } else {
            ""
        };
        writeln!(
            out,
            "{:<44} {:>10} {:>10} {:>+7.1}%  {:<24} {:<24} {}{}",
            n.label,
            fmt_ns(o.median_ns),
            fmt_ns(n.median_ns),
            d * 100.0,
            allocs,
            bindings,
            rows,
            flag
        )
        .unwrap();
    }
    for o in old {
        if !new.iter().any(|n| n.label == o.label) {
            writeln!(
                out,
                "{:<44} {:>10} {:>10}  (dropped)",
                o.label,
                fmt_ns(o.median_ns),
                "-"
            )
            .unwrap();
        }
    }
    flagged
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fail_on_regression = args.iter().any(|a| a == "--fail-on-regression");
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.len() != 2 {
        eprintln!("usage: bench_compare OLD.json NEW.json [--fail-on-regression]");
        return ExitCode::FAILURE;
    }
    let read = |path: &str| -> Option<String> {
        match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                None
            }
        }
    };
    let (Some(old_text), Some(new_text)) = (read(files[0]), read(files[1])) else {
        return ExitCode::FAILURE;
    };
    let old = parse_records(&old_text);
    let new = parse_records(&new_text);
    println!("comparing {} (old) vs {} (new):", files[0], files[1]);
    let flagged = compare(&old, &new, &mut std::io::stdout());
    if flagged.is_empty() {
        println!(
            "\nno regressions above {:.0}% ({:.0}% for sub-{} benches)",
            REGRESSION_THRESHOLD * 100.0,
            NOISE_THRESHOLD * 100.0,
            fmt_ns(NOISE_FLOOR_NS)
        );
        ExitCode::SUCCESS
    } else {
        println!(
            "\n{} regression(s) above {:.0}% ({:.0}% for sub-{} benches): {}",
            flagged.len(),
            REGRESSION_THRESHOLD * 100.0,
            NOISE_THRESHOLD * 100.0,
            fmt_ns(NOISE_FLOOR_NS),
            flagged.join(", ")
        );
        if fail_on_regression {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
  "pr": "prX",
  "results": [
    {"group":"local_join","bench":"join_16k","median_ns":1000.0,"min_ns":900.0,"max_ns":1100.0,"samples":5,"iters_per_sample":10,"allocs_per_iter":500,"bindings_per_iter":9000,"rows_materialized_per_iter":16000},
    {"group":"local_join","bench":"gone","median_ns":50.0,"min_ns":50.0,"max_ns":50.0,"samples":5,"iters_per_sample":10}
  ]
}"#;

    const NEW: &str = r#"{
  "pr": "prY",
  "results": [
    {"group":"local_join","bench":"join_16k","median_ns":800.0,"min_ns":700.0,"max_ns":900.0,"samples":5,"iters_per_sample":10,"allocs_per_iter":50,"bindings_per_iter":3000,"rows_materialized_per_iter":0},
    {"group":"slow","bench":"case","median_ns":99.0,"min_ns":99.0,"max_ns":99.0,"samples":5,"iters_per_sample":10}
  ]
}"#;

    #[test]
    fn parses_records_with_and_without_allocs() {
        let old = parse_records(OLD);
        assert_eq!(old.len(), 2);
        assert_eq!(old[0].label, "local_join/join_16k");
        assert_eq!(old[0].median_ns, 1000.0);
        assert_eq!(old[0].allocs_per_iter, Some(500));
        assert_eq!(old[0].bindings_per_iter, Some(9000));
        assert_eq!(old[0].rows_materialized_per_iter, Some(16000));
        assert_eq!(old[1].allocs_per_iter, None);
        assert_eq!(old[1].bindings_per_iter, None);
        assert_eq!(old[1].rows_materialized_per_iter, None);
    }

    #[test]
    fn rows_materialized_column_shows_the_pushdown_win() {
        let mut buf = Vec::new();
        compare(&parse_records(OLD), &parse_records(NEW), &mut buf);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("rows-mat/iter old->new"), "{text}");
        // 16000 -> 0 has no finite ratio: plain transition.
        assert!(text.contains("16000 -> 0"), "{text}");
    }

    #[test]
    fn bindings_column_shows_the_visited_bindings_delta() {
        let mut buf = Vec::new();
        compare(&parse_records(OLD), &parse_records(NEW), &mut buf);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("bindings/iter old->new"), "{text}");
        assert!(text.contains("9000 -> 3000 (3.0x fewer)"), "{text}");
    }

    #[test]
    fn counter_delta_covers_every_shape() {
        assert_eq!(
            counter_delta(Some(500), Some(50)),
            "500 -> 50 (10.0x fewer)"
        );
        assert_eq!(counter_delta(Some(7), Some(7)), "7 (unchanged)");
        assert_eq!(counter_delta(Some(5), Some(8)), "5 -> 8");
        assert_eq!(counter_delta(None, Some(8)), "- -> 8");
        assert_eq!(counter_delta(Some(5), None), "");
        assert_eq!(counter_delta(None, None), "");
    }

    #[test]
    fn improvement_is_not_flagged() {
        let flagged = compare(&parse_records(OLD), &parse_records(NEW), &mut Vec::new());
        assert!(flagged.is_empty());
    }

    #[test]
    fn regression_over_threshold_is_flagged() {
        let mut old = parse_records(OLD);
        old[0].median_ns = 1_000_000.0; // ms-scale: the strict 10% applies
        let mut new = old.clone();
        new[0].median_ns = 1_111_000.0; // +11.1%
        let mut buf = Vec::new();
        let flagged = compare(&old, &new, &mut buf);
        assert_eq!(flagged, vec!["local_join/join_16k".to_string()]);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("REGRESSION"), "{text}");
    }

    #[test]
    fn regression_under_threshold_passes() {
        let mut old = parse_records(OLD);
        old[0].median_ns = 1_000_000.0;
        let mut new = old.clone();
        new[0].median_ns = 1_090_000.0; // +9%
        assert!(compare(&old, &new, &mut Vec::new()).is_empty());
    }

    #[test]
    fn new_and_dropped_benchmarks_are_reported() {
        let mut buf = Vec::new();
        compare(&parse_records(OLD), &parse_records(NEW), &mut buf);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("slow/case"), "{text}");
        assert!(text.contains("(dropped)"), "{text}");
        assert!(text.contains("10.0x fewer"), "{text}");
    }

    #[test]
    fn delta_handles_zero_old() {
        assert_eq!(delta(0.0, 100.0), 0.0);
        assert!((delta(100.0, 150.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sub_floor_bench_gets_the_relaxed_threshold() {
        // 80µs baseline: +60% would flag a ms-scale bench, but under the
        // 100µs noise floor only a >2x slowdown flags.
        let old = vec![Record {
            label: "share_lp/star4".into(),
            median_ns: 80_000.0,
            allocs_per_iter: None,
            bindings_per_iter: None,
            rows_materialized_per_iter: None,
        }];
        let mut new = old.clone();
        new[0].median_ns = 128_000.0; // +60%
        let mut buf = Vec::new();
        assert!(compare(&old, &new, &mut buf).is_empty());
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("(noisy: below floor)"), "{text}");

        new[0].median_ns = 170_000.0; // +112.5%: past even the relaxed bar
        let flagged = compare(&old, &new, &mut Vec::new());
        assert_eq!(flagged, vec!["share_lp/star4".to_string()]);
    }

    #[test]
    fn floor_uses_the_baseline_median() {
        // A bench that *crosses* the floor upward is judged by its old
        // (sub-floor) median: relaxed threshold.
        assert_eq!(threshold_for(99_999.0), NOISE_THRESHOLD);
        assert_eq!(threshold_for(100_000.0), REGRESSION_THRESHOLD);
    }
}
