//! Regenerates the e12_sampling experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e12_sampling::run();
}
