//! Regenerates the skew_join experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e6_skew_join::run();
}
