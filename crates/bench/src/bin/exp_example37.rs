//! Regenerates the example37 experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e3_example37::run();
}
