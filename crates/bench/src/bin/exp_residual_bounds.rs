//! Regenerates the residual_bounds experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e7_residual_bounds::run();
}
