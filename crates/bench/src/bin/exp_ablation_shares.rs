//! Regenerates the e10_ablation_shares ablation table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e10_ablation_shares::run();
}
