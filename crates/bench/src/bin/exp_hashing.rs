//! Regenerates the hashing experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e5_hashing::run();
}
