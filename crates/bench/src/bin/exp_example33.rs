//! Regenerates the example33 experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e2_example33::run();
}
