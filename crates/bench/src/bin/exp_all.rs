//! Runs every experiment (E1–E9) in order; `tee` the output to regenerate
//! the measured columns of EXPERIMENTS.md.
fn main() {
    mpc_bench::experiments::run_all();
}
