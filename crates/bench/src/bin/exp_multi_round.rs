//! Regenerates the e13_multi_round experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e13_multi_round::run();
}
