//! Regenerates the replication experiment table (DESIGN.md §3).
fn main() {
    mpc_bench::experiments::e9_replication::run();
}
