//! # mpc-bench
//!
//! The experiment harness: one binary per table/figure/worked example of
//! the paper (see DESIGN.md §3 for the experiment index E1–E9), plus
//! criterion microbenchmarks for the algorithm implementations.
//!
//! Run everything with `cargo run --release -p mpc-bench --bin exp_all`.

pub mod alloc_counter;
pub mod table;
pub mod workloads;

pub mod experiments;
