//! Minimal fixed-width table printing for experiment output.

/// A fixed-width text table with a title, printed as it is built.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Print the title and header; column widths come from the header plus
    /// padding.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        println!("\n== {title} ==");
        let widths: Vec<usize> = headers.iter().map(|h| h.len().max(10) + 2).collect();
        let mut line = String::new();
        for (h, w) in headers.iter().zip(&widths) {
            line.push_str(&format!("{h:>w$}"));
        }
        println!("{line}");
        println!("{}", "-".repeat(widths.iter().sum()));
        Table { widths }
    }

    /// Print one row of already-formatted cells.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{c:>w$}"));
        }
        println!("{line}");
    }
}

/// Format a float compactly (3 significant-ish digits).
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Format a ratio like `1.73x`.
pub fn fmt_ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(5000.4), "5000");
        assert_eq!(fmt(42.25), "42.2");
        assert_eq!(fmt(1.23456), "1.235");
        assert_eq!(fmt_ratio(1.726), "1.73x");
    }

    #[test]
    fn table_prints_without_panicking() {
        let t = Table::new("unit", &["col_a", "b"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["wide-value".into(), "x".into()]);
    }
}
